# Serve-mode smoke workload: three read tenants multiplexing one shared
# store, plus one epoch-advancing mutation landing mid-stream. Used by
# CI's serve-smoke job (host-thread invariance diff) and handy as a
# `gts serve --workload` starting point.
#
# Format, one job per line (defaults: source=0 iters=10 k=2):
#   at=<ns> tenant=<id> job=<alg> [source=N] [iters=N] [k=N]
#          [mutate-at=K inserts=N deletes=N seed=N]
at=0      tenant=alpha job=bfs source=0
at=50000  tenant=beta  job=pagerank iters=5
at=100000 tenant=alpha job=cc
at=150000 tenant=mut   job=bfs mutate-at=1 inserts=48 deletes=8 seed=7
at=200000 tenant=beta  job=sssp source=3
at=250000 tenant=gamma job=kcore k=3
