//! A chunked, scoped thread pool with deterministic output order.
//!
//! Chunks of the input are claimed dynamically through an atomic cursor, so
//! load balances across workers; determinism comes from *where results go*,
//! not from the schedule: per-chunk outputs are reassembled in chunk order
//! (= item order) and per-worker states are handed back in worker-index
//! order. Callers that only merge states commutatively therefore observe the
//! same bytes for every thread count.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The host's available parallelism, used as the default `host_threads`.
pub fn default_host_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// How many chunks each worker should see on average; >1 so that a slow
/// chunk does not serialize the tail of the input.
const CHUNKS_PER_WORKER: usize = 4;

/// A fixed-width pool of scoped workers. `threads == 1` (or trivially small
/// inputs) takes an inline fast path on the calling thread, which is by
/// construction the exact serial order.
#[derive(Debug, Clone)]
pub struct ThreadPool {
    threads: usize,
}

impl ThreadPool {
    /// A pool with `threads` workers; 0 is clamped to 1.
    pub fn new(threads: usize) -> Self {
        ThreadPool {
            threads: threads.max(1),
        }
    }

    /// A pool sized to [`default_host_threads`].
    pub fn with_default_threads() -> Self {
        Self::new(default_host_threads())
    }

    pub fn threads(&self) -> usize {
        self.threads
    }

    fn chunk_size(&self, len: usize, grain: usize) -> usize {
        len.div_ceil(self.threads * CHUNKS_PER_WORKER)
            .max(grain)
            .max(1)
    }

    /// Map `f` over `items`, returning results in item order.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        self.par_map_init(items, || (), |(), i, t| f(i, t)).0
    }

    /// Run `f` for every item; completion of the call implies completion of
    /// every item.
    pub fn par_for_each<T, F>(&self, items: &[T], f: F)
    where
        T: Sync,
        F: Fn(usize, &T) + Sync,
    {
        self.par_map(items, |i, t| f(i, t));
    }

    /// Map with per-worker state: each worker runs `init()` once, threads the
    /// state through every item it processes, and hands it back at the end.
    /// Returns `(results in item order, states in worker-index order)`.
    ///
    /// Which items a worker sees is schedule-dependent, so downstream merges
    /// of the states must be commutative for determinism.
    pub fn par_map_init<T, S, R, I, F>(&self, items: &[T], init: I, f: F) -> (Vec<R>, Vec<S>)
    where
        T: Sync,
        S: Send,
        R: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, usize, &T) -> R + Sync,
    {
        if self.threads == 1 || items.len() <= 1 {
            let mut state = init();
            let out = items
                .iter()
                .enumerate()
                .map(|(i, t)| f(&mut state, i, t))
                .collect();
            return (out, vec![state]);
        }
        let chunk = self.chunk_size(items.len(), 1);
        let nchunks = items.len().div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let results: Mutex<Vec<(usize, Vec<R>)>> = Mutex::new(Vec::with_capacity(nchunks));
        let states: Mutex<Vec<(usize, S)>> = Mutex::new(Vec::with_capacity(self.threads));
        std::thread::scope(|scope| {
            for w in 0..self.threads.min(nchunks) {
                let (cursor, results, states, init, f) = (&cursor, &results, &states, &init, &f);
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= nchunks {
                            break;
                        }
                        let lo = ci * chunk;
                        let hi = (lo + chunk).min(items.len());
                        let out: Vec<R> = items[lo..hi]
                            .iter()
                            .enumerate()
                            .map(|(k, t)| f(&mut state, lo + k, t))
                            .collect();
                        results.lock().unwrap().push((ci, out));
                    }
                    states.lock().unwrap().push((w, state));
                });
            }
        });
        let mut per_chunk = results.into_inner().unwrap();
        per_chunk.sort_unstable_by_key(|&(ci, _)| ci);
        let out = per_chunk.into_iter().flat_map(|(_, v)| v).collect();
        let mut per_worker = states.into_inner().unwrap();
        per_worker.sort_by_key(|&(w, _)| w);
        (out, per_worker.into_iter().map(|(_, s)| s).collect())
    }

    /// Run `body` over disjoint subranges of `0..len` with per-worker state,
    /// returning the states in worker-index order. `grain` is the minimum
    /// chunk length (inputs shorter than `2 * grain` run inline).
    pub fn par_ranges<S, I, F>(&self, len: usize, grain: usize, init: I, body: F) -> Vec<S>
    where
        S: Send,
        I: Fn() -> S + Sync,
        F: Fn(&mut S, std::ops::Range<usize>) + Sync,
    {
        let grain = grain.max(1);
        if self.threads == 1 || len < 2 * grain {
            let mut state = init();
            body(&mut state, 0..len);
            return vec![state];
        }
        let chunk = self.chunk_size(len, grain);
        let nchunks = len.div_ceil(chunk);
        let cursor = AtomicUsize::new(0);
        let states: Mutex<Vec<(usize, S)>> = Mutex::new(Vec::with_capacity(self.threads));
        std::thread::scope(|scope| {
            for w in 0..self.threads.min(nchunks) {
                let (cursor, states, init, body) = (&cursor, &states, &init, &body);
                scope.spawn(move || {
                    let mut state = init();
                    loop {
                        let ci = cursor.fetch_add(1, Ordering::Relaxed);
                        if ci >= nchunks {
                            break;
                        }
                        let lo = ci * chunk;
                        body(&mut state, lo..(lo + chunk).min(len));
                    }
                    states.lock().unwrap().push((w, state));
                });
            }
        });
        let mut per_worker = states.into_inner().unwrap();
        per_worker.sort_by_key(|&(w, _)| w);
        per_worker.into_iter().map(|(_, s)| s).collect()
    }

    /// Run `f` over a set of disjoint mutable slices (typically produced by
    /// repeated `split_at_mut`), each exactly once, indexed by position.
    pub fn par_slices_mut<T, F>(&self, slices: Vec<&mut [T]>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        if self.threads == 1 || slices.len() <= 1 {
            for (i, s) in slices.into_iter().enumerate() {
                f(i, s);
            }
            return;
        }
        let n = slices.len();
        let slots: Vec<Mutex<Option<&mut [T]>>> =
            slices.into_iter().map(|s| Mutex::new(Some(s))).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..self.threads.min(n) {
                let (cursor, slots, f) = (&cursor, &slots, &f);
                scope.spawn(move || loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let slice = slots[i].lock().unwrap().take().expect("slice claimed once");
                    f(i, slice);
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn par_map_preserves_item_order() {
        for threads in [1, 2, 3, 8] {
            let pool = ThreadPool::new(threads);
            let items: Vec<u64> = (0..1000).collect();
            let out = pool.par_map(&items, |i, &x| x * 2 + i as u64);
            let want: Vec<u64> = (0..1000).map(|x| x * 3).collect();
            assert_eq!(out, want, "threads={threads}");
        }
    }

    #[test]
    fn par_map_init_states_cover_all_items_once() {
        let pool = ThreadPool::new(4);
        let items: Vec<u64> = (0..503).collect();
        let (out, states) = pool.par_map_init(
            &items,
            || 0u64,
            |seen, _, &x| {
                *seen += 1;
                x
            },
        );
        assert_eq!(out, items);
        assert!(states.len() <= 4);
        assert_eq!(states.iter().sum::<u64>(), 503);
    }

    #[test]
    fn par_ranges_tiles_the_input_exactly() {
        for threads in [1, 3, 7] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicU64> = (0..997).map(|_| AtomicU64::new(0)).collect();
            let states = pool.par_ranges(
                hits.len(),
                8,
                || 0usize,
                |count, r| {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                        *count += 1;
                    }
                },
            );
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            assert_eq!(states.iter().sum::<usize>(), 997);
        }
    }

    #[test]
    fn par_slices_mut_visits_every_slice() {
        let pool = ThreadPool::new(4);
        let mut data = vec![0u32; 100];
        let mut slices = Vec::new();
        let mut rest: &mut [u32] = &mut data;
        while !rest.is_empty() {
            let take = rest.len().min(7);
            let (head, tail) = rest.split_at_mut(take);
            slices.push(head);
            rest = tail;
        }
        pool.par_slices_mut(slices, |i, s| s.fill(i as u32 + 1));
        assert!(data.iter().all(|&x| x > 0));
        assert_eq!(data[0], 1);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).threads(), 1);
        assert!(default_host_threads() >= 1);
    }
}
