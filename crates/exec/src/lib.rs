//! Deterministic host parallelism for GTS.
//!
//! The paper executes kernel bodies on devices; this reproduction executes
//! them on the host, and until now did so on a single thread. `gts-exec`
//! provides the two primitives that make parallel host execution *exactly*
//! equivalent to the serial path:
//!
//! - [`ThreadPool`]: a dependency-free chunked pool built on
//!   `std::thread::scope`. Work items are claimed dynamically (an atomic
//!   chunk cursor), but results are returned in **item order** and per-worker
//!   states in **worker-index order**, so any reduction the caller performs
//!   is schedule-independent as long as the merge operation is commutative
//!   and associative over the chosen representation.
//! - [`FixedVec`]: a shared accumulator of non-negative reals in 64-bit
//!   fixed point. Integer `fetch_add` commutes exactly, so concurrent
//!   accumulation produces bit-identical results for every thread count and
//!   every interleaving — unlike floating-point `+`, which is commutative
//!   but not associative. [`CounterVec`] is its integer sibling for plain
//!   `u64` counts (edges, vertices, pages), full-range and exact.
//!
//! Everything here is safe Rust; no work ever leaks past a call because all
//! workers are scoped to it.

mod fixed;
mod pool;

pub use fixed::{CounterVec, FixedVec};
pub use pool::{default_host_threads, ThreadPool};
