//! A shared fixed-point accumulator: bit-deterministic concurrent sums.
//!
//! Floating-point addition is not associative, so a parallel reduction of
//! `f64`s depends on the schedule. Converting each addend to 64-bit fixed
//! point first turns the sum into integer `fetch_add`, which commutes and
//! associates exactly — the final bits are a pure function of the *multiset*
//! of addends, independent of thread count and interleaving.
//!
//! With [`FRAC_BITS`] = 52 the resolution is 2^-52 ≈ 2.2e-16 per addend and
//! the representable range is `[0, 4096)`, ample for PageRank/RWR mass
//! (which sums to at most the vertex-probability total of 1).

use std::sync::atomic::{AtomicU64, Ordering};

/// Fractional bits of the fixed-point representation.
pub const FRAC_BITS: u32 = 52;
const SCALE: f64 = (1u64 << FRAC_BITS) as f64;

/// A vector of concurrently-addressable fixed-point accumulators for
/// non-negative reals.
#[derive(Debug, Default)]
pub struct FixedVec {
    slots: Vec<AtomicU64>,
}

impl FixedVec {
    pub fn new(len: usize) -> Self {
        FixedVec {
            slots: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.slots.len()
    }

    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Convert a non-negative `f64` to fixed point (truncating — a pure
    /// function of `x`, so conversion itself is deterministic).
    pub fn to_fixed(x: f64) -> u64 {
        debug_assert!(x >= 0.0, "FixedVec only accumulates non-negative values");
        (x * SCALE) as u64
    }

    pub fn from_fixed(raw: u64) -> f64 {
        raw as f64 / SCALE
    }

    /// Atomically add `x` to slot `i`. Safe to call from any number of
    /// threads; all interleavings yield the same final bits.
    pub fn add(&self, i: usize, x: f64) {
        self.slots[i].fetch_add(Self::to_fixed(x), Ordering::Relaxed);
    }

    /// Current value of slot `i`.
    pub fn get(&self, i: usize) -> f64 {
        Self::from_fixed(self.slots[i].load(Ordering::Relaxed))
    }

    /// Reset every slot to zero (requires exclusive access, so no ordering
    /// concerns).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = 0;
        }
    }
}

/// The integer sibling of [`FixedVec`]: a vector of concurrently-
/// addressable `u64` accumulators.
///
/// Where [`FixedVec`] makes *real-valued* parallel sums bit-deterministic
/// by routing them through fixed point, counts (edges, vertices, pages)
/// are already integers — `fetch_add` commutes and associates exactly, so
/// any schedule yields the same totals. `FixedVec`'s `[0, 4096)` range
/// would overflow on edge counts; this type holds the full `u64` range.
#[derive(Debug, Default)]
pub struct CounterVec {
    slots: Vec<AtomicU64>,
}

impl CounterVec {
    /// `len` accumulators, all zero.
    pub fn new(len: usize) -> Self {
        CounterVec {
            slots: (0..len).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when there are no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Atomically add `x` to slot `i`. Safe from any number of threads;
    /// all interleavings yield the same final value.
    pub fn add(&self, i: usize, x: u64) {
        self.slots[i].fetch_add(x, Ordering::Relaxed);
    }

    /// Current value of slot `i`.
    pub fn get(&self, i: usize) -> u64 {
        self.slots[i].load(Ordering::Relaxed)
    }

    /// Reset every slot to zero (requires exclusive access).
    pub fn clear(&mut self) {
        for s in &mut self.slots {
            *s.get_mut() = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ThreadPool;

    #[test]
    fn counter_vec_concurrent_sums_are_exact() {
        let items: Vec<u64> = (0..10_000).collect();
        let serial: u64 = items.iter().sum();
        for threads in [1, 2, 4, 8] {
            let acc = CounterVec::new(2);
            ThreadPool::new(threads).par_for_each(&items, |i, &x| {
                acc.add(i % 2, x);
            });
            assert_eq!(acc.get(0) + acc.get(1), serial, "threads={threads}");
        }
        let mut acc = CounterVec::new(2);
        acc.add(1, 7);
        acc.clear();
        assert_eq!(acc.get(1), 0);
        assert_eq!(acc.len(), 2);
        assert!(!acc.is_empty());
    }

    #[test]
    fn concurrent_adds_match_serial_bits_for_any_thread_count() {
        let addends: Vec<f64> = (0..10_000).map(|i| (i as f64 * 0.001) % 0.73).collect();
        let serial = {
            let acc = FixedVec::new(8);
            for (i, &x) in addends.iter().enumerate() {
                acc.add(i % 8, x);
            }
            (0..8).map(|i| acc.get(i).to_bits()).collect::<Vec<_>>()
        };
        for threads in [2, 4, 8] {
            let acc = FixedVec::new(8);
            ThreadPool::new(threads).par_for_each(&addends, |i, &x| acc.add(i % 8, x));
            let par: Vec<u64> = (0..8).map(|i| acc.get(i).to_bits()).collect();
            assert_eq!(par, serial, "threads={threads}");
        }
    }

    #[test]
    fn resolution_and_round_trip() {
        let acc = FixedVec::new(1);
        acc.add(0, 0.25);
        acc.add(0, 0.125);
        assert_eq!(acc.get(0), 0.375);
        assert_eq!(FixedVec::from_fixed(FixedVec::to_fixed(1.0)), 1.0);
        assert!((FixedVec::from_fixed(FixedVec::to_fixed(0.1)) - 0.1).abs() < 1e-15);
    }

    #[test]
    fn clear_resets() {
        let mut acc = FixedVec::new(3);
        acc.add(2, 1.5);
        acc.clear();
        assert_eq!(acc.get(2), 0.0);
        assert_eq!(acc.len(), 3);
        assert!(!acc.is_empty());
    }
}
