//! Cargo home for the workspace's runnable examples.
//!
//! A virtual workspace root cannot own targets, so this crate hosts the
//! sources in the top-level `examples/` directory:
//!
//! * `quickstart` — graph → slotted pages → BFS + PageRank on one GPU;
//! * `social_network_analytics` — PageRank / CC / SSSP on a Twitter-like
//!   graph across two GPUs (Strategy-P);
//! * `web_graph_traversal` — high-diameter BFS and betweenness centrality
//!   with and without the topology cache;
//! * `out_of_core_billion_edge` — the paper's headline scenario: a graph
//!   beyond device memory streamed from SSDs under Strategy-S, next to the
//!   OOM failures of the resident-memory alternatives;
//! * `subgraph_queries` — page-level random-access queries (neighborhood,
//!   egonet, induced subgraph, cross-edges).
//!
//! Run with `cargo run --release -p gts-examples --example <name>`.
