//! The shared [`Telemetry`] handle.

use crate::span::{Span, SpanCat, Track};
use gts_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) spans_enabled: bool,
    pub(crate) spans: Vec<Span>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) hists: BTreeMap<String, Vec<u64>>,
    pub(crate) process_names: BTreeMap<u32, String>,
    pub(crate) thread_names: BTreeMap<Track, String>,
}

/// Percentile summary of one histogram, on exact nearest-rank values (no
/// interpolation: every reported number is one of the observations, so
/// deterministic inputs give byte-stable summaries).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSummary {
    /// Number of observations.
    pub count: u64,
    /// 50th percentile (nearest rank).
    pub p50: u64,
    /// 95th percentile (nearest rank).
    pub p95: u64,
    /// 99th percentile (nearest rank).
    pub p99: u64,
}

/// Shared recording surface for one run: spans + counters.
///
/// Cloning is cheap (an `Arc` bump); every component of a run — engine,
/// GPU timers, page caches, MMBuf, storage array — holds a clone of the
/// same handle. All methods take `&self`; the handle is `Send + Sync`.
///
/// Lifecycle: [`Telemetry::start_run`] clears all recorded state, so one
/// recording covers exactly one run. Engines call it at the top of their
/// `run()`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Inner>>,
}

impl Telemetry {
    /// Counters-only telemetry (spans dropped). The default for every
    /// engine: a run costs a handful of integer adds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry that also records spans (needed for
    /// [`Telemetry::to_chrome_trace`] / [`Telemetry::render_ascii`]).
    /// A large run can produce one span per page per stream, so this is
    /// opt-in.
    pub fn with_spans() -> Self {
        let t = Self::default();
        t.inner.lock().unwrap().spans_enabled = true;
        t
    }

    /// Whether spans are being recorded.
    pub fn spans_enabled(&self) -> bool {
        self.inner.lock().unwrap().spans_enabled
    }

    /// Reset all recorded state (spans, counters, track names) so the next
    /// run starts clean. Span recording stays enabled/disabled as before.
    pub fn start_run(&self) {
        let mut g = self.inner.lock().unwrap();
        g.spans.clear();
        g.counters.clear();
        g.hists.clear();
        g.process_names.clear();
        g.thread_names.clear();
    }

    /// Record one busy interval. No-op when spans are disabled.
    pub fn record_span(
        &self,
        track: Track,
        cat: SpanCat,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        let mut g = self.inner.lock().unwrap();
        if !g.spans_enabled {
            return;
        }
        debug_assert!(end >= start, "span must not end before it starts");
        g.spans.push(Span {
            track,
            name: name.into(),
            cat,
            start,
            end,
        });
    }

    /// Name a process track (chrome-trace `process_name`, ASCII row prefix).
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap()
            .process_names
            .insert(pid, name.into());
    }

    /// Name a thread track.
    pub fn name_thread(&self, track: Track, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap()
            .thread_names
            .insert(track, name.into());
    }

    /// Add `delta` to counter `key` (creating it at zero).
    pub fn add(&self, key: impl AsRef<str>, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(key.as_ref().to_owned()).or_insert(0) += delta;
    }

    /// Overwrite counter `key` with `value` (for gauges like capacities).
    pub fn set(&self, key: impl AsRef<str>, value: u64) {
        let mut g = self.inner.lock().unwrap();
        g.counters.insert(key.as_ref().to_owned(), value);
    }

    /// Raise counter `key` to `value` if larger (for peaks).
    pub fn max(&self, key: impl AsRef<str>, value: u64) {
        let mut g = self.inner.lock().unwrap();
        let e = g.counters.entry(key.as_ref().to_owned()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: impl AsRef<str>) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(key.as_ref())
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the whole counter registry.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().unwrap().counters.clone()
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Latest span end time (the recorded makespan); zero with no spans.
    pub fn end_time(&self) -> SimTime {
        self.inner
            .lock()
            .unwrap()
            .spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time per track, keyed by display name.
    pub fn busy_per_track(&self) -> BTreeMap<String, SimDuration> {
        let g = self.inner.lock().unwrap();
        let mut out = BTreeMap::new();
        for s in &g.spans {
            *out.entry(crate::trace::track_label(&g, s.track))
                .or_insert(SimDuration::ZERO) += s.end - s.start;
        }
        out
    }

    /// Record one observation under histogram `key` (creating it empty).
    /// Histograms keep every value, in recording order — percentile math
    /// is exact nearest-rank over the full population, never a sketch.
    pub fn observe(&self, key: impl AsRef<str>, value: u64) {
        let mut g = self.inner.lock().unwrap();
        g.hists
            .entry(key.as_ref().to_owned())
            .or_default()
            .push(value);
    }

    /// The observations recorded under `key`, in recording order (empty
    /// if the histogram was never touched).
    pub fn observations(&self, key: impl AsRef<str>) -> Vec<u64> {
        self.inner
            .lock()
            .unwrap()
            .hists
            .get(key.as_ref())
            .cloned()
            .unwrap_or_default()
    }

    /// Snapshot of every histogram's observations, in recording order.
    pub fn histograms(&self) -> BTreeMap<String, Vec<u64>> {
        self.inner.lock().unwrap().hists.clone()
    }

    /// The `p`-th percentile of histogram `key` by the nearest-rank
    /// method: the value at sorted rank `ceil(p·n/100)` (clamped into
    /// `1..=n`), so the result is always one of the observations — no
    /// interpolation, no ambiguity on deterministic inputs. `None` when
    /// the histogram is empty.
    pub fn percentile(&self, key: impl AsRef<str>, p: u32) -> Option<u64> {
        let g = self.inner.lock().unwrap();
        let values = g.hists.get(key.as_ref())?;
        percentile_of(values, p)
    }

    /// Nearest-rank `count`/`p50`/`p95`/`p99` per histogram. Empty
    /// histograms never exist (a histogram is created by its first
    /// observation), so every summary is total.
    pub fn histogram_summaries(&self) -> BTreeMap<String, HistSummary> {
        let g = self.inner.lock().unwrap();
        g.hists
            .iter()
            .filter_map(|(k, v)| {
                Some((
                    k.clone(),
                    HistSummary {
                        count: v.len() as u64,
                        p50: percentile_of(v, 50)?,
                        p95: percentile_of(v, 95)?,
                        p99: percentile_of(v, 99)?,
                    },
                ))
            })
            .collect()
    }

    /// Render every histogram's summary as one JSON object, keys sorted:
    /// `{"k":{"count":n,"p50":...,"p95":...,"p99":...},...}`. `{}` with
    /// no histograms. Byte-stable for byte-identical observation streams.
    pub fn histograms_to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (key, s)) in self.histogram_summaries().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\"{key}\":{{\"count\":{},\"p50\":{},\"p95\":{},\"p99\":{}}}",
                s.count, s.p50, s.p95, s.p99
            ));
        }
        out.push('}');
        out
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap()
    }
}

/// Nearest-rank percentile over `values`: sort a copy, take the value at
/// rank `ceil(p·n/100)`, clamped into `1..=n`. `None` only when empty.
fn percentile_of(values: &[u64], p: u32) -> Option<u64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as u64;
    let rank = (u64::from(p) * n).div_ceil(100).clamp(1, n);
    Some(sorted[(rank - 1) as usize])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn counters_accumulate_set_and_max() {
        let tel = Telemetry::new();
        tel.add("a", 3);
        tel.add("a", 4);
        assert_eq!(tel.counter("a"), 7);
        tel.set("a", 2);
        assert_eq!(tel.counter("a"), 2);
        tel.max("a", 10);
        tel.max("a", 5);
        assert_eq!(tel.counter("a"), 10);
        assert_eq!(tel.counter("never"), 0);
    }

    #[test]
    fn spans_dropped_unless_enabled() {
        let off = Telemetry::new();
        off.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        assert_eq!(off.span_count(), 0);
        let on = Telemetry::with_spans();
        on.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        assert_eq!(on.span_count(), 1);
    }

    #[test]
    fn start_run_clears_everything_but_keeps_mode() {
        let tel = Telemetry::with_spans();
        tel.add("a", 1);
        tel.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        tel.start_run();
        assert_eq!(tel.counter("a"), 0);
        assert_eq!(tel.span_count(), 0);
        assert!(tel.spans_enabled());
        tel.record_span(Track::new(0, 0), SpanCat::Copy, "y", t(0), t(1));
        assert_eq!(tel.span_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new();
        let other = tel.clone();
        other.add("k", 5);
        assert_eq!(tel.counter("k"), 5);
    }

    #[test]
    fn concurrent_adds_from_scoped_threads_lose_nothing() {
        // The parallel engine (gts-exec pools) hands clones of one handle
        // to worker threads; the shared registry must absorb concurrent
        // increments exactly — counters are how determinism is audited, so
        // a single lost update would surface as a cross-run diff.
        let tel = Telemetry::new();
        const WORKERS: u64 = 8;
        const ADDS: u64 = 1_000;
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let handle = tel.clone();
                scope.spawn(move || {
                    for i in 0..ADDS {
                        handle.add("shared", 1);
                        handle.add(format!("worker.{w}"), i);
                    }
                });
            }
        });
        assert_eq!(tel.counter("shared"), WORKERS * ADDS);
        for w in 0..WORKERS {
            assert_eq!(tel.counter(format!("worker.{w}")), ADDS * (ADDS - 1) / 2);
        }
    }

    #[test]
    fn percentile_exact_ranks_no_interpolation() {
        // Nearest-rank over n=10 distinct values: rank(p) = ceil(p*10/100).
        // Every assertion pins an exact observation — a switch to any
        // interpolating method would land between observations and fail.
        let tel = Telemetry::new();
        for v in [70, 30, 100, 10, 50, 90, 20, 60, 40, 80] {
            tel.observe("lat", v);
        }
        assert_eq!(tel.percentile("lat", 50), Some(50)); // rank 5
        assert_eq!(tel.percentile("lat", 95), Some(100)); // rank ceil(9.5)=10
        assert_eq!(tel.percentile("lat", 99), Some(100)); // rank ceil(9.9)=10
        assert_eq!(tel.percentile("lat", 100), Some(100));
        assert_eq!(tel.percentile("lat", 1), Some(10)); // rank ceil(0.1)=1
        assert_eq!(tel.percentile("lat", 0), Some(10)); // rank clamps to 1
        assert_eq!(tel.percentile("lat", 10), Some(10)); // rank 1 exactly
        assert_eq!(tel.percentile("lat", 11), Some(20)); // rank ceil(1.1)=2
        assert_eq!(tel.percentile("missing", 50), None);
    }

    #[test]
    fn percentile_singleton_and_duplicates() {
        let tel = Telemetry::new();
        tel.observe("one", 7);
        for p in [0, 1, 50, 99, 100] {
            assert_eq!(tel.percentile("one", p), Some(7));
        }
        // n=4 with duplicates: sorted = [5, 5, 5, 9].
        for v in [5, 9, 5, 5] {
            tel.observe("dup", v);
        }
        assert_eq!(tel.percentile("dup", 50), Some(5)); // rank 2
        assert_eq!(tel.percentile("dup", 75), Some(5)); // rank 3
        assert_eq!(tel.percentile("dup", 76), Some(9)); // rank ceil(3.04)=4
        assert_eq!(tel.percentile("dup", 99), Some(9)); // rank 4
    }

    #[test]
    fn histograms_snapshot_and_json_rendering() {
        let tel = Telemetry::new();
        for v in [3, 1, 2] {
            tel.observe("serve.lat.bfs", v);
        }
        tel.observe("serve.lat.pr", 40);
        // Snapshots keep recording order; summaries are nearest-rank.
        assert_eq!(tel.observations("serve.lat.bfs"), vec![3, 1, 2]);
        assert_eq!(tel.histograms().len(), 2);
        let sums = tel.histogram_summaries();
        assert_eq!(
            sums["serve.lat.bfs"],
            HistSummary {
                count: 3,
                p50: 2,
                p95: 3,
                p99: 3
            }
        );
        assert_eq!(
            sums["serve.lat.pr"],
            HistSummary {
                count: 1,
                p50: 40,
                p95: 40,
                p99: 40
            }
        );
        assert_eq!(
            tel.histograms_to_json(),
            "{\"serve.lat.bfs\":{\"count\":3,\"p50\":2,\"p95\":3,\"p99\":3},\
             \"serve.lat.pr\":{\"count\":1,\"p50\":40,\"p95\":40,\"p99\":40}}"
        );
        assert_eq!(Telemetry::new().histograms_to_json(), "{}");
    }

    #[test]
    fn start_run_clears_histograms() {
        let tel = Telemetry::new();
        tel.observe("h", 1);
        tel.start_run();
        assert!(tel.histograms().is_empty());
        assert_eq!(tel.percentile("h", 50), None);
    }

    #[test]
    fn busy_per_track_sums_by_track() {
        let tel = Telemetry::with_spans();
        let tr = Track::new(0, 3);
        tel.name_thread(tr, "stream0");
        tel.record_span(tr, SpanCat::Copy, "a", t(0), t(10));
        tel.record_span(tr, SpanCat::Kernel, "b", t(10), t(40));
        tel.record_span(Track::new(0, 4), SpanCat::Copy, "c", t(0), t(5));
        let busy = tel.busy_per_track();
        assert_eq!(busy["stream0"], SimDuration::from_nanos(40));
        assert_eq!(busy["0.4"], SimDuration::from_nanos(5));
        assert_eq!(tel.end_time(), t(40));
    }
}
