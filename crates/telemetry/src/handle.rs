//! The shared [`Telemetry`] handle.

use crate::span::{Span, SpanCat, Track};
use gts_sim::{SimDuration, SimTime};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug, Default)]
pub(crate) struct Inner {
    pub(crate) spans_enabled: bool,
    pub(crate) spans: Vec<Span>,
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) process_names: BTreeMap<u32, String>,
    pub(crate) thread_names: BTreeMap<Track, String>,
}

/// Shared recording surface for one run: spans + counters.
///
/// Cloning is cheap (an `Arc` bump); every component of a run — engine,
/// GPU timers, page caches, MMBuf, storage array — holds a clone of the
/// same handle. All methods take `&self`; the handle is `Send + Sync`.
///
/// Lifecycle: [`Telemetry::start_run`] clears all recorded state, so one
/// recording covers exactly one run. Engines call it at the top of their
/// `run()`.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Arc<Mutex<Inner>>,
}

impl Telemetry {
    /// Counters-only telemetry (spans dropped). The default for every
    /// engine: a run costs a handful of integer adds.
    pub fn new() -> Self {
        Self::default()
    }

    /// Telemetry that also records spans (needed for
    /// [`Telemetry::to_chrome_trace`] / [`Telemetry::render_ascii`]).
    /// A large run can produce one span per page per stream, so this is
    /// opt-in.
    pub fn with_spans() -> Self {
        let t = Self::default();
        t.inner.lock().unwrap().spans_enabled = true;
        t
    }

    /// Whether spans are being recorded.
    pub fn spans_enabled(&self) -> bool {
        self.inner.lock().unwrap().spans_enabled
    }

    /// Reset all recorded state (spans, counters, track names) so the next
    /// run starts clean. Span recording stays enabled/disabled as before.
    pub fn start_run(&self) {
        let mut g = self.inner.lock().unwrap();
        g.spans.clear();
        g.counters.clear();
        g.process_names.clear();
        g.thread_names.clear();
    }

    /// Record one busy interval. No-op when spans are disabled.
    pub fn record_span(
        &self,
        track: Track,
        cat: SpanCat,
        name: impl Into<String>,
        start: SimTime,
        end: SimTime,
    ) {
        let mut g = self.inner.lock().unwrap();
        if !g.spans_enabled {
            return;
        }
        debug_assert!(end >= start, "span must not end before it starts");
        g.spans.push(Span {
            track,
            name: name.into(),
            cat,
            start,
            end,
        });
    }

    /// Name a process track (chrome-trace `process_name`, ASCII row prefix).
    pub fn name_process(&self, pid: u32, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap()
            .process_names
            .insert(pid, name.into());
    }

    /// Name a thread track.
    pub fn name_thread(&self, track: Track, name: impl Into<String>) {
        self.inner
            .lock()
            .unwrap()
            .thread_names
            .insert(track, name.into());
    }

    /// Add `delta` to counter `key` (creating it at zero).
    pub fn add(&self, key: impl AsRef<str>, delta: u64) {
        if delta == 0 {
            return;
        }
        let mut g = self.inner.lock().unwrap();
        *g.counters.entry(key.as_ref().to_owned()).or_insert(0) += delta;
    }

    /// Overwrite counter `key` with `value` (for gauges like capacities).
    pub fn set(&self, key: impl AsRef<str>, value: u64) {
        let mut g = self.inner.lock().unwrap();
        g.counters.insert(key.as_ref().to_owned(), value);
    }

    /// Raise counter `key` to `value` if larger (for peaks).
    pub fn max(&self, key: impl AsRef<str>, value: u64) {
        let mut g = self.inner.lock().unwrap();
        let e = g.counters.entry(key.as_ref().to_owned()).or_insert(0);
        *e = (*e).max(value);
    }

    /// Current value of counter `key` (zero if never touched).
    pub fn counter(&self, key: impl AsRef<str>) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .counters
            .get(key.as_ref())
            .copied()
            .unwrap_or(0)
    }

    /// Snapshot of the whole counter registry.
    pub fn counters(&self) -> BTreeMap<String, u64> {
        self.inner.lock().unwrap().counters.clone()
    }

    /// Snapshot of all recorded spans, in recording order.
    pub fn spans(&self) -> Vec<Span> {
        self.inner.lock().unwrap().spans.clone()
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> usize {
        self.inner.lock().unwrap().spans.len()
    }

    /// Latest span end time (the recorded makespan); zero with no spans.
    pub fn end_time(&self) -> SimTime {
        self.inner
            .lock()
            .unwrap()
            .spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Total busy time per track, keyed by display name.
    pub fn busy_per_track(&self) -> BTreeMap<String, SimDuration> {
        let g = self.inner.lock().unwrap();
        let mut out = BTreeMap::new();
        for s in &g.spans {
            *out.entry(crate::trace::track_label(&g, s.track))
                .or_insert(SimDuration::ZERO) += s.end - s.start;
        }
        out
    }

    pub(crate) fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn counters_accumulate_set_and_max() {
        let tel = Telemetry::new();
        tel.add("a", 3);
        tel.add("a", 4);
        assert_eq!(tel.counter("a"), 7);
        tel.set("a", 2);
        assert_eq!(tel.counter("a"), 2);
        tel.max("a", 10);
        tel.max("a", 5);
        assert_eq!(tel.counter("a"), 10);
        assert_eq!(tel.counter("never"), 0);
    }

    #[test]
    fn spans_dropped_unless_enabled() {
        let off = Telemetry::new();
        off.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        assert_eq!(off.span_count(), 0);
        let on = Telemetry::with_spans();
        on.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        assert_eq!(on.span_count(), 1);
    }

    #[test]
    fn start_run_clears_everything_but_keeps_mode() {
        let tel = Telemetry::with_spans();
        tel.add("a", 1);
        tel.record_span(Track::new(0, 0), SpanCat::Copy, "x", t(0), t(1));
        tel.start_run();
        assert_eq!(tel.counter("a"), 0);
        assert_eq!(tel.span_count(), 0);
        assert!(tel.spans_enabled());
        tel.record_span(Track::new(0, 0), SpanCat::Copy, "y", t(0), t(1));
        assert_eq!(tel.span_count(), 1);
    }

    #[test]
    fn clones_share_state() {
        let tel = Telemetry::new();
        let other = tel.clone();
        other.add("k", 5);
        assert_eq!(tel.counter("k"), 5);
    }

    #[test]
    fn concurrent_adds_from_scoped_threads_lose_nothing() {
        // The parallel engine (gts-exec pools) hands clones of one handle
        // to worker threads; the shared registry must absorb concurrent
        // increments exactly — counters are how determinism is audited, so
        // a single lost update would surface as a cross-run diff.
        let tel = Telemetry::new();
        const WORKERS: u64 = 8;
        const ADDS: u64 = 1_000;
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let handle = tel.clone();
                scope.spawn(move || {
                    for i in 0..ADDS {
                        handle.add("shared", 1);
                        handle.add(format!("worker.{w}"), i);
                    }
                });
            }
        });
        assert_eq!(tel.counter("shared"), WORKERS * ADDS);
        for w in 0..WORKERS {
            assert_eq!(tel.counter(format!("worker.{w}")), ADDS * (ADDS - 1) / 2);
        }
    }

    #[test]
    fn busy_per_track_sums_by_track() {
        let tel = Telemetry::with_spans();
        let tr = Track::new(0, 3);
        tel.name_thread(tr, "stream0");
        tel.record_span(tr, SpanCat::Copy, "a", t(0), t(10));
        tel.record_span(tr, SpanCat::Kernel, "b", t(10), t(40));
        tel.record_span(Track::new(0, 4), SpanCat::Copy, "c", t(0), t(5));
        let busy = tel.busy_per_track();
        assert_eq!(busy["stream0"], SimDuration::from_nanos(40));
        assert_eq!(busy["0.4"], SimDuration::from_nanos(5));
        assert_eq!(tel.end_time(), t(40));
    }
}
