//! Span and track types.

use gts_sim::SimTime;

/// Where a span is drawn: a (process, thread) pair in chrome://tracing
/// terms. The engine maps GPUs to processes and their engines/streams to
/// threads; see [`crate::keys::pid`] for the pid allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Track {
    /// Process id (a GPU, the engine itself, or the storage array).
    pub pid: u32,
    /// Thread id within the process (a stream, copy engine, or device).
    pub tid: u32,
}

impl Track {
    /// Shorthand constructor.
    pub fn new(pid: u32, tid: u32) -> Self {
        Track { pid, tid }
    }
}

/// Category of a [`Span`], used for chrome-trace `cat` and ASCII glyphs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanCat {
    /// A data transfer (short red bars in the paper's Fig. 4).
    Copy,
    /// A kernel execution (long green bars in the paper's Fig. 4).
    Kernel,
    /// Storage I/O.
    Io,
    /// A page-cache or MMBuf probe.
    Cache,
    /// One whole algorithm run (the root of the span tree).
    Run,
    /// One sweep/superstep/iteration within a run.
    Sweep,
    /// A recovery or degradation event (retry, quarantine, step-down).
    Degrade,
    /// A checkpoint snapshot write at a sweep boundary.
    Checkpoint,
    /// Anything else (sync, merge, ...).
    Other,
}

impl SpanCat {
    /// chrome-trace category string.
    pub fn name(self) -> &'static str {
        match self {
            SpanCat::Copy => "copy",
            SpanCat::Kernel => "kernel",
            SpanCat::Io => "io",
            SpanCat::Cache => "cache",
            SpanCat::Run => "run",
            SpanCat::Sweep => "sweep",
            SpanCat::Degrade => "degrade",
            SpanCat::Checkpoint => "ckpt",
            SpanCat::Other => "other",
        }
    }

    /// Glyph used by the ASCII renderer.
    pub fn glyph(self) -> char {
        match self {
            SpanCat::Copy => '▒',
            SpanCat::Kernel => '█',
            SpanCat::Io => '·',
            SpanCat::Cache => '+',
            SpanCat::Run => '=',
            SpanCat::Sweep => '-',
            SpanCat::Degrade => '!',
            SpanCat::Checkpoint => '#',
            SpanCat::Other => '~',
        }
    }
}

/// One busy interval on the simulated clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// Where the span is drawn.
    pub track: Track,
    /// Short operation label (e.g. `SP17`, `K_PR`, `sweep 3`).
    pub name: String,
    /// Category.
    pub cat: SpanCat,
    /// Service start.
    pub start: SimTime,
    /// Service end.
    pub end: SimTime,
}
