//! Counter-key glossary and track-pid allocation.
//!
//! Every quantity an engine reports flows through the counter registry
//! under one of these keys; [`crate::RunReport::from_telemetry`] reads them
//! back. Global keys are plain constants; per-GPU and per-sweep keys are
//! built by [`gpu`] and [`sweep`] from a field suffix.
//!
//! | key | meaning |
//! |---|---|
//! | `run.elapsed_ns` | simulated makespan of the run |
//! | `run.sweeps` | sweeps / supersteps / iterations executed |
//! | `run.gpus` | GPUs that participated (count of `gpu{i}.*` scopes) |
//! | `pages.streamed` | topology pages copied host→device (cache misses) |
//! | `cache.hits` / `cache.misses` | device page-cache probe outcomes |
//! | `mmbuf.hits` / `mmbuf.misses` | host main-memory-buffer probe outcomes |
//! | `mmbuf.evictions` | pages evicted from the MMBuf ring |
//! | `edges.traversed` | edges processed across all sweeps |
//! | `kernel.launches` | kernel launches across all GPUs |
//! | `stream.stalls` | stream operations delayed by a busy engine |
//! | `io.bytes_read` | bytes fetched from the storage array |
//! | `io.read_errors` | injected transient device read errors |
//! | `io.checksum_mismatches` | fetched pages failing the trailer checksum |
//! | `io.retries` | paid re-fetch attempts after a failed read |
//! | `io.drives_quarantined` | drives taken offline after repeated failures |
//! | `degrade.events` | recorded step-downs of the execution strategy |
//! | `mut.*` | mutation batches applied at sweep boundaries, see `MUT_*` |
//! | `run.final_strategy` | strategy in effect at run end (1 = P, 2 = S) |
//! | `run.final_streams` | streams per GPU in effect at run end |
//! | `run.cache_enabled` | device page cache on (1) or off (0) at run end |
//! | `ckpt.bytes` | bytes written to checkpoint snapshots (wall-side) |
//! | `ckpt.write_ns` | wall-clock ns spent writing checkpoints (wall-side) |
//! | `host.phase_a_ns` | wall-clock ns in host phase A kernels (opt-in, wall-side) |
//! | `host.phase_b_ns` | wall-clock ns in host phase B accounting (opt-in, wall-side) |
//! | `net.bytes` | bytes shipped over the cluster network (baselines) |
//! | `mem.peak` | peak working-set bytes (max-merged, baselines) |
//! | `gpu{i}.bytes_h2d` … | per-GPU fields, see the `GPU_*` constants |
//! | `sweep{j}.pages` … | per-sweep fields, see the `SWEEP_*` constants |
//! | `serve.retry.*` / `serve.quarantine.*` / `serve.breaker.*` / `serve.shed.*` | serve-mode resilience counters (sim-side, deterministic) |
//! | `serve.journal.*` / `serve.resume.*` | service-journal bookkeeping (outside the resume-diff contract, like `ckpt.*`) |
//! | `wal.*` | mutation write-ahead-log bookkeeping (outside the resume-diff contract, like `ckpt.*`) |
//! | `scrub.*` | background scrub pass results (sim-side, deterministic) |
//! | `ckpt.manifest.skipped` | torn/unreadable manifest entries skipped on resume (wall-side) |

/// Simulated makespan of the run, nanoseconds (set once at run end).
pub const RUN_ELAPSED_NS: &str = "run.elapsed_ns";
/// Sweeps (BFS levels, PageRank iterations, supersteps) executed.
pub const RUN_SWEEPS: &str = "run.sweeps";
/// Number of GPUs that participated in the run.
pub const RUN_GPUS: &str = "run.gpus";
/// Topology pages copied host→device (equals `cache.misses` for GTS).
pub const PAGES_STREAMED: &str = "pages.streamed";
/// Device page-cache hits across all GPUs.
pub const CACHE_HITS: &str = "cache.hits";
/// Device page-cache misses across all GPUs.
pub const CACHE_MISSES: &str = "cache.misses";
/// Host MMBuf hits.
pub const MMBUF_HITS: &str = "mmbuf.hits";
/// Host MMBuf misses.
pub const MMBUF_MISSES: &str = "mmbuf.misses";
/// Pages evicted from the MMBuf ring.
pub const MMBUF_EVICTIONS: &str = "mmbuf.evictions";
/// Edges processed across all sweeps.
pub const EDGES_TRAVERSED: &str = "edges.traversed";
/// Kernel launches across all GPUs.
pub const KERNEL_LAUNCHES: &str = "kernel.launches";
/// Stream operations whose start was delayed past readiness by a busy
/// copy/compute engine (pipeline friction; Fig. 10's enemy).
pub const STREAM_STALLS: &str = "stream.stalls";
/// Bytes fetched from the storage array (SSD/HDD streaming).
pub const IO_BYTES_READ: &str = "io.bytes_read";
/// Injected transient device read errors (each costs a full read + backoff).
pub const IO_READ_ERRORS: &str = "io.read_errors";
/// Fetched pages whose trailer checksum failed (torn or corrupt reads).
pub const IO_CHECKSUM_MISMATCHES: &str = "io.checksum_mismatches";
/// Paid re-fetch attempts issued after a failed read.
pub const IO_RETRIES: &str = "io.retries";
/// Drives quarantined after repeated consecutive failures.
pub const IO_DRIVES_QUARANTINED: &str = "io.drives_quarantined";
/// Typed degradation events (strategy step-downs) recorded by the engine.
pub const DEGRADE_EVENTS: &str = "degrade.events";
/// Execution strategy in effect when the run ended, after any OOM
/// step-downs: 1 = Performance, 2 = Scalability, 0 = not recorded.
pub const RUN_FINAL_STRATEGY: &str = "run.final_strategy";
/// Streams per GPU in effect when the run ended, after any step-downs.
pub const RUN_FINAL_STREAMS: &str = "run.final_streams";
/// Whether the device page cache was enabled at run end (1) or stepped
/// down to off (0).
pub const RUN_CACHE_ENABLED: &str = "run.cache_enabled";
/// Bytes written to checkpoint snapshots. Wall-side bookkeeping: this key
/// (like `ckpt.write_ns`) is OUTSIDE the determinism contract — an
/// uncrashed run and a crashed-plus-resumed run write different numbers
/// of snapshots — so determinism comparisons must filter `ckpt.*` keys.
pub const CKPT_BYTES: &str = "ckpt.bytes";
/// Wall-clock nanoseconds spent encoding + fsyncing checkpoint snapshots
/// (real time, not simulated; outside the determinism contract).
pub const CKPT_WRITE_NS: &str = "ckpt.write_ns";
/// Torn or unreadable manifest entries the checkpoint store skipped while
/// resolving the latest resumable snapshot. Wall-side (like `ckpt.bytes`):
/// only a crashed-then-resumed run ever skips entries, so the key sits
/// OUTSIDE the resume-diff determinism contract.
pub const CKPT_MANIFEST_SKIPPED: &str = "ckpt.manifest.skipped";
/// Mutation-batch records sealed into the write-ahead log this run.
/// `wal.*` keys count I/O the crashed and resumed halves of a run split
/// differently (a resumed run re-logs already-sealed batches as 0-byte
/// idempotent appends), so — like `ckpt.*` — they sit OUTSIDE the
/// resume-diff determinism contract and CI filters them.
pub const WAL_APPENDS: &str = "wal.appends";
/// Bytes appended to the write-ahead log (same caveats as `wal.appends`).
pub const WAL_BYTES: &str = "wal.bytes";
/// WAL records replayed onto the store during crash recovery, before the
/// snapshot was restored (same caveats as `wal.appends`).
pub const WAL_REPLAYED: &str = "wal.replayed";
/// Pages walked by background scrub passes. Scrub runs serially at sweep
/// boundaries with draws on per-page fault streams, so `scrub.*` keys are
/// sim-side deterministic at any `host_threads`.
pub const SCRUB_PAGES: &str = "scrub.pages";
/// At-rest corruptions (trailer checksum mismatches) scrub detected.
pub const SCRUB_ERRORS: &str = "scrub.errors";
/// Detected corruptions scrub repaired by rewriting the page from the
/// authoritative in-memory copy.
pub const SCRUB_REPAIRED: &str = "scrub.repaired";
/// Wall-clock nanoseconds the host spent in phase A (functional kernels)
/// across all sweeps. Only written when the engine's
/// `measure_host_phases` flag is on; real time, not simulated, so (like
/// `ckpt.*`) OUTSIDE the determinism contract — determinism comparisons
/// must filter `host.*` keys.
pub const HOST_PHASE_A_NS: &str = "host.phase_a_ns";
/// Wall-clock nanoseconds the host spent in phase B (accounting) across
/// all sweeps (same caveats as [`HOST_PHASE_A_NS`]).
pub const HOST_PHASE_B_NS: &str = "host.phase_b_ns";
/// Mutation batches applied at sweep boundaries (live-topology runs).
pub const MUT_BATCHES: &str = "mut.batches";
/// Edges inserted by applied mutation batches.
pub const MUT_INSERTED: &str = "mut.inserted";
/// Edges deleted by applied mutation batches.
pub const MUT_DELETED: &str = "mut.deleted";
/// Existing pages rewritten in place by mutation batches.
pub const MUT_PAGES_REWRITTEN: &str = "mut.pages_rewritten";
/// Delta/overflow pages allocated by mutation batches.
pub const MUT_DELTA_PAGES: &str = "mut.delta_pages";
/// Stale cached pages dropped from GPU page caches after mutations.
pub const MUT_CACHE_INVALIDATIONS: &str = "mut.cache_invalidations";
/// The store's epoch after the last applied mutation batch (set, not
/// added: it mirrors `GraphStore::epoch`).
pub const MUT_EPOCH: &str = "mut.epoch";
/// Bytes shipped over the simulated cluster network (distributed baselines).
pub const NETWORK_BYTES: &str = "net.bytes";
/// Peak working-set bytes (max-merged; CPU/GPU baselines).
pub const MEMORY_PEAK: &str = "mem.peak";

/// Per-GPU field: bytes copied host→device.
pub const GPU_BYTES_H2D: &str = "bytes_h2d";
/// Per-GPU field: bytes copied device→host.
pub const GPU_BYTES_D2H: &str = "bytes_d2h";
/// Per-GPU field: bytes copied peer-to-peer.
pub const GPU_BYTES_P2P: &str = "bytes_p2p";
/// Per-GPU field: accumulated kernel service time, ns.
pub const GPU_KERNEL_TIME_NS: &str = "kernel_time_ns";
/// Per-GPU field: accumulated transfer service time, ns.
pub const GPU_TRANSFER_TIME_NS: &str = "transfer_time_ns";
/// Per-GPU field: kernels launched.
pub const GPU_KERNELS: &str = "kernels";
/// Per-GPU field: launches whose overhead was hidden by queue-ahead.
pub const GPU_HIDDEN_LAUNCHES: &str = "hidden_launches";
/// Per-GPU field: page-cache hits on this GPU.
pub const GPU_CACHE_HITS: &str = "cache_hits";
/// Per-GPU field: page-cache misses on this GPU.
pub const GPU_CACHE_MISSES: &str = "cache_misses";
/// Per-GPU field: page-cache capacity in pages.
pub const GPU_CACHE_CAPACITY_PAGES: &str = "cache_capacity_pages";
/// Per-GPU field: injected transient copy faults absorbed by retry.
pub const GPU_COPY_FAULTS: &str = "copy_faults";
/// Per-GPU field: injected transient kernel-launch faults absorbed by retry.
pub const GPU_LAUNCH_FAULTS: &str = "launch_faults";

/// Per-sweep field: pages visited.
pub const SWEEP_PAGES: &str = "pages";
/// Per-sweep field: cache hits.
pub const SWEEP_CACHE_HITS: &str = "cache_hits";
/// Per-sweep field: active vertices.
pub const SWEEP_ACTIVE_VERTICES: &str = "active_vertices";
/// Per-sweep field: active edges.
pub const SWEEP_ACTIVE_EDGES: &str = "active_edges";
/// Per-sweep field: simulated sweep duration, ns.
pub const SWEEP_ELAPSED_NS: &str = "elapsed_ns";

/// Per-tenant field: page-cache hits attributed to the tenant's jobs.
pub const TENANT_CACHE_HITS: &str = "cache.hits";
/// Per-tenant field: page-cache misses attributed to the tenant's jobs.
pub const TENANT_CACHE_MISSES: &str = "cache.misses";
/// Per-tenant field: pages evicted under the tenant's probes.
pub const TENANT_CACHE_EVICTIONS: &str = "cache.evictions";
/// Per-tenant field: topology bytes streamed for the tenant's misses.
pub const TENANT_CACHE_BYTES_STREAMED: &str = "cache.bytes_streamed";

/// Service-level re-admissions of failed jobs (each backoff retry).
/// Like every `serve.*` key except the journal/resume bookkeeping
/// below, this is pure sim-clock arithmetic: INSIDE the determinism
/// contract at any host thread count.
pub const SERVE_RETRY_ATTEMPTS: &str = "serve.retry.attempts";
/// Jobs that completed after at least one service-level retry.
pub const SERVE_RETRY_RECOVERED: &str = "serve.retry.recovered";
/// Jobs quarantined as poison after exhausting `retry_max` retries.
pub const SERVE_QUARANTINE_JOBS: &str = "serve.quarantine.jobs";
/// Execution attempts consumed by jobs that ended quarantined.
pub const SERVE_QUARANTINE_ATTEMPTS: &str = "serve.quarantine.attempts";
/// Per-tenant circuit-breaker trips (K consecutive failures).
pub const SERVE_BREAKER_TRIPS: &str = "serve.breaker.trips";
/// Arrivals dropped because their tenant's breaker was open.
pub const SERVE_DROP_BREAKER: &str = "serve.drop.breaker";
/// Arrivals shed by load-aware admission (see also the per-class
/// `serve.shed.<class>` keys the scheduler writes).
pub const SERVE_SHED_TOTAL: &str = "serve.shed.total";
/// Records appended to the service journal. Journal keys count I/O the
/// crashed and resumed halves of a run split differently, so (like
/// `ckpt.*`) `serve.journal.*` and `serve.resume.*` sit OUTSIDE the
/// resume-diff determinism contract; CI filters them.
pub const SERVE_JOURNAL_RECORDS: &str = "serve.journal.records";
/// Journal snapshots flushed through the atomic checkpoint store.
pub const SERVE_JOURNAL_FLUSHES: &str = "serve.journal.flushes";
/// Executions served from the journal on `--resume-serve` instead of
/// being re-run (outside the resume-diff contract, as above).
pub const SERVE_RESUME_CACHED: &str = "serve.resume.cached";
/// Journaled epoch bumps a resumed service re-derived from the mutation
/// WAL's logged bytes instead of re-generating the batch (outside the
/// resume-diff contract, as above).
pub const SERVE_WAL_REPLAYED: &str = "serve.wal.replayed";

/// Key for per-GPU field `field` of GPU `i` (e.g. `gpu0.bytes_h2d`).
pub fn gpu(i: u32, field: &str) -> String {
    format!("gpu{i}.{field}")
}

/// Key for per-tenant field `field` of tenant `tag` (e.g.
/// `tenant.alice.cache.hits`). Written only by jobs carrying a tenant
/// tag, so solo runs emit no tenant keys at all.
pub fn tenant(tag: &str, field: &str) -> String {
    format!("tenant.{tag}.{field}")
}

/// Key for per-sweep field `field` of sweep `j` (e.g. `sweep0.pages`).
pub fn sweep(j: u32, field: &str) -> String {
    format!("sweep{j}.{field}")
}

/// Track-pid allocation shared by all components.
pub mod pid {
    /// The engine's own track (run/sweep spans live here).
    pub const ENGINE: u32 = 900;
    /// The storage array (one tid per drive).
    pub const STORAGE: u32 = 901;

    /// GPU `i`'s process id.
    pub fn gpu(i: u32) -> u32 {
        i
    }
}

/// Track-tid allocation within a GPU process.
pub mod tid {
    /// H2D copy engine lane.
    pub const H2D: u32 = 0;
    /// D2H copy engine lane.
    pub const D2H: u32 = 1;
    /// Peer-to-peer copy lane.
    pub const P2P: u32 = 2;
    /// First stream lane; stream `s` is `STREAM0 + s`.
    pub const STREAM0: u32 = 3;

    /// Stream `s`'s thread id.
    pub fn stream(s: usize) -> u32 {
        STREAM0 + s as u32
    }
}
