//! Observability backbone for the GTS reproduction.
//!
//! GTS's entire argument is about *where time goes* — copy/kernel overlap
//! across CUDA streams (the paper's Figures 3/4), cache hit rates
//! (Fig. 11), PCI-E saturation (the Sec. 5 cost model). This crate is the
//! single place all of that is recorded:
//!
//! * **Spans** ([`Span`]) — busy intervals on the *simulated* clock,
//!   organised into tracks ([`Track`]: a process/thread pair, e.g.
//!   GPU 0 / stream 3). The engine records a hierarchical
//!   run → sweep → stream-operation tree.
//! * **Counters** — a string-keyed registry of monotonically accumulated
//!   quantities (bytes H2D/D2H, cache hits/misses, kernel launches, MMBuf
//!   evictions, stream stalls; see [`keys`] for the glossary).
//! * **Export** — [`Telemetry::to_chrome_trace`] serialises the spans as
//!   chrome://tracing JSON loadable in Perfetto, reproducing the paper's
//!   Fig. 4 profiler screenshots; [`Telemetry::render_ascii`] draws the
//!   same picture as text.
//! * **[`RunReport`]** — the user-facing summary every engine (GTS and the
//!   seven baselines) returns. It is a pure *view* derived from the counter
//!   registry by [`RunReport::from_telemetry`]: one source of truth.
//!
//! A [`Telemetry`] value is a cheap cloneable handle (`Arc` inside); every
//! component of a run shares one. Counters are always collected (they are
//! a handful of integer adds per run); span recording is opt-in via
//! [`Telemetry::with_spans`] because a large run can produce millions of
//! spans.
//!
//! ```
//! use gts_telemetry::{keys, SpanCat, Telemetry, Track};
//! use gts_sim::SimTime;
//!
//! let tel = Telemetry::with_spans();
//! tel.start_run();
//! let track = Track { pid: 0, tid: 3 };
//! tel.name_thread(track, "stream0");
//! tel.record_span(track, SpanCat::Copy, "SP17", SimTime::from_nanos(0), SimTime::from_nanos(800));
//! tel.add(keys::PAGES_STREAMED, 1);
//! let json = tel.to_chrome_trace();
//! assert!(json.contains("\"ph\":\"X\""));
//! ```

mod handle;
mod json;
pub mod keys;
mod report;
mod span;
mod trace;

pub use handle::{HistSummary, Telemetry};
pub use report::{GpuRunStats, RunReport, SweepStats};
pub use span::{Span, SpanCat, Track};
