//! Exporters: chrome://tracing JSON and the ASCII timeline.

use crate::handle::{Inner, Telemetry};
use crate::json::escape;
use crate::span::Track;
use gts_sim::SimTime;
use std::collections::BTreeMap;

/// Display name for a track: the thread name if registered, else `pid.tid`.
pub(crate) fn track_label(g: &Inner, track: Track) -> String {
    match g.thread_names.get(&track) {
        Some(n) => n.clone(),
        None => format!("{}.{}", track.pid, track.tid),
    }
}

impl Telemetry {
    /// Serialise the recorded spans as chrome://tracing "JSON object
    /// format": `{"traceEvents": [...]}`. Load the file at
    /// <https://ui.perfetto.dev> (or `chrome://tracing`) to see the
    /// paper's Fig. 4-style per-stream copy/kernel pipeline.
    ///
    /// * metadata events (`ph:"M"`) name every process and thread,
    /// * each span becomes a complete event (`ph:"X"`) with `ts`/`dur` in
    ///   microseconds of the *simulated* clock,
    /// * events are sorted by track then start time, so `ts` is monotone
    ///   per track.
    pub fn to_chrome_trace(&self) -> String {
        let g = self.lock();
        let mut events: Vec<String> = Vec::new();
        for (pid, name) in &g.process_names {
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{},\"tid\":0,\"ts\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                pid,
                escape(name)
            ));
        }
        for (track, name) in &g.thread_names {
            events.push(format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{},\"tid\":{},\"ts\":0,\
                 \"args\":{{\"name\":\"{}\"}}}}",
                track.pid,
                track.tid,
                escape(name)
            ));
        }
        let mut spans: Vec<_> = g.spans.iter().collect();
        spans.sort_by_key(|s| (s.track, s.start));
        for s in spans {
            // Microseconds with nanosecond precision: ns / 1000 exactly.
            let ts_us = s.start.as_nanos() as f64 / 1000.0;
            let dur_us = (s.end - s.start).as_nanos() as f64 / 1000.0;
            events.push(format!(
                "{{\"ph\":\"X\",\"name\":\"{}\",\"cat\":\"{}\",\"pid\":{},\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3}}}",
                escape(&s.name),
                s.cat.name(),
                s.track.pid,
                s.track.tid,
                ts_us,
                dur_us
            ));
        }
        let mut out = String::from("{\"traceEvents\":[\n");
        out.push_str(&events.join(",\n"));
        out.push_str("\n],\"displayTimeUnit\":\"ns\"}\n");
        out
    }

    /// Render an ASCII timeline `width` characters wide, one row per
    /// track (rows sorted by pid then tid). The textual analogue of the
    /// paper's Fig. 4 profiler screenshots.
    pub fn render_ascii(&self, width: usize) -> String {
        let g = self.lock();
        let width = width.max(10);
        let end = g
            .spans
            .iter()
            .map(|s| s.end)
            .fold(SimTime::ZERO, SimTime::max);
        if end == SimTime::ZERO {
            return String::from("(empty timeline)\n");
        }
        let mut tracks: BTreeMap<Track, Vec<&crate::Span>> = BTreeMap::new();
        for s in &g.spans {
            tracks.entry(s.track).or_default().push(s);
        }
        let labels: BTreeMap<Track, String> =
            tracks.keys().map(|&tr| (tr, track_label(&g, tr))).collect();
        let name_w = labels.values().map(|l| l.len()).max().unwrap_or(4).max(4);
        let scale = |t: SimTime| -> usize {
            ((t.as_nanos() as u128 * width as u128) / end.as_nanos().max(1) as u128) as usize
        };
        let mut out = String::new();
        for (track, spans) in &tracks {
            let mut row = vec![' '; width];
            for s in spans {
                let a = scale(s.start).min(width - 1);
                let b = scale(s.end).clamp(a + 1, width);
                for c in &mut row[a..b] {
                    *c = s.cat.glyph();
                }
            }
            let label = &labels[track];
            out.push_str(&format!("{label:>name_w$} |"));
            out.extend(row);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>name_w$} 0{:>w$}\n",
            "",
            format!("{end}"),
            w = width
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use crate::{SpanCat, Telemetry, Track};
    use gts_sim::SimTime;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    #[test]
    fn chrome_trace_has_metadata_and_complete_events() {
        let tel = Telemetry::with_spans();
        tel.name_process(0, "GPU 0");
        let tr = Track::new(0, 3);
        tel.name_thread(tr, "stream0");
        tel.record_span(tr, SpanCat::Copy, "SP1", t(0), t(1_500));
        tel.record_span(tr, SpanCat::Kernel, "K1", t(1_500), t(4_000));
        let json = tel.to_chrome_trace();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"GPU 0\""));
        assert!(json.contains("\"stream0\""));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ts\":0.000"));
        assert!(json.contains("\"dur\":1.500"), "1500 ns = 1.5 us");
        assert!(json.contains("\"cat\":\"kernel\""));
    }

    #[test]
    fn chrome_trace_escapes_names() {
        let tel = Telemetry::with_spans();
        tel.record_span(Track::new(0, 0), SpanCat::Other, "a\"b", t(0), t(1));
        assert!(tel.to_chrome_trace().contains("a\\\"b"));
    }

    #[test]
    fn ascii_render_has_one_row_per_track() {
        let tel = Telemetry::with_spans();
        tel.name_thread(Track::new(0, 3), "stream0");
        tel.name_thread(Track::new(0, 4), "stream1");
        tel.record_span(Track::new(0, 3), SpanCat::Kernel, "k", t(0), t(100));
        tel.record_span(Track::new(0, 4), SpanCat::Copy, "c", t(50), t(100));
        let s = tel.render_ascii(40);
        assert_eq!(s.lines().count(), 3, "two tracks + axis");
        assert!(s.contains("stream0"));
        assert!(s.contains('█'));
        assert!(s.contains('▒'));
    }

    #[test]
    fn empty_timeline_renders_placeholder() {
        let tel = Telemetry::with_spans();
        assert!(tel.render_ascii(40).contains("empty"));
    }
}
