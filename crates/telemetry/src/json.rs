//! Minimal JSON string building (this workspace builds with no external
//! crates, so serialisation is hand-rolled).

/// Escape `s` as the contents of a JSON string literal.
pub(crate) fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` the way JSON expects (finite; no exponent surprises for
/// our magnitudes).
pub(crate) fn num(x: f64) -> String {
    if x.is_finite() {
        let s = format!("{x}");
        // `{}` prints integral floats without a dot; keep them valid JSON
        // numbers anyway (they are), just return as-is.
        s
    } else {
        "0".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn num_handles_nonfinite() {
        assert_eq!(num(f64::NAN), "0");
        assert_eq!(num(1.5), "1.5");
    }
}
