//! The unified run report — a *view* over the counter registry.
//!
//! Every engine in the workspace (GTS and the seven baselines) reports
//! through this one type, built by [`RunReport::from_telemetry`] from the
//! counters under the [`crate::keys`] glossary. There is no second
//! accounting path: what the report says is what the registry holds.

use crate::json::{escape, num};
use crate::keys;
use crate::Telemetry;
use gts_sim::SimDuration;

/// Per-GPU statistics of one run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GpuRunStats {
    /// Bytes copied host→device.
    pub bytes_h2d: u64,
    /// Bytes copied device→host.
    pub bytes_d2h: u64,
    /// Accumulated kernel service time.
    pub kernel_time: SimDuration,
    /// Accumulated transfer service time.
    pub transfer_time: SimDuration,
    /// Kernels launched.
    pub kernels: u64,
    /// Topology-cache hits.
    pub cache_hits: u64,
    /// Topology-cache misses.
    pub cache_misses: u64,
    /// Pages of topology cache capacity this GPU ended up with.
    pub cache_capacity_pages: usize,
}

/// Per-sweep (per-level / per-iteration) statistics — the raw series
/// behind Eq. (2)'s per-level sums and the frontier plots.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SweepStats {
    /// Pages visited this sweep (streamed + cache hits).
    pub pages: u64,
    /// Pages served from the GPU cache this sweep.
    pub cache_hits: u64,
    /// Vertices that did kernel work this sweep (the frontier size for
    /// traversal programs).
    pub active_vertices: u64,
    /// Edges traversed this sweep.
    pub active_edges: u64,
    /// Simulated time from sweep start to the barrier.
    pub elapsed: SimDuration,
}

/// The result of one engine run, derived from telemetry counters.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Engine name ("GTS", "TOTEM", "Giraph", ...).
    pub engine: String,
    /// Simulated end-to-end elapsed time (the paper's reported metric).
    pub elapsed: SimDuration,
    /// Sweeps executed (levels for traversal, iterations for sweeps,
    /// supersteps for the cluster engines).
    pub sweeps: u32,
    /// Pages streamed over PCI-E (excluding cache hits).
    pub pages_streamed: u64,
    /// Pages served from the GPU-side cache.
    pub cache_hits: u64,
    /// Overall topology-cache hit rate (Fig. 11b).
    pub cache_hit_rate: f64,
    /// Edges traversed by kernels (for MTEPS reporting, Sec. 7.4).
    pub edges_traversed: u64,
    /// Per-GPU breakdown.
    pub per_gpu: Vec<GpuRunStats>,
    /// Per-sweep breakdown (levels for traversal, iterations for sweeps).
    pub per_sweep: Vec<SweepStats>,
    /// Bytes that crossed the simulated cluster network (distributed
    /// baselines; zero for single-node engines).
    pub network_bytes: u64,
    /// Peak working-set bytes on the most loaded node/device (baselines;
    /// zero where not tracked).
    pub memory_peak: u64,
    /// Execution strategy in effect when the run ended, after any OOM
    /// step-downs: `"performance"`, `"scalability"`, or `"none"` where
    /// the engine does not record one (baselines).
    pub final_strategy: String,
    /// Streams per GPU in effect when the run ended, after any
    /// step-downs (zero where not recorded).
    pub final_streams: u32,
    /// Whether the device page cache was still enabled at run end (the
    /// last OOM rung turns it off).
    pub cache_enabled: bool,
    /// Degradation step-downs the engine recorded (`degrade.events`), so
    /// operators can see post-OOM rungs without reading the trace.
    pub degrade_events: u64,
}

impl RunReport {
    /// Build the report for `engine` running `algorithm` from the counters
    /// currently in `tel`'s registry. Every field is read straight from
    /// the [`keys`] glossary, so the report and the registry cannot
    /// disagree.
    pub fn from_telemetry(
        tel: &Telemetry,
        algorithm: impl Into<String>,
        engine: impl Into<String>,
    ) -> Self {
        let hits = tel.counter(keys::CACHE_HITS);
        let misses = tel.counter(keys::CACHE_MISSES);
        let probes = hits + misses;
        let sweeps = tel.counter(keys::RUN_SWEEPS) as u32;
        let per_gpu = (0..tel.counter(keys::RUN_GPUS) as u32)
            .map(|i| GpuRunStats {
                bytes_h2d: tel.counter(keys::gpu(i, keys::GPU_BYTES_H2D)),
                bytes_d2h: tel.counter(keys::gpu(i, keys::GPU_BYTES_D2H)),
                kernel_time: SimDuration::from_nanos(
                    tel.counter(keys::gpu(i, keys::GPU_KERNEL_TIME_NS)),
                ),
                transfer_time: SimDuration::from_nanos(
                    tel.counter(keys::gpu(i, keys::GPU_TRANSFER_TIME_NS)),
                ),
                kernels: tel.counter(keys::gpu(i, keys::GPU_KERNELS)),
                cache_hits: tel.counter(keys::gpu(i, keys::GPU_CACHE_HITS)),
                cache_misses: tel.counter(keys::gpu(i, keys::GPU_CACHE_MISSES)),
                cache_capacity_pages: tel.counter(keys::gpu(i, keys::GPU_CACHE_CAPACITY_PAGES))
                    as usize,
            })
            .collect();
        let per_sweep = (0..sweeps)
            .map(|j| SweepStats {
                pages: tel.counter(keys::sweep(j, keys::SWEEP_PAGES)),
                cache_hits: tel.counter(keys::sweep(j, keys::SWEEP_CACHE_HITS)),
                active_vertices: tel.counter(keys::sweep(j, keys::SWEEP_ACTIVE_VERTICES)),
                active_edges: tel.counter(keys::sweep(j, keys::SWEEP_ACTIVE_EDGES)),
                elapsed: SimDuration::from_nanos(
                    tel.counter(keys::sweep(j, keys::SWEEP_ELAPSED_NS)),
                ),
            })
            .collect();
        RunReport {
            algorithm: algorithm.into(),
            engine: engine.into(),
            elapsed: SimDuration::from_nanos(tel.counter(keys::RUN_ELAPSED_NS)),
            sweeps,
            pages_streamed: tel.counter(keys::PAGES_STREAMED),
            cache_hits: hits,
            cache_hit_rate: if probes == 0 {
                0.0
            } else {
                hits as f64 / probes as f64
            },
            edges_traversed: tel.counter(keys::EDGES_TRAVERSED),
            per_gpu,
            per_sweep,
            network_bytes: tel.counter(keys::NETWORK_BYTES),
            memory_peak: tel.counter(keys::MEMORY_PEAK),
            final_strategy: match tel.counter(keys::RUN_FINAL_STRATEGY) {
                1 => "performance".to_string(),
                2 => "scalability".to_string(),
                _ => "none".to_string(),
            },
            final_streams: tel.counter(keys::RUN_FINAL_STREAMS) as u32,
            cache_enabled: tel.counter(keys::RUN_CACHE_ENABLED) != 0,
            degrade_events: tel.counter(keys::DEGRADE_EVENTS),
        }
    }

    /// Millions of traversed edges per second (the paper quotes GTS at up
    /// to 1,500 MTEPS on Twitter).
    pub fn mteps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.edges_traversed as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Sum of bytes moved host→device across GPUs.
    pub fn total_bytes_h2d(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.bytes_h2d).sum()
    }

    /// Ratio of transfer service time to kernel service time, aggregated
    /// across GPUs (Table 1's quantity).
    pub fn transfer_to_kernel_ratio(&self) -> f64 {
        let t: f64 = self
            .per_gpu
            .iter()
            .map(|g| g.transfer_time.as_secs_f64())
            .sum();
        let k: f64 = self
            .per_gpu
            .iter()
            .map(|g| g.kernel_time.as_secs_f64())
            .sum();
        if k == 0.0 {
            0.0
        } else {
            t / k
        }
    }

    /// Pretty-printed JSON (the CLI's `--json` output).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!(
            "  \"algorithm\": \"{}\",\n",
            escape(&self.algorithm)
        ));
        out.push_str(&format!("  \"engine\": \"{}\",\n", escape(&self.engine)));
        out.push_str(&format!("  \"elapsed_ns\": {},\n", self.elapsed.as_nanos()));
        out.push_str(&format!(
            "  \"elapsed_secs\": {},\n",
            num(self.elapsed.as_secs_f64())
        ));
        out.push_str(&format!("  \"sweeps\": {},\n", self.sweeps));
        out.push_str(&format!("  \"pages_streamed\": {},\n", self.pages_streamed));
        out.push_str(&format!("  \"cache_hits\": {},\n", self.cache_hits));
        out.push_str(&format!(
            "  \"cache_hit_rate\": {},\n",
            num(self.cache_hit_rate)
        ));
        out.push_str(&format!(
            "  \"edges_traversed\": {},\n",
            self.edges_traversed
        ));
        out.push_str(&format!("  \"mteps\": {},\n", num(self.mteps())));
        out.push_str(&format!("  \"network_bytes\": {},\n", self.network_bytes));
        out.push_str(&format!("  \"memory_peak\": {},\n", self.memory_peak));
        out.push_str(&format!(
            "  \"final_strategy\": \"{}\",\n",
            escape(&self.final_strategy)
        ));
        out.push_str(&format!("  \"final_streams\": {},\n", self.final_streams));
        out.push_str(&format!("  \"cache_enabled\": {},\n", self.cache_enabled));
        out.push_str(&format!("  \"degrade_events\": {},\n", self.degrade_events));
        out.push_str("  \"per_gpu\": [\n");
        for (i, g) in self.per_gpu.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"bytes_h2d\": {}, \"bytes_d2h\": {}, \"kernel_time_ns\": {}, \
                 \"transfer_time_ns\": {}, \"kernels\": {}, \"cache_hits\": {}, \
                 \"cache_misses\": {}, \"cache_capacity_pages\": {}}}{}\n",
                g.bytes_h2d,
                g.bytes_d2h,
                g.kernel_time.as_nanos(),
                g.transfer_time.as_nanos(),
                g.kernels,
                g.cache_hits,
                g.cache_misses,
                g.cache_capacity_pages,
                if i + 1 < self.per_gpu.len() { "," } else { "" }
            ));
        }
        out.push_str("  ],\n");
        out.push_str("  \"per_sweep\": [\n");
        for (j, s) in self.per_sweep.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"pages\": {}, \"cache_hits\": {}, \"active_vertices\": {}, \
                 \"active_edges\": {}, \"elapsed_ns\": {}}}{}\n",
                s.pages,
                s.cache_hits,
                s.active_vertices,
                s.active_edges,
                s.elapsed.as_nanos(),
                if j + 1 < self.per_sweep.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_report() -> RunReport {
        RunReport::from_telemetry(&Telemetry::new(), "BFS", "GTS")
    }

    #[test]
    fn mteps_computation() {
        let mut r = empty_report();
        r.elapsed = SimDuration::from_secs(2);
        r.edges_traversed = 3_000_000;
        assert!((r.mteps() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_kernel_time() {
        let mut r = empty_report();
        r.per_gpu = vec![GpuRunStats::default()];
        assert_eq!(r.transfer_to_kernel_ratio(), 0.0);
        assert_eq!(r.mteps(), 0.0);
    }

    #[test]
    fn from_telemetry_reads_the_glossary() {
        let tel = Telemetry::new();
        tel.set(keys::RUN_ELAPSED_NS, 5_000);
        tel.add(keys::RUN_SWEEPS, 2);
        tel.set(keys::RUN_GPUS, 1);
        tel.add(keys::PAGES_STREAMED, 7);
        tel.add(keys::CACHE_HITS, 3);
        tel.add(keys::CACHE_MISSES, 7);
        tel.add(keys::EDGES_TRAVERSED, 123);
        tel.add(keys::gpu(0, keys::GPU_BYTES_H2D), 4096);
        tel.add(keys::gpu(0, keys::GPU_KERNELS), 9);
        tel.add(keys::sweep(0, keys::SWEEP_PAGES), 6);
        tel.add(keys::sweep(1, keys::SWEEP_PAGES), 4);
        let r = RunReport::from_telemetry(&tel, "BFS", "GTS");
        assert_eq!(r.elapsed, SimDuration::from_nanos(5_000));
        assert_eq!(r.sweeps, 2);
        assert_eq!(r.pages_streamed, 7);
        assert_eq!(r.cache_hits, 3);
        assert!((r.cache_hit_rate - 0.3).abs() < 1e-12);
        assert_eq!(r.edges_traversed, 123);
        assert_eq!(r.per_gpu.len(), 1);
        assert_eq!(r.per_gpu[0].bytes_h2d, 4096);
        assert_eq!(r.per_gpu[0].kernels, 9);
        assert_eq!(r.per_sweep.len(), 2);
        assert_eq!(r.per_sweep[0].pages, 6);
        assert_eq!(r.per_sweep[1].pages, 4);
    }

    #[test]
    fn json_output_is_balanced_and_contains_fields() {
        let tel = Telemetry::new();
        tel.set(keys::RUN_GPUS, 2);
        tel.add(keys::RUN_SWEEPS, 1);
        let r = RunReport::from_telemetry(&tel, "PR", "GTS");
        let j = r.to_json();
        assert_eq!(
            j.matches('{').count(),
            j.matches('}').count(),
            "balanced braces"
        );
        assert!(j.contains("\"algorithm\": \"PR\""));
        assert!(j.contains("\"per_gpu\""));
        assert!(j.contains("\"per_sweep\""));
        assert!(j.contains("\"final_strategy\": \"none\""));
        assert!(j.contains("\"cache_enabled\": false"));
        assert!(j.contains("\"degrade_events\": 0"));
    }

    #[test]
    fn degraded_end_state_is_surfaced() {
        let tel = Telemetry::new();
        tel.set(keys::RUN_FINAL_STRATEGY, 2);
        tel.set(keys::RUN_FINAL_STREAMS, 8);
        tel.set(keys::RUN_CACHE_ENABLED, 1);
        tel.add(keys::DEGRADE_EVENTS, 3);
        let r = RunReport::from_telemetry(&tel, "PR", "GTS");
        assert_eq!(r.final_strategy, "scalability");
        assert_eq!(r.final_streams, 8);
        assert!(r.cache_enabled);
        assert_eq!(r.degrade_events, 3);
        let j = r.to_json();
        assert!(j.contains("\"final_strategy\": \"scalability\""));
        assert!(j.contains("\"final_streams\": 8"));
        assert!(j.contains("\"cache_enabled\": true"));
        assert!(j.contains("\"degrade_events\": 3"));
    }
}
