#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # gts-faults — deterministic fault injection for the streaming stack
//!
//! GTS's premise is surviving hardware limits, so the simulator must
//! exercise its error paths as faithfully as its fast paths. This crate
//! provides a seeded [`FaultPlan`]: a deterministic schedule of transient
//! device read errors, torn (checksum-failing) pages, and per-GPU copy /
//! kernel-launch faults that the storage array and the GPU lanes consult
//! on every operation they simulate.
//!
//! ## Determinism contract
//!
//! Fault decisions are drawn from per-`(domain, entity)` xoshiro256**
//! streams derived from one seed, so the n-th read on drive `d` always
//! faults (or not) identically regardless of what any other drive or GPU
//! did in between. All consumers query the plan only from the engine's
//! *serial* accounting phase, so the same seed produces byte-identical
//! reports, counters, and traces at any `--host-threads`.
//!
//! ```
//! use gts_faults::{FaultConfig, FaultPlan, ReadOutcome};
//!
//! let plan = FaultPlan::new(FaultConfig::with_seed(7));
//! let a: Vec<ReadOutcome> = (0..8).map(|_| plan.device_read(0)).collect();
//! let again = FaultPlan::new(FaultConfig::with_seed(7));
//! let b: Vec<ReadOutcome> = (0..8).map(|_| again.device_read(0)).collect();
//! assert_eq!(a, b);
//! ```

use gts_sim::SimDuration;
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

mod rng;

use rng::Rng;

/// Decisions are expressed as rates in parts-per-million, drawn once per
/// simulated operation.
pub const PPM_SCALE: u32 = 1_000_000;

/// Rates and recovery policy for one seeded fault schedule.
///
/// A `FaultConfig` travels inside the engine config, so it is plain data:
/// the live per-entity RNG streams belong to the [`FaultPlan`] built from
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultConfig {
    /// Seed for every per-entity fault stream.
    pub seed: u64,
    /// Per-attempt probability (ppm) that a device read fails transiently.
    pub read_error_ppm: u32,
    /// Per-attempt probability (ppm) that a device read returns a torn
    /// page — the bytes arrive but the trailer checksum does not match.
    pub corrupt_page_ppm: u32,
    /// Per-copy probability (ppm) that a GPU H2D/D2H transfer faults.
    pub copy_fault_ppm: u32,
    /// Per-launch probability (ppm) that a GPU kernel launch faults.
    pub launch_fault_ppm: u32,
    /// Per-scrub-visit probability (ppm) that a page has rotted *at
    /// rest* — a seeded single-bit flip in the stored bytes, found (and
    /// repaired) only when a scrub pass walks the page. Zero by default:
    /// bit rot is opt-in even on chaos plans.
    pub bit_rot_ppm: u32,
    /// Bounded retries per operation beyond the first attempt.
    pub max_retries: u32,
    /// Consecutive failed attempts after which a drive is quarantined.
    pub quarantine_after: u32,
    /// Simulated backoff charged between an error and its retry.
    pub backoff: SimDuration,
    /// An injected process death, for kill-and-resume chaos testing.
    /// `None` (the default) never crashes.
    pub crash: Option<CrashPoint>,
}

impl FaultConfig {
    /// Moderate default rates for chaos testing: a couple of percent of
    /// reads fail transiently, well under the retry budget, so seeded runs
    /// complete with results identical to the fault-free run.
    pub fn with_seed(seed: u64) -> Self {
        FaultConfig {
            seed,
            read_error_ppm: 20_000,
            corrupt_page_ppm: 5_000,
            copy_fault_ppm: 2_000,
            launch_fault_ppm: 2_000,
            bit_rot_ppm: 0,
            max_retries: 4,
            quarantine_after: 3,
            backoff: SimDuration::from_micros(100),
            crash: None,
        }
    }

    /// A plan that never injects anything (useful as a test control).
    pub fn quiet(seed: u64) -> Self {
        FaultConfig {
            read_error_ppm: 0,
            corrupt_page_ppm: 0,
            copy_fault_ppm: 0,
            launch_fault_ppm: 0,
            bit_rot_ppm: 0,
            ..FaultConfig::with_seed(seed)
        }
    }

    /// The fault domain for one *served job attempt*: same rates and
    /// recovery policy, but an independent seed mixed from this config's
    /// seed, the job id, and the attempt number — so every job (and every
    /// service-level retry of it) draws an unrelated schedule, while the
    /// schedule itself stays a pure function of `(service seed, job,
    /// attempt)` at any host thread count. The crash point is stripped:
    /// process death belongs to the service, never to one tenant's job.
    pub fn derived(&self, job: u64, attempt: u32) -> FaultConfig {
        FaultConfig {
            seed: domain_seed(self.seed, job, u64::from(attempt)),
            crash: None,
            ..self.clone()
        }
    }
}

/// Mix `(seed, a, b)` into one derived seed via the same chained
/// splitmix64 finalizers as the per-entity streams. Public so the serve
/// layer can derive ancillary per-job streams (e.g. backoff jitter) that
/// are independent of the fault schedules themselves.
pub fn domain_seed(seed: u64, a: u64, b: u64) -> u64 {
    // Offset the domain tag past the private `Domain` discriminants so a
    // derived config's entity streams can never collide with the parent
    // seed's own streams.
    stream_seed(
        seed.wrapping_add(b.wrapping_mul(0xA076_1D64_78BD_642F)),
        9,
        a,
    )
}

/// Where an injected crash kills the run. Both points die *after* state
/// that should survive has reached the checkpoint directory, so a
/// subsequent `--resume` must reproduce the uncrashed run byte-for-byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Die at the top of sweep `k`, immediately after any checkpoint due
    /// at that boundary has been written.
    AtSweep(u32),
    /// Die halfway through writing the checkpoint due at sweep `k`: a
    /// torn snapshot lands at its final path and the manifest names it,
    /// so resume must detect the bad checksum and fall back to the
    /// previous snapshot.
    MidSnapshotWrite(u32),
    /// Die in serve mode, immediately before executing the admitted
    /// mutating job that would apply the service's `k`-th epoch bump
    /// (0-based) — after every preceding job has settled and the service
    /// journal has flushed. A `k` past the workload's mutation count
    /// never fires. Ignored outside serve mode.
    AtEpoch(u32),
    /// Die halfway through appending the WAL record for the mutation
    /// batch due at sweep `k`: a torn frame lands at the end of the log
    /// file, so recovery must truncate the tail, re-log, and re-apply the
    /// batch. Requires a WAL; ignored otherwise.
    MidWalAppend(u32),
    /// Die after the WAL record for the batch due at sweep `k` is fully
    /// sealed and synced, but *before* the store applies it — the classic
    /// logged-but-unapplied window. Recovery replays the record and lands
    /// on the post-batch state. Requires a WAL; ignored otherwise.
    BetweenLogAndApply(u32),
}

/// What one simulated device read attempt returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadOutcome {
    /// The read completed and the page is intact.
    Ok,
    /// The device errored transiently; the attempt's time is still spent.
    TransientError,
    /// The read completed but delivered a torn page: the trailer checksum
    /// will not match, forcing a paid re-fetch.
    TornPage,
}

/// Fault domains, mixed into each entity's stream seed so the schedules
/// for different kinds of fault are independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Domain {
    DeviceRead = 1,
    GpuCopy = 2,
    GpuLaunch = 3,
    BitRot = 4,
}

#[derive(Debug, Default)]
struct Streams {
    by_entity: BTreeMap<(u8, u64), Rng>,
}

/// A seeded, shared schedule of injected faults.
///
/// Cloning is cheap (an `Arc` bump); the storage array and every GPU lane
/// hold clones of the same plan. Each query advances exactly one
/// per-`(domain, entity)` stream, so schedules are independent across
/// entities and reproducible per seed.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    config: FaultConfig,
    streams: Arc<Mutex<Streams>>,
}

impl FaultPlan {
    /// Build the live schedule for one run.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan {
            config,
            streams: Arc::new(Mutex::new(Streams::default())),
        }
    }

    /// The rates and recovery policy this plan was built from.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Draw the outcome of the next read attempt on device `device`.
    pub fn device_read(&self, device: u64) -> ReadOutcome {
        // One stream decides both failure modes so a single draw ordering
        // governs the whole attempt: error wins over torn page.
        let roll = self.draw(Domain::DeviceRead, device);
        let err = self.config.read_error_ppm;
        let torn = self.config.corrupt_page_ppm;
        if roll < err {
            ReadOutcome::TransientError
        } else if roll < err.saturating_add(torn) {
            ReadOutcome::TornPage
        } else {
            ReadOutcome::Ok
        }
    }

    /// Whether the next H2D/D2H copy on GPU `gpu` faults.
    pub fn gpu_copy_fault(&self, gpu: u32) -> bool {
        self.draw(Domain::GpuCopy, gpu as u64) < self.config.copy_fault_ppm
    }

    /// Whether the next kernel launch on GPU `gpu` faults.
    pub fn gpu_launch_fault(&self, gpu: u32) -> bool {
        self.draw(Domain::GpuLaunch, gpu as u64) < self.config.launch_fault_ppm
    }

    /// The injected crash point, if any.
    pub fn crash(&self) -> Option<CrashPoint> {
        self.config.crash
    }

    /// Whether page `pid` has rotted at rest since the last scrub visit,
    /// and if so where: `Some((byte offset, xor mask))` describes a
    /// single-bit flip inside a page of `page_len` bytes. Each call
    /// advances `pid`'s dedicated stream exactly three draws, so the n-th
    /// scrub visit of a page decides identically at any host thread count
    /// — and because xor is self-inverse, re-applying the returned flip
    /// *is* the repair.
    pub fn bit_rot(&self, pid: u64, page_len: usize) -> Option<(usize, u8)> {
        let rate = self.config.bit_rot_ppm;
        let roll = self.draw(Domain::BitRot, pid);
        let off = self.draw(Domain::BitRot, pid) as usize % page_len.max(1);
        let bit = self.draw(Domain::BitRot, pid) % 8;
        if rate == 0 || roll >= rate {
            return None;
        }
        Some((off, 1u8 << bit))
    }

    /// Export every per-`(domain, entity)` stream's exact RNG state, for
    /// the checkpoint. Streams that were never touched are simply absent:
    /// they are re-derived lazily from the seed on demand, identically
    /// before and after a resume.
    pub fn export_cursors(&self) -> BTreeMap<(u8, u64), [u64; 4]> {
        #[allow(clippy::unwrap_used)] // plan queries never panic while holding the lock
        let g = self.streams.lock().unwrap();
        g.by_entity
            .iter()
            .map(|(&k, rng)| (k, rng.state()))
            .collect()
    }

    /// Restore stream states captured by [`FaultPlan::export_cursors`],
    /// so the first post-resume draw on each entity continues the
    /// pre-crash schedule exactly.
    pub fn restore_cursors(&self, cursors: &BTreeMap<(u8, u64), [u64; 4]>) {
        #[allow(clippy::unwrap_used)] // plan queries never panic while holding the lock
        let mut g = self.streams.lock().unwrap();
        for (&k, &state) in cursors {
            g.by_entity.insert(k, Rng::from_state(state));
        }
    }

    /// Advance entity `(domain, entity)`'s stream and return a uniform
    /// draw in `[0, PPM_SCALE)`.
    fn draw(&self, domain: Domain, entity: u64) -> u32 {
        #[allow(clippy::unwrap_used)] // plan queries never panic while holding the lock
        let mut g = self.streams.lock().unwrap();
        let seed = self.config.seed;
        let rng = g
            .by_entity
            .entry((domain as u8, entity))
            .or_insert_with(|| Rng::seed_from_u64(stream_seed(seed, domain as u8, entity)));
        rng.below_u32(PPM_SCALE)
    }
}

/// Mix `(seed, domain, entity)` into one stream seed via chained
/// splitmix64 finalizers, so nearby entities get unrelated streams.
fn stream_seed(seed: u64, domain: u8, entity: u64) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(domain).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(entity.wrapping_mul(0xD1B5_4A32_D192_ED03));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_schedule_per_entity() {
        let a = FaultPlan::new(FaultConfig::with_seed(11));
        let b = FaultPlan::new(FaultConfig::with_seed(11));
        // Interleave queries across entities in different orders: each
        // entity's stream must be unaffected by the others.
        let mut a_dev0 = Vec::new();
        let mut b_dev0 = Vec::new();
        for i in 0..64 {
            a_dev0.push(a.device_read(0));
            if i % 3 == 0 {
                let _ = a.device_read(1);
                let _ = a.gpu_copy_fault(2);
            }
        }
        for _ in 0..64 {
            let _ = b.gpu_launch_fault(0);
            b_dev0.push(b.device_read(0));
        }
        assert_eq!(a_dev0, b_dev0);
    }

    #[test]
    fn different_seeds_differ() {
        let a = FaultPlan::new(FaultConfig {
            read_error_ppm: 500_000,
            ..FaultConfig::with_seed(1)
        });
        let b = FaultPlan::new(FaultConfig {
            read_error_ppm: 500_000,
            ..FaultConfig::with_seed(2)
        });
        let xs: Vec<ReadOutcome> = (0..64).map(|_| a.device_read(0)).collect();
        let ys: Vec<ReadOutcome> = (0..64).map(|_| b.device_read(0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = FaultPlan::new(FaultConfig::quiet(99));
        for _ in 0..1_000 {
            assert_eq!(plan.device_read(3), ReadOutcome::Ok);
            assert!(!plan.gpu_copy_fault(0));
            assert!(!plan.gpu_launch_fault(1));
        }
    }

    #[test]
    fn rates_are_roughly_honoured() {
        let plan = FaultPlan::new(FaultConfig {
            read_error_ppm: 100_000, // 10%
            corrupt_page_ppm: 100_000,
            ..FaultConfig::with_seed(5)
        });
        let n = 100_000;
        let mut errs = 0u32;
        let mut torn = 0u32;
        for _ in 0..n {
            match plan.device_read(0) {
                ReadOutcome::TransientError => errs += 1,
                ReadOutcome::TornPage => torn += 1,
                ReadOutcome::Ok => {}
            }
        }
        let frac = |c: u32| f64::from(c) / f64::from(n);
        assert!((frac(errs) - 0.1).abs() < 0.01, "err rate {}", frac(errs));
        assert!((frac(torn) - 0.1).abs() < 0.01, "torn rate {}", frac(torn));
    }

    #[test]
    fn exported_cursors_resume_the_schedule_exactly() {
        let cfg = FaultConfig {
            read_error_ppm: 300_000,
            corrupt_page_ppm: 200_000,
            ..FaultConfig::with_seed(17)
        };
        // Reference: one uninterrupted plan.
        let full = FaultPlan::new(cfg.clone());
        let want: Vec<ReadOutcome> = (0..128).map(|i| full.device_read(i % 3)).collect();

        // Crashed-and-resumed: draw half, export, rebuild, restore, draw
        // the rest. The concatenation must equal the uninterrupted run.
        let first = FaultPlan::new(cfg.clone());
        let mut got: Vec<ReadOutcome> = (0..64).map(|i| first.device_read(i % 3)).collect();
        let cursors = first.export_cursors();
        drop(first);
        let resumed = FaultPlan::new(cfg);
        resumed.restore_cursors(&cursors);
        got.extend((64..128).map(|i| resumed.device_read(i % 3)));
        assert_eq!(got, want);
    }

    #[test]
    fn untouched_streams_are_absent_from_cursors_and_rederived() {
        let plan = FaultPlan::new(FaultConfig::with_seed(9));
        let _ = plan.device_read(0);
        let cursors = plan.export_cursors();
        assert_eq!(cursors.len(), 1, "only the touched stream is exported");
        // A resumed plan still derives entity 1's stream from the seed.
        let resumed = FaultPlan::new(FaultConfig::with_seed(9));
        resumed.restore_cursors(&cursors);
        let fresh = FaultPlan::new(FaultConfig::with_seed(9));
        let _ = fresh.device_read(0);
        for _ in 0..32 {
            assert_eq!(resumed.device_read(1), fresh.device_read(1));
        }
    }

    #[test]
    fn bit_rot_is_deterministic_per_page_and_off_by_default() {
        let quiet = FaultPlan::new(FaultConfig::quiet(7));
        for pid in 0..256 {
            assert_eq!(quiet.bit_rot(pid, 4096), None);
        }
        let cfg = FaultConfig {
            bit_rot_ppm: 300_000,
            ..FaultConfig::quiet(7)
        };
        let a = FaultPlan::new(cfg.clone());
        let b = FaultPlan::new(cfg.clone());
        let xs: Vec<_> = (0..256).map(|pid| a.bit_rot(pid, 256)).collect();
        // Interleaved extra queries on other domains must not disturb it.
        let ys: Vec<_> = (0..256)
            .map(|pid| {
                let _ = b.device_read(pid);
                b.bit_rot(pid, 256)
            })
            .collect();
        assert_eq!(xs, ys);
        let hits = xs.iter().flatten().count();
        assert!(hits > 40 && hits < 120, "≈30% of 256 pages, got {hits}");
        for (off, mask) in xs.iter().flatten() {
            assert!(*off < 256);
            assert_eq!(mask.count_ones(), 1, "single-bit flip");
        }
        // Visits advance the stream: a page's second visit re-rolls.
        let c = FaultPlan::new(cfg);
        let first: Vec<_> = (0..64).map(|pid| c.bit_rot(pid, 256)).collect();
        let second: Vec<_> = (0..64).map(|pid| c.bit_rot(pid, 256)).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn crash_point_rides_in_the_config() {
        assert_eq!(FaultPlan::new(FaultConfig::with_seed(1)).crash(), None);
        let plan = FaultPlan::new(FaultConfig {
            crash: Some(CrashPoint::MidSnapshotWrite(3)),
            ..FaultConfig::quiet(1)
        });
        assert_eq!(plan.crash(), Some(CrashPoint::MidSnapshotWrite(3)));
    }

    #[test]
    fn derived_domains_are_deterministic_independent_and_crash_free() {
        let svc = FaultConfig {
            crash: Some(CrashPoint::AtEpoch(1)),
            ..FaultConfig::with_seed(42)
        };
        // Deterministic: same (job, attempt), same domain.
        assert_eq!(svc.derived(3, 1), svc.derived(3, 1));
        // Independent: job ids and attempts each shift the seed.
        assert_ne!(svc.derived(3, 1).seed, svc.derived(4, 1).seed);
        assert_ne!(svc.derived(3, 1).seed, svc.derived(3, 2).seed);
        // Policy rides along; the crash point does not.
        let d = svc.derived(0, 1);
        assert_eq!(d.max_retries, svc.max_retries);
        assert_eq!(d.read_error_ppm, svc.read_error_ppm);
        assert_eq!(d.crash, None);
        // And the derived schedule really differs from the parent's.
        let a = FaultPlan::new(FaultConfig {
            read_error_ppm: 500_000,
            ..FaultConfig::with_seed(42).derived(1, 1)
        });
        let b = FaultPlan::new(FaultConfig {
            read_error_ppm: 500_000,
            ..FaultConfig::with_seed(42)
        });
        let xs: Vec<ReadOutcome> = (0..64).map(|_| a.device_read(0)).collect();
        let ys: Vec<ReadOutcome> = (0..64).map(|_| b.device_read(0)).collect();
        assert_ne!(xs, ys);
    }

    #[test]
    fn domain_seed_mixes_both_salts() {
        assert_eq!(domain_seed(7, 1, 2), domain_seed(7, 1, 2));
        assert_ne!(domain_seed(7, 1, 2), domain_seed(7, 2, 2));
        assert_ne!(domain_seed(7, 1, 2), domain_seed(7, 1, 3));
        assert_ne!(domain_seed(7, 1, 2), domain_seed(8, 1, 2));
    }

    #[test]
    fn clones_share_one_schedule() {
        let a = FaultPlan::new(FaultConfig {
            read_error_ppm: 500_000,
            ..FaultConfig::with_seed(3)
        });
        let b = a.clone();
        // Drawing alternately from two clones must walk ONE stream, not
        // two copies of it: the union equals a fresh plan's sequence.
        let mut union = Vec::new();
        for _ in 0..32 {
            union.push(a.device_read(7));
            union.push(b.device_read(7));
        }
        let fresh = FaultPlan::new(a.config().clone());
        let want: Vec<ReadOutcome> = (0..64).map(|_| fresh.device_read(7)).collect();
        assert_eq!(union, want);
    }
}
