//! Self-contained deterministic PRNG for fault schedules.
//!
//! Mirrors the xoshiro256** + splitmix64 construction `gts-graph` uses
//! for dataset generation (and that `rand`'s small RNGs use), carried
//! locally so this crate depends only on `gts-sim` and the build stays
//! registry-free. Streams are fully determined by the seed.

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
#[derive(Debug, Clone)]
pub(crate) struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator; any seed (including 0) gives a good stream
    /// because the state is expanded through splitmix64.
    pub(crate) fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub(crate) fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The raw generator state, for checkpointing a stream mid-schedule.
    pub(crate) fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuild a generator at an exact checkpointed state.
    pub(crate) fn from_state(s: [u64; 4]) -> Self {
        Rng { s }
    }

    /// Uniform `u32` in `[0, n)` (Lemire's multiply-shift with rejection).
    pub(crate) fn below_u32(&mut self, n: u32) -> u32 {
        debug_assert!(n > 0, "below_u32 bound must be non-zero");
        let n = u64::from(n);
        if n.is_power_of_two() {
            return (self.next_u64() & (n - 1)) as u32;
        }
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let wide = u128::from(x) * u128::from(n);
            let (hi, lo) = ((wide >> 64) as u64, wide as u64);
            if lo >= threshold {
                return hi as u32;
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn below_respects_bound() {
        let mut r = Rng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.below_u32(1_000_000) < 1_000_000);
        }
    }
}
