//! Minimal little-endian byte codec for snapshot section payloads.
//!
//! No serde, no derive macros — the workspace builds with zero external
//! dependencies, and the handful of fixed-width field types the engine
//! checkpoints (integers, IEEE-754 bit patterns, length-prefixed blobs)
//! do not justify a framework. Every [`ByteReader`] access is
//! bounds-checked and returns a typed [`CkptError::Truncated`] instead of
//! panicking: torn snapshots are an *expected* input on the resume path.

use crate::error::CkptError;

/// Appends little-endian fields to a growable buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// A fresh, empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Append one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `bool` as one byte (0 or 1).
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Append a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append an `f32` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Append an `f64` as its IEEE-754 bit pattern (exact round trip).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Append a `u64`-length-prefixed byte blob.
    pub fn put_bytes(&mut self, v: &[u8]) {
        self.put_u64(v.len() as u64);
        self.buf.extend_from_slice(v);
    }

    /// Append a `u64`-length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) {
        self.put_bytes(v.as_bytes());
    }
}

/// Bounds-checked cursor over encoded bytes.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Start reading from the front of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Fails unless every byte was consumed — catches schema drift where
    /// a decoder silently ignores trailing fields.
    pub fn finish(self) -> Result<(), CkptError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CkptError::Corrupt {
                reason: format!("{} unconsumed trailing bytes in section", self.remaining()),
            })
        }
    }

    fn take(&mut self, what: &'static str, n: usize) -> Result<&'a [u8], CkptError> {
        if self.remaining() < n {
            return Err(CkptError::Truncated {
                what,
                need: n,
                have: self.remaining(),
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read one byte.
    pub fn take_u8(&mut self, what: &'static str) -> Result<u8, CkptError> {
        Ok(self.take(what, 1)?[0])
    }

    /// Read a `bool` (any nonzero byte is `true`).
    pub fn take_bool(&mut self, what: &'static str) -> Result<bool, CkptError> {
        Ok(self.take_u8(what)? != 0)
    }

    /// Read a little-endian `u16`.
    pub fn take_u16(&mut self, what: &'static str) -> Result<u16, CkptError> {
        let b = self.take(what, 2)?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Read a little-endian `u32`.
    pub fn take_u32(&mut self, what: &'static str) -> Result<u32, CkptError> {
        let b = self.take(what, 4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Read a little-endian `u64`.
    pub fn take_u64(&mut self, what: &'static str) -> Result<u64, CkptError> {
        let b = self.take(what, 8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Read an `f32` bit pattern.
    pub fn take_f32(&mut self, what: &'static str) -> Result<f32, CkptError> {
        Ok(f32::from_bits(self.take_u32(what)?))
    }

    /// Read an `f64` bit pattern.
    pub fn take_f64(&mut self, what: &'static str) -> Result<f64, CkptError> {
        Ok(f64::from_bits(self.take_u64(what)?))
    }

    /// Read a `u64`-length-prefixed byte blob.
    pub fn take_bytes(&mut self, what: &'static str) -> Result<&'a [u8], CkptError> {
        let len = self.take_u64(what)?;
        let len = usize::try_from(len).map_err(|_| CkptError::Corrupt {
            reason: format!("{what}: blob length {len} exceeds addressable memory"),
        })?;
        self.take(what, len)
    }

    /// Read a `u64`-length-prefixed UTF-8 string.
    pub fn take_str(&mut self, what: &'static str) -> Result<String, CkptError> {
        let b = self.take_bytes(what)?;
        String::from_utf8(b.to_vec()).map_err(|_| CkptError::Corrupt {
            reason: format!("{what}: invalid UTF-8"),
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn round_trip_every_field_type() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_bool(true);
        w.put_u16(65_535);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(-0.25);
        w.put_f64(f64::MIN_POSITIVE);
        w.put_bytes(b"blob");
        w.put_str("snapshot");
        let bytes = w.into_bytes();

        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.take_u8("a").unwrap(), 7);
        assert!(r.take_bool("b").unwrap());
        assert_eq!(r.take_u16("c").unwrap(), 65_535);
        assert_eq!(r.take_u32("d").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.take_u64("e").unwrap(), u64::MAX - 1);
        assert_eq!(r.take_f32("f").unwrap(), -0.25);
        assert_eq!(r.take_f64("g").unwrap(), f64::MIN_POSITIVE);
        assert_eq!(r.take_bytes("h").unwrap(), b"blob");
        assert_eq!(r.take_str("i").unwrap(), "snapshot");
        r.finish().unwrap();
    }

    #[test]
    fn truncated_read_is_typed_not_a_panic() {
        let mut r = ByteReader::new(&[1, 2]);
        let err = r.take_u32("field").unwrap_err();
        assert_eq!(
            err,
            CkptError::Truncated {
                what: "field",
                need: 4,
                have: 2
            }
        );
    }

    #[test]
    fn unconsumed_trailing_bytes_fail_finish() {
        let r = ByteReader::new(&[0; 3]);
        assert!(matches!(r.finish(), Err(CkptError::Corrupt { .. })));
    }

    #[test]
    fn nan_bit_patterns_round_trip_exactly() {
        let weird = f32::from_bits(0x7FC0_1234);
        let mut w = ByteWriter::new();
        w.put_f32(weird);
        let bytes = w.into_bytes();
        let got = ByteReader::new(&bytes).take_f32("nan").unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }
}
