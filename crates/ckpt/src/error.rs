//! Typed checkpoint errors.

use std::fmt;
use std::path::PathBuf;

/// Everything that can go wrong while writing, reading, or decoding a
/// checkpoint. Every variant carries enough context to act on without a
/// debugger; the `Display` impls are the user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CkptError {
    /// A filesystem operation failed.
    Io {
        /// What we were doing ("create", "write", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        source: String,
    },
    /// Snapshot bytes failed structural validation (bad magic, checksum
    /// mismatch, malformed section table).
    Corrupt {
        /// What exactly failed to validate.
        reason: String,
    },
    /// A bounds-checked read ran off the end of the data.
    Truncated {
        /// The field being decoded.
        what: &'static str,
        /// Bytes the field needs.
        need: usize,
        /// Bytes actually available.
        have: usize,
    },
    /// The snapshot was written by an incompatible payload-schema version.
    VersionMismatch {
        /// Version found in the snapshot header.
        found: u32,
        /// Version this build expects.
        expected: u32,
    },
    /// A section the decoder requires is absent from the snapshot.
    MissingSection {
        /// The section name.
        name: String,
    },
    /// There is nothing to resume from: no manifest in the directory.
    NoSnapshot {
        /// The checkpoint directory searched.
        dir: PathBuf,
    },
    /// The snapshot belongs to a different run setup (graph store or
    /// engine config fingerprint differs).
    Mismatch {
        /// Which fingerprint disagreed ("store fingerprint", ...).
        what: &'static str,
        /// Fingerprint of the current run.
        want: u64,
        /// Fingerprint recorded in the snapshot.
        got: u64,
    },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { op, path, source } => {
                write!(f, "checkpoint {op} failed for {}: {source}", path.display())
            }
            CkptError::Corrupt { reason } => write!(f, "corrupt checkpoint: {reason}"),
            CkptError::Truncated { what, need, have } => write!(
                f,
                "truncated checkpoint data: {what} needs {need} bytes, {have} available"
            ),
            CkptError::VersionMismatch { found, expected } => write!(
                f,
                "checkpoint schema version {found} is not supported (this build expects {expected})"
            ),
            CkptError::MissingSection { name } => {
                write!(f, "checkpoint is missing required section \"{name}\"")
            }
            CkptError::NoSnapshot { dir } => {
                write!(f, "no checkpoint to resume from in {}", dir.display())
            }
            CkptError::Mismatch { what, want, got } => write!(
                f,
                "checkpoint {what} mismatch: snapshot was taken with {got:#018x}, \
                 this run has {want:#018x}"
            ),
        }
    }
}

impl std::error::Error for CkptError {}

impl CkptError {
    /// Helper for wrapping `std::io::Error` with operation + path context.
    pub(crate) fn io(op: &'static str, path: &std::path::Path, e: &std::io::Error) -> Self {
        CkptError::Io {
            op,
            path: path.to_path_buf(),
            source: e.to_string(),
        }
    }
}
