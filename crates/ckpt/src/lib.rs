#![warn(missing_docs)]
// Same no-panic policy as gts-storage / gts-faults: checkpoint code runs on
// the recovery path, where an unwrap would turn a detectable torn write into
// an abort of the very run the snapshot exists to rescue.
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # gts-ckpt — crash-consistent checkpoint snapshots
//!
//! Long multi-sweep GTS runs (PageRank over an SSD-resident RMAT graph
//! streams the full topology every iteration) must survive a crash by
//! resuming from the last sweep boundary, not by restarting from scratch.
//! This crate provides the storage half of that contract:
//!
//! * [`Snapshot`] — a versioned container of named byte sections, sealed
//!   with the same FNV-1a trailer checksum the slotted-page format uses,
//!   so a torn or bit-flipped snapshot is *detected*, never silently
//!   resumed from.
//! * [`CkptStore`] — a directory of snapshots written crash-atomically
//!   (temp file → fsync → rename → directory fsync) plus a `MANIFEST`
//!   naming valid snapshots newest-first. [`CkptStore::load_latest`]
//!   walks the manifest and returns the first snapshot that decodes and
//!   checksums cleanly, falling back past torn entries.
//! * [`codec`] — a minimal little-endian byte codec ([`ByteWriter`] /
//!   [`ByteReader`]) used by the engine to encode section payloads; every
//!   read is bounds-checked and returns a typed [`CkptError`].
//!
//! What goes *into* the sections (WA vectors, sim clock, fault-RNG
//! cursors, ...) is the engine's business — see `gts-core::sweep::ckpt`
//! and DESIGN.md §10. This crate only guarantees that what was written is
//! either read back exactly or rejected loudly.
//!
//! The [`CkptStore::write_torn`] hook deliberately publishes a truncated
//! snapshot in the manifest; the kill-and-resume chaos tests use it to
//! prove the fallback path.

pub mod codec;
mod error;
mod snapshot;
mod store;

pub use codec::{ByteReader, ByteWriter};
pub use error::CkptError;
pub use snapshot::{fnv1a, Snapshot};
pub use store::CkptStore;
