//! The versioned, checksummed snapshot container.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8 bytes   b"GTSCKPT1"
//! version    u32       payload schema version (the engine's, not ours)
//! sections   u32       section count
//! per section:
//!   name     u32 len + UTF-8 bytes
//!   body     u64 len + raw bytes
//! checksum   u64       FNV-1a over every preceding byte
//! ```
//!
//! Sections are stored in name order (`BTreeMap`), so encoding is
//! deterministic: the same engine state always produces the same bytes —
//! which is what lets the kill-and-resume tests compare artifacts
//! byte-for-byte.

use crate::codec::{ByteReader, ByteWriter};
use crate::error::CkptError;
use std::collections::BTreeMap;

const MAGIC: &[u8; 8] = b"GTSCKPT1";

/// FNV-1a 64-bit — the same constants as the slotted-page trailer
/// checksum in `gts-storage`, reproduced here so the two crates stay
/// dependency-free.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const BASIS: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    bytes
        .iter()
        .fold(BASIS, |h, &b| (h ^ u64::from(b)).wrapping_mul(PRIME))
}

/// A named-section container with a schema version and a whole-file
/// FNV-1a checksum.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    version: u32,
    sections: BTreeMap<String, Vec<u8>>,
}

impl Snapshot {
    /// An empty snapshot with the given payload schema version.
    pub fn new(version: u32) -> Self {
        Self {
            version,
            sections: BTreeMap::new(),
        }
    }

    /// The payload schema version recorded in the header.
    pub fn version(&self) -> u32 {
        self.version
    }

    /// Fails unless the snapshot was written with schema `expected`.
    pub fn require_version(&self, expected: u32) -> Result<(), CkptError> {
        if self.version == expected {
            Ok(())
        } else {
            Err(CkptError::VersionMismatch {
                found: self.version,
                expected,
            })
        }
    }

    /// Add (or replace) a section.
    pub fn insert(&mut self, name: &str, body: Vec<u8>) {
        self.sections.insert(name.to_string(), body);
    }

    /// Section names, sorted.
    pub fn section_names(&self) -> impl Iterator<Item = &str> {
        self.sections.keys().map(String::as_str)
    }

    /// A required section's bytes; typed error when absent.
    pub fn section(&self, name: &str) -> Result<&[u8], CkptError> {
        self.sections
            .get(name)
            .map(Vec::as_slice)
            .ok_or_else(|| CkptError::MissingSection {
                name: name.to_string(),
            })
    }

    /// Serialize to the checksummed wire format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        let mut buf = MAGIC.to_vec();
        w.put_u32(self.version);
        w.put_u32(self.sections.len() as u32);
        for (name, body) in &self.sections {
            w.put_u32(name.len() as u32);
            // Name bytes raw (length already written above).
            for b in name.as_bytes() {
                w.put_u8(*b);
            }
            w.put_bytes(body);
        }
        buf.extend_from_slice(&w.into_bytes());
        let sum = fnv1a(&buf);
        buf.extend_from_slice(&sum.to_le_bytes());
        buf
    }

    /// Parse and validate the wire format: magic, checksum, and section
    /// table must all be intact, or the snapshot is rejected as torn.
    pub fn decode(bytes: &[u8]) -> Result<Self, CkptError> {
        const TRAILER: usize = 8;
        if bytes.len() < MAGIC.len() + TRAILER {
            return Err(CkptError::Corrupt {
                reason: format!("{} bytes is too short to be a snapshot", bytes.len()),
            });
        }
        let (payload, trailer) = bytes.split_at(bytes.len() - TRAILER);
        let stored = u64::from_le_bytes([
            trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
            trailer[7],
        ]);
        let computed = fnv1a(payload);
        if stored != computed {
            return Err(CkptError::Corrupt {
                reason: format!(
                    "checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
                ),
            });
        }
        if &payload[..MAGIC.len()] != MAGIC {
            return Err(CkptError::Corrupt {
                reason: "bad magic".to_string(),
            });
        }
        let mut r = ByteReader::new(&payload[MAGIC.len()..]);
        let version = r.take_u32("snapshot version")?;
        let count = r.take_u32("section count")?;
        let mut sections = BTreeMap::new();
        for _ in 0..count {
            let name_len = r.take_u32("section name length")? as usize;
            let mut name_bytes = Vec::with_capacity(name_len);
            for _ in 0..name_len {
                name_bytes.push(r.take_u8("section name")?);
            }
            let name = String::from_utf8(name_bytes).map_err(|_| CkptError::Corrupt {
                reason: "section name is not UTF-8".to_string(),
            })?;
            let body = r.take_bytes("section body")?.to_vec();
            sections.insert(name, body);
        }
        r.finish()?;
        Ok(Self { version, sections })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    fn sample() -> Snapshot {
        let mut s = Snapshot::new(3);
        s.insert("clock", vec![1, 2, 3, 4]);
        s.insert("program", b"state blob".to_vec());
        s.insert("empty", Vec::new());
        s
    }

    #[test]
    fn encode_decode_round_trips() {
        let snap = sample();
        let decoded = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(decoded, snap);
        assert_eq!(decoded.version(), 3);
        assert_eq!(decoded.section("program").unwrap(), b"state blob");
        assert_eq!(
            decoded.section_names().collect::<Vec<_>>(),
            vec!["clock", "empty", "program"]
        );
    }

    #[test]
    fn encoding_is_deterministic_regardless_of_insert_order() {
        let mut a = Snapshot::new(1);
        a.insert("x", vec![1]);
        a.insert("a", vec![2]);
        let mut b = Snapshot::new(1);
        b.insert("a", vec![2]);
        b.insert("x", vec![1]);
        assert_eq!(a.encode(), b.encode());
    }

    #[test]
    fn any_single_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                Snapshot::decode(&bad).is_err(),
                "bit flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_anywhere_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn missing_section_is_typed() {
        let snap = sample();
        assert_eq!(
            snap.section("absent").unwrap_err(),
            CkptError::MissingSection {
                name: "absent".to_string()
            }
        );
    }

    #[test]
    fn version_gate() {
        let snap = Snapshot::new(2);
        assert!(snap.require_version(2).is_ok());
        assert_eq!(
            snap.require_version(5).unwrap_err(),
            CkptError::VersionMismatch {
                found: 2,
                expected: 5
            }
        );
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
    }
}
