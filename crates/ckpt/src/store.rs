//! The on-disk checkpoint store: atomic writes plus a manifest that lets
//! resume fall back past torn snapshots.
//!
//! Write protocol (crash-safe on POSIX rename semantics):
//!
//! 1. encode the snapshot and write it to `ckpt.tmp`
//! 2. `fsync` the temp file
//! 3. `rename` it to `ckpt-<seq>.snap`
//! 4. `fsync` the directory (persists the rename)
//! 5. rewrite `MANIFEST` the same way (tmp → fsync → rename → dir fsync),
//!    naming snapshots newest-first
//!
//! A crash between any two steps leaves either the previous manifest
//! (pointing at the previous snapshot) or the new manifest (pointing at a
//! fully synced new snapshot) — never a manifest whose first entry is a
//! half-written file. Defense in depth: even if a filesystem reorders the
//! writes, every snapshot carries a whole-file FNV-1a checksum, and
//! [`CkptStore::load_latest`] skips entries that fail it.
//!
//! Retention is two snapshots: the newest plus one fallback. Older files
//! are unlinked after the manifest stops naming them.

use crate::error::CkptError;
use crate::snapshot::Snapshot;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MANIFEST: &str = "MANIFEST";
const MANIFEST_HEADER: &str = "GTS-CKPT-MANIFEST v1";
/// Newest snapshot plus one fallback for the torn-write path.
const RETAIN: usize = 2;

/// A directory of checkpoints managed through an atomic manifest.
#[derive(Debug, Clone)]
pub struct CkptStore {
    dir: PathBuf,
}

impl CkptStore {
    /// Open (creating if needed) a checkpoint directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| CkptError::io("create", &dir, &e))?;
        Ok(Self { dir })
    }

    /// The directory this store manages.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn snapshot_name(seq: u64) -> String {
        format!("ckpt-{seq:010}.snap")
    }

    fn parse_seq(name: &str) -> Option<u64> {
        name.strip_prefix("ckpt-")?
            .strip_suffix(".snap")?
            .parse()
            .ok()
    }

    /// Atomically write `snap` as sequence number `seq` (the sweep it
    /// resumes into) and publish it in the manifest. Returns the encoded
    /// snapshot size in bytes.
    pub fn write(&self, seq: u64, snap: &Snapshot) -> Result<u64, CkptError> {
        let bytes = snap.encode();
        let name = Self::snapshot_name(seq);
        self.write_file_atomic(&name, &bytes)?;
        self.publish(&name)?;
        Ok(bytes.len() as u64)
    }

    /// Chaos hook: publish a *torn* snapshot — the file at the final path
    /// holds only a prefix of the encoded bytes, yet the manifest names it
    /// as newest. This is the worst-case torn write that the checksum +
    /// manifest-fallback machinery exists to survive; the kill-and-resume
    /// tests call this and then die. Returns the (truncated) size written.
    pub fn write_torn(&self, seq: u64, snap: &Snapshot) -> Result<u64, CkptError> {
        let bytes = snap.encode();
        let torn = &bytes[..bytes.len() / 2];
        let name = Self::snapshot_name(seq);
        let path = self.dir.join(&name);
        // Deliberately NOT atomic: bytes land at the final path directly,
        // simulating a crash halfway through a non-atomic writer.
        fs::write(&path, torn).map_err(|e| CkptError::io("write", &path, &e))?;
        self.publish(&name)?;
        Ok(torn.len() as u64)
    }

    /// Load the newest snapshot that decodes and checksums cleanly,
    /// walking the manifest newest-first past torn entries. Returns the
    /// sequence number it was written under alongside the snapshot.
    pub fn load_latest(&self) -> Result<(u64, Snapshot), CkptError> {
        self.load_latest_with_skipped()
            .map(|(seq, snap, _)| (seq, snap))
    }

    /// [`CkptStore::load_latest`], surfacing the fallback: the third
    /// element names every newer manifest entry that was skipped as
    /// missing, torn, or corrupt before an intact snapshot decoded.
    /// Callers that recover should report these (the `gts fsck`
    /// verifier and the engine's `ckpt.manifest.skipped` counter do) —
    /// a skipped entry means real damage on disk, silently walked past.
    pub fn load_latest_with_skipped(&self) -> Result<(u64, Snapshot, Vec<String>), CkptError> {
        let manifest = self.dir.join(MANIFEST);
        let text = match fs::read_to_string(&manifest) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                return Err(CkptError::NoSnapshot {
                    dir: self.dir.clone(),
                })
            }
            Err(e) => return Err(CkptError::io("read", &manifest, &e)),
        };
        let entries: Vec<&str> = text
            .lines()
            .skip(1) // header
            .map(str::trim)
            .filter(|l| !l.is_empty())
            .collect();
        if !text.starts_with(MANIFEST_HEADER) {
            return Err(CkptError::Corrupt {
                reason: "manifest header missing or unrecognized".to_string(),
            });
        }
        if entries.is_empty() {
            return Err(CkptError::NoSnapshot {
                dir: self.dir.clone(),
            });
        }
        let mut skipped = Vec::new();
        for name in &entries {
            let path = self.dir.join(name);
            let Ok(bytes) = fs::read(&path) else {
                // Missing file: fall back to the next entry.
                skipped.push((*name).to_string());
                continue;
            };
            let Ok(snap) = Snapshot::decode(&bytes) else {
                // Torn or corrupt: fall back to the next entry.
                skipped.push((*name).to_string());
                continue;
            };
            let Some(seq) = Self::parse_seq(name) else {
                skipped.push((*name).to_string());
                continue;
            };
            return Ok((seq, snap, skipped));
        }
        Err(CkptError::Corrupt {
            reason: format!(
                "all {} manifest entries are unreadable or torn",
                entries.len()
            ),
        })
    }

    /// tmp → write → fsync → rename → dir fsync.
    fn write_file_atomic(&self, name: &str, bytes: &[u8]) -> Result<(), CkptError> {
        let tmp = self.dir.join(format!("{name}.tmp"));
        let path = self.dir.join(name);
        {
            let mut f = File::create(&tmp).map_err(|e| CkptError::io("create", &tmp, &e))?;
            f.write_all(bytes)
                .map_err(|e| CkptError::io("write", &tmp, &e))?;
            f.sync_all().map_err(|e| CkptError::io("fsync", &tmp, &e))?;
        }
        fs::rename(&tmp, &path).map_err(|e| CkptError::io("rename", &path, &e))?;
        self.sync_dir()
    }

    /// Prepend `name` to the manifest, trim to the retention window, and
    /// unlink snapshots that fell out of it.
    fn publish(&self, name: &str) -> Result<(), CkptError> {
        let mut entries = self.manifest_entries();
        entries.retain(|e| e != name);
        entries.insert(0, name.to_string());
        let dropped: Vec<String> = entries.split_off(entries.len().min(RETAIN));
        let mut text = String::from(MANIFEST_HEADER);
        text.push('\n');
        for e in &entries {
            text.push_str(e);
            text.push('\n');
        }
        self.write_file_atomic(MANIFEST, text.as_bytes())?;
        for e in dropped {
            // Best effort: a leftover unreferenced file is dead weight,
            // not a correctness problem.
            let _ = fs::remove_file(self.dir.join(e));
        }
        Ok(())
    }

    fn manifest_entries(&self) -> Vec<String> {
        fs::read_to_string(self.dir.join(MANIFEST))
            .map(|t| {
                t.lines()
                    .skip(1)
                    .map(str::trim)
                    .filter(|l| !l.is_empty())
                    .map(str::to_string)
                    .collect()
            })
            .unwrap_or_default()
    }

    fn sync_dir(&self) -> Result<(), CkptError> {
        // Persisting a rename requires fsyncing the containing directory.
        // Some platforms refuse to open directories; treat that as a soft
        // failure rather than aborting the run (the data file itself is
        // already synced).
        if let Ok(d) = File::open(&self.dir) {
            let _ = d.sync_all();
        }
        Ok(())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gts-ckpt-test-{}-{tag}-{n}", std::process::id()))
    }

    fn snap(marker: u8) -> Snapshot {
        let mut s = Snapshot::new(1);
        s.insert("clock", vec![marker; 16]);
        s.insert("program", vec![marker ^ 0xFF; 64]);
        s
    }

    #[test]
    fn write_then_load_round_trips() {
        let store = CkptStore::open(tmp_dir("roundtrip")).unwrap();
        let bytes = store.write(4, &snap(4)).unwrap();
        assert!(bytes > 0);
        let (seq, loaded) = store.load_latest().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(loaded, snap(4));
    }

    #[test]
    fn newest_snapshot_wins() {
        let store = CkptStore::open(tmp_dir("newest")).unwrap();
        store.write(2, &snap(2)).unwrap();
        store.write(4, &snap(4)).unwrap();
        let (seq, loaded) = store.load_latest().unwrap();
        assert_eq!(seq, 4);
        assert_eq!(loaded, snap(4));
    }

    #[test]
    fn torn_newest_falls_back_to_previous() {
        let store = CkptStore::open(tmp_dir("torn")).unwrap();
        store.write(2, &snap(2)).unwrap();
        store.write_torn(4, &snap(4)).unwrap();
        // The manifest's first entry is the torn file; load must skip it.
        let (seq, loaded) = store.load_latest().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(loaded, snap(2));
    }

    #[test]
    fn skipped_manifest_entries_are_surfaced_by_name() {
        let store = CkptStore::open(tmp_dir("skipped")).unwrap();
        store.write(2, &snap(2)).unwrap();
        store.write_torn(4, &snap(4)).unwrap();
        let (seq, loaded, skipped) = store.load_latest_with_skipped().unwrap();
        assert_eq!(seq, 2);
        assert_eq!(loaded, snap(2));
        assert_eq!(skipped, vec!["ckpt-0000000004.snap".to_string()]);

        // A hand-corrupted newest entry (not just a torn write) is
        // surfaced the same way: real damage, silently walked past.
        let store = CkptStore::open(tmp_dir("corrupted")).unwrap();
        store.write(1, &snap(1)).unwrap();
        store.write(2, &snap(2)).unwrap();
        fs::write(store.dir().join("ckpt-0000000002.snap"), b"JUNK").unwrap();
        let (seq, loaded, skipped) = store.load_latest_with_skipped().unwrap();
        assert_eq!((seq, loaded), (1, snap(1)));
        assert_eq!(skipped, vec!["ckpt-0000000002.snap".to_string()]);
    }

    #[test]
    fn all_entries_torn_is_a_typed_corrupt_error() {
        let store = CkptStore::open(tmp_dir("alltorn")).unwrap();
        store.write_torn(1, &snap(1)).unwrap();
        assert!(matches!(
            store.load_latest(),
            Err(CkptError::Corrupt { .. })
        ));
    }

    #[test]
    fn empty_dir_reports_no_snapshot() {
        let dir = tmp_dir("empty");
        let store = CkptStore::open(&dir).unwrap();
        assert_eq!(
            store.load_latest().unwrap_err(),
            CkptError::NoSnapshot { dir }
        );
    }

    #[test]
    fn retention_keeps_exactly_two_snapshots() {
        let store = CkptStore::open(tmp_dir("retain")).unwrap();
        for seq in 1..=5 {
            store.write(seq, &snap(seq as u8)).unwrap();
        }
        let mut snaps: Vec<String> = fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .filter(|n| n.ends_with(".snap"))
            .collect();
        snaps.sort();
        assert_eq!(
            snaps,
            vec!["ckpt-0000000004.snap", "ckpt-0000000005.snap"],
            "only the newest two snapshots should survive retention"
        );
        // And the fallback still loads if the newest is destroyed.
        fs::remove_file(store.dir().join("ckpt-0000000005.snap")).unwrap();
        let (seq, _) = store.load_latest().unwrap();
        assert_eq!(seq, 4);
    }

    #[test]
    fn error_displays_render_context_fields() {
        let cases: Vec<(CkptError, &[&str])> = vec![
            (
                CkptError::Io {
                    op: "rename",
                    path: PathBuf::from("/ckpt/x.snap"),
                    source: "permission denied".into(),
                },
                &["rename", "/ckpt/x.snap", "permission denied"],
            ),
            (
                CkptError::Corrupt {
                    reason: "checksum mismatch".into(),
                },
                &["corrupt", "checksum mismatch"],
            ),
            (
                CkptError::Truncated {
                    what: "sim clock",
                    need: 8,
                    have: 3,
                },
                &["sim clock", "8", "3"],
            ),
            (
                CkptError::VersionMismatch {
                    found: 9,
                    expected: 1,
                },
                &["9", "1"],
            ),
            (
                CkptError::MissingSection { name: "rng".into() },
                &["\"rng\""],
            ),
            (
                CkptError::NoSnapshot {
                    dir: PathBuf::from("/ckpts"),
                },
                &["/ckpts"],
            ),
            (
                CkptError::Mismatch {
                    what: "store fingerprint",
                    want: 0xAB,
                    got: 0xCD,
                },
                &[
                    "store fingerprint",
                    "0x00000000000000ab",
                    "0x00000000000000cd",
                ],
            ),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(
                    msg.contains(needle),
                    "Display for {err:?} lost context: {msg:?} missing {needle:?}"
                );
            }
            assert!(
                !msg.contains("{ "),
                "Display for {err:?} leaks Debug formatting: {msg:?}"
            );
        }
    }
}
