//! Property tests of the slotted page format: any graph, any sane format
//! configuration — build must round-trip exactly and the RVT must resolve
//! every record ID back to the vertex that owns it.

use gts_graph::EdgeList;
use gts_storage::{build_graph_store, PageFormatConfig, PageKind, PhysicalIdConfig};
use proptest::prelude::*;

/// Random small multigraph (duplicates and self-loops allowed).
fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..200).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..600)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// Random format: (p,q) widths wide enough for small graphs, page sizes
/// spanning "everything is an LP" to "everything fits one SP".
fn arb_format() -> impl Strategy<Value = PageFormatConfig> {
    (2u8..=4, 2u8..=4, 7u32..=14).prop_map(|(p, q, logsz)| {
        PageFormatConfig::new(PhysicalIdConfig::new(p, q), 1usize << logsz)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn build_roundtrips_any_graph_any_format(graph in arb_graph(), fmt in arb_format()) {
        let store = build_graph_store(&graph, fmt).expect("small graphs always fit 2..4-byte ids");
        let mut want: Vec<(u64, u64)> = graph
            .edges
            .iter()
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        want.sort_unstable();
        prop_assert_eq!(store.decode_edges(), want);
    }

    #[test]
    fn every_vertex_is_addressable(graph in arb_graph(), fmt in arb_format()) {
        let store = build_graph_store(&graph, fmt).unwrap();
        for v in 0..store.num_vertices() {
            let rid = store.rid_of_vertex(v);
            prop_assert_eq!(store.rvt().translate(rid), v);
            prop_assert!(rid.pid < store.num_pages());
        }
    }

    #[test]
    fn page_accounting_is_consistent(graph in arb_graph(), fmt in arb_format()) {
        let store = build_graph_store(&graph, fmt).unwrap();
        prop_assert_eq!(
            store.small_pids().len() + store.large_pids().len(),
            store.num_pages() as usize
        );
        let edge_sum: u64 = (0..store.num_pages()).map(|p| store.edges_in_page(p)).sum();
        prop_assert_eq!(edge_sum, graph.num_edges() as u64);
        // Every page's kind matches its id list.
        for &pid in store.small_pids() {
            prop_assert_eq!(store.view(pid).kind(), PageKind::Small);
        }
        for &pid in store.large_pids() {
            prop_assert_eq!(store.view(pid).kind(), PageKind::Large);
        }
    }

    #[test]
    fn sp_vids_are_consecutive(graph in arb_graph(), fmt in arb_format()) {
        let store = build_graph_store(&graph, fmt).unwrap();
        for &pid in store.small_pids() {
            let v = store.view(pid);
            let start = store.rvt().entry(pid).start_vid;
            for slot in 0..v.count() {
                prop_assert_eq!(v.sp_vid(slot), start + slot as u64);
            }
        }
    }

    #[test]
    fn lp_runs_are_contiguous_and_complete(graph in arb_graph(), fmt in arb_format()) {
        let store = build_graph_store(&graph, fmt).unwrap();
        let mut seen: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();
        for &pid in store.large_pids() {
            let v = store.view(pid);
            *seen.entry(v.lp_vid()).or_insert(0) += v.count() as u64;
            // The run declared by the RVT stays within Large pages of the
            // same vertex.
            let range = store.rvt().entry(pid).lp_range.expect("LP has range");
            for p in pid..=pid + range as u64 {
                prop_assert_eq!(store.view(p).lp_vid(), v.lp_vid());
            }
        }
        for (vid, total) in seen {
            let deg = graph
                .edges
                .iter()
                .filter(|&&(s, _)| s as u64 == vid)
                .count() as u64;
            prop_assert_eq!(total, deg, "LP vertex {} chunk counts", vid);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn cache_policies_respect_capacity_and_agree_on_infinite_cache(
        accesses in proptest::collection::vec(0u64..64, 1..400),
        cap in 0usize..32,
    ) {
        use gts_storage::cache::{CachePolicy, FifoCache, LruCache, RandomCache};
        let mut caches: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruCache::new(cap)),
            Box::new(FifoCache::new(cap)),
            Box::new(RandomCache::new(cap, 7)),
        ];
        for c in &mut caches {
            for &a in &accesses {
                c.access(a);
                prop_assert!(c.len() <= cap);
            }
        }
        // With capacity >= key space the policies are equivalent: every
        // access after the first of a key hits.
        let distinct: std::collections::HashSet<u64> = accesses.iter().copied().collect();
        let mut big: Vec<Box<dyn CachePolicy>> = vec![
            Box::new(LruCache::new(64)),
            Box::new(FifoCache::new(64)),
            Box::new(RandomCache::new(64, 7)),
        ];
        for c in &mut big {
            for &a in &accesses {
                c.access(a);
            }
            prop_assert_eq!(c.misses(), distinct.len() as u64);
            prop_assert_eq!(c.hits(), (accesses.len() - distinct.len()) as u64);
        }
    }

    #[test]
    fn mmbuf_hit_rate_bounded(accesses in proptest::collection::vec(0u64..32, 1..200), cap in 0usize..16) {
        let mut buf = gts_storage::MmBuf::new(cap);
        for &a in &accesses {
            buf.access(a);
        }
        prop_assert_eq!(buf.hits() + buf.misses(), accesses.len() as u64);
        let rate = buf.hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
        if cap == 0 {
            prop_assert_eq!(buf.hits(), 0);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Fuzz the load path: flipping any byte of a valid store file must
    /// produce an error or a still-consistent store — never a panic.
    #[test]
    fn load_survives_single_byte_corruption(
        corrupt_at_frac in 0.0f64..1.0,
        new_byte in 0u8..=255,
        seed in 0u64..50,
    ) {
        use gts_storage::{load_store, save_store};
        let graph = gts_graph::generate::Rmat::new(7).with_seed(seed).generate();
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512),
        )
        .unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!(
            "gts-fuzz-{}-{}",
            std::process::id(),
            (corrupt_at_frac * 1e9) as u64 ^ seed ^ new_byte as u64
        ));
        save_store(&store, &path).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        let at = ((bytes.len() - 1) as f64 * corrupt_at_frac) as usize;
        bytes[at] = new_byte;
        std::fs::write(&path, &bytes).unwrap();
        // Must not panic; errors are fine, and a lucky no-op flip must
        // still yield a store that decodes to *some* consistent graph.
        let result = std::panic::catch_unwind(|| load_store(&path));
        std::fs::remove_file(&path).ok();
        match result {
            Ok(_) => {}
            Err(_) => prop_assert!(false, "load_store panicked on corrupt byte {at}"),
        }
    }
}

#[test]
fn vid_range_spanning_vertex_ids_work_at_48_bits() {
    // Not random: one deliberate boundary check at the 6-byte VID limit
    // via direct page encoding (graph-level builds at 2^48 vertices are
    // not materialisable).
    use gts_storage::page::SmallPageEncoder;
    use gts_storage::RecordId;
    let cfg = PageFormatConfig::new(PhysicalIdConfig::new(4, 4), 4096);
    let mut enc = SmallPageEncoder::new(cfg);
    let vid = (1u64 << 48) - 1;
    enc.push_vertex(vid, &[RecordId::new((1 << 32) - 1, u32::MAX)]);
    let page = enc.finish(0);
    let v = page
        .verify(cfg)
        .expect("encoder-sealed page verifies")
        .view();
    assert_eq!(v.sp_vid(0), vid);
    assert_eq!(v.sp_adj(0, 0), RecordId::new((1 << 32) - 1, u32::MAX));
}
