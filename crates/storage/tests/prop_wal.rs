//! Property tests of the mutation WAL: for any random sequence of valid
//! insert/delete batches, logging then replaying onto a fresh seed store
//! must reproduce the directly mutated store exactly — page bytes, RVT,
//! delta tables, and epoch — and a torn tail must truncate to the longest
//! valid prefix without losing any sealed record.

use gts_graph::EdgeList;
use gts_storage::{
    build_graph_store, GraphStore, MutationBatch, PageFormatConfig, PhysicalIdConfig, Wal, WAL_FILE,
};
use proptest::prelude::*;
use proptest::TestCaseError;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn tmp_dir(tag: &str) -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gts-prop-wal-{}-{tag}-{n}", std::process::id()))
}

fn cfg() -> PageFormatConfig {
    PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256)
}

/// One generated run: the vertex-count bound, the seed edge list, and
/// per-batch op seeds.
type RunSeed = (u32, Vec<(u32, u32)>, Vec<Vec<(u64, u64, u64)>>);

/// A seed graph plus op seeds that the test turns into *valid* batches
/// (deletes always name a live edge, so every batch applies cleanly).
fn arb_run() -> impl Strategy<Value = RunSeed> {
    (4u32..40).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n), 1..80),
            proptest::collection::vec(
                proptest::collection::vec((0u64..3, 0u64..1000, 0u64..1000), 1..12),
                1..8,
            ),
        )
    })
}

/// Turn op seeds into a batch that is valid against `edges`, mutating
/// `edges` to track the store's resulting state.
fn realize_batch(n: u64, edges: &mut Vec<(u64, u64)>, seeds: &[(u64, u64, u64)]) -> MutationBatch {
    let mut b = MutationBatch::new();
    for &(kind, a, c) in seeds {
        // kind 0..=1: insert (weighted 2:1 over delete so stores grow).
        if kind < 2 || edges.is_empty() {
            let (src, dst) = (a % n, c % n);
            b.insert(src, dst);
            edges.push((src, dst));
        } else {
            let idx = (a as usize) % edges.len();
            let (src, dst) = edges.swap_remove(idx);
            b.delete(src, dst);
        }
    }
    b
}

fn assert_stores_identical(a: &GraphStore, b: &GraphStore) -> Result<(), TestCaseError> {
    prop_assert_eq!(a.epoch(), b.epoch(), "epoch");
    prop_assert_eq!(a.num_pages(), b.num_pages(), "page count");
    prop_assert_eq!(a.num_edges(), b.num_edges(), "edge count");
    prop_assert_eq!(a.rvt(), b.rvt(), "RVT");
    for (pid, (pa, pb)) in a.pages().iter().zip(b.pages().iter()).enumerate() {
        prop_assert_eq!(&pa.data, &pb.data, "page {} bytes", pid);
    }
    for v in 0..a.num_vertices() {
        prop_assert_eq!(
            a.delta_pids_of(v),
            b.delta_pids_of(v),
            "delta table of {}",
            v
        );
        prop_assert_eq!(a.rid_of_vertex(v), b.rid_of_vertex(v), "rid of {}", v);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Log-then-apply, then replay the whole WAL onto a fresh seed store:
    /// the replayed store must equal the directly mutated one exactly.
    #[test]
    fn wal_replay_equals_direct_apply(run in arb_run()) {
        let (n, seed_edges, batch_seeds) = run;
        let dir = tmp_dir("replay");
        let graph = EdgeList::new(n, seed_edges.clone());
        let mut direct = build_graph_store(&graph, cfg()).unwrap();
        let mut edges: Vec<(u64, u64)> = direct.decode_edges();
        let mut wal = Wal::open(&dir, &direct).unwrap();
        for seeds in &batch_seeds {
            let b = realize_batch(n as u64, &mut edges, seeds);
            direct.apply_mutations_logged(&b, &mut wal).unwrap();
        }

        let mut replayed = build_graph_store(&graph, cfg()).unwrap();
        let loaded = Wal::load(&dir).unwrap();
        prop_assert_eq!(loaded.records().len(), batch_seeds.len());
        prop_assert_eq!(loaded.truncated_tail(), 0);
        loaded.replay_onto(&mut replayed).unwrap();
        assert_stores_identical(&direct, &replayed)?;
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Replay from a mid-sequence "snapshot" (a store that already holds
    /// a prefix of the batches): only the suffix applies, same end state.
    #[test]
    fn wal_suffix_replay_from_any_prefix(run in arb_run()) {
        let (n, seed_edges, batch_seeds) = run;
        let dir = tmp_dir("suffix");
        let graph = EdgeList::new(n, seed_edges.clone());
        let mut direct = build_graph_store(&graph, cfg()).unwrap();
        let mut edges: Vec<(u64, u64)> = direct.decode_edges();
        let mut wal = Wal::open(&dir, &direct).unwrap();
        let mut batches = Vec::new();
        for seeds in &batch_seeds {
            let b = realize_batch(n as u64, &mut edges, seeds);
            direct.apply_mutations_logged(&b, &mut wal).unwrap();
            batches.push(b);
        }

        let cut = batches.len() / 2;
        let mut resumed = build_graph_store(&graph, cfg()).unwrap();
        for b in &batches[..cut] {
            resumed.apply_mutations(b).unwrap();
        }
        let applied = Wal::load(&dir).unwrap().replay_onto(&mut resumed).unwrap();
        prop_assert_eq!(applied as usize, batches.len() - cut);
        assert_stores_identical(&direct, &resumed)?;
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A torn final append must truncate to the longest valid prefix: the
    /// sealed records all survive, the torn bytes vanish, and replay
    /// reproduces the pre-torn store.
    #[test]
    fn torn_tail_recovers_longest_valid_prefix(run in arb_run()) {
        let (n, seed_edges, batch_seeds) = run;
        let dir = tmp_dir("torn");
        let graph = EdgeList::new(n, seed_edges.clone());
        let mut direct = build_graph_store(&graph, cfg()).unwrap();
        let mut edges: Vec<(u64, u64)> = direct.decode_edges();
        let mut wal = Wal::open(&dir, &direct).unwrap();
        for seeds in &batch_seeds {
            let b = realize_batch(n as u64, &mut edges, seeds);
            direct.apply_mutations_logged(&b, &mut wal).unwrap();
        }
        // Crash mid-append of one more batch: only a prefix of the frame
        // reaches the file.
        let torn_batch = realize_batch(n as u64, &mut edges, &[(0, 1, 2)]);
        let pre = direct.epoch();
        wal.log_batch_torn(&torn_batch, pre, pre + 1).unwrap();

        let loaded = Wal::load(&dir).unwrap();
        prop_assert_eq!(loaded.records().len(), batch_seeds.len());
        prop_assert!(loaded.truncated_tail() > 0);

        // Re-open repairs the file; replay lands on the pre-torn store.
        let seed_store = build_graph_store(&graph, cfg()).unwrap();
        let reopened = Wal::open(&dir, &seed_store).unwrap();
        prop_assert_eq!(reopened.records().len(), batch_seeds.len());
        let mut replayed = seed_store;
        reopened.replay_onto(&mut replayed).unwrap();
        assert_stores_identical(&direct, &replayed)?;

        // And the repaired file is whole: a fresh load sees no tail.
        prop_assert_eq!(Wal::load(&dir).unwrap().truncated_tail(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Truncating the log file at *any* byte position never panics and
    /// never yields a record that was not sealed in the original.
    #[test]
    fn arbitrary_truncation_is_safe(run in arb_run(), cut_frac in 0.0f64..1.0) {
        let (n, seed_edges, batch_seeds) = run;
        let dir = tmp_dir("cut");
        let graph = EdgeList::new(n, seed_edges.clone());
        let mut store = build_graph_store(&graph, cfg()).unwrap();
        let mut edges: Vec<(u64, u64)> = store.decode_edges();
        let mut wal = Wal::open(&dir, &store).unwrap();
        for seeds in &batch_seeds {
            let b = realize_batch(n as u64, &mut edges, seeds);
            store.apply_mutations_logged(&b, &mut wal).unwrap();
        }
        let path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&path).unwrap();
        let cut = ((bytes.len() - 1) as f64 * cut_frac) as usize;
        std::fs::write(&path, &bytes[..cut]).unwrap();
        match Wal::load(&dir) {
            Ok(loaded) => {
                // Every surviving record must be a prefix of the originals.
                prop_assert!(loaded.records().len() <= batch_seeds.len());
                for (a, b) in loaded.records().iter().zip(wal.records()) {
                    prop_assert_eq!(a.batch.ops(), b.batch.ops());
                    prop_assert_eq!(a.pre_epoch, b.pre_epoch);
                }
            }
            Err(_) => {
                // A cut inside the header is a typed error, not a panic.
                prop_assert!(cut < bytes.len());
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
