//! Property tests for the cache/buffer contracts shared by every
//! `CachePolicy` implementation (LRU, FIFO, random) and `MmBuf`:
//!
//! - residency never exceeds capacity;
//! - every access is counted exactly once (`hits + misses == accesses`);
//! - `contains` is a pure observation — probing never changes recency,
//!   residency, or counters;
//! - `probe_batch` is byte-identical to per-page `access` — same hit/miss
//!   sequence, same eviction state, same counters, and the same behaviour
//!   for every access that comes *after* the batch.

use gts_storage::{CachePolicy, FifoCache, LruCache, MmBuf, RandomCache};
use proptest::prelude::*;

const PID_UNIVERSE: u64 = 24;

/// A capacity plus an access trace drawn from a small pid universe (small on
/// purpose: collisions and evictions must actually happen).
fn arb_trace() -> impl Strategy<Value = (usize, Vec<u64>)> {
    (
        0usize..12,
        proptest::collection::vec(0u64..PID_UNIVERSE, 0..300),
    )
}

fn policies(capacity: usize) -> Vec<Box<dyn CachePolicy>> {
    vec![
        Box::new(LruCache::new(capacity)),
        Box::new(FifoCache::new(capacity)),
        Box::new(RandomCache::new(capacity, 0x6715)),
    ]
}

fn residency(c: &dyn CachePolicy) -> Vec<bool> {
    (0..PID_UNIVERSE).map(|p| c.contains(p)).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_len_is_bounded_and_accesses_are_conserved(input in arb_trace()) {
        let (capacity, trace) = input;
        for mut c in policies(capacity) {
            for (step, &pid) in trace.iter().enumerate() {
                c.access(pid);
                prop_assert!(
                    c.len() <= c.capacity(),
                    "{}: len {} > capacity {} after step {}",
                    c.name(), c.len(), c.capacity(), step
                );
                prop_assert_eq!(c.hits() + c.misses(), step as u64 + 1, "{}", c.name());
            }
            // is_empty is defined as len == 0 — the comparison IS the contract.
            #[allow(clippy::len_zero)]
            {
                prop_assert_eq!(c.is_empty(), c.len() == 0, "{}", c.name());
            }
        }
    }

    #[test]
    fn cache_contains_never_mutates(input in arb_trace()) {
        let (capacity, trace) = input;
        // Twin instances see the same access trace, but one is probed with
        // `contains` between every access. If probing influenced recency
        // (or the random policy's RNG), eviction decisions — and therefore
        // residency or hit counts — would eventually diverge.
        for (mut probed, mut control) in policies(capacity).into_iter().zip(policies(capacity)) {
            for &pid in &trace {
                probed.access(pid);
                control.access(pid);
                for p in 0..PID_UNIVERSE {
                    let r = probed.contains(p);
                    prop_assert_eq!(r, probed.contains(p), "contains not idempotent");
                }
                prop_assert_eq!(residency(&*probed), residency(&*control), "{}", probed.name());
                prop_assert_eq!(probed.hits(), control.hits(), "{}", probed.name());
                prop_assert_eq!(probed.misses(), control.misses(), "{}", probed.name());
            }
        }
    }

    #[test]
    fn probe_batch_is_byte_identical_to_per_page_probes(
        input in arb_trace(),
        splits in proptest::collection::vec(0usize..300, 0..8),
    ) {
        let (capacity, trace) = input;
        // Cut the trace into chunks at arbitrary points — the batched
        // instance executes each chunk with one probe_batch call, the
        // control instance probes page by page. Hit/miss sequences,
        // eviction state (residency over the whole pid universe), and
        // hit/miss counters must agree after every chunk, for all three
        // policies. This is the exact contract the sweep scheduler's
        // per-chunk batching relies on.
        let mut cuts: Vec<usize> = splits.iter().map(|&s| s % (trace.len() + 1)).collect();
        cuts.push(0);
        cuts.push(trace.len());
        cuts.sort_unstable();
        for (mut batched, mut control) in policies(capacity).into_iter().zip(policies(capacity)) {
            for w in cuts.windows(2) {
                let chunk = &trace[w[0]..w[1]];
                let got = batched.probe_batch(chunk);
                let want: Vec<bool> = chunk.iter().map(|&p| control.access(p)).collect();
                prop_assert_eq!(got, want, "{}: hit/miss sequence diverged", batched.name());
                prop_assert_eq!(
                    residency(&*batched),
                    residency(&*control),
                    "{}: eviction state diverged",
                    batched.name()
                );
                prop_assert_eq!(batched.hits(), control.hits(), "{}", batched.name());
                prop_assert_eq!(batched.misses(), control.misses(), "{}", batched.name());
                prop_assert_eq!(batched.len(), control.len(), "{}", batched.name());
            }
        }
    }

    #[test]
    fn mmbuf_meets_the_same_contract(input in arb_trace()) {
        let (capacity, trace) = input;
        let mut probed = MmBuf::new(capacity);
        let mut control = MmBuf::new(capacity);
        for (step, &pid) in trace.iter().enumerate() {
            let hit = probed.access(pid);
            prop_assert_eq!(hit, control.access(pid));
            prop_assert!(probed.len() <= probed.capacity());
            prop_assert_eq!(probed.hits() + probed.misses(), step as u64 + 1);
            // Probing residency must not disturb FIFO order or counters.
            let r: Vec<bool> = (0..PID_UNIVERSE).map(|p| probed.contains(p)).collect();
            let rc: Vec<bool> = (0..PID_UNIVERSE).map(|p| control.contains(p)).collect();
            prop_assert_eq!(r, rc);
            prop_assert_eq!(probed.hits(), control.hits());
            prop_assert_eq!(probed.evictions(), control.evictions());
        }
    }
}
