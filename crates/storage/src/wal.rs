//! Mutation write-ahead log: durability for the live topology.
//!
//! Since the mutation pipeline landed, an applied [`MutationBatch`] lives
//! only in memory — a crash between checkpoints silently loses every
//! batch, and resume can only *refuse* the mutated store. This module
//! closes that gap with a log-before-apply WAL:
//!
//! * every non-empty batch is appended to `wal.log` **before**
//!   [`GraphStore::apply_mutations`] installs it, sealed record by record
//!   with the same FNV-1a trailer the slotted pages use;
//! * the file is rewritten through the checkpoint store's atomic
//!   discipline (temp file → fsync → rename → directory fsync), so a
//!   crash mid-append leaves either the old log or the new log — a torn
//!   tail on a non-atomic filesystem is *detected* and truncated to the
//!   longest valid prefix;
//! * recovery replays the WAL suffix on top of the newest snapshot and
//!   lands byte-identical to the uncrashed store, epoch included, because
//!   [`GraphStore::apply_mutations`] is deterministic.
//!
//! ## File layout (all integers little-endian)
//!
//! ```text
//! magic         8 bytes   b"GTSWAL1\0"
//! version       u32       1
//! store_id_fp   u64       FNV-1a over (num_vertices, page_size, p, q)
//! num_vertices  u64       ┐
//! page_size     u32       │ the binding, readable without the store
//! p, q          u8 × 2    ┘
//! base_epoch    u64       store epoch when the log was created
//! header sum    u64       FNV-1a over every preceding byte
//! per record:
//!   body len    u32
//!   body                  pre_epoch u64, post_epoch u64, op count u32,
//!                         ops (tag u8, src u64, dst u64)
//!   trailer     u64       FNV-1a over the body
//! ```
//!
//! Records form a contiguous epoch chain: the first record's `pre_epoch`
//! is `base_epoch`, every record has `post_epoch == pre_epoch + 1`, and
//! each record's `pre_epoch` equals its predecessor's `post_epoch`.
//! [`Wal::log_batch`] enforces the chain and is idempotent — re-logging a
//! batch the log already holds (the crash-between-log-and-apply resume
//! path) verifies the stored record matches and appends nothing.

use crate::builder::GraphStore;
use crate::mutate::{EdgeOp, MutateError, MutationBatch, MutationOutcome};
use gts_ckpt::{fnv1a, ByteReader, ByteWriter};
use std::fmt;
use std::fs::{self, File};
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"GTSWAL1\0";
const VERSION: u32 = 1;
/// The log's file name inside its directory.
pub const WAL_FILE: &str = "wal.log";

/// Everything that can go wrong while writing, reading, or replaying the
/// mutation WAL. Mirrors `gts-ckpt`'s error shape: every variant carries
/// enough context to act on without a debugger.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalError {
    /// A filesystem operation failed.
    Io {
        /// What we were doing ("create", "write", "rename", ...).
        op: &'static str,
        /// The path involved.
        path: PathBuf,
        /// The OS error, stringified.
        source: String,
    },
    /// Log bytes failed structural validation (bad magic, bad header
    /// checksum, malformed record).
    Corrupt {
        /// What exactly failed to validate.
        reason: String,
    },
    /// The log belongs to a different store or disagrees with the epoch
    /// chain being appended.
    Mismatch {
        /// What disagreed ("store fingerprint", "pre-epoch", ...).
        what: &'static str,
        /// The value this side requires.
        want: u64,
        /// The value actually found.
        got: u64,
    },
    /// The logged batch was rejected by [`GraphStore::apply_mutations`];
    /// the log entry is rolled back and the store is untouched.
    Rejected(MutateError),
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io { op, path, source } => {
                write!(f, "wal {op} failed for {}: {source}", path.display())
            }
            WalError::Corrupt { reason } => write!(f, "corrupt wal: {reason}"),
            WalError::Mismatch { what, want, got } => write!(
                f,
                "wal {what} mismatch: log has {got:#018x}, this side requires {want:#018x}"
            ),
            WalError::Rejected(e) => write!(f, "wal batch rejected by the store: {e}"),
        }
    }
}

impl std::error::Error for WalError {}

impl WalError {
    fn io(op: &'static str, path: &Path, e: &std::io::Error) -> Self {
        WalError::Io {
            op,
            path: path.to_path_buf(),
            source: e.to_string(),
        }
    }
}

/// The store-binding header of a WAL file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalHeader {
    /// FNV-1a over `(num_vertices, page_size, p, q)` — the structural
    /// identity of the store this log belongs to.
    pub store_id_fp: u64,
    /// Vertex count of the bound store.
    pub num_vertices: u64,
    /// Page size of the bound store.
    pub page_size: u32,
    /// Physical-ID page-id byte width.
    pub p: u8,
    /// Physical-ID slot byte width.
    pub q: u8,
    /// Store epoch when the log was created; the first record's
    /// `pre_epoch`.
    pub base_epoch: u64,
}

/// One sealed log entry: a batch plus the epoch transition it commits.
#[derive(Debug, Clone)]
pub struct WalRecord {
    /// Store epoch the batch applies on top of.
    pub pre_epoch: u64,
    /// Store epoch after application (always `pre_epoch + 1`).
    pub post_epoch: u64,
    /// The logged batch, in application order.
    pub batch: MutationBatch,
}

/// The structural identity fingerprint a WAL header binds: everything a
/// log needs to refuse replay against the wrong store, computable from
/// either side.
pub fn store_identity_fp(num_vertices: u64, page_size: u32, p: u8, q: u8) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(num_vertices);
    w.put_u32(page_size);
    w.put_u8(p);
    w.put_u8(q);
    fnv1a(&w.into_bytes())
}

fn identity_of(store: &GraphStore) -> (u64, u32, u8, u8) {
    let cfg = store.cfg();
    (
        store.num_vertices(),
        cfg.page_size as u32,
        cfg.id.p,
        cfg.id.q,
    )
}

fn encode_record_body(rec: &WalRecord) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64(rec.pre_epoch);
    w.put_u64(rec.post_epoch);
    w.put_u32(rec.batch.len() as u32);
    for op in rec.batch.ops() {
        match *op {
            EdgeOp::Insert { src, dst } => {
                w.put_u8(0);
                w.put_u64(src);
                w.put_u64(dst);
            }
            EdgeOp::Delete { src, dst } => {
                w.put_u8(1);
                w.put_u64(src);
                w.put_u64(dst);
            }
        }
    }
    w.into_bytes()
}

fn decode_record_body(body: &[u8]) -> Result<WalRecord, WalError> {
    let corrupt = |e: gts_ckpt::CkptError| WalError::Corrupt {
        reason: format!("record body: {e}"),
    };
    let mut r = ByteReader::new(body);
    let pre_epoch = r.take_u64("wal pre-epoch").map_err(corrupt)?;
    let post_epoch = r.take_u64("wal post-epoch").map_err(corrupt)?;
    let count = r.take_u32("wal op count").map_err(corrupt)?;
    let mut batch = MutationBatch::new();
    for _ in 0..count {
        let tag = r.take_u8("wal op tag").map_err(corrupt)?;
        let src = r.take_u64("wal op src").map_err(corrupt)?;
        let dst = r.take_u64("wal op dst").map_err(corrupt)?;
        match tag {
            0 => batch.insert(src, dst),
            1 => batch.delete(src, dst),
            other => {
                return Err(WalError::Corrupt {
                    reason: format!("unknown wal op tag {other}"),
                })
            }
        };
    }
    r.finish().map_err(corrupt)?;
    Ok(WalRecord {
        pre_epoch,
        post_epoch,
        batch,
    })
}

fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let body = encode_record_body(rec);
    let mut frame = Vec::with_capacity(4 + body.len() + 8);
    frame.extend_from_slice(&(body.len() as u32).to_le_bytes());
    frame.extend_from_slice(&body);
    frame.extend_from_slice(&fnv1a(&body).to_le_bytes());
    frame
}

fn encode_header(h: &WalHeader) -> Vec<u8> {
    let mut buf = MAGIC.to_vec();
    let mut w = ByteWriter::new();
    w.put_u32(VERSION);
    w.put_u64(h.store_id_fp);
    w.put_u64(h.num_vertices);
    w.put_u32(h.page_size);
    w.put_u8(h.p);
    w.put_u8(h.q);
    w.put_u64(h.base_epoch);
    buf.extend_from_slice(&w.into_bytes());
    let sum = fnv1a(&buf);
    buf.extend_from_slice(&sum.to_le_bytes());
    buf
}

/// magic + version + fp + nv + page_size + p + q + base_epoch + checksum.
const HEADER_LEN: usize = 8 + 4 + 8 + 8 + 4 + 1 + 1 + 8 + 8;

fn decode_header(bytes: &[u8]) -> Result<WalHeader, WalError> {
    if bytes.len() < HEADER_LEN {
        return Err(WalError::Corrupt {
            reason: format!("{} bytes is too short to be a wal header", bytes.len()),
        });
    }
    let (payload, trailer) = bytes[..HEADER_LEN].split_at(HEADER_LEN - 8);
    let stored = u64::from_le_bytes([
        trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
        trailer[7],
    ]);
    let computed = fnv1a(payload);
    if stored != computed {
        return Err(WalError::Corrupt {
            reason: format!(
                "header checksum mismatch: stored {stored:#018x}, computed {computed:#018x}"
            ),
        });
    }
    if &payload[..MAGIC.len()] != MAGIC {
        return Err(WalError::Corrupt {
            reason: "bad magic".to_string(),
        });
    }
    let corrupt = |e: gts_ckpt::CkptError| WalError::Corrupt {
        reason: format!("header: {e}"),
    };
    let mut r = ByteReader::new(&payload[MAGIC.len()..]);
    let version = r.take_u32("wal version").map_err(corrupt)?;
    if version != VERSION {
        return Err(WalError::Corrupt {
            reason: format!("wal version {version} is not supported (expected {VERSION})"),
        });
    }
    let store_id_fp = r.take_u64("wal store fp").map_err(corrupt)?;
    let num_vertices = r.take_u64("wal num_vertices").map_err(corrupt)?;
    let page_size = r.take_u32("wal page_size").map_err(corrupt)?;
    let p = r.take_u8("wal p").map_err(corrupt)?;
    let q = r.take_u8("wal q").map_err(corrupt)?;
    let base_epoch = r.take_u64("wal base_epoch").map_err(corrupt)?;
    r.finish().map_err(corrupt)?;
    Ok(WalHeader {
        store_id_fp,
        num_vertices,
        page_size,
        p,
        q,
        base_epoch,
    })
}

/// The mutation write-ahead log: an append-only epoch chain of sealed
/// [`MutationBatch`] records bound to one store.
#[derive(Debug, Clone)]
pub struct Wal {
    path: PathBuf,
    header: WalHeader,
    records: Vec<WalRecord>,
    /// FNV-1a of each record's body, for idempotent duplicate checks.
    record_fps: Vec<u64>,
    /// The current valid file image (header + sealed frames); appends
    /// rewrite this whole image atomically.
    bytes: Vec<u8>,
    /// Bytes dropped from the end of the file at open/load because they
    /// did not form a sealed record (a torn append).
    truncated_tail: u64,
}

impl Wal {
    /// Open (creating if needed) the log in `dir`, bound to `store`.
    ///
    /// An existing log must carry the structural identity of `store`
    /// (typed [`WalError::Mismatch`] otherwise); a torn tail is truncated
    /// to the longest valid prefix, on disk and in memory.
    pub fn open(dir: impl Into<PathBuf>, store: &GraphStore) -> Result<Wal, WalError> {
        let dir = dir.into();
        fs::create_dir_all(&dir).map_err(|e| WalError::io("create", &dir, &e))?;
        let path = dir.join(WAL_FILE);
        let (nv, ps, p, q) = identity_of(store);
        let want_fp = store_identity_fp(nv, ps, p, q);
        if !path.exists() {
            let header = WalHeader {
                store_id_fp: want_fp,
                num_vertices: nv,
                page_size: ps,
                p,
                q,
                base_epoch: store.epoch(),
            };
            let bytes = encode_header(&header);
            write_file_atomic(&path, &bytes)?;
            return Ok(Wal {
                path,
                header,
                records: Vec::new(),
                record_fps: Vec::new(),
                bytes,
                truncated_tail: 0,
            });
        }
        let wal = Wal::load_path(&path)?;
        if wal.header.store_id_fp != want_fp {
            return Err(WalError::Mismatch {
                what: "store fingerprint",
                want: want_fp,
                got: wal.header.store_id_fp,
            });
        }
        if wal.truncated_tail > 0 {
            // Persist the truncation so the on-disk file is whole again.
            write_file_atomic(&wal.path, &wal.bytes)?;
        }
        wal.check_chain()?;
        Ok(wal)
    }

    /// Load the log in `dir` read-only, without a store to bind against —
    /// the `fsck` entry point. A torn tail is noted
    /// ([`Wal::truncated_tail`]) but the file is left untouched.
    pub fn load(dir: impl AsRef<Path>) -> Result<Wal, WalError> {
        let wal = Wal::load_path(&dir.as_ref().join(WAL_FILE))?;
        wal.check_chain()?;
        Ok(wal)
    }

    fn load_path(path: &Path) -> Result<Wal, WalError> {
        let raw = fs::read(path).map_err(|e| WalError::io("read", path, &e))?;
        let header = decode_header(&raw)?;
        let mut records = Vec::new();
        let mut record_fps = Vec::new();
        let mut pos = HEADER_LEN;
        let mut valid = pos;
        while pos < raw.len() {
            // A frame needs its length, body, and trailer in full, with a
            // matching trailer; anything less is a torn append.
            if raw.len() - pos < 4 {
                break;
            }
            let len =
                u32::from_le_bytes([raw[pos], raw[pos + 1], raw[pos + 2], raw[pos + 3]]) as usize;
            if raw.len() - pos < 4 + len + 8 {
                break;
            }
            let body = &raw[pos + 4..pos + 4 + len];
            let trailer = &raw[pos + 4 + len..pos + 4 + len + 8];
            let stored = u64::from_le_bytes([
                trailer[0], trailer[1], trailer[2], trailer[3], trailer[4], trailer[5], trailer[6],
                trailer[7],
            ]);
            if stored != fnv1a(body) {
                break;
            }
            records.push(decode_record_body(body)?);
            record_fps.push(fnv1a(body));
            pos += 4 + len + 8;
            valid = pos;
        }
        Ok(Wal {
            path: path.to_path_buf(),
            header,
            records,
            record_fps,
            bytes: raw[..valid].to_vec(),
            truncated_tail: (raw.len() - valid) as u64,
        })
    }

    /// Reject a log whose sealed records do not form a contiguous
    /// `+1`-per-record epoch chain from `base_epoch` — individually valid
    /// frames in a broken order mean the file was tampered with, not torn.
    fn check_chain(&self) -> Result<(), WalError> {
        let mut expect = self.header.base_epoch;
        for rec in &self.records {
            if rec.pre_epoch != expect {
                return Err(WalError::Mismatch {
                    what: "pre-epoch chain",
                    want: expect,
                    got: rec.pre_epoch,
                });
            }
            if rec.post_epoch != rec.pre_epoch + 1 {
                return Err(WalError::Mismatch {
                    what: "post-epoch",
                    want: rec.pre_epoch + 1,
                    got: rec.post_epoch,
                });
            }
            expect = rec.post_epoch;
        }
        Ok(())
    }

    /// The path of the log file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The store-binding header.
    pub fn header(&self) -> &WalHeader {
        &self.header
    }

    /// Sealed records, in epoch order.
    pub fn records(&self) -> &[WalRecord] {
        &self.records
    }

    /// Bytes dropped from the end of the file at open/load because they
    /// did not form a sealed record.
    pub fn truncated_tail(&self) -> u64 {
        self.truncated_tail
    }

    /// The `pre_epoch` the next logged batch must carry.
    pub fn next_pre_epoch(&self) -> u64 {
        self.records
            .last()
            .map_or(self.header.base_epoch, |r| r.post_epoch)
    }

    /// Append a sealed record for `batch` committing `pre → post`.
    ///
    /// Idempotent: if the chain already holds `pre`, the stored record
    /// must match `batch` exactly (typed mismatch otherwise) and nothing
    /// is appended. Returns the bytes appended (0 for a duplicate or an
    /// empty batch — empty batches do not move the epoch and are never
    /// logged).
    pub fn log_batch(
        &mut self,
        batch: &MutationBatch,
        pre: u64,
        post: u64,
    ) -> Result<u64, WalError> {
        if batch.is_empty() {
            return Ok(0);
        }
        if post != pre + 1 {
            return Err(WalError::Mismatch {
                what: "post-epoch",
                want: pre + 1,
                got: post,
            });
        }
        let next = self.next_pre_epoch();
        let rec = WalRecord {
            pre_epoch: pre,
            post_epoch: post,
            batch: batch.clone(),
        };
        if pre < next {
            if pre < self.header.base_epoch {
                return Err(WalError::Mismatch {
                    what: "pre-epoch",
                    want: self.header.base_epoch,
                    got: pre,
                });
            }
            // Already logged (the crash-between-log-and-apply resume
            // path): verify the stored record is the same batch.
            let idx = (pre - self.header.base_epoch) as usize;
            let fp = fnv1a(&encode_record_body(&rec));
            if self.record_fps[idx] != fp {
                return Err(WalError::Mismatch {
                    what: "duplicate batch fingerprint",
                    want: self.record_fps[idx],
                    got: fp,
                });
            }
            return Ok(0);
        }
        if pre > next {
            return Err(WalError::Mismatch {
                what: "pre-epoch",
                want: next,
                got: pre,
            });
        }
        let frame = encode_frame(&rec);
        self.bytes.extend_from_slice(&frame);
        write_file_atomic(&self.path, &self.bytes)?;
        self.record_fps.push(fnv1a(&encode_record_body(&rec)));
        self.records.push(rec);
        Ok(frame.len() as u64)
    }

    /// Chaos hook: write only a *prefix* of the sealed frame for `batch`
    /// directly to the final path (no temp/rename), simulating a crash
    /// halfway through a non-atomic append. The in-memory log is left
    /// unchanged; a later [`Wal::open`] must truncate the torn tail.
    /// Returns the torn bytes written.
    pub fn log_batch_torn(
        &mut self,
        batch: &MutationBatch,
        pre: u64,
        post: u64,
    ) -> Result<u64, WalError> {
        let rec = WalRecord {
            pre_epoch: pre,
            post_epoch: post,
            batch: batch.clone(),
        };
        let frame = encode_frame(&rec);
        let torn = &frame[..frame.len() / 2];
        let mut image = self.bytes.clone();
        image.extend_from_slice(torn);
        fs::write(&self.path, &image).map_err(|e| WalError::io("write", &self.path, &e))?;
        Ok(torn.len() as u64)
    }

    /// Drop the last sealed record, on disk and in memory — the rollback
    /// used when the store rejects a just-logged batch.
    fn pop_record(&mut self) -> Result<(), WalError> {
        let Some(rec) = self.records.pop() else {
            return Ok(());
        };
        self.record_fps.pop();
        let frame = encode_frame(&rec);
        self.bytes.truncate(self.bytes.len() - frame.len());
        write_file_atomic(&self.path, &self.bytes)
    }

    /// Replay every record past `store.epoch()` onto `store`, in chain
    /// order. The first applied record's `pre_epoch` must equal the
    /// store's epoch (typed mismatch otherwise — the log does not cover
    /// the gap). Returns the number of batches applied.
    pub fn replay_onto(&self, store: &mut GraphStore) -> Result<u64, WalError> {
        let (nv, ps, p, q) = identity_of(store);
        let want_fp = store_identity_fp(nv, ps, p, q);
        if self.header.store_id_fp != want_fp {
            return Err(WalError::Mismatch {
                what: "store fingerprint",
                want: want_fp,
                got: self.header.store_id_fp,
            });
        }
        let mut applied = 0u64;
        for rec in &self.records {
            if rec.post_epoch <= store.epoch() {
                continue; // already applied before the snapshot
            }
            if rec.pre_epoch != store.epoch() {
                return Err(WalError::Mismatch {
                    what: "replay pre-epoch",
                    want: store.epoch(),
                    got: rec.pre_epoch,
                });
            }
            store
                .apply_mutations(&rec.batch)
                .map_err(WalError::Rejected)?;
            applied += 1;
        }
        Ok(applied)
    }
}

impl GraphStore {
    /// [`GraphStore::apply_mutations`] with log-before-apply durability:
    /// the batch is sealed into `wal` first, then applied. A batch the
    /// store rejects is rolled back out of the log, leaving both sides
    /// untouched. Returns the outcome plus the WAL bytes appended (0 for
    /// an empty batch or an idempotent re-log).
    pub fn apply_mutations_logged(
        &mut self,
        batch: &MutationBatch,
        wal: &mut Wal,
    ) -> Result<(MutationOutcome, u64), WalError> {
        let pre = self.epoch();
        if batch.is_empty() {
            let out = self.apply_mutations(batch).map_err(WalError::Rejected)?;
            return Ok((out, 0));
        }
        let bytes = wal.log_batch(batch, pre, pre + 1)?;
        match self.apply_mutations(batch) {
            Ok(out) => Ok((out, bytes)),
            Err(e) => {
                if bytes > 0 {
                    wal.pop_record()?;
                }
                Err(WalError::Rejected(e))
            }
        }
    }
}

/// tmp → write → fsync → rename → dir fsync, the checkpoint store's
/// crash-safe write protocol.
fn write_file_atomic(path: &Path, bytes: &[u8]) -> Result<(), WalError> {
    let tmp = path.with_extension("log.tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| WalError::io("create", &tmp, &e))?;
        f.write_all(bytes)
            .map_err(|e| WalError::io("write", &tmp, &e))?;
        f.sync_all().map_err(|e| WalError::io("fsync", &tmp, &e))?;
    }
    fs::rename(&tmp, path).map_err(|e| WalError::io("rename", path, &e))?;
    // Persisting a rename requires fsyncing the containing directory;
    // platforms that refuse to open directories get best-effort.
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::builder::build_graph_store;
    use crate::format::{PageFormatConfig, PhysicalIdConfig};
    use gts_graph::EdgeList;
    use std::sync::atomic::{AtomicU64, Ordering};

    fn tmp_dir(tag: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gts-wal-test-{}-{tag}-{n}", std::process::id()))
    }

    fn cfg() -> PageFormatConfig {
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256)
    }

    fn store_of(n: u32, edges: Vec<(u32, u32)>) -> GraphStore {
        build_graph_store(&EdgeList::new(n, edges), cfg()).expect("build")
    }

    fn batch(ops: &[(u8, u64, u64)]) -> MutationBatch {
        let mut b = MutationBatch::new();
        for &(tag, s, d) in ops {
            if tag == 0 {
                b.insert(s, d);
            } else {
                b.delete(s, d);
            }
        }
        b
    }

    #[test]
    fn log_then_reload_round_trips_records() {
        let dir = tmp_dir("roundtrip");
        let store = store_of(8, vec![(0, 1), (1, 2), (2, 3)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        let b1 = batch(&[(0, 0, 3), (1, 1, 2)]);
        let b2 = batch(&[(0, 4, 5)]);
        assert!(wal.log_batch(&b1, 0, 1).unwrap() > 0);
        assert!(wal.log_batch(&b2, 1, 2).unwrap() > 0);

        let loaded = Wal::load(&dir).unwrap();
        assert_eq!(loaded.records().len(), 2);
        assert_eq!(loaded.records()[0].batch.ops(), b1.ops());
        assert_eq!(loaded.records()[1].batch.ops(), b2.ops());
        assert_eq!(loaded.records()[1].pre_epoch, 1);
        assert_eq!(loaded.next_pre_epoch(), 2);
        assert_eq!(loaded.truncated_tail(), 0);
    }

    #[test]
    fn logged_apply_matches_direct_apply_byte_for_byte() {
        let dir = tmp_dir("logged");
        let edges = vec![(0, 1), (1, 2), (2, 0), (3, 1)];
        let mut direct = store_of(8, edges.clone());
        let mut logged = store_of(8, edges);
        let mut wal = Wal::open(&dir, &logged).unwrap();
        for b in [batch(&[(0, 0, 5), (0, 5, 0)]), batch(&[(1, 1, 2)])] {
            direct.apply_mutations(&b).unwrap();
            logged.apply_mutations_logged(&b, &mut wal).unwrap();
        }
        assert_eq!(direct.epoch(), logged.epoch());
        assert_eq!(direct.decode_edges(), logged.decode_edges());
        for (a, b) in direct.pages().iter().zip(logged.pages().iter()) {
            assert_eq!(a.data, b.data);
        }
        // And replay from scratch reproduces the same store.
        let mut replayed = store_of(8, vec![(0, 1), (1, 2), (2, 0), (3, 1)]);
        let n = Wal::load(&dir).unwrap().replay_onto(&mut replayed).unwrap();
        assert_eq!(n, 2);
        assert_eq!(replayed.epoch(), direct.epoch());
        assert_eq!(replayed.decode_edges(), direct.decode_edges());
    }

    #[test]
    fn torn_tail_truncates_to_longest_valid_prefix() {
        let dir = tmp_dir("torn");
        let store = store_of(8, vec![(0, 1), (1, 2)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        wal.log_batch(&batch(&[(0, 0, 2)]), 0, 1).unwrap();
        wal.log_batch_torn(&batch(&[(0, 1, 3)]), 1, 2).unwrap();

        let loaded = Wal::load(&dir).unwrap();
        assert_eq!(loaded.records().len(), 1);
        assert!(loaded.truncated_tail() > 0);

        // Re-opening against the store repairs the file on disk.
        let reopened = Wal::open(&dir, &store).unwrap();
        assert_eq!(reopened.records().len(), 1);
        assert_eq!(reopened.next_pre_epoch(), 1);
        let after = Wal::load(&dir).unwrap();
        assert_eq!(after.truncated_tail(), 0);
    }

    #[test]
    fn duplicate_relog_is_idempotent_and_checked() {
        let dir = tmp_dir("dup");
        let store = store_of(8, vec![(0, 1)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        let b = batch(&[(0, 2, 3)]);
        assert!(wal.log_batch(&b, 0, 1).unwrap() > 0);
        // Same batch, same epochs: a no-op.
        assert_eq!(wal.log_batch(&b, 0, 1).unwrap(), 0);
        assert_eq!(wal.records().len(), 1);
        // A *different* batch claiming the same slot is refused.
        let err = wal.log_batch(&batch(&[(0, 3, 2)]), 0, 1).unwrap_err();
        assert!(matches!(
            err,
            WalError::Mismatch {
                what: "duplicate batch fingerprint",
                ..
            }
        ));
    }

    #[test]
    fn epoch_gap_is_a_typed_mismatch() {
        let dir = tmp_dir("gap");
        let store = store_of(8, vec![(0, 1)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        let err = wal.log_batch(&batch(&[(0, 2, 3)]), 5, 6).unwrap_err();
        assert_eq!(
            err,
            WalError::Mismatch {
                what: "pre-epoch",
                want: 0,
                got: 5
            }
        );
    }

    #[test]
    fn wrong_store_is_refused() {
        let dir = tmp_dir("wrongstore");
        let store = store_of(8, vec![(0, 1)]);
        Wal::open(&dir, &store).unwrap();
        let other = store_of(16, vec![(0, 1)]);
        let err = Wal::open(&dir, &other).unwrap_err();
        assert!(matches!(
            err,
            WalError::Mismatch {
                what: "store fingerprint",
                ..
            }
        ));
        // Replay against the wrong store is refused the same way.
        let wal = Wal::load(&dir).unwrap();
        let mut other = store_of(16, vec![(0, 1)]);
        assert!(matches!(
            wal.replay_onto(&mut other),
            Err(WalError::Mismatch {
                what: "store fingerprint",
                ..
            })
        ));
    }

    #[test]
    fn rejected_batch_rolls_the_log_back() {
        let dir = tmp_dir("reject");
        let mut store = store_of(4, vec![(0, 1)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        let err = store
            .apply_mutations_logged(&batch(&[(1, 2, 3)]), &mut wal)
            .unwrap_err();
        assert!(matches!(err, WalError::Rejected(_)));
        assert_eq!(store.epoch(), 0);
        assert_eq!(wal.records().len(), 0);
        assert_eq!(Wal::load(&dir).unwrap().records().len(), 0);
        // The log still works after the rollback.
        store
            .apply_mutations_logged(&batch(&[(0, 2, 3)]), &mut wal)
            .unwrap();
        assert_eq!(store.epoch(), 1);
    }

    #[test]
    fn replay_skips_records_already_covered_by_the_snapshot() {
        let dir = tmp_dir("suffix");
        let mut store = store_of(8, vec![(0, 1), (1, 2)]);
        let mut wal = Wal::open(&dir, &store).unwrap();
        let b1 = batch(&[(0, 0, 2)]);
        let b2 = batch(&[(0, 1, 3)]);
        store.apply_mutations_logged(&b1, &mut wal).unwrap();
        store.apply_mutations_logged(&b2, &mut wal).unwrap();

        // "Snapshot" at epoch 1: a fresh build plus the first batch.
        let mut resumed = store_of(8, vec![(0, 1), (1, 2)]);
        resumed.apply_mutations(&b1).unwrap();
        let n = Wal::load(&dir).unwrap().replay_onto(&mut resumed).unwrap();
        assert_eq!(n, 1);
        assert_eq!(resumed.epoch(), 2);
        assert_eq!(resumed.decode_edges(), store.decode_edges());
    }

    #[test]
    fn header_corruption_is_typed() {
        let dir = tmp_dir("corrupt");
        let store = store_of(8, vec![(0, 1)]);
        Wal::open(&dir, &store).unwrap();
        let path = dir.join(WAL_FILE);
        let mut raw = fs::read(&path).unwrap();
        raw[10] ^= 0x40;
        fs::write(&path, &raw).unwrap();
        assert!(matches!(Wal::load(&dir), Err(WalError::Corrupt { .. })));
    }

    #[test]
    fn error_displays_render_context_fields() {
        let cases: Vec<(WalError, &[&str])> = vec![
            (
                WalError::Io {
                    op: "rename",
                    path: PathBuf::from("/wal/wal.log"),
                    source: "permission denied".into(),
                },
                &["rename", "/wal/wal.log", "permission denied"],
            ),
            (
                WalError::Corrupt {
                    reason: "bad magic".into(),
                },
                &["corrupt", "bad magic"],
            ),
            (
                WalError::Mismatch {
                    what: "pre-epoch",
                    want: 2,
                    got: 7,
                },
                &["pre-epoch", "0x0000000000000002", "0x0000000000000007"],
            ),
            (
                WalError::Rejected(MutateError::EdgeNotFound { src: 1, dst: 2 }),
                &["rejected", "1 -> 2"],
            ),
        ];
        for (err, needles) in cases {
            let msg = err.to_string();
            for needle in needles {
                assert!(
                    msg.contains(needle),
                    "Display for {err:?} lost context: {msg:?} missing {needle:?}"
                );
            }
            assert!(
                !msg.contains("{ "),
                "Display for {err:?} leaks Debug formatting: {msg:?}"
            );
        }
    }
}
