//! Batched edge mutations against a built [`GraphStore`].
//!
//! GTS builds the slotted page store once and streams it forever; a live
//! serving deployment needs the topology to change *between* sweeps. This
//! module applies a [`MutationBatch`] (ordered edge insertions/deletions)
//! atomically to the store:
//!
//! * **In-place rewrites.** A Small Page with enough slack absorbs the new
//!   adjacency directly: the page is re-encoded (fresh trailer checksum)
//!   and replaces the old page under the same page ID, so every inbound
//!   [`RecordId`] stays valid.
//! * **Spill to delta pages.** When a Small Page overflows its budget, the
//!   vertex with the largest record (ties to the lowest VID) is *spilled*:
//!   its home record is rewritten zero-length and its **entire** adjacency
//!   moves to newly appended Large-kind *delta pages*, one vertex per page,
//!   registered in the RVT with `LP_RANGE = 0`. Keeping home records
//!   all-or-nothing is what keeps the per-record degree arithmetic (e.g.
//!   PageRank's scatter shares) correct without auxiliary tables.
//! * **Large-Page growth.** A high-degree vertex keeps its fixed home run
//!   of chunks (refilled in order); overflow beyond the run's capacity
//!   goes to delta pages, and shrinkage leaves trailing chunks empty
//!   (`count = 0`), which is structurally valid.
//!
//! No record ID ever names a delta page — [`GraphStore::rid_of_vertex`]
//! always answers with the home page — so mutation never invalidates
//! adjacency data in *other* pages. The price is that a sweep which marks
//! a vertex's home page must widen its plan by
//! [`GraphStore::delta_pids_for_page`] to see the spilled edges.
//!
//! **Atomicity.** The batch is validated and fully staged (replacement
//! pages, appended pages, RVT entries) before anything is installed; any
//! error — unknown endpoint, missing edge on delete, page-ID exhaustion —
//! leaves the store byte-identical to its pre-batch state.
//!
//! **Epoch.** Every applied non-empty batch bumps [`GraphStore::epoch`].
//! The checkpoint fingerprint folds the epoch in, so a snapshot taken
//! before a batch refuses to resume against the mutated store with a
//! typed mismatch error.
//!
//! Application is single-threaded and iterates only ordered containers,
//! so the resulting page bytes are identical regardless of host thread
//! count — the same determinism contract the rest of the engine holds.

use crate::builder::GraphStore;
use crate::format::{PageKind, RecordId};
use crate::page::{encode_large_page, Page, SmallPageEncoder};
use crate::rvt::RvtEntry;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// One edge mutation. Endpoints are vertex IDs; the vertex set is fixed
/// at build time (mutations change edges, not the vertex universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeOp {
    /// Add a directed edge `src → dst`. Parallel edges are allowed (the
    /// store is a multigraph, matching the builder's behaviour).
    Insert {
        /// Source vertex.
        src: u64,
        /// Destination vertex.
        dst: u64,
    },
    /// Remove one directed edge `src → dst` (the first matching record).
    Delete {
        /// Source vertex.
        src: u64,
        /// Destination vertex.
        dst: u64,
    },
}

/// An ordered batch of edge mutations, applied atomically between sweeps.
#[derive(Debug, Clone, Default)]
pub struct MutationBatch {
    ops: Vec<EdgeOp>,
}

impl MutationBatch {
    /// An empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Queue an edge insertion.
    pub fn insert(&mut self, src: u64, dst: u64) -> &mut Self {
        self.ops.push(EdgeOp::Insert { src, dst });
        self
    }

    /// Queue an edge deletion.
    pub fn delete(&mut self, src: u64, dst: u64) -> &mut Self {
        self.ops.push(EdgeOp::Delete { src, dst });
        self
    }

    /// Queue a pre-built op.
    pub fn push(&mut self, op: EdgeOp) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The queued ops in application order.
    pub fn ops(&self) -> &[EdgeOp] {
        &self.ops
    }

    /// Number of queued ops.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

/// Why a mutation batch was rejected. The store is untouched in every
/// case — application is all-or-nothing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MutateError {
    /// An op names a vertex outside the store's fixed vertex set.
    VertexOutOfRange {
        /// The offending vertex ID.
        vid: u64,
        /// The store's vertex count.
        num_vertices: u64,
    },
    /// A delete names an edge the store does not hold.
    EdgeNotFound {
        /// Source vertex.
        src: u64,
        /// Destination vertex.
        dst: u64,
    },
    /// Delta-page allocation would exceed the physical-ID config's
    /// addressable page range.
    TooManyPages {
        /// Pages the store would need.
        needed: u64,
        /// Exclusive page-ID bound of the configuration.
        max: u64,
    },
}

impl fmt::Display for MutateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MutateError::VertexOutOfRange { vid, num_vertices } => {
                write!(
                    f,
                    "mutation names vertex {vid} but the store has {num_vertices} vertices"
                )
            }
            MutateError::EdgeNotFound { src, dst } => {
                write!(
                    f,
                    "mutation deletes edge {src} -> {dst}, which does not exist"
                )
            }
            MutateError::TooManyPages { needed, max } => write!(
                f,
                "mutation needs {needed} pages but the physical-ID config addresses only {max}"
            ),
        }
    }
}

impl std::error::Error for MutateError {}

/// What a successfully applied batch did to the store.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Edges inserted.
    pub inserted: u64,
    /// Edges deleted.
    pub deleted: u64,
    /// Existing pages rewritten in place (same pid, new bytes).
    pub pages_rewritten: u64,
    /// Delta pages appended.
    pub delta_pages_allocated: u64,
    /// Pids of rewritten existing pages, ascending. These drive targeted
    /// cache/MMBuf invalidation: any cached copy is stale.
    pub dirty_pids: Vec<u64>,
    /// Pids of appended delta pages, ascending. These need placement on
    /// the storage array's surviving drives.
    pub new_pids: Vec<u64>,
    /// Store epoch after application.
    pub epoch: u64,
}

impl GraphStore {
    /// Full current adjacency of `vid`: home record (Small) or home chunk
    /// run (Large), followed by any delta pages, in stored order.
    fn current_adjacency(&self, vid: u64) -> Vec<RecordId> {
        let home = self.vertex_rid[vid as usize];
        let mut adj = Vec::new();
        let hv = self.view(home.pid);
        match hv.kind() {
            PageKind::Small => {
                for i in 0..hv.sp_adj_len(home.slot) {
                    adj.push(hv.sp_adj(home.slot, i));
                }
            }
            PageKind::Large => {
                let run = self.rvt.entry(home.pid).lp_range.unwrap_or(0) as u64;
                for pid in home.pid..=home.pid + run {
                    let v = self.view(pid);
                    for i in 0..v.count() {
                        adj.push(v.lp_adj(i));
                    }
                }
            }
        }
        if let Some(dps) = self.delta_pages.get(&vid) {
            for &pid in dps {
                let v = self.view(pid);
                for i in 0..v.count() {
                    adj.push(v.lp_adj(i));
                }
            }
        }
        adj
    }

    /// Lazily materialise the overlay adjacency for `vid`.
    fn overlay_adj<'m>(
        &self,
        overlay: &'m mut BTreeMap<u64, Vec<RecordId>>,
        vid: u64,
    ) -> &'m mut Vec<RecordId> {
        overlay
            .entry(vid)
            .or_insert_with(|| self.current_adjacency(vid))
    }

    /// Apply `batch` atomically. On success the store's epoch is bumped
    /// and the returned [`MutationOutcome`] lists the pages whose bytes
    /// changed; on any error the store is byte-identical to before.
    ///
    /// An empty batch is a no-op (the epoch does not move).
    pub fn apply_mutations(
        &mut self,
        batch: &MutationBatch,
    ) -> Result<MutationOutcome, MutateError> {
        if batch.is_empty() {
            return Ok(MutationOutcome {
                epoch: self.epoch,
                ..MutationOutcome::default()
            });
        }
        let n = self.num_vertices();
        for op in batch.ops() {
            let (&src, &dst) = match op {
                EdgeOp::Insert { src, dst } | EdgeOp::Delete { src, dst } => (src, dst),
            };
            for vid in [src, dst] {
                if vid >= n {
                    return Err(MutateError::VertexOutOfRange {
                        vid,
                        num_vertices: n,
                    });
                }
            }
        }

        // --- Stage 1: per-vertex adjacency overlays. ---
        let mut overlay: BTreeMap<u64, Vec<RecordId>> = BTreeMap::new();
        let mut inserted = 0u64;
        let mut deleted = 0u64;
        for op in batch.ops() {
            match *op {
                EdgeOp::Insert { src, dst } => {
                    let rid = self.rid_of_vertex(dst);
                    self.overlay_adj(&mut overlay, src).push(rid);
                    inserted += 1;
                }
                EdgeOp::Delete { src, dst } => {
                    let adj = self.overlay_adj(&mut overlay, src);
                    let pos = adj.iter().position(|&r| self.rvt.translate(r) == dst);
                    match pos {
                        Some(p) => {
                            adj.remove(p);
                            deleted += 1;
                        }
                        None => return Err(MutateError::EdgeNotFound { src, dst }),
                    }
                }
            }
        }

        // --- Stage 2: route overlays to rewrite paths. ---
        // Small-Page vertices still resident in their home record group by
        // home page; already-spilled Small-Page vertices and Large-Page
        // vertices get whole-adjacency rewrites.
        let mut sp_touched: BTreeSet<u64> = BTreeSet::new();
        let mut delta_rewrites: BTreeMap<u64, Vec<RecordId>> = BTreeMap::new();
        for (&vid, adj) in &overlay {
            let home = self.vertex_rid[vid as usize];
            match self.view(home.pid).kind() {
                PageKind::Large => {
                    delta_rewrites.insert(vid, adj.clone());
                }
                PageKind::Small => {
                    if self.delta_pages.contains_key(&vid) {
                        delta_rewrites.insert(vid, adj.clone());
                    } else {
                        sp_touched.insert(home.pid);
                    }
                }
            }
        }

        // --- Stage 3: rewrite touched Small Pages, spilling on overflow. ---
        let mut replaced: BTreeMap<u64, (Page, u64)> = BTreeMap::new();
        let budget = self.cfg.sp_budget();
        for &pid in &sp_touched {
            let view = self.view(pid);
            let count = view.count();
            let start_vid = self.rvt.entry(pid).start_vid;
            // New per-slot adjacency: `None` marks a (pre- or newly-)
            // spilled vertex whose record stays zero-length.
            let mut slot_adj: Vec<Option<Vec<RecordId>>> = Vec::with_capacity(count as usize);
            for s in 0..count {
                let vid = start_vid + s as u64;
                if self.delta_pages.contains_key(&vid) || delta_rewrites.contains_key(&vid) {
                    slot_adj.push(None);
                } else if let Some(a) = overlay.get(&vid) {
                    slot_adj.push(Some(a.clone()));
                } else {
                    let len = view.sp_adj_len(s);
                    let mut a = Vec::with_capacity(len as usize);
                    for i in 0..len {
                        a.push(view.sp_adj(s, i));
                    }
                    slot_adj.push(Some(a));
                }
            }
            let foot = |o: &Option<Vec<RecordId>>| {
                self.cfg.sp_vertex_bytes(o.as_ref().map_or(0, |a| a.len()))
            };
            let mut total: usize = slot_adj.iter().map(foot).sum();
            // Spill the largest record (ties to the lowest VID) until the
            // page fits again. This always terminates: the all-spilled
            // page costs `count` empty records, which fit by construction
            // (the builder packed `count` non-smaller records here).
            while total > budget {
                let mut best: Option<(usize, usize)> = None;
                for (s, o) in slot_adj.iter().enumerate() {
                    if let Some(a) = o {
                        if !a.is_empty() && best.is_none_or(|(_, bl)| a.len() > bl) {
                            best = Some((s, a.len()));
                        }
                    }
                }
                let Some((s, _)) = best else { break };
                if let Some(adj) = slot_adj[s].take() {
                    total -= self.cfg.sp_vertex_bytes(adj.len());
                    total += self.cfg.sp_vertex_bytes(0);
                    delta_rewrites.insert(start_vid + s as u64, adj);
                }
            }
            let mut enc = SmallPageEncoder::new(self.cfg);
            let mut edges = 0u64;
            for (s, o) in slot_adj.iter().enumerate() {
                let vid = start_vid + s as u64;
                match o {
                    Some(a) => {
                        enc.push_vertex(vid, a);
                        edges += a.len() as u64;
                    }
                    None => {
                        enc.push_vertex(vid, &[]);
                    }
                }
            }
            replaced.insert(pid, (enc.finish(pid), edges));
        }

        // --- Stage 4: whole-adjacency rewrites over home runs + deltas. ---
        let mut appended: Vec<(u64, Page, u64)> = Vec::new();
        let mut new_delta: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
        let mut next_pid = self.pages.len() as u64;
        let cap = self.cfg.lp_capacity();
        for (&vid, adj) in &delta_rewrites {
            let home = self.vertex_rid[vid as usize];
            let mut seq: Vec<u64> = Vec::new();
            if self.view(home.pid).kind() == PageKind::Large {
                let run = self.rvt.entry(home.pid).lp_range.unwrap_or(0) as u64;
                seq.extend(home.pid..=home.pid + run);
            }
            if let Some(dp) = self.delta_pages.get(&vid) {
                seq.extend_from_slice(dp);
            }
            let mut offset = 0usize;
            for &pid in &seq {
                let a = offset.min(adj.len());
                let b = (offset + cap).min(adj.len());
                let page = encode_large_page(self.cfg, pid, vid, &adj[a..b]);
                replaced.insert(pid, (page, (b - a) as u64));
                offset += cap;
            }
            while offset < adj.len() {
                let b = (offset + cap).min(adj.len());
                let pid = next_pid;
                next_pid += 1;
                let page = encode_large_page(self.cfg, pid, vid, &adj[offset..b]);
                appended.push((pid, page, (b - offset) as u64));
                new_delta.entry(vid).or_default().push(pid);
                offset += cap;
            }
        }

        // The whole batch is staged; check the page-ID bound before any
        // install so exhaustion aborts with the store untouched.
        if next_pid > self.cfg.id.max_page_id() {
            return Err(MutateError::TooManyPages {
                needed: next_pid,
                max: self.cfg.id.max_page_id(),
            });
        }

        // --- Stage 5: install. ---
        let mut dirty_pids = Vec::with_capacity(replaced.len());
        let pages_rewritten = replaced.len() as u64;
        let delta_pages_allocated = appended.len() as u64;
        for (pid, (page, edges)) in replaced {
            let old = self.edges_per_page[pid as usize];
            self.num_edges = self.num_edges - old + edges;
            self.edges_per_page[pid as usize] = edges;
            self.pages[pid as usize] = page;
            dirty_pids.push(pid);
        }
        let mut new_pids = Vec::with_capacity(appended.len());
        for (pid, page, edges) in appended {
            self.pages.push(page);
            self.rvt.push_entry(RvtEntry {
                start_vid: self.view(pid).lp_vid(),
                lp_range: Some(0),
            });
            self.large_pids.push(pid);
            self.edges_per_page.push(edges);
            self.num_edges += edges;
            new_pids.push(pid);
        }
        for (vid, pids) in new_delta {
            self.delta_pages.entry(vid).or_default().extend(pids);
        }
        self.epoch += 1;
        Ok(MutationOutcome {
            inserted,
            deleted,
            pages_rewritten,
            delta_pages_allocated,
            dirty_pids,
            new_pids,
            epoch: self.epoch,
        })
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::builder::build_graph_store;
    use crate::format::{PageFormatConfig, PhysicalIdConfig};
    use gts_graph::EdgeList;

    fn cfg() -> PageFormatConfig {
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256)
    }

    fn store_of(n: u32, edges: Vec<(u32, u32)>) -> GraphStore {
        build_graph_store(&EdgeList::new(n, edges), cfg()).expect("build")
    }

    fn edges_of(store: &GraphStore) -> Vec<(u64, u64)> {
        store.decode_edges()
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let mut store = store_of(4, vec![(0, 1), (1, 2)]);
        let before = edges_of(&store);
        let out = store.apply_mutations(&MutationBatch::new()).unwrap();
        assert_eq!(out.epoch, 0);
        assert_eq!(store.epoch(), 0);
        assert_eq!(edges_of(&store), before);
    }

    #[test]
    fn insert_within_slack_rewrites_in_place() {
        let mut store = store_of(4, vec![(0, 1), (1, 2)]);
        let mut b = MutationBatch::new();
        b.insert(0, 3).insert(2, 0);
        let out = store.apply_mutations(&b).unwrap();
        assert_eq!(out.inserted, 2);
        assert_eq!(out.deleted, 0);
        assert!(
            out.new_pids.is_empty(),
            "slack insert must not grow the store"
        );
        assert_eq!(out.epoch, 1);
        assert_eq!(store.epoch(), 1);
        assert_eq!(edges_of(&store), vec![(0, 1), (0, 3), (1, 2), (2, 0)]);
        assert_eq!(store.num_edges(), 4);
    }

    #[test]
    fn delete_removes_one_edge_of_a_multigraph() {
        let mut store = store_of(3, vec![(0, 1), (0, 1), (0, 2)]);
        let mut b = MutationBatch::new();
        b.delete(0, 1);
        let out = store.apply_mutations(&b).unwrap();
        assert_eq!(out.deleted, 1);
        assert_eq!(edges_of(&store), vec![(0, 1), (0, 2)]);
    }

    #[test]
    fn delete_of_missing_edge_is_typed_and_atomic() {
        let mut store = store_of(3, vec![(0, 1)]);
        let before = edges_of(&store);
        let mut b = MutationBatch::new();
        b.insert(1, 2).delete(2, 0);
        let err = store.apply_mutations(&b).unwrap_err();
        assert_eq!(err, MutateError::EdgeNotFound { src: 2, dst: 0 });
        // The insert queued before the bad delete must not have landed.
        assert_eq!(edges_of(&store), before);
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn out_of_range_endpoint_is_typed() {
        let mut store = store_of(3, vec![(0, 1)]);
        let mut b = MutationBatch::new();
        b.insert(0, 7);
        let err = store.apply_mutations(&b).unwrap_err();
        assert_eq!(
            err,
            MutateError::VertexOutOfRange {
                vid: 7,
                num_vertices: 3
            }
        );
        assert!(err.to_string().contains("vertex 7"));
    }

    #[test]
    fn overflow_spills_whole_vertex_to_delta_pages() {
        // 13 one-edge vertices fill a 256-byte page exactly (see the
        // page encoder's capacity test); inserting into one of them must
        // spill a vertex rather than overflow the page.
        // 13 one-edge vertices leave 6 bytes of slack in a 256-byte page
        // (see the page encoder's capacity test): one extra rid (4 bytes)
        // still fits in place, two cannot.
        let n = 13u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let mut store = store_of(n, edges.clone());
        assert_eq!(store.num_pages(), 1);
        let mut b = MutationBatch::new();
        b.insert(5, 0).insert(5, 1);
        let out = store.apply_mutations(&b).unwrap();
        assert_eq!(out.dirty_pids, vec![0]);
        assert!(
            !out.new_pids.is_empty(),
            "the page was full: something must spill"
        );
        assert!(store.has_delta_pages());
        let mut want: Vec<(u64, u64)> = edges.iter().map(|&(s, d)| (s as u64, d as u64)).collect();
        want.push((5, 0));
        want.push((5, 1));
        want.sort_unstable();
        assert_eq!(edges_of(&store), want);
        // Vertex 5 gained the edges, so it has the largest record and is
        // the spill victim; its rid must still name the home page.
        assert_eq!(store.rid_of_vertex(5).pid, 0);
        assert_eq!(store.delta_pids_of(5), out.new_pids.as_slice());
        assert_eq!(store.delta_pids_for_page(0), out.new_pids);
        // Later mutations of the spilled vertex go to its delta pages.
        let mut b2 = MutationBatch::new();
        b2.insert(5, 7).delete(5, 6);
        store.apply_mutations(&b2).unwrap();
        let mut want2: Vec<(u64, u64)> = want.clone();
        want2.push((5, 7));
        want2.retain(|&e| e != (5, 6)); // 5→6 appeared exactly once
        want2.sort_unstable();
        assert_eq!(edges_of(&store), want2);
        assert_eq!(store.epoch(), 2);
    }

    #[test]
    fn large_page_vertex_grows_into_delta_and_shrinks_to_empty_chunks() {
        // Vertex 0 has 300 edges → LP run (58 rids per 256-byte page).
        let mut edges: Vec<(u32, u32)> = (0..300).map(|i| (0, 1 + (i % 300))).collect();
        edges.push((5, 0));
        let mut store = store_of(301, edges.clone());
        let run_pages = store.large_pids().len();
        // Grow past the run's capacity: 6 chunks hold 348; add 60 edges.
        let mut b = MutationBatch::new();
        for i in 0..60 {
            b.insert(0, 1 + (i % 300) as u64);
        }
        let out = store.apply_mutations(&b).unwrap();
        assert!(!out.new_pids.is_empty());
        assert_eq!(store.num_edges(), 301 + 60);
        assert_eq!(store.large_pids().len(), run_pages + out.new_pids.len());
        // Shrink far below one chunk: trailing chunks empty out but stay.
        let mut b2 = MutationBatch::new();
        for i in 0..350 {
            b2.delete(0, 1 + (i % 300) as u64);
        }
        store.apply_mutations(&b2).unwrap();
        assert_eq!(store.num_edges(), 301 + 60 - 350);
        let got = edges_of(&store);
        assert_eq!(got.iter().filter(|&&(s, _)| s == 0).count(), 10);
        assert!(got.contains(&(5, 0)));
        // Page count never shrinks; record IDs into the run stay valid.
        assert_eq!(store.rvt().translate(store.rid_of_vertex(0)), 0);
    }

    #[test]
    fn page_exhaustion_aborts_atomically() {
        // p=1 addresses 256 pages. Build small, then grow one vertex far
        // enough to need more delta pages than remain addressable.
        let cfg = PageFormatConfig::new(PhysicalIdConfig::new(1, 2), 64);
        let g = EdgeList::new(64, (0..63).map(|v| (v, v + 1)).collect());
        let mut store = build_graph_store(&g, cfg).expect("build");
        let before = store.decode_edges();
        let pages_before = store.num_pages();
        let mut b = MutationBatch::new();
        for i in 0..30_000u64 {
            b.insert(0, i % 64);
        }
        match store.apply_mutations(&b) {
            Err(MutateError::TooManyPages { needed, max }) => {
                assert!(needed > max);
                assert_eq!(max, 256);
            }
            other => panic!("expected TooManyPages, got {other:?}"),
        }
        assert_eq!(store.num_pages(), pages_before);
        assert_eq!(store.decode_edges(), before);
        assert_eq!(store.epoch(), 0);
    }

    #[test]
    fn edges_per_page_stays_consistent_after_mutations() {
        let n = 13u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let mut store = store_of(n, edges);
        let mut b = MutationBatch::new();
        b.insert(5, 0).insert(2, 7).delete(3, 4);
        store.apply_mutations(&b).unwrap();
        let total: u64 = (0..store.num_pages()).map(|p| store.edges_in_page(p)).sum();
        assert_eq!(total, store.num_edges());
    }

    #[test]
    fn mutated_store_reconstructs_with_delta_pages() {
        let n = 13u32;
        let edges: Vec<(u32, u32)> = (0..n).map(|v| (v, (v + 1) % n)).collect();
        let mut store = store_of(n, edges);
        let mut b = MutationBatch::new();
        b.insert(5, 0).insert(5, 1).insert(6, 2);
        store.apply_mutations(&b).unwrap();
        assert!(store.has_delta_pages());
        let rebuilt = GraphStore::reconstruct(cfg(), store.pages().to_vec(), store.num_vertices())
            .expect("reconstruct");
        assert_eq!(rebuilt.decode_edges(), store.decode_edges());
        assert_eq!(rebuilt.delta_pids_of(5), store.delta_pids_of(5));
        assert_eq!(rebuilt.num_edges(), store.num_edges());
        // The epoch is an in-memory session counter, not persisted.
        assert_eq!(rebuilt.epoch(), 0);
    }

    #[test]
    fn try_view_rejects_out_of_range_pid() {
        let store = store_of(3, vec![(0, 1)]);
        let err = match store.try_view(999) {
            Ok(_) => panic!("pid 999 must be rejected"),
            Err(e) => e,
        };
        match err {
            crate::device::StorageError::BadPid { pid, num_pages } => {
                assert_eq!(pid, 999);
                assert_eq!(num_pages, store.num_pages());
            }
            other => panic!("expected BadPid, got {other:?}"),
        }
        assert!(store.try_view(0).is_ok());
    }
}
