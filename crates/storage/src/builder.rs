//! Building a slotted-page [`GraphStore`] from an in-memory graph.
//!
//! The builder walks vertices in ID order. Low-degree vertices are packed
//! into the current Small Page; a vertex whose record cannot fit even in an
//! empty Small Page becomes a run of Large Pages (paper Fig. 1). Vertex IDs
//! stay consecutive within every Small Page, which is what makes the
//! one-tuple-per-page RVT translation valid.
//!
//! Building is two-pass: pass 1 assigns every vertex its physical
//! [`RecordId`] (adjacency lists store *record IDs*, so targets must be
//! placed before any page can be encoded); pass 2 encodes pages.

use crate::device::StorageError;
use crate::format::{PageFormatConfig, RecordId};
use crate::page::{encode_large_page, Page, PageView, SmallPageEncoder};
use crate::rvt::{Rvt, RvtEntry};
use gts_graph::{Csr, EdgeList};
use std::collections::BTreeMap;
use std::fmt;

/// Reasons a graph cannot be represented under a given format config.
///
/// These are *expected* conditions, not bugs: the paper's Sec. 6.1 motivates
/// the (3,3) configuration precisely because (2,2) "fails to represent an
/// RMAT30 graph".
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The store would need more pages than `p` bytes can address.
    TooManyPages {
        /// Pages required.
        needed: u64,
        /// Exclusive page-ID bound of the configuration.
        max: u64,
    },
    /// A vertex ID exceeds the 6-byte VID field.
    VidOverflow {
        /// The offending vertex.
        vid: u64,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::TooManyPages { needed, max } => write!(
                f,
                "graph needs {needed} pages but the physical-ID config addresses only {max}"
            ),
            BuildError::VidOverflow { vid } => {
                write!(f, "vertex id {vid} exceeds the 6-byte VID field")
            }
        }
    }
}

impl std::error::Error for BuildError {}

/// A graph in the slotted page format: the unit GTS streams to GPUs.
#[derive(Debug, Clone)]
pub struct GraphStore {
    pub(crate) cfg: PageFormatConfig,
    pub(crate) pages: Vec<Page>,
    pub(crate) rvt: Rvt,
    pub(crate) small_pids: Vec<u64>,
    pub(crate) large_pids: Vec<u64>,
    pub(crate) vertex_rid: Vec<RecordId>,
    pub(crate) num_edges: u64,
    /// Record-ID entries per page, precomputed for the cost models.
    pub(crate) edges_per_page: Vec<u64>,
    /// Mutation epoch: bumped once per applied non-empty
    /// [`crate::mutate::MutationBatch`].
    pub(crate) epoch: u64,
    /// Delta pages per vertex, ascending pid order: pages appended after
    /// build holding the whole adjacency of a spilled Small-Page vertex or
    /// the overflow of a Large-Page vertex.
    pub(crate) delta_pages: BTreeMap<u64, Vec<u64>>,
}

impl GraphStore {
    /// The format this store was built with.
    pub fn cfg(&self) -> PageFormatConfig {
        self.cfg
    }

    /// All pages, indexed by page ID.
    pub fn pages(&self) -> &[Page] {
        &self.pages
    }

    /// One page by ID.
    pub fn page(&self, pid: u64) -> &Page {
        &self.pages[pid as usize]
    }

    /// Decoded view of one page. Verification is cached per page: the
    /// first view of a page pays the checksum + layout walk (a no-op for
    /// builder-encoded pages, already done at load for reconstructed
    /// ones), later views are one atomic load.
    ///
    /// # Panics
    /// Panics if the page fails verification — store pages are sealed at
    /// build or verified at load, so this only fires when page bytes
    /// were mutated behind the store's back.
    pub fn view(&self, pid: u64) -> PageView<'_> {
        let page = &self.pages[pid as usize];
        match page.verify(self.cfg) {
            Ok(token) => PageView::new(token),
            Err(e) => panic!("store page {pid} failed verification: {e}"),
        }
    }

    /// The RVT mapping table.
    pub fn rvt(&self) -> &Rvt {
        &self.rvt
    }

    /// Mutable access to the RVT, for tests that inject corruption (a
    /// truncated entry) to exercise the engine's error path.
    pub fn rvt_mut(&mut self) -> &mut Rvt {
        &mut self.rvt
    }

    /// Page IDs of all Small Pages, ascending (Table 3's #SP).
    pub fn small_pids(&self) -> &[u64] {
        &self.small_pids
    }

    /// Page IDs of all Large Pages, ascending (Table 3's #LP).
    pub fn large_pids(&self) -> &[u64] {
        &self.large_pids
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> u64 {
        self.vertex_rid.len() as u64
    }

    /// Number of directed edges (record-id entries across all pages).
    pub fn num_edges(&self) -> u64 {
        self.num_edges
    }

    /// Total number of pages.
    pub fn num_pages(&self) -> u64 {
        self.pages.len() as u64
    }

    /// Where vertex `v` lives.
    pub fn rid_of_vertex(&self, v: u64) -> RecordId {
        self.vertex_rid[v as usize]
    }

    /// The page holding vertex `v` (its first Large Page if high-degree) —
    /// Algorithm 1 line 5 seeds `nextPIDSet` with this for the BFS source.
    pub fn pid_of_vertex(&self, v: u64) -> u64 {
        self.vertex_rid[v as usize].pid
    }

    /// Record-ID entries in page `pid` (the kernel-work weight).
    pub fn edges_in_page(&self, pid: u64) -> u64 {
        self.edges_per_page[pid as usize]
    }

    /// Mutation epoch: 0 at build/reconstruct, bumped once per applied
    /// non-empty [`crate::mutate::MutationBatch`]. The checkpoint
    /// fingerprint folds this in so a snapshot taken before a mutation
    /// refuses to resume against the mutated store.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Delta pages appended for `vid` by mutation batches, ascending.
    /// Empty for vertices whose adjacency lives fully in home pages.
    pub fn delta_pids_of(&self, vid: u64) -> &[u64] {
        self.delta_pages.get(&vid).map_or(&[], |v| v.as_slice())
    }

    /// True if any vertex has delta pages (the store has grown beyond
    /// in-place rewrites).
    pub fn has_delta_pages(&self) -> bool {
        !self.delta_pages.is_empty()
    }

    /// Delta pages of every vertex resident in page `pid`. The planner
    /// widens a marked home page by these: an inbound record ID always
    /// names the *home* page, so a sweep that re-activates a vertex must
    /// also stream the pages holding its spilled/overflow edges.
    pub fn delta_pids_for_page(&self, pid: u64) -> Vec<u64> {
        if self.delta_pages.is_empty() {
            return Vec::new();
        }
        let view = self.view(pid);
        let (lo, hi) = match view.kind() {
            crate::format::PageKind::Small => {
                let s = self.rvt.entry(pid).start_vid;
                (s, s + (view.count() as u64).saturating_sub(1))
            }
            crate::format::PageKind::Large => {
                let v = view.lp_vid();
                (v, v)
            }
        };
        let mut out = Vec::new();
        for (_, pids) in self.delta_pages.range(lo..=hi) {
            out.extend_from_slice(pids);
        }
        out
    }

    /// Checked [`Self::page`]: an out-of-range page ID becomes a typed
    /// [`StorageError::BadPid`] instead of an index panic.
    pub fn try_page(&self, pid: u64) -> Result<&Page, StorageError> {
        self.pages.get(pid as usize).ok_or(StorageError::BadPid {
            pid,
            num_pages: self.pages.len() as u64,
        })
    }

    /// Checked [`Self::view`]: out-of-range page IDs and verification
    /// failures become typed errors instead of panics — the entry point
    /// for page IDs that originate outside the store (program-returned
    /// `ContinueWith` sets, mutation batches).
    pub fn try_view(&self, pid: u64) -> Result<PageView<'_>, StorageError> {
        let page = self.try_page(pid)?;
        match page.verify(self.cfg) {
            Ok(token) => Ok(PageView::new(token)),
            Err(_) => Err(StorageError::CorruptPage { pid }),
        }
    }

    /// Total topology bytes = #pages × page size (Table 4's denominator).
    pub fn topology_bytes(&self) -> u64 {
        self.num_pages() * self.cfg.page_size as u64
    }

    /// Decode the store back into sorted `(src, dst)` vertex-ID pairs by
    /// walking every page through the RVT — the inverse of building, used
    /// by round-trip tests and format tooling.
    pub fn decode_edges(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::with_capacity(self.num_edges as usize);
        for pid in 0..self.num_pages() {
            let v = self.view(pid);
            match v.kind() {
                crate::format::PageKind::Small => {
                    for (vid, adj) in v.sp_vertices() {
                        for rid in adj {
                            out.push((vid, self.rvt.translate(rid)));
                        }
                    }
                }
                crate::format::PageKind::Large => {
                    let vid = v.lp_vid();
                    for i in 0..v.count() {
                        out.push((vid, self.rvt.translate(v.lp_adj(i))));
                    }
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// Reassemble a store from raw pages (e.g. read back from disk by
    /// [`crate::file`]). All metadata — the RVT, vertex placements, page
    /// kind lists and per-page edge counts — is reconstructed by scanning
    /// the pages, which doubles as an integrity check: pages come from
    /// untrusted bytes, so every structural and semantic violation
    /// (out-of-bounds offsets, non-consecutive Small-Page VIDs, dangling
    /// record IDs, missing vertices) surfaces as an error, never a panic.
    pub fn reconstruct(
        cfg: PageFormatConfig,
        pages: Vec<Page>,
        num_vertices: u64,
    ) -> Result<GraphStore, String> {
        // The vertex table is allocated from the caller-supplied count;
        // bound it by what the pages could possibly hold so corrupt
        // metadata cannot trigger a huge allocation.
        let max_possible = (pages.len() as u64).saturating_mul(cfg.id.max_slot());
        if num_vertices > max_possible {
            return Err(format!(
                "{num_vertices} vertices claimed but {} pages can hold at most {max_possible}",
                pages.len()
            ));
        }
        // Verification pass: after this, PageView accessors cannot go out
        // of bounds on any page — and each page caches its verified state,
        // so every later view over it is O(1).
        for page in &pages {
            page.verify(cfg)?;
        }
        let mut rvt_entries = Vec::with_capacity(pages.len());
        let mut small_pids = Vec::new();
        let mut large_pids = Vec::new();
        let mut edges_per_page = Vec::with_capacity(pages.len());
        let mut vertex_rid = vec![RecordId::new(u64::MAX, 0); num_vertices as usize];
        let mut num_edges = 0u64;
        let mut delta_pages: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

        // First pass: kinds, per-page edges, vertex placements, and the
        // Large-Page run structure (consecutive chunks of one vertex).
        let mut i = 0usize;
        while i < pages.len() {
            let pid = i as u64;
            let view = pages[i].verify(cfg)?.view();
            match view.kind() {
                crate::format::PageKind::Small => {
                    let count = view.count();
                    if count == 0 {
                        return Err(format!("empty small page {pid}"));
                    }
                    let start_vid = view.sp_vid(0);
                    let mut edges = 0u64;
                    for slot in 0..count {
                        let vid = view.sp_vid(slot);
                        if vid != start_vid + slot as u64 {
                            return Err(format!("page {pid}: non-consecutive VIDs at slot {slot}"));
                        }
                        if vid >= num_vertices {
                            return Err(format!("page {pid}: vid {vid} out of range"));
                        }
                        if vertex_rid[vid as usize].pid != u64::MAX {
                            return Err(format!("page {pid}: vid {vid} placed twice"));
                        }
                        vertex_rid[vid as usize] = RecordId::new(pid, slot);
                        edges += view.sp_adj_len(slot) as u64;
                    }
                    rvt_entries.push(RvtEntry {
                        start_vid,
                        lp_range: None,
                    });
                    small_pids.push(pid);
                    edges_per_page.push(edges);
                    num_edges += edges;
                    i += 1;
                }
                crate::format::PageKind::Large => {
                    let vid = view.lp_vid();
                    if vid >= num_vertices {
                        return Err(format!("page {pid}: LP vid {vid} out of range"));
                    }
                    // Measure the run: consecutive LPs of the same vertex.
                    let mut chunks = 0usize;
                    while i + chunks < pages.len() {
                        let v = pages[i + chunks].verify(cfg)?.view();
                        if v.kind() != crate::format::PageKind::Large || v.lp_vid() != vid {
                            break;
                        }
                        chunks += 1;
                    }
                    if vertex_rid[vid as usize].pid == u64::MAX {
                        // Home run of a high-degree vertex.
                        vertex_rid[vid as usize] = RecordId::new(pid, 0);
                        for c in 0..chunks {
                            let v = pages[i + c].verify(cfg)?.view();
                            let edges = v.count() as u64;
                            rvt_entries.push(RvtEntry {
                                start_vid: vid,
                                lp_range: Some((chunks - 1 - c) as u32),
                            });
                            large_pids.push(pid + c as u64);
                            edges_per_page.push(edges);
                            num_edges += edges;
                        }
                    } else {
                        // The vertex is already placed: these are delta
                        // pages appended by a mutation batch. Each one
                        // stands alone (LP_RANGE 0) — no inbound record
                        // ID ever names a delta page.
                        for c in 0..chunks {
                            let v = pages[i + c].verify(cfg)?.view();
                            let edges = v.count() as u64;
                            rvt_entries.push(RvtEntry {
                                start_vid: vid,
                                lp_range: Some(0),
                            });
                            large_pids.push(pid + c as u64);
                            edges_per_page.push(edges);
                            num_edges += edges;
                            delta_pages.entry(vid).or_default().push(pid + c as u64);
                        }
                    }
                    i += chunks;
                }
            }
        }
        for (v, rid) in vertex_rid.iter().enumerate() {
            if rid.pid == u64::MAX {
                return Err(format!("vertex {v} missing from pages"));
            }
        }
        let store = GraphStore {
            cfg,
            pages,
            rvt: Rvt::new(rvt_entries),
            small_pids,
            large_pids,
            vertex_rid,
            num_edges,
            edges_per_page,
            epoch: 0,
            delta_pages,
        };
        // Semantic pass over adjacency: every record ID must resolve to a
        // real vertex (the translation is what every kernel trusts).
        let num_pages = store.num_pages();
        for pid in 0..num_pages {
            let view = store.view(pid);
            let check = |rid: RecordId| -> Result<(), String> {
                if rid.pid >= num_pages {
                    return Err(format!("page {pid}: record id points at page {}", rid.pid));
                }
                // The slot must exist in the target page: within the slot
                // count of a Small Page, exactly 0 for a Large Page (a
                // high-degree vertex's record ID names its first chunk).
                let target_view = store.view(rid.pid);
                let slot_ok = match target_view.kind() {
                    crate::format::PageKind::Small => rid.slot < target_view.count(),
                    crate::format::PageKind::Large => rid.slot == 0,
                };
                if !slot_ok {
                    return Err(format!(
                        "page {pid}: record id names slot {} of page {}, which has no such slot",
                        rid.slot, rid.pid
                    ));
                }
                let target = store.rvt.translate(rid);
                if target >= num_vertices {
                    return Err(format!(
                        "page {pid}: record id resolves to vid {target}, out of range"
                    ));
                }
                Ok(())
            };
            match view.kind() {
                crate::format::PageKind::Small => {
                    for slot in 0..view.count() {
                        for i in 0..view.sp_adj_len(slot) {
                            check(view.sp_adj(slot, i))?;
                        }
                    }
                }
                crate::format::PageKind::Large => {
                    for i in 0..view.count() {
                        check(view.lp_adj(i))?;
                    }
                }
            }
        }
        Ok(store)
    }
}

/// Plan entries produced by placement (pass 1).
enum PagePlan {
    /// Small page holding vertices `first_vid..=last_vid`.
    Small { first_vid: u64, last_vid: u64 },
    /// One chunk of a Large-Page vertex.
    Large {
        vid: u64,
        /// Index of this chunk within the vertex's run.
        chunk: u32,
        /// Total chunks in the run.
        chunks: u32,
    },
}

/// Build a [`GraphStore`] for `graph` under `cfg`.
pub fn build_graph_store(
    graph: &EdgeList,
    cfg: PageFormatConfig,
) -> Result<GraphStore, BuildError> {
    let csr = Csr::from_edge_list(graph);
    build_from_csr(&csr, cfg)
}

/// Build from an existing CSR (avoids re-sorting when the caller has one).
pub fn build_from_csr(csr: &Csr, cfg: PageFormatConfig) -> Result<GraphStore, BuildError> {
    let n = csr.num_vertices() as u64;
    if n > 1u64 << 48 {
        return Err(BuildError::VidOverflow { vid: n - 1 });
    }

    // --- Pass 1: place every vertex. ---
    let mut plan: Vec<PagePlan> = Vec::new();
    let mut vertex_rid: Vec<RecordId> = Vec::with_capacity(n as usize);
    let lp_cap = cfg.lp_capacity() as u64;
    let max_slot = cfg.id.max_slot();

    // State of the currently open Small Page.
    let mut open_first: Option<u64> = None;
    let mut open_bytes: usize = 0;
    let mut open_slots: u64 = 0;
    let mut next_pid: u64 = 0;

    let flush_sp =
        |plan: &mut Vec<PagePlan>, next_pid: &mut u64, first: &mut Option<u64>, last: u64| {
            if let Some(f) = first.take() {
                plan.push(PagePlan::Small {
                    first_vid: f,
                    last_vid: last,
                });
                *next_pid += 1;
            }
        };

    for v in 0..n {
        let deg = csr.out_degree(v as u32) as usize;
        if cfg.fits_in_small_page(deg) {
            let need = cfg.sp_vertex_bytes(deg);
            let fits_bytes = open_bytes + need <= cfg.sp_budget();
            if open_first.is_some() && (!fits_bytes || open_slots >= max_slot) {
                flush_sp(&mut plan, &mut next_pid, &mut open_first, v - 1);
                open_bytes = 0;
                open_slots = 0;
            }
            if open_first.is_none() {
                open_first = Some(v);
            }
            vertex_rid.push(RecordId::new(next_pid, open_slots as u32));
            open_bytes += need;
            open_slots += 1;
        } else {
            // Close any open SP so its VID run ends before the LP vertex.
            flush_sp(&mut plan, &mut next_pid, &mut open_first, v.wrapping_sub(1));
            open_bytes = 0;
            open_slots = 0;
            let chunks = (deg as u64).div_ceil(lp_cap) as u32;
            vertex_rid.push(RecordId::new(next_pid, 0));
            for c in 0..chunks {
                plan.push(PagePlan::Large {
                    vid: v,
                    chunk: c,
                    chunks,
                });
                next_pid += 1;
            }
        }
    }
    flush_sp(
        &mut plan,
        &mut next_pid,
        &mut open_first,
        n.saturating_sub(1),
    );

    if next_pid > cfg.id.max_page_id() {
        return Err(BuildError::TooManyPages {
            needed: next_pid,
            max: cfg.id.max_page_id(),
        });
    }

    // --- Pass 2: encode pages and the RVT. ---
    let mut pages = Vec::with_capacity(plan.len());
    let mut rvt_entries = Vec::with_capacity(plan.len());
    let mut small_pids = Vec::new();
    let mut large_pids = Vec::new();
    let mut edges_per_page = Vec::with_capacity(plan.len());
    let mut adj_buf: Vec<RecordId> = Vec::new();

    for (pid, p) in plan.iter().enumerate() {
        let pid = pid as u64;
        match *p {
            PagePlan::Small {
                first_vid,
                last_vid,
            } => {
                let mut enc = SmallPageEncoder::new(cfg);
                let mut edges = 0u64;
                for v in first_vid..=last_vid {
                    adj_buf.clear();
                    adj_buf.extend(
                        csr.neighbors(v as u32)
                            .iter()
                            .map(|&w| vertex_rid[w as usize]),
                    );
                    edges += adj_buf.len() as u64;
                    enc.push_vertex(v, &adj_buf);
                }
                pages.push(enc.finish(pid));
                rvt_entries.push(RvtEntry {
                    start_vid: first_vid,
                    lp_range: None,
                });
                small_pids.push(pid);
                edges_per_page.push(edges);
            }
            PagePlan::Large { vid, chunk, chunks } => {
                let neigh = csr.neighbors(vid as u32);
                let a = chunk as usize * cfg.lp_capacity();
                let b = (a + cfg.lp_capacity()).min(neigh.len());
                adj_buf.clear();
                adj_buf.extend(neigh[a..b].iter().map(|&w| vertex_rid[w as usize]));
                pages.push(encode_large_page(cfg, pid, vid, &adj_buf));
                rvt_entries.push(RvtEntry {
                    start_vid: vid,
                    lp_range: Some(chunks - 1 - chunk),
                });
                large_pids.push(pid);
                edges_per_page.push((b - a) as u64);
            }
        }
    }

    Ok(GraphStore {
        cfg,
        pages,
        rvt: Rvt::new(rvt_entries),
        small_pids,
        large_pids,
        vertex_rid,
        num_edges: csr.num_edges() as u64,
        edges_per_page,
        epoch: 0,
        delta_pages: BTreeMap::new(),
    })
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::format::{PageKind, PhysicalIdConfig};
    use gts_graph::generate::rmat;
    use gts_graph::VertexId;

    fn small_cfg() -> PageFormatConfig {
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256)
    }

    fn roundtrip(graph: &EdgeList, cfg: PageFormatConfig) {
        let store = build_graph_store(graph, cfg).expect("build");
        let mut want: Vec<(u64, u64)> = graph
            .edges
            .iter()
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(store.decode_edges(), want);
        assert_eq!(store.num_edges(), graph.num_edges() as u64);
        assert_eq!(store.num_vertices(), graph.num_vertices as u64);
    }

    #[test]
    fn tiny_graph_roundtrips() {
        roundtrip(
            &EdgeList::new(4, vec![(0, 1), (0, 2), (1, 2), (2, 0), (3, 3)]),
            small_cfg(),
        );
    }

    #[test]
    fn high_degree_vertex_becomes_large_pages() {
        // One vertex with 300 out-edges: does not fit in a 256-byte page.
        let mut edges: Vec<(VertexId, VertexId)> =
            (0..300).map(|i| (0, 1 + (i % 300) as VertexId)).collect();
        edges.push((5, 0));
        let g = EdgeList::new(301, edges);
        let store = build_graph_store(&g, small_cfg()).unwrap();
        assert!(!store.large_pids().is_empty());
        // 300 rids at lp_capacity (256-8-8-6)/4 = 58 per page → 6 chunks.
        assert_eq!(store.large_pids().len(), 300usize.div_ceil(58));
        roundtrip(&g, small_cfg());
        // The LP vertex's rid points at its first LP, slot 0.
        let rid = store.rid_of_vertex(0);
        assert_eq!(rid.slot, 0);
        assert_eq!(store.view(rid.pid).kind(), PageKind::Large);
        assert_eq!(store.rvt().translate(rid), 0);
    }

    #[test]
    fn vids_are_consecutive_within_each_small_page() {
        let g = rmat(8);
        let store = build_graph_store(&g, small_cfg()).unwrap();
        for &pid in store.small_pids() {
            let v = store.view(pid);
            let start = store.rvt().entry(pid).start_vid;
            for slot in 0..v.count() {
                assert_eq!(v.sp_vid(slot), start + slot as u64);
            }
        }
    }

    #[test]
    fn rmat_roundtrips_under_both_configs() {
        let g = rmat(8);
        roundtrip(&g, small_cfg());
        roundtrip(&g, PageFormatConfig::new(PhysicalIdConfig::TRILLION, 4096));
    }

    #[test]
    fn page_id_exhaustion_is_reported() {
        // p=1 addresses only 256 pages; a graph needing more must fail
        // (the (2,2)-cannot-hold-RMAT30 phenomenon of Sec. 6.1, scaled).
        let cfg = PageFormatConfig::new(PhysicalIdConfig::new(1, 2), 64);
        let g = rmat(10);
        match build_graph_store(&g, cfg) {
            Err(BuildError::TooManyPages { needed, max }) => {
                assert!(needed > max);
                assert_eq!(max, 256);
            }
            other => panic!("expected TooManyPages, got {other:?}"),
        }
    }

    #[test]
    fn empty_graph_builds_empty_store() {
        let store = build_graph_store(&EdgeList::new(0, vec![]), small_cfg()).unwrap();
        assert_eq!(store.num_pages(), 0);
        assert_eq!(store.num_vertices(), 0);
    }

    #[test]
    fn isolated_vertices_get_slots() {
        let g = EdgeList::new(100, vec![(99, 0)]);
        let store = build_graph_store(&g, small_cfg()).unwrap();
        assert_eq!(store.num_vertices(), 100);
        // Every vertex must be addressable.
        for v in 0..100 {
            assert_eq!(store.rvt().translate(store.rid_of_vertex(v)), v);
        }
    }

    #[test]
    fn edges_per_page_sums_to_total() {
        let g = rmat(9);
        let store = build_graph_store(&g, small_cfg()).unwrap();
        let total: u64 = (0..store.num_pages()).map(|p| store.edges_in_page(p)).sum();
        assert_eq!(total, store.num_edges());
    }

    #[test]
    fn most_pages_are_small_for_rmat() {
        // Paper Sec. 3.1/7.5: "most of the topology pages are SP".
        let g = rmat(10);
        let store = build_graph_store(&g, small_cfg()).unwrap();
        assert!(store.small_pids().len() > store.large_pids().len());
    }
}
