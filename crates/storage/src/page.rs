//! On-page byte layout: encoding and zero-copy decoding of slotted pages.
//!
//! A **Small Page** (paper Fig. 1b) packs consecutive low-degree vertices:
//! records (`ADJLIST_SZ` + `ADJLIST`) grow forward from the start of the
//! record region, slots (`VID` + `OFF`) grow backward from the end of the
//! page. A **Large Page** (Fig. 1c) carries one chunk of a single
//! high-degree vertex's adjacency list.
//!
//! All multi-byte fields are little-endian with configurable widths (the
//! `(p,q)` generalisation of Sec. 6.1). Every page ends in a
//! [`PAGE_TRAILER_BYTES`]-wide FNV-1a checksum sealed at encode time;
//! slots grow backward from just before the trailer.

use crate::format::{
    PageFormatConfig, PageKind, RecordId, ADJLIST_SZ_BYTES, OFF_BYTES, PAGE_HEADER_BYTES,
    PAGE_TRAILER_BYTES, VID_BYTES,
};
use std::sync::atomic::{AtomicU8, Ordering};

/// Bit set once the trailer checksum has matched (see [`Page::verify`]).
const VERIFIED_CSUM: u8 = 1 << 0;
/// Bit set once full verification (checksum + layout) has passed.
const VERIFIED_FULL: u8 = 1 << 1;

/// An encoded fixed-size slotted page.
///
/// A page caches its own verification state: the first successful
/// [`Page::verify`] (or [`Page::checksum_ok_cached`]) hashes the bytes,
/// every later call is a single atomic load. This is *verified-once /
/// borrow-after* semantics — mutating `data` after a successful
/// verification is NOT detected by the cached paths (the pure
/// [`Page::checksum_ok`] always recomputes).
#[derive(Debug)]
pub struct Page {
    /// Global page ID (index into the store's page table).
    pub pid: u64,
    /// Small or Large.
    pub kind: PageKind,
    /// Raw page bytes, exactly `page_size` long.
    pub data: Box<[u8]>,
    /// Cached verification state ([`VERIFIED_CSUM`] | [`VERIFIED_FULL`]).
    verified: AtomicU8,
}

impl Clone for Page {
    fn clone(&self) -> Self {
        Page {
            pid: self.pid,
            kind: self.kind,
            data: self.data.clone(),
            // The bytes are copied unchanged, so verification carries over.
            verified: AtomicU8::new(self.verified.load(Ordering::Relaxed)),
        }
    }
}

impl PartialEq for Page {
    fn eq(&self, other: &Self) -> bool {
        self.pid == other.pid && self.kind == other.kind && self.data == other.data
    }
}

impl Eq for Page {}

impl Page {
    /// Wrap encoded bytes as a page, in the unverified state.
    pub fn new(pid: u64, kind: PageKind, data: Box<[u8]>) -> Self {
        Page {
            pid,
            kind,
            data,
            verified: AtomicU8::new(0),
        }
    }

    /// Page size in bytes (the streaming unit of GTS).
    pub fn size_bytes(&self) -> usize {
        self.data.len()
    }

    /// The checksum stored in the page trailer.
    pub fn stored_checksum(&self) -> u64 {
        let at = self.data.len() - PAGE_TRAILER_BYTES;
        read_le(&self.data[at..], PAGE_TRAILER_BYTES)
    }

    /// Recompute the trailer checksum and compare it to the stored one.
    /// Always hashes the full page; see [`Page::checksum_ok_cached`] for
    /// the amortised variant used on fetch hot paths.
    pub fn checksum_ok(&self) -> bool {
        self.stored_checksum() == page_checksum(&self.data)
    }

    /// Like [`Page::checksum_ok`], but a successful check is cached: the
    /// first call hashes the page, later calls are one atomic load.
    /// Failures are never cached (a torn read may be retried with the
    /// same `Page` object).
    pub fn checksum_ok_cached(&self) -> bool {
        if self.verified.load(Ordering::Relaxed) & VERIFIED_CSUM != 0 {
            return true;
        }
        let ok = self.checksum_ok();
        if ok {
            self.verified.fetch_or(VERIFIED_CSUM, Ordering::Relaxed);
        }
        ok
    }

    /// Fully verify this page under `cfg` — size, trailer checksum and
    /// structural layout (every [`PageView`] accessor stays in bounds) —
    /// and mint the [`VerifiedPage`] token that [`PageView::new`]
    /// requires. Success is cached on the page, so only the first call
    /// pays the O(page) hash + layout walk.
    ///
    /// Pages loaded from untrusted bytes (disk files) surface malformed
    /// layouts here as an error, never as an out-of-bounds panic.
    pub fn verify(&self, cfg: PageFormatConfig) -> Result<VerifiedPage<'_>, String> {
        if self.verified.load(Ordering::Relaxed) & VERIFIED_FULL != 0 {
            return Ok(VerifiedPage { cfg, page: self });
        }
        if self.data.len() != cfg.page_size {
            return Err(format!(
                "page {}: {} bytes, expected {}",
                self.pid,
                self.data.len(),
                cfg.page_size
            ));
        }
        if !self.checksum_ok_cached() {
            return Err(format!(
                "page {}: trailer checksum mismatch (stored {:#018x}, computed {:#018x})",
                self.pid,
                self.stored_checksum(),
                page_checksum(&self.data)
            ));
        }
        validate_structure(cfg, self)?;
        self.verified
            .fetch_or(VERIFIED_FULL | VERIFIED_CSUM, Ordering::Relaxed);
        Ok(VerifiedPage { cfg, page: self })
    }
}

/// Proof that a [`Page`]'s bytes passed full verification (trailer
/// checksum + structural layout) under a format config. The only way to
/// obtain one is [`Page::verify`]; the only way to decode a page is to
/// hand one to [`PageView::new`] — views over unverified bytes are
/// unrepresentable.
#[derive(Debug, Clone, Copy)]
pub struct VerifiedPage<'a> {
    cfg: PageFormatConfig,
    page: &'a Page,
}

impl<'a> VerifiedPage<'a> {
    /// The verified page.
    pub fn page(&self) -> &'a Page {
        self.page
    }

    /// The format config the page was verified under.
    pub fn cfg(&self) -> PageFormatConfig {
        self.cfg
    }

    /// Decode this page (shorthand for `PageView::new(token)`).
    pub fn view(&self) -> PageView<'a> {
        PageView::new(*self)
    }
}

/// FNV-1a 64 over everything except the trailer itself.
pub fn page_checksum(data: &[u8]) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for &b in &data[..data.len() - PAGE_TRAILER_BYTES] {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Write the checksum of `data` into its trailer.
fn seal(data: &mut [u8]) {
    let sum = page_checksum(data);
    let at = data.len() - PAGE_TRAILER_BYTES;
    write_le(&mut data[at..], sum, PAGE_TRAILER_BYTES);
}

#[inline]
fn write_le(buf: &mut [u8], value: u64, width: usize) {
    debug_assert!(width <= 8);
    debug_assert!(
        width == 8 || value < 1u64 << (8 * width),
        "value {value} overflows {width} bytes"
    );
    buf[..width].copy_from_slice(&value.to_le_bytes()[..width]);
}

#[inline]
fn read_le(buf: &[u8], width: usize) -> u64 {
    let mut bytes = [0u8; 8];
    bytes[..width].copy_from_slice(&buf[..width]);
    u64::from_le_bytes(bytes)
}

/// Builder that encodes one Small Page.
pub struct SmallPageEncoder {
    cfg: PageFormatConfig,
    data: Vec<u8>,
    /// Next free byte in the record region (relative to region start).
    record_cursor: usize,
    slots: u32,
}

impl SmallPageEncoder {
    /// Start an empty Small Page.
    pub fn new(cfg: PageFormatConfig) -> Self {
        SmallPageEncoder {
            cfg,
            data: vec![0u8; cfg.page_size],
            record_cursor: 0,
            slots: 0,
        }
    }

    /// Bytes still available for one more vertex (slot + record).
    pub fn remaining(&self) -> usize {
        let used = PAGE_HEADER_BYTES
            + PAGE_TRAILER_BYTES
            + self.record_cursor
            + self.slots as usize * (VID_BYTES + OFF_BYTES);
        self.cfg.page_size - used
    }

    /// True if a vertex with `degree` out-edges still fits.
    pub fn fits(&self, degree: usize) -> bool {
        self.cfg.sp_vertex_bytes(degree) <= self.remaining()
    }

    /// Number of vertices encoded so far.
    pub fn num_slots(&self) -> u32 {
        self.slots
    }

    /// Append a vertex and its adjacency list (already as record IDs).
    /// Returns the slot number assigned.
    ///
    /// # Panics
    /// Panics if the vertex does not fit; callers must check [`fits`].
    pub fn push_vertex(&mut self, vid: u64, adj: &[RecordId]) -> u32 {
        assert!(self.fits(adj.len()), "vertex {vid} does not fit");
        let rid_w = self.cfg.id.rid_bytes();
        let off = self.record_cursor;
        // Record: ADJLIST_SZ then packed record IDs.
        let rec_at = PAGE_HEADER_BYTES + off;
        write_le(&mut self.data[rec_at..], adj.len() as u64, ADJLIST_SZ_BYTES);
        let mut at = rec_at + ADJLIST_SZ_BYTES;
        for r in adj {
            write_le(&mut self.data[at..], r.pid, self.cfg.id.p as usize);
            write_le(
                &mut self.data[at + self.cfg.id.p as usize..],
                r.slot as u64,
                self.cfg.id.q as usize,
            );
            at += rid_w;
        }
        self.record_cursor += ADJLIST_SZ_BYTES + adj.len() * rid_w;
        // Slot, growing backward from just before the checksum trailer.
        let slot_no = self.slots;
        let slot_at = self.cfg.page_size
            - PAGE_TRAILER_BYTES
            - (slot_no as usize + 1) * (VID_BYTES + OFF_BYTES);
        write_le(&mut self.data[slot_at..], vid, VID_BYTES);
        write_le(&mut self.data[slot_at + VID_BYTES..], off as u64, OFF_BYTES);
        self.slots += 1;
        slot_no
    }

    /// Finish the page with its global ID, sealing the trailer checksum.
    pub fn finish(mut self, pid: u64) -> Page {
        self.data[0] = 0; // kind = Small
        write_le(&mut self.data[1..], self.slots as u64, 4);
        seal(&mut self.data);
        Page::new(pid, PageKind::Small, self.data.into_boxed_slice())
    }
}

/// Encode one Large Page: a chunk of `adj` belonging to vertex `vid`.
pub fn encode_large_page(cfg: PageFormatConfig, pid: u64, vid: u64, adj: &[RecordId]) -> Page {
    assert!(
        adj.len() <= cfg.lp_capacity(),
        "LP chunk of {} exceeds capacity {}",
        adj.len(),
        cfg.lp_capacity()
    );
    let mut data = vec![0u8; cfg.page_size];
    data[0] = 1; // kind = Large
    write_le(&mut data[1..], adj.len() as u64, 4);
    write_le(&mut data[PAGE_HEADER_BYTES..], vid, VID_BYTES);
    let mut at = PAGE_HEADER_BYTES + VID_BYTES;
    for r in adj {
        write_le(&mut data[at..], r.pid, cfg.id.p as usize);
        write_le(
            &mut data[at + cfg.id.p as usize..],
            r.slot as u64,
            cfg.id.q as usize,
        );
        at += cfg.id.rid_bytes();
    }
    seal(&mut data);
    Page::new(pid, PageKind::Large, data.into_boxed_slice())
}

/// Zero-copy decoded view over a [`Page`].
#[derive(Clone, Copy)]
pub struct PageView<'a> {
    cfg: PageFormatConfig,
    page: &'a Page,
}

impl<'a> PageView<'a> {
    /// Wrap a verified page for decoding. Only a [`VerifiedPage`] token
    /// (minted by [`Page::verify`]) is accepted: every accessor below
    /// indexes raw bytes, so unverified input could panic out of bounds.
    pub fn new(verified: VerifiedPage<'a>) -> Self {
        PageView {
            cfg: verified.cfg,
            page: verified.page,
        }
    }

    /// Page kind as encoded in the header.
    pub fn kind(&self) -> PageKind {
        if self.page.data[0] == 0 {
            PageKind::Small
        } else {
            PageKind::Large
        }
    }

    /// Small Page: number of vertices (slots). Large Page: number of
    /// adjacency entries in this chunk.
    pub fn count(&self) -> u32 {
        read_le(&self.page.data[1..], 4) as u32
    }

    /// Small Page: the VID stored in `slot`.
    ///
    /// # Panics
    /// Panics if `slot` is out of range for this page.
    pub fn sp_vid(&self, slot: u32) -> u64 {
        assert!(slot < self.count(), "slot {slot} out of range");
        let at =
            self.cfg.page_size - PAGE_TRAILER_BYTES - (slot as usize + 1) * (VID_BYTES + OFF_BYTES);
        read_le(&self.page.data[at..], VID_BYTES)
    }

    /// Small Page: adjacency-list length of the vertex in `slot`.
    pub fn sp_adj_len(&self, slot: u32) -> u32 {
        let rec = self.sp_record_at(slot);
        read_le(&self.page.data[rec..], ADJLIST_SZ_BYTES) as u32
    }

    /// Small Page: the `i`-th record ID in `slot`'s adjacency list.
    pub fn sp_adj(&self, slot: u32, i: u32) -> RecordId {
        let rec = self.sp_record_at(slot) + ADJLIST_SZ_BYTES;
        self.read_rid(rec + i as usize * self.cfg.id.rid_bytes())
    }

    /// Small Page: iterate `(vid, adjacency iterator)` over all slots.
    pub fn sp_vertices(&self) -> impl Iterator<Item = (u64, SpAdjIter<'a>)> + '_ {
        let me = *self;
        (0..self.count()).map(move |slot| {
            (
                me.sp_vid(slot),
                SpAdjIter {
                    view: me,
                    slot,
                    next: 0,
                    len: me.sp_adj_len(slot),
                },
            )
        })
    }

    /// Large Page: the single vertex this chunk belongs to.
    pub fn lp_vid(&self) -> u64 {
        read_le(&self.page.data[PAGE_HEADER_BYTES..], VID_BYTES)
    }

    /// Large Page: the `i`-th record ID in this chunk.
    pub fn lp_adj(&self, i: u32) -> RecordId {
        let base = PAGE_HEADER_BYTES + VID_BYTES;
        self.read_rid(base + i as usize * self.cfg.id.rid_bytes())
    }

    /// Total edges (record-id entries) stored in this page, either kind.
    pub fn edges_in_page(&self) -> u64 {
        match self.kind() {
            PageKind::Large => self.count() as u64,
            PageKind::Small => (0..self.count()).map(|s| self.sp_adj_len(s) as u64).sum(),
        }
    }

    fn sp_record_at(&self, slot: u32) -> usize {
        // A real bounds check, not a debug_assert: in release builds an
        // out-of-range slot would wrap the offset arithmetic and read
        // garbage (or panic deep in slice indexing) — fail loudly here.
        assert!(slot < self.count(), "slot {slot} out of range");
        let at =
            self.cfg.page_size - PAGE_TRAILER_BYTES - (slot as usize + 1) * (VID_BYTES + OFF_BYTES);
        let off = read_le(&self.page.data[at + VID_BYTES..], OFF_BYTES) as usize;
        PAGE_HEADER_BYTES + off
    }

    fn read_rid(&self, at: usize) -> RecordId {
        let pid = read_le(&self.page.data[at..], self.cfg.id.p as usize);
        let slot = read_le(
            &self.page.data[at + self.cfg.id.p as usize..],
            self.cfg.id.q as usize,
        ) as u32;
        RecordId { pid, slot }
    }
}

/// Structural half of [`Page::verify`]: check that every [`PageView`]
/// accessor would stay in bounds. Size and checksum are already checked
/// by the caller.
fn validate_structure(cfg: PageFormatConfig, page: &Page) -> Result<(), String> {
    // Raw in-module view: the page is structurally unproven, but this
    // function only reads the header fields it is about to bound-check.
    let view = PageView { cfg, page };
    let rid_w = cfg.id.rid_bytes();
    match view.kind() {
        PageKind::Small => {
            let count = view.count() as usize;
            let slot_bytes = VID_BYTES + OFF_BYTES;
            let slots_start = (cfg.page_size - PAGE_TRAILER_BYTES)
                .checked_sub(count * slot_bytes)
                .ok_or_else(|| format!("page {}: {} slots overflow the page", page.pid, count))?;
            if slots_start < PAGE_HEADER_BYTES {
                return Err(format!(
                    "page {}: {count} slots collide with the header",
                    page.pid
                ));
            }
            for slot in 0..count as u32 {
                let at = cfg.page_size - PAGE_TRAILER_BYTES - (slot as usize + 1) * slot_bytes;
                let off = read_le(&page.data[at + VID_BYTES..], OFF_BYTES) as usize;
                let rec = PAGE_HEADER_BYTES + off;
                if rec + ADJLIST_SZ_BYTES > slots_start {
                    return Err(format!(
                        "page {}: slot {slot} record offset {off} out of bounds",
                        page.pid
                    ));
                }
                let len = read_le(&page.data[rec..], ADJLIST_SZ_BYTES) as usize;
                let end = rec + ADJLIST_SZ_BYTES + len * rid_w;
                if end > slots_start {
                    return Err(format!(
                        "page {}: slot {slot} adjacency list of {len} overruns the record region",
                        page.pid
                    ));
                }
            }
        }
        PageKind::Large => {
            let count = view.count() as usize;
            let end = PAGE_HEADER_BYTES + VID_BYTES + count * rid_w;
            if end > cfg.page_size - PAGE_TRAILER_BYTES {
                return Err(format!(
                    "page {}: LP chunk of {count} entries overruns the page",
                    page.pid
                ));
            }
        }
    }
    Ok(())
}

/// Iterator over one Small-Page vertex's adjacency record IDs.
pub struct SpAdjIter<'a> {
    view: PageView<'a>,
    slot: u32,
    next: u32,
    len: u32,
}

impl Iterator for SpAdjIter<'_> {
    type Item = RecordId;

    fn next(&mut self) -> Option<RecordId> {
        if self.next >= self.len {
            return None;
        }
        let r = self.view.sp_adj(self.slot, self.next);
        self.next += 1;
        Some(r)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.len - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for SpAdjIter<'_> {}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::format::PhysicalIdConfig;

    fn cfg() -> PageFormatConfig {
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256)
    }

    #[test]
    fn small_page_roundtrip() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        let adj0 = [RecordId::new(0, 1), RecordId::new(0, 2)];
        let adj1 = [RecordId::new(3, 0)];
        let adj2: [RecordId; 0] = [];
        assert_eq!(enc.push_vertex(10, &adj0), 0);
        assert_eq!(enc.push_vertex(11, &adj1), 1);
        assert_eq!(enc.push_vertex(12, &adj2), 2);
        let page = enc.finish(7);
        let v = page.verify(c).unwrap().view();
        assert_eq!(v.kind(), PageKind::Small);
        assert_eq!(v.count(), 3);
        assert_eq!(v.sp_vid(0), 10);
        assert_eq!(v.sp_vid(2), 12);
        assert_eq!(v.sp_adj_len(0), 2);
        assert_eq!(v.sp_adj(0, 0), RecordId::new(0, 1));
        assert_eq!(v.sp_adj(0, 1), RecordId::new(0, 2));
        assert_eq!(v.sp_adj(1, 0), RecordId::new(3, 0));
        assert_eq!(v.sp_adj_len(2), 0);
        assert_eq!(v.edges_in_page(), 3);
    }

    #[test]
    fn sp_vertices_iterator_matches_accessors() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        enc.push_vertex(5, &[RecordId::new(1, 1)]);
        enc.push_vertex(6, &[RecordId::new(2, 2), RecordId::new(2, 3)]);
        let page = enc.finish(0);
        let v = page.verify(c).unwrap().view();
        let collected: Vec<(u64, Vec<RecordId>)> = v
            .sp_vertices()
            .map(|(vid, adj)| (vid, adj.collect()))
            .collect();
        assert_eq!(
            collected,
            vec![
                (5, vec![RecordId::new(1, 1)]),
                (6, vec![RecordId::new(2, 2), RecordId::new(2, 3)]),
            ]
        );
    }

    #[test]
    fn capacity_tracking_refuses_overflow() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        // Each vertex with 1 edge costs 6+4+4+4 = 18 bytes; budget 240
        // (header and checksum trailer excluded).
        let mut n = 0;
        while enc.fits(1) {
            enc.push_vertex(n, &[RecordId::new(0, 0)]);
            n += 1;
        }
        assert_eq!(n, (256 - 8 - 8) / 18);
        assert!(!enc.fits(1));
        assert!(enc.fits(0) || !enc.fits(0)); // remaining() stays consistent
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn push_past_capacity_panics() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        let adj: Vec<RecordId> = (0..1000).map(|i| RecordId::new(0, i)).collect();
        enc.push_vertex(0, &adj);
    }

    #[test]
    fn large_page_roundtrip() {
        let c = cfg();
        let adj: Vec<RecordId> = (0..c.lp_capacity() as u32)
            .map(|i| RecordId::new(i as u64 % 7, i))
            .collect();
        let page = encode_large_page(c, 9, 0x0012_3456_789A, &adj);
        let v = page.verify(c).unwrap().view();
        assert_eq!(v.kind(), PageKind::Large);
        assert_eq!(v.lp_vid(), 0x0012_3456_789A);
        assert_eq!(v.count() as usize, adj.len());
        for (i, r) in adj.iter().enumerate() {
            assert_eq!(v.lp_adj(i as u32), *r);
        }
        assert_eq!(v.edges_in_page(), adj.len() as u64);
    }

    #[test]
    fn encoded_pages_carry_valid_checksums() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        enc.push_vertex(1, &[RecordId::new(0, 0)]);
        let sp = enc.finish(0);
        assert!(sp.checksum_ok());
        assert!(sp.verify(c).is_ok());
        let lp = encode_large_page(c, 1, 7, &[RecordId::new(2, 3)]);
        assert!(lp.checksum_ok());
        assert!(lp.verify(c).is_ok());
    }

    #[test]
    fn flipped_bit_is_detected() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        enc.push_vertex(1, &[RecordId::new(0, 0)]);
        let mut page = enc.finish(0);
        page.data[PAGE_HEADER_BYTES + 1] ^= 0x40;
        assert!(!page.checksum_ok());
        let err = page.verify(c).unwrap_err();
        assert!(err.contains("checksum"), "unexpected error: {err}");
    }

    #[test]
    fn verification_is_cached_with_borrow_after_semantics() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        enc.push_vertex(1, &[RecordId::new(0, 0)]);
        let mut page = enc.finish(0);
        assert!(page.verify(c).is_ok());
        // Mutating after a successful verification is the documented
        // blind spot: cached paths still say "verified"...
        page.data[PAGE_HEADER_BYTES + 1] ^= 0x40;
        assert!(page.verify(c).is_ok());
        assert!(page.checksum_ok_cached());
        // ...while the pure recomputation still sees the damage, and a
        // clone made *before* first verification detects it too.
        assert!(!page.checksum_ok());
    }

    #[test]
    fn checksum_cache_never_caches_failures() {
        let c = cfg();
        let mut enc = SmallPageEncoder::new(c);
        enc.push_vertex(1, &[RecordId::new(0, 0)]);
        let mut page = enc.finish(0);
        page.data[PAGE_HEADER_BYTES + 1] ^= 0x40;
        assert!(!page.checksum_ok_cached());
        assert!(page.verify(c).is_err());
        // Healing the bytes (a successful re-read) must be observable.
        page.data[PAGE_HEADER_BYTES + 1] ^= 0x40;
        assert!(page.checksum_ok_cached());
        assert!(page.verify(c).is_ok());
    }

    #[test]
    fn wide_id_config_roundtrip() {
        // (p=3,q=3) with values beyond 16-bit range.
        let c = PageFormatConfig::new(PhysicalIdConfig::TRILLION, 4096);
        let mut enc = SmallPageEncoder::new(c);
        let adj = [RecordId::new(0xABCDEF, 0x123456)];
        enc.push_vertex(0x00FF_FFFF_FFFF, &adj);
        let page = enc.finish(0);
        let v = page.verify(c).unwrap().view();
        assert_eq!(v.sp_vid(0), 0x00FF_FFFF_FFFF);
        assert_eq!(v.sp_adj(0, 0), RecordId::new(0xABCDEF, 0x123456));
    }
}
