//! GPU-side topology page caches (paper Sec. 3.3, Fig. 11).
//!
//! When device memory is left over after the four streaming buffers, GTS
//! caches topology pages on the GPU so repeat visits (common for BFS-like
//! level-by-level traversal) skip the PCI-E transfer. The paper "basically
//! adopts the LRU algorithm … but other algorithms can be used as well" —
//! so the policy is a trait here, with LRU, FIFO and seeded-random
//! implementations, and the cache ablation bench compares them.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A page-cache replacement policy over page IDs.
///
/// `access` is the only mutating entry point: it records a reference to a
/// page, returns whether it hit, and on a miss admits the page (evicting
/// per policy when full). A capacity of zero disables caching entirely.
pub trait CachePolicy: Send {
    /// Record an access; returns `true` on a cache hit.
    fn access(&mut self, pid: u64) -> bool;
    /// Record a batch of accesses, returning per-page hit flags.
    ///
    /// Semantically identical to calling [`CachePolicy::access`] for each
    /// pid in order — same hit/miss sequence, same evictions, same
    /// counters (a property test pins this) — but one virtual dispatch
    /// amortises over the whole chunk and implementations keep their
    /// bookkeeping hot in a tight monomorphic loop, which is what the
    /// sweep's per-phase probe batching relies on.
    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        pids.iter().map(|&p| self.access(p)).collect()
    }
    /// Is the page currently cached (no recency update)?
    fn contains(&self, pid: u64) -> bool;
    /// Maximum number of cached pages.
    fn capacity(&self) -> usize;
    /// Number of currently cached pages.
    fn len(&self) -> usize;
    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop all cached pages and counters.
    fn clear(&mut self);
    /// Hits recorded so far.
    fn hits(&self) -> u64;
    /// Misses recorded so far.
    fn misses(&self) -> u64;
    /// Hit rate in [0, 1] (Fig. 11b's y-axis).
    fn hit_rate(&self) -> f64 {
        let t = self.hits() + self.misses();
        if t == 0 {
            0.0
        } else {
            self.hits() as f64 / t as f64
        }
    }
    /// Policy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Boxed policy, the form engines hold (`cachedPIDMap` per GPU).
pub type PageCache = Box<dyn CachePolicy>;

/// Least-recently-used replacement (the paper's default).
///
/// Recency is a monotone stamp; a `BTreeMap<stamp, pid>` mirrors the
/// `pid → stamp` map so both the hit path and the eviction are
/// O(log capacity) — default configurations cache hundreds of thousands
/// of pages (12 GiB of device memory at 64 KiB pages), where a linear
/// victim scan per miss would dominate out-of-core runs.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
}

impl LruCache {
    /// An LRU cache for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            stamp: 0,
            entries: HashMap::with_capacity(capacity),
            by_stamp: BTreeMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// The access transition, monomorphic so [`CachePolicy::probe_batch`]
    /// loops over it without per-page virtual dispatch.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        self.stamp += 1;
        if let Some(s) = self.entries.get_mut(&pid) {
            self.by_stamp.remove(s);
            *s = self.stamp;
            self.by_stamp.insert(self.stamp, pid);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            // len >= capacity > 0, and by_stamp mirrors entries 1:1.
            #[allow(clippy::expect_used)]
            let (&oldest, &victim) = self.by_stamp.first_key_value().expect("cache non-empty");
            self.by_stamp.remove(&oldest);
            self.entries.remove(&victim);
        }
        self.entries.insert(pid, self.stamp);
        self.by_stamp.insert(self.stamp, pid);
        false
    }
}

impl CachePolicy for LruCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn contains(&self, pid: u64) -> bool {
        self.entries.contains_key(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.by_stamp.clear();
        self.hits = 0;
        self.misses = 0;
        self.stamp = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in-first-out replacement.
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    resident: HashSet<u64>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
}

impl FifoCache {
    /// A FIFO cache for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            resident: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            hits: 0,
            misses: 0,
        }
    }

    /// The access transition, monomorphic for batched probing.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        if self.resident.contains(&pid) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.resident.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.resident.remove(&old);
            }
        }
        self.resident.insert(pid);
        self.order.push_back(pid);
        false
    }
}

impl CachePolicy for FifoCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn contains(&self, pid: u64) -> bool {
        self.resident.contains(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.hits = 0;
        self.misses = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Random replacement with a deterministic xorshift victim sequence.
#[derive(Debug, Clone)]
pub struct RandomCache {
    capacity: usize,
    entries: Vec<u64>,
    index: HashMap<u64, usize>,
    state: u64,
    hits: u64,
    misses: u64,
}

impl RandomCache {
    /// A random-replacement cache for `capacity` pages, seeded for
    /// reproducibility.
    pub fn new(capacity: usize, seed: u64) -> Self {
        RandomCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            state: seed | 1,
            hits: 0,
            misses: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// The access transition, monomorphic for batched probing. The RNG
    /// advances exactly once per miss-with-eviction, so the victim
    /// sequence is identical whether probes arrive singly or batched.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        if self.index.contains_key(&pid) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim_at = (self.next_rand() % self.entries.len() as u64) as usize;
            let victim = self.entries[victim_at];
            self.index.remove(&victim);
            // Swap-remove keeps eviction O(1); len >= capacity > 0 here.
            #[allow(clippy::expect_used)]
            let last = *self.entries.last().expect("non-empty");
            self.entries.swap_remove(victim_at);
            if victim_at < self.entries.len() {
                self.index.insert(last, victim_at);
            }
        }
        self.index.insert(pid, self.entries.len());
        self.entries.push(pid);
        false
    }
}

impl CachePolicy for RandomCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn contains(&self, pid: u64) -> bool {
        self.index.contains_key(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.hits = 0;
        self.misses = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    fn basic_contract(mut c: impl CachePolicy) {
        assert!(!c.access(1));
        assert!(c.access(1), "immediate re-access must hit");
        assert!(c.contains(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn all_policies_meet_basic_contract() {
        basic_contract(LruCache::new(4));
        basic_contract(FifoCache::new(4));
        basic_contract(RandomCache::new(4, 9));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn fifo_evicts_first_in_even_if_hot() {
        let mut c = FifoCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // hit, but FIFO position unchanged
        c.access(3); // evicts 1
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = RandomCache::new(3, seed);
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.access(i % 7) {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut caches: Vec<PageCache> = vec![
            Box::new(LruCache::new(3)),
            Box::new(FifoCache::new(3)),
            Box::new(RandomCache::new(3, 5)),
        ];
        for c in &mut caches {
            for i in 0..100 {
                c.access(i);
                assert!(c.len() <= 3, "{} overflowed", c.name());
            }
        }
    }

    #[test]
    fn probe_batch_matches_sequential_access() {
        let seq: Vec<u64> = (0..200u64).map(|i| (i * 7 + 3) % 13).collect();
        let make = || -> Vec<PageCache> {
            vec![
                Box::new(LruCache::new(4)),
                Box::new(FifoCache::new(4)),
                Box::new(RandomCache::new(4, 11)),
            ]
        };
        let mut batched = make();
        let mut single = make();
        for (b, s) in batched.iter_mut().zip(single.iter_mut()) {
            let bh = b.probe_batch(&seq);
            let sh: Vec<bool> = seq.iter().map(|&p| s.access(p)).collect();
            assert_eq!(bh, sh, "{} hit sequence", b.name());
            assert_eq!(b.hits(), s.hits());
            assert_eq!(b.misses(), s.misses());
            for p in 0..13 {
                assert_eq!(
                    b.contains(p),
                    s.contains(p),
                    "{} residency of {p}",
                    b.name()
                );
            }
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_tracks_reuse() {
        // Cycling over a working set that fits: everything after the first
        // pass hits (Sec. 3.3's B/(S+L) approximation with B >= S+L).
        let mut c = LruCache::new(8);
        for _ in 0..10 {
            for p in 0..8u64 {
                c.access(p);
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 72);
        assert!(c.hit_rate() > 0.89);
    }
}
