//! GPU-side topology page caches (paper Sec. 3.3, Fig. 11).
//!
//! When device memory is left over after the four streaming buffers, GTS
//! caches topology pages on the GPU so repeat visits (common for BFS-like
//! level-by-level traversal) skip the PCI-E transfer. The paper "basically
//! adopts the LRU algorithm … but other algorithms can be used as well" —
//! so the policy is a trait here, with LRU, FIFO and seeded-random
//! implementations, and the cache ablation bench compares them.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

/// A page-cache replacement policy over page IDs.
///
/// `access` is the only mutating entry point: it records a reference to a
/// page, returns whether it hit, and on a miss admits the page (evicting
/// per policy when full). A capacity of zero disables caching entirely.
pub trait CachePolicy: Send {
    /// Record an access; returns `true` on a cache hit.
    fn access(&mut self, pid: u64) -> bool;
    /// Record a batch of accesses, returning per-page hit flags.
    ///
    /// Semantically identical to calling [`CachePolicy::access`] for each
    /// pid in order — same hit/miss sequence, same evictions, same
    /// counters (a property test pins this) — but one virtual dispatch
    /// amortises over the whole chunk and implementations keep their
    /// bookkeeping hot in a tight monomorphic loop, which is what the
    /// sweep's per-phase probe batching relies on.
    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        pids.iter().map(|&p| self.access(p)).collect()
    }
    /// Drop `pid` from the cache if resident, returning whether it was.
    ///
    /// Mutation batches use this for targeted invalidation: a rewritten
    /// page's cached copy is stale and must re-stream on next access.
    /// Counters are untouched (an invalidation is neither a hit nor a
    /// miss), and the bookkeeping for the surviving residents — recency
    /// stamps, FIFO order, the random policy's slot order and RNG state —
    /// is preserved exactly, so the future behaviour matches a cache
    /// replaying the same access/invalidate stream from scratch (the
    /// cross-policy property test pins this equivalence).
    fn invalidate(&mut self, pid: u64) -> bool;
    /// Is the page currently cached (no recency update)?
    fn contains(&self, pid: u64) -> bool;
    /// Maximum number of cached pages.
    fn capacity(&self) -> usize;
    /// Number of currently cached pages.
    fn len(&self) -> usize;
    /// True when nothing is cached.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Drop all cached pages and counters.
    fn clear(&mut self);
    /// Hits recorded so far.
    fn hits(&self) -> u64;
    /// Misses recorded so far.
    fn misses(&self) -> u64;
    /// Evictions recorded so far: admissions that displaced a resident
    /// page. Invalidations are not evictions (targeted drops are neither
    /// a hit nor a miss nor a replacement decision), and a miss into a
    /// not-yet-full cache admits without evicting.
    fn evictions(&self) -> u64;
    /// Hit rate in [0, 1] (Fig. 11b's y-axis).
    fn hit_rate(&self) -> f64 {
        let t = self.hits() + self.misses();
        if t == 0 {
            0.0
        } else {
            self.hits() as f64 / t as f64
        }
    }
    /// Policy name for experiment tables.
    fn name(&self) -> &'static str;
}

/// Boxed policy, the form engines hold (`cachedPIDMap` per GPU).
pub type PageCache = Box<dyn CachePolicy>;

/// Least-recently-used replacement (the paper's default).
///
/// Recency is a monotone stamp; a `BTreeMap<stamp, pid>` mirrors the
/// `pid → stamp` map so both the hit path and the eviction are
/// O(log capacity) — default configurations cache hundreds of thousands
/// of pages (12 GiB of device memory at 64 KiB pages), where a linear
/// victim scan per miss would dominate out-of-core runs.
#[derive(Debug, Clone)]
pub struct LruCache {
    capacity: usize,
    stamp: u64,
    entries: HashMap<u64, u64>,
    by_stamp: BTreeMap<u64, u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl LruCache {
    /// An LRU cache for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity,
            stamp: 0,
            entries: HashMap::with_capacity(capacity),
            by_stamp: BTreeMap::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The access transition, monomorphic so [`CachePolicy::probe_batch`]
    /// loops over it without per-page virtual dispatch.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        self.stamp += 1;
        if let Some(s) = self.entries.get_mut(&pid) {
            self.by_stamp.remove(s);
            *s = self.stamp;
            self.by_stamp.insert(self.stamp, pid);
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            // len >= capacity > 0, and by_stamp mirrors entries 1:1.
            #[allow(clippy::expect_used)]
            let (&oldest, &victim) = self.by_stamp.first_key_value().expect("cache non-empty");
            self.by_stamp.remove(&oldest);
            self.entries.remove(&victim);
            self.evictions += 1;
        }
        self.entries.insert(pid, self.stamp);
        self.by_stamp.insert(self.stamp, pid);
        false
    }
}

impl CachePolicy for LruCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn invalidate(&mut self, pid: u64) -> bool {
        if let Some(s) = self.entries.remove(&pid) {
            self.by_stamp.remove(&s);
            true
        } else {
            false
        }
    }

    fn contains(&self, pid: u64) -> bool {
        self.entries.contains_key(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.by_stamp.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
        self.stamp = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn name(&self) -> &'static str {
        "lru"
    }
}

/// First-in-first-out replacement.
#[derive(Debug, Clone)]
pub struct FifoCache {
    capacity: usize,
    resident: HashSet<u64>,
    order: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl FifoCache {
    /// A FIFO cache for `capacity` pages.
    pub fn new(capacity: usize) -> Self {
        FifoCache {
            capacity,
            resident: HashSet::with_capacity(capacity),
            order: VecDeque::with_capacity(capacity),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// The access transition, monomorphic for batched probing.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        if self.resident.contains(&pid) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.resident.len() >= self.capacity {
            if let Some(old) = self.order.pop_front() {
                self.resident.remove(&old);
                self.evictions += 1;
            }
        }
        self.resident.insert(pid);
        self.order.push_back(pid);
        false
    }
}

impl CachePolicy for FifoCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn invalidate(&mut self, pid: u64) -> bool {
        if self.resident.remove(&pid) {
            self.order.retain(|&p| p != pid);
            true
        } else {
            false
        }
    }

    fn contains(&self, pid: u64) -> bool {
        self.resident.contains(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.resident.len()
    }

    fn clear(&mut self) {
        self.resident.clear();
        self.order.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn name(&self) -> &'static str {
        "fifo"
    }
}

/// Random replacement with a deterministic xorshift victim sequence.
#[derive(Debug, Clone)]
pub struct RandomCache {
    capacity: usize,
    entries: Vec<u64>,
    index: HashMap<u64, usize>,
    state: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl RandomCache {
    /// A random-replacement cache for `capacity` pages, seeded for
    /// reproducibility.
    pub fn new(capacity: usize, seed: u64) -> Self {
        RandomCache {
            capacity,
            entries: Vec::with_capacity(capacity),
            index: HashMap::with_capacity(capacity),
            state: seed | 1,
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*.
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// The access transition, monomorphic for batched probing. The RNG
    /// advances exactly once per miss-with-eviction, so the victim
    /// sequence is identical whether probes arrive singly or batched.
    #[inline]
    fn access_one(&mut self, pid: u64) -> bool {
        if self.index.contains_key(&pid) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity == 0 {
            return false;
        }
        if self.entries.len() >= self.capacity {
            let victim_at = (self.next_rand() % self.entries.len() as u64) as usize;
            let victim = self.entries[victim_at];
            self.index.remove(&victim);
            // Swap-remove keeps eviction O(1); len >= capacity > 0 here.
            #[allow(clippy::expect_used)]
            let last = *self.entries.last().expect("non-empty");
            self.entries.swap_remove(victim_at);
            if victim_at < self.entries.len() {
                self.index.insert(last, victim_at);
            }
            self.evictions += 1;
        }
        self.index.insert(pid, self.entries.len());
        self.entries.push(pid);
        false
    }
}

impl CachePolicy for RandomCache {
    fn access(&mut self, pid: u64) -> bool {
        self.access_one(pid)
    }

    fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        let mut hits = Vec::with_capacity(pids.len());
        for &pid in pids {
            hits.push(self.access_one(pid));
        }
        hits
    }

    fn invalidate(&mut self, pid: u64) -> bool {
        if let Some(at) = self.index.remove(&pid) {
            // Order-preserving removal, unlike the O(1) swap_remove on
            // eviction: the surviving residents must keep their relative
            // slot order (and the RNG must not advance) so that future
            // victim picks match a from-scratch replay of the stream.
            self.entries.remove(at);
            for (off, &p) in self.entries[at..].iter().enumerate() {
                self.index.insert(p, at + off);
            }
            true
        } else {
            false
        }
    }

    fn contains(&self, pid: u64) -> bool {
        self.index.contains_key(&pid)
    }

    fn capacity(&self) -> usize {
        self.capacity
    }

    fn len(&self) -> usize {
        self.entries.len()
    }

    fn clear(&mut self) {
        self.entries.clear();
        self.index.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }

    fn hits(&self) -> u64 {
        self.hits
    }

    fn misses(&self) -> u64 {
        self.misses
    }

    fn evictions(&self) -> u64 {
        self.evictions
    }

    fn name(&self) -> &'static str {
        "random"
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    fn basic_contract(mut c: impl CachePolicy) {
        assert!(!c.access(1));
        assert!(c.access(1), "immediate re-access must hit");
        assert!(c.contains(1));
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.hits() + c.misses(), 0);
    }

    #[test]
    fn all_policies_meet_basic_contract() {
        basic_contract(LruCache::new(4));
        basic_contract(FifoCache::new(4));
        basic_contract(RandomCache::new(4, 9));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = LruCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // 2 is now LRU
        c.access(3); // evicts 2
        assert!(c.contains(1));
        assert!(!c.contains(2));
        assert!(c.contains(3));
    }

    #[test]
    fn fifo_evicts_first_in_even_if_hot() {
        let mut c = FifoCache::new(2);
        c.access(1);
        c.access(2);
        c.access(1); // hit, but FIFO position unchanged
        c.access(3); // evicts 1
        assert!(!c.contains(1));
        assert!(c.contains(2));
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let run = |seed| {
            let mut c = RandomCache::new(3, seed);
            let mut hits = 0;
            for i in 0..1000u64 {
                if c.access(i % 7) {
                    hits += 1;
                }
            }
            hits
        };
        assert_eq!(run(1), run(1));
    }

    #[test]
    fn capacity_never_exceeded() {
        let mut caches: Vec<PageCache> = vec![
            Box::new(LruCache::new(3)),
            Box::new(FifoCache::new(3)),
            Box::new(RandomCache::new(3, 5)),
        ];
        for c in &mut caches {
            for i in 0..100 {
                c.access(i);
                assert!(c.len() <= 3, "{} overflowed", c.name());
            }
        }
    }

    #[test]
    fn probe_batch_matches_sequential_access() {
        let seq: Vec<u64> = (0..200u64).map(|i| (i * 7 + 3) % 13).collect();
        let make = || -> Vec<PageCache> {
            vec![
                Box::new(LruCache::new(4)),
                Box::new(FifoCache::new(4)),
                Box::new(RandomCache::new(4, 11)),
            ]
        };
        let mut batched = make();
        let mut single = make();
        for (b, s) in batched.iter_mut().zip(single.iter_mut()) {
            let bh = b.probe_batch(&seq);
            let sh: Vec<bool> = seq.iter().map(|&p| s.access(p)).collect();
            assert_eq!(bh, sh, "{} hit sequence", b.name());
            assert_eq!(b.hits(), s.hits());
            assert_eq!(b.misses(), s.misses());
            for p in 0..13 {
                assert_eq!(
                    b.contains(p),
                    s.contains(p),
                    "{} residency of {p}",
                    b.name()
                );
            }
        }
    }

    /// One op of the randomized access/invalidate streams below.
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Access(u64),
        Invalidate(u64),
    }

    /// Straight-line single-`Vec` reimplementations of each policy's
    /// semantics, kept deliberately free of the incremental index/mirror
    /// bookkeeping the real caches use. Replaying the same op stream
    /// through both and demanding identical hit sequences, counters and
    /// residency pins `invalidate` to "consistent with a rebuild from
    /// scratch" across all three policies.
    struct LruModel {
        cap: usize,
        order: Vec<u64>, // LRU .. MRU
        hits: u64,
        misses: u64,
    }

    impl LruModel {
        fn access(&mut self, pid: u64) -> bool {
            if let Some(at) = self.order.iter().position(|&p| p == pid) {
                self.order.remove(at);
                self.order.push(pid);
                self.hits += 1;
                return true;
            }
            self.misses += 1;
            if self.cap == 0 {
                return false;
            }
            if self.order.len() >= self.cap {
                self.order.remove(0);
            }
            self.order.push(pid);
            false
        }

        fn invalidate(&mut self, pid: u64) {
            self.order.retain(|&p| p != pid);
        }
    }

    struct FifoModel {
        cap: usize,
        order: Vec<u64>, // admission order
        hits: u64,
        misses: u64,
    }

    impl FifoModel {
        fn access(&mut self, pid: u64) -> bool {
            if self.order.contains(&pid) {
                self.hits += 1;
                return true;
            }
            self.misses += 1;
            if self.cap == 0 {
                return false;
            }
            if self.order.len() >= self.cap {
                self.order.remove(0);
            }
            self.order.push(pid);
            false
        }

        fn invalidate(&mut self, pid: u64) {
            self.order.retain(|&p| p != pid);
        }
    }

    struct RandomModel {
        cap: usize,
        slots: Vec<u64>,
        state: u64, // mirrors RandomCache's xorshift64*
        hits: u64,
        misses: u64,
    }

    impl RandomModel {
        fn next_rand(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        }

        fn access(&mut self, pid: u64) -> bool {
            if self.slots.contains(&pid) {
                self.hits += 1;
                return true;
            }
            self.misses += 1;
            if self.cap == 0 {
                return false;
            }
            if self.slots.len() >= self.cap {
                let at = (self.next_rand() % self.slots.len() as u64) as usize;
                self.slots.swap_remove(at);
            }
            self.slots.push(pid);
            false
        }

        fn invalidate(&mut self, pid: u64) {
            // Order-preserving, RNG untouched — the contract the real
            // cache's invalidate documents.
            self.slots.retain(|&p| p != pid);
        }
    }

    /// Deterministic op stream: ~1 in 4 ops invalidates a page from a
    /// small universe, the rest access.
    fn op_stream(seed: u64, len: usize, universe: u64) -> Vec<Op> {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
        let mut next = move || {
            let mut x = state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            state = x;
            x.wrapping_mul(0x2545F4914F6CDD1D)
        };
        (0..len)
            .map(|_| {
                let pid = next() % universe;
                if next() % 4 == 0 {
                    Op::Invalidate(pid)
                } else {
                    Op::Access(pid)
                }
            })
            .collect()
    }

    #[test]
    fn invalidate_is_consistent_with_rebuild_from_scratch_across_policies() {
        const CAP: usize = 4;
        const SEED: u64 = 0x6715;
        for stream_seed in 0..24u64 {
            let ops = op_stream(stream_seed, 400, 17);
            let mut caches: Vec<PageCache> = vec![
                Box::new(LruCache::new(CAP)),
                Box::new(FifoCache::new(CAP)),
                Box::new(RandomCache::new(CAP, SEED)),
            ];
            let mut lru = LruModel {
                cap: CAP,
                order: Vec::new(),
                hits: 0,
                misses: 0,
            };
            let mut fifo = FifoModel {
                cap: CAP,
                order: Vec::new(),
                hits: 0,
                misses: 0,
            };
            let mut random = RandomModel {
                cap: CAP,
                slots: Vec::new(),
                state: SEED | 1,
                hits: 0,
                misses: 0,
            };
            for (i, &op) in ops.iter().enumerate() {
                match op {
                    Op::Access(pid) => {
                        let want = [lru.access(pid), fifo.access(pid), random.access(pid)];
                        for (c, w) in caches.iter_mut().zip(want) {
                            assert_eq!(
                                c.access(pid),
                                w,
                                "{} diverged from model at op {i} of stream {stream_seed}",
                                c.name()
                            );
                        }
                    }
                    Op::Invalidate(pid) => {
                        lru.invalidate(pid);
                        fifo.invalidate(pid);
                        random.invalidate(pid);
                        for c in caches.iter_mut() {
                            c.invalidate(pid);
                            assert!(!c.contains(pid), "{} kept an invalidated page", c.name());
                        }
                    }
                }
            }
            let residency = |m: &[u64]| (0..17u64).map(|p| m.contains(&p)).collect::<Vec<bool>>();
            let want = [
                (residency(&lru.order), lru.hits, lru.misses),
                (residency(&fifo.order), fifo.hits, fifo.misses),
                (residency(&random.slots), random.hits, random.misses),
            ];
            for (c, (res, hits, misses)) in caches.iter().zip(want) {
                let got: Vec<bool> = (0..17u64).map(|p| c.contains(p)).collect();
                assert_eq!(got, res, "{} residency, stream {stream_seed}", c.name());
                assert_eq!(c.hits(), hits, "{} hits", c.name());
                assert_eq!(c.misses(), misses, "{} misses", c.name());
                assert!(c.len() <= CAP);
            }
        }
    }

    #[test]
    fn invalidate_reports_residency_and_leaves_counters_alone() {
        let mut caches: Vec<PageCache> = vec![
            Box::new(LruCache::new(4)),
            Box::new(FifoCache::new(4)),
            Box::new(RandomCache::new(4, 7)),
        ];
        for c in &mut caches {
            c.access(1);
            c.access(2);
            let (h, m) = (c.hits(), c.misses());
            assert!(c.invalidate(1), "{}", c.name());
            assert!(!c.invalidate(1), "{} double-invalidate", c.name());
            assert!(!c.invalidate(99), "{} never-resident", c.name());
            assert_eq!((c.hits(), c.misses()), (h, m), "{} counters", c.name());
            assert!(!c.contains(1));
            assert!(c.contains(2));
            assert_eq!(c.len(), 1);
        }
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = LruCache::new(0);
        assert!(!c.access(1));
        assert!(!c.access(1));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn hit_rate_tracks_reuse() {
        // Cycling over a working set that fits: everything after the first
        // pass hits (Sec. 3.3's B/(S+L) approximation with B >= S+L).
        let mut c = LruCache::new(8);
        for _ in 0..10 {
            for p in 0..8u64 {
                c.access(p);
            }
        }
        assert_eq!(c.misses(), 8);
        assert_eq!(c.hits(), 72);
        assert!(c.hit_rate() > 0.89);
    }
}
