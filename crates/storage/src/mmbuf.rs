//! MMBuf — the main-memory page buffer of Algorithm 1.
//!
//! GTS fetches slotted pages from SSD into a bounded main-memory buffer
//! before streaming them to GPUs; `bufferPIDMap` tracks which pages are
//! resident so repeat visits skip the SSD (Algorithm 1 lines 18–26). The
//! experiments size it as a fraction of the graph (Sec. 7.2 uses 20% for
//! RMAT31/32). Eviction is FIFO — the simplest policy consistent with the
//! paper's sequential streaming order.

use gts_telemetry::{keys, Telemetry};
use std::collections::{HashSet, VecDeque};

/// Bounded main-memory page buffer with residency tracking.
#[derive(Debug, Clone)]
pub struct MmBuf {
    capacity_pages: usize,
    resident: HashSet<u64>,
    fifo: VecDeque<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl MmBuf {
    /// A buffer holding at most `capacity_pages` pages. Zero capacity is
    /// valid and means every access goes to storage.
    pub fn new(capacity_pages: usize) -> Self {
        // Pre-reserve for small buffers only; a huge (effectively unbounded)
        // capacity must not allocate up front.
        let reserve = capacity_pages.min(1 << 20);
        MmBuf {
            capacity_pages,
            resident: HashSet::with_capacity(reserve),
            fifo: VecDeque::with_capacity(reserve),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Size a buffer as `percent`% of `total_pages` (the paper's "buffer
    /// size of 20% of a graph size").
    ///
    /// The multiply is widened to 128 bits so huge page counts cannot
    /// overflow, and any non-zero fraction of a non-empty store gets at
    /// least one page — naive truncating division would silently disable
    /// the buffer for small graphs (e.g. 4 pages at 20% → 0).
    pub fn with_fraction(total_pages: u64, percent: u32) -> Self {
        let pages = (total_pages as u128 * percent as u128) / 100;
        let pages = usize::try_from(pages).unwrap_or(usize::MAX);
        let min = usize::from(percent > 0 && total_pages > 0);
        Self::new(pages.max(min))
    }

    /// Capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity_pages
    }

    /// Pages currently resident.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// `bufferPIDMap` lookup (Algorithm 1 line 18).
    pub fn contains(&self, pid: u64) -> bool {
        self.resident.contains(&pid)
    }

    /// Record an access: returns `true` on a buffer hit. On a miss the page
    /// is brought in (evicting the oldest page if full).
    pub fn access(&mut self, pid: u64) -> bool {
        if self.resident.contains(&pid) {
            self.hits += 1;
            return true;
        }
        self.misses += 1;
        if self.capacity_pages == 0 {
            return false;
        }
        if self.resident.len() >= self.capacity_pages {
            if let Some(old) = self.fifo.pop_front() {
                self.resident.remove(&old);
                self.evictions += 1;
            }
        }
        self.resident.insert(pid);
        self.fifo.push_back(pid);
        false
    }

    /// Drop `pid` from the buffer if resident, returning whether it was.
    /// Used for targeted invalidation after a mutation batch rewrites a
    /// page: the buffered copy is stale and must be re-fetched. Counters
    /// are untouched — an invalidation is neither an access nor an
    /// eviction.
    pub fn invalidate(&mut self, pid: u64) -> bool {
        if self.resident.remove(&pid) {
            self.fifo.retain(|&p| p != pid);
            true
        } else {
            false
        }
    }

    /// Buffer hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Buffer misses (storage fetches) recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Pages evicted from the ring so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Flush hit/miss/eviction counters into `tel`'s registry.
    pub fn flush_to(&self, tel: &Telemetry) {
        tel.add(keys::MMBUF_HITS, self.hits);
        tel.add(keys::MMBUF_MISSES, self.misses);
        tel.add(keys::MMBUF_EVICTIONS, self.evictions);
    }

    /// Hit rate in [0, 1]; zero when nothing has been accessed.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Drop all residency and counters.
    pub fn clear(&mut self) {
        self.resident.clear();
        self.fifo.clear();
        self.hits = 0;
        self.misses = 0;
        self.evictions = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn hit_after_miss() {
        let mut b = MmBuf::new(2);
        assert!(!b.access(1));
        assert!(b.access(1));
        assert_eq!(b.hits(), 1);
        assert_eq!(b.misses(), 1);
        assert!((b.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn fifo_eviction_order() {
        let mut b = MmBuf::new(2);
        b.access(1);
        b.access(2);
        assert_eq!(b.evictions(), 0);
        b.access(3); // evicts 1
        assert!(!b.contains(1));
        assert!(b.contains(2));
        assert!(b.contains(3));
        assert_eq!(b.len(), 2);
        assert_eq!(b.evictions(), 1);
    }

    #[test]
    fn counters_flush_into_the_registry() {
        let mut b = MmBuf::new(1);
        b.access(1);
        b.access(1);
        b.access(2); // evicts 1
        let tel = Telemetry::new();
        b.flush_to(&tel);
        assert_eq!(tel.counter(keys::MMBUF_HITS), 1);
        assert_eq!(tel.counter(keys::MMBUF_MISSES), 2);
        assert_eq!(tel.counter(keys::MMBUF_EVICTIONS), 1);
    }

    #[test]
    fn zero_capacity_never_buffers() {
        let mut b = MmBuf::new(0);
        assert!(!b.access(1));
        assert!(!b.access(1));
        assert_eq!(b.len(), 0);
        assert_eq!(b.misses(), 2);
    }

    #[test]
    fn fraction_sizing() {
        let b = MmBuf::with_fraction(1000, 20);
        assert_eq!(b.capacity(), 200);
    }

    #[test]
    fn fraction_sizing_never_rounds_a_nonzero_fraction_to_zero() {
        // 4 pages at 20% used to truncate to capacity 0, silently turning
        // the main-memory buffer off for small graphs.
        assert_eq!(MmBuf::with_fraction(4, 20).capacity(), 1);
        assert_eq!(MmBuf::with_fraction(1, 1).capacity(), 1);
        // A zero fraction (or an empty store) still means "no buffer".
        assert_eq!(MmBuf::with_fraction(4, 0).capacity(), 0);
        assert_eq!(MmBuf::with_fraction(0, 20).capacity(), 0);
    }

    #[test]
    fn fraction_sizing_does_not_overflow_huge_page_counts() {
        // u64::MAX pages at 100% would overflow a usize multiply; the
        // widened math saturates instead of wrapping to a tiny capacity.
        let b = MmBuf::with_fraction(u64::MAX, 100);
        assert_eq!(b.capacity(), usize::MAX);
        let b = MmBuf::with_fraction(u64::MAX / 2, 50);
        assert!(b.capacity() >= (u64::MAX / 8) as usize);
    }

    #[test]
    fn clear_resets() {
        let mut b = MmBuf::new(4);
        b.access(1);
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.hit_rate(), 0.0);
    }
}
