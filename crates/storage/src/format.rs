//! Physical layout parameters of the slotted page format.
//!
//! A *record ID* (physical ID) is the pair (ADJ_PID, ADJ_OFF): the page a
//! vertex lives in and its slot there (paper Sec. 2). The original format
//! [Han et al., KDD'13] fixes 2 bytes for each; Sec. 6.1 generalises to
//! `p`-byte page IDs and `q`-byte slot numbers so that even trillion-scale
//! graphs are addressable — Table 2 enumerates the 6-byte configurations.

use std::fmt;

/// Byte widths of the two halves of a physical record ID.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PhysicalIdConfig {
    /// Bytes of page ID (ADJ_PID).
    pub p: u8,
    /// Bytes of slot number (ADJ_OFF).
    pub q: u8,
}

/// Bytes of a VID field inside a slot (paper Sec. 6.1 assumes 6-byte VID).
pub const VID_BYTES: usize = 6;
/// Bytes of the OFF field inside a slot (4-byte record offset).
pub const OFF_BYTES: usize = 4;
/// Bytes of the ADJLIST_SZ field at the head of a record.
pub const ADJLIST_SZ_BYTES: usize = 4;
/// Per-vertex minimum footprint used in Table 2's max-page-size column:
/// one slot (VID + OFF) plus a minimal record (ADJLIST_SZ + one 6-byte id).
pub const MIN_VERTEX_FOOTPRINT: u64 = (VID_BYTES + OFF_BYTES + ADJLIST_SZ_BYTES + 6) as u64;
/// Bytes of the page header: kind (1) + entry count (4), padded to 8.
pub const PAGE_HEADER_BYTES: usize = 8;
/// Bytes of the page trailer: a little-endian FNV-1a 64 checksum over the
/// rest of the page, sealed at encode time and verified on every fetch so
/// torn or corrupt pages are *detected*, not silently traversed.
pub const PAGE_TRAILER_BYTES: usize = 8;

impl PhysicalIdConfig {
    /// The original TurboGraph configuration: 2-byte page ID, 2-byte slot.
    pub const ORIGINAL: PhysicalIdConfig = PhysicalIdConfig { p: 2, q: 2 };
    /// The paper's chosen trillion-scale configuration (Sec. 6.1).
    pub const TRILLION: PhysicalIdConfig = PhysicalIdConfig { p: 3, q: 3 };

    /// Create a configuration; widths of 1..=8 bytes are supported.
    pub fn new(p: u8, q: u8) -> Self {
        assert!(
            (1..=8).contains(&p) && (1..=8).contains(&q),
            "widths must be 1..=8 bytes"
        );
        PhysicalIdConfig { p, q }
    }

    /// Bytes one record ID occupies inside an adjacency list.
    pub const fn rid_bytes(self) -> usize {
        self.p as usize + self.q as usize
    }

    /// Exclusive upper bound on page IDs (Table 2's "max. page ID").
    pub fn max_page_id(self) -> u64 {
        saturating_pow2(8 * self.p as u32)
    }

    /// Exclusive upper bound on slot numbers (Table 2's "max. slot number").
    pub fn max_slot(self) -> u64 {
        saturating_pow2(8 * self.q as u32)
    }

    /// Largest representable page size in bytes (Table 2's "max. page
    /// size"): every slot must be reachable, and each vertex costs at least
    /// [`MIN_VERTEX_FOOTPRINT`] bytes.
    pub fn max_page_size(self) -> u64 {
        self.max_slot().saturating_mul(MIN_VERTEX_FOOTPRINT)
    }

    /// Theoretical maximum number of addressable vertices: every page
    /// filled with maximum slots.
    pub fn max_vertices(self) -> u128 {
        self.max_page_id() as u128 * self.max_slot() as u128
    }
}

impl fmt::Display for PhysicalIdConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(p={}, q={})", self.p, self.q)
    }
}

fn saturating_pow2(bits: u32) -> u64 {
    if bits >= 64 {
        u64::MAX
    } else {
        1u64 << bits
    }
}

/// A physical record ID: which page, which slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RecordId {
    /// Page ID (ADJ_PID).
    pub pid: u64,
    /// Slot number within the page (ADJ_OFF).
    pub slot: u32,
}

impl RecordId {
    /// Construct a record ID.
    pub const fn new(pid: u64, slot: u32) -> Self {
        RecordId { pid, slot }
    }
}

/// Whether a page holds many low-degree vertices or one chunk of a
/// high-degree vertex's adjacency list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageKind {
    /// Small Page: consecutive low-degree vertices, records + slots.
    Small,
    /// Large Page: one chunk of a single high-degree vertex.
    Large,
}

/// Full format configuration: ID widths plus the fixed page size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageFormatConfig {
    /// Physical-ID byte widths.
    pub id: PhysicalIdConfig,
    /// Page size in bytes (all pages in a store share it).
    pub page_size: usize,
}

impl PageFormatConfig {
    /// Create and validate a configuration.
    ///
    /// # Panics
    /// Panics if the page size exceeds what the slot-number width can
    /// address ([`PhysicalIdConfig::max_page_size`]) or is too small to hold
    /// even a single minimal vertex record.
    pub fn new(id: PhysicalIdConfig, page_size: usize) -> Self {
        assert!(
            page_size as u64 <= id.max_page_size(),
            "page size {} exceeds max {} for {}",
            page_size,
            id.max_page_size(),
            id
        );
        let min = PAGE_HEADER_BYTES
            + PAGE_TRAILER_BYTES
            + VID_BYTES
            + OFF_BYTES
            + ADJLIST_SZ_BYTES
            + id.rid_bytes();
        assert!(
            page_size >= min,
            "page size {page_size} below minimum {min}"
        );
        PageFormatConfig { id, page_size }
    }

    /// Paper-style default at reproduction scale: (2,2) IDs with 64 KiB
    /// pages (the paper pairs (2,2) with ~1 MiB pages for billion-edge
    /// graphs; 64 KiB preserves the pages-per-graph ratio at our scale).
    pub fn small_default() -> Self {
        PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 64 * 1024)
    }

    /// Trillion-scale configuration: (3,3) IDs. The paper uses 64 MiB pages
    /// (Hadoop-block compatible); scaled down proportionally here.
    pub fn large_default() -> Self {
        PageFormatConfig::new(PhysicalIdConfig::TRILLION, 1024 * 1024)
    }

    /// Record-ID entries a Large Page chunk can carry. The LP layout is
    /// header (kind + entry count) + VID + packed record IDs + checksum
    /// trailer — the entry count lives in the page header, so no separate
    /// ADJLIST_SZ field is spent.
    pub fn lp_capacity(&self) -> usize {
        (self.page_size - PAGE_HEADER_BYTES - PAGE_TRAILER_BYTES - VID_BYTES) / self.id.rid_bytes()
    }

    /// Bytes a Small-Page vertex with `degree` out-edges consumes
    /// (slot + record).
    pub fn sp_vertex_bytes(&self, degree: usize) -> usize {
        VID_BYTES + OFF_BYTES + ADJLIST_SZ_BYTES + degree * self.id.rid_bytes()
    }

    /// Usable byte budget of a Small Page (header and checksum trailer
    /// excluded).
    pub fn sp_budget(&self) -> usize {
        self.page_size - PAGE_HEADER_BYTES - PAGE_TRAILER_BYTES
    }

    /// True if a vertex of `degree` fits in one (empty) Small Page.
    pub fn fits_in_small_page(&self, degree: usize) -> bool {
        self.sp_vertex_bytes(degree) <= self.sp_budget()
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn table2_row_p2_q4() {
        let c = PhysicalIdConfig::new(2, 4);
        assert_eq!(c.max_page_id(), 64 * 1024); // 64 K
        assert_eq!(c.max_slot(), 4 * 1024 * 1024 * 1024); // 4 B
        assert_eq!(c.max_page_size(), (4u64 << 30) * 20); // 80 GB = 4G slots * 20 B
    }

    #[test]
    fn table2_row_p3_q3() {
        let c = PhysicalIdConfig::TRILLION;
        assert_eq!(c.max_page_id(), 16 * 1024 * 1024); // 16 M
        assert_eq!(c.max_slot(), 16 * 1024 * 1024); // 16 M
        assert_eq!(c.max_page_size(), (16u64 << 20) * 20); // 320 MB
    }

    #[test]
    fn table2_row_p4_q2() {
        let c = PhysicalIdConfig::new(4, 2);
        assert_eq!(c.max_page_id(), 4 * 1024 * 1024 * 1024); // 4 B
        assert_eq!(c.max_slot(), 64 * 1024); // 64 K
        assert_eq!(c.max_page_size(), (64u64 << 10) * 20); // 1.25 MB
    }

    #[test]
    fn trillion_config_addresses_beyond_4b_vertices() {
        // Sec. 6.1's motivation: (2,2) can't reach RMAT30's 1B vertices in
        // practice; (3,3) theoretically addresses 2^48.
        assert_eq!(PhysicalIdConfig::TRILLION.max_vertices(), 1u128 << 48);
        assert_eq!(PhysicalIdConfig::ORIGINAL.max_vertices(), 1u128 << 32);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn page_size_must_be_addressable() {
        // (4,2) caps pages at 1.25 MB; 2 MiB must be rejected.
        let _ = PageFormatConfig::new(PhysicalIdConfig::new(4, 2), 2 * 1024 * 1024);
    }

    #[test]
    #[should_panic(expected = "below minimum")]
    fn tiny_pages_rejected() {
        let _ = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 16);
    }

    #[test]
    fn capacity_helpers() {
        let cfg = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 4096);
        // rid = 4 bytes under (2,2).
        assert_eq!(cfg.id.rid_bytes(), 4);
        assert_eq!(cfg.lp_capacity(), (4096 - 8 - 8 - 6) / 4);
        assert_eq!(cfg.sp_vertex_bytes(3), 6 + 4 + 4 + 12);
        assert!(cfg.fits_in_small_page(100));
        assert!(!cfg.fits_in_small_page(100_000));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(PhysicalIdConfig::TRILLION.to_string(), "(p=3, q=3)");
    }
}
