//! RVT — the record-ID → vertex-ID mapping table (paper Appendix A).
//!
//! Adjacency lists store *physical* record IDs; graph algorithms need
//! *logical* vertex IDs for attribute-array indexing. Because vertex IDs are
//! consecutive within each page, one `(START_VID, LP_RANGE)` tuple per page
//! suffices: `VID = RVT[ADJ_PID].START_VID + ADJ_OFF`.
//!
//! `LP_RANGE` records how many pages a Large-Page vertex spans (−1 in the
//! paper's Fig. 12 for Small Pages; an `Option` here).

use crate::format::RecordId;

/// One RVT tuple (per page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RvtEntry {
    /// First vertex ID stored in the page.
    pub start_vid: u64,
    /// For a Large Page: how many consecutive pages the vertex spans
    /// (counted from the vertex's first LP). `None` for Small Pages.
    pub lp_range: Option<u32>,
}

/// The full per-store mapping table, resident in main memory (and copied to
/// each GPU's device memory by the engine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Rvt {
    entries: Vec<RvtEntry>,
}

impl Rvt {
    /// Build from per-page entries, indexed by page ID.
    pub fn new(entries: Vec<RvtEntry>) -> Self {
        Rvt { entries }
    }

    /// Number of pages covered.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry for `pid`.
    #[inline]
    pub fn entry(&self, pid: u64) -> RvtEntry {
        self.entries[pid as usize]
    }

    /// Overwrite the entry for `pid`. The builder always produces a
    /// consistent table; this exists so tests can inject corruption
    /// (e.g. a Large Page stripped of its `LP_RANGE`) and assert the
    /// engine surfaces it as a typed error instead of panicking.
    pub fn set_entry(&mut self, pid: u64, entry: RvtEntry) {
        self.entries[pid as usize] = entry;
    }

    /// Append the entry for a newly allocated page. Mutation batches use
    /// this when they grow the store with delta pages; the table stays
    /// indexed by page ID, so entries must be pushed in pid order.
    pub fn push_entry(&mut self, entry: RvtEntry) {
        self.entries.push(entry);
    }

    /// Translate a record ID to its vertex ID:
    /// `RVT[ADJ_PID].START_VID + ADJ_OFF` (Appendix A).
    #[inline]
    pub fn translate(&self, rid: RecordId) -> u64 {
        self.entries[rid.pid as usize].start_vid + rid.slot as u64
    }

    /// In-memory footprint in bytes, for the engine's device-memory
    /// accounting (the RVT rides along with attribute data).
    pub fn memory_bytes(&self) -> u64 {
        (self.entries.len() * std::mem::size_of::<RvtEntry>()) as u64
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    #[test]
    fn translate_matches_fig12_example() {
        // Paper Fig. 12: SP0 starts at vid 0, LP1/LP2 hold vertex 3.
        let rvt = Rvt::new(vec![
            RvtEntry {
                start_vid: 0,
                lp_range: None,
            },
            RvtEntry {
                start_vid: 3,
                lp_range: Some(1),
            },
            RvtEntry {
                start_vid: 3,
                lp_range: Some(0),
            },
        ]);
        // r2 = (pid 0, slot 2) → vid 2 (the worked example in Appendix A).
        assert_eq!(rvt.translate(RecordId::new(0, 2)), 2);
        // An LP reference resolves to the high-degree vertex itself.
        assert_eq!(rvt.translate(RecordId::new(1, 0)), 3);
        assert_eq!(rvt.translate(RecordId::new(2, 0)), 3);
    }

    #[test]
    fn entry_accessors() {
        let rvt = Rvt::new(vec![RvtEntry {
            start_vid: 7,
            lp_range: None,
        }]);
        assert_eq!(rvt.len(), 1);
        assert!(!rvt.is_empty());
        assert_eq!(rvt.entry(0).start_vid, 7);
        assert!(rvt.memory_bytes() > 0);
    }
}
