//! On-disk persistence of slotted-page stores.
//!
//! The paper keeps graphs "in PCI-E SSDs" as files of slotted pages
//! (Sec. 1); this module provides that durable form. The format is
//! deliberately minimal — a fixed header followed by the raw page images —
//! because everything else (RVT, vertex placements, page kinds, edge
//! counts) is reconstructible by scanning the pages
//! ([`GraphStore::reconstruct`]), which also serves as a load-time
//! integrity check.
//!
//! ```text
//! offset  size  field
//! 0       8     magic "GTSPAGES"
//! 8       4     format version (LE u32, currently 2: checksummed pages)
//! 12      4     page size in bytes (LE u32)
//! 16      1     p (page-id bytes)
//! 17      1     q (slot bytes)
//! 18      6     reserved (zero)
//! 24      8     number of vertices (LE u64)
//! 32      8     number of pages (LE u64)
//! 40      ...   page images, page_size bytes each
//! ```

use crate::builder::GraphStore;
use crate::format::{PageFormatConfig, PageKind, PhysicalIdConfig};
use crate::page::Page;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 8] = b"GTSPAGES";
/// Version 2 added the per-page trailer checksum; version-1 files have no
/// trailer (slots reach the page end) and are rejected as unsupported.
const VERSION: u32 = 2;
const HEADER_BYTES: usize = 40;

/// Decode a little-endian `u32` at `at` without `unwrap` (the caller
/// guarantees `buf` holds at least `at + 4` bytes).
fn le_u32(buf: &[u8], at: usize) -> u32 {
    let mut b = [0u8; 4];
    b.copy_from_slice(&buf[at..at + 4]);
    u32::from_le_bytes(b)
}

/// Decode a little-endian `u64` at `at`.
fn le_u64(buf: &[u8], at: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&buf[at..at + 8]);
    u64::from_le_bytes(b)
}

/// Errors from reading a store file.
#[derive(Debug)]
pub enum FileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not a GTS page file, or an unsupported version.
    BadHeader(String),
}

impl std::fmt::Display for FileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FileError::Io(e) => write!(f, "i/o error: {e}"),
            FileError::BadHeader(m) => write!(f, "bad store file: {m}"),
        }
    }
}

impl std::error::Error for FileError {}

impl From<io::Error> for FileError {
    fn from(e: io::Error) -> Self {
        FileError::Io(e)
    }
}

/// Write `store` to `path` (overwriting).
pub fn save_store(store: &GraphStore, path: impl AsRef<Path>) -> Result<(), FileError> {
    let mut w = BufWriter::new(File::create(path)?);
    let cfg = store.cfg();
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&(cfg.page_size as u32).to_le_bytes())?;
    w.write_all(&[cfg.id.p, cfg.id.q, 0, 0, 0, 0, 0, 0])?;
    w.write_all(&store.num_vertices().to_le_bytes())?;
    w.write_all(&store.num_pages().to_le_bytes())?;
    for page in store.pages() {
        w.write_all(&page.data)?;
    }
    w.flush()?;
    Ok(())
}

/// Read a store from `path`, reconstructing all metadata from the pages.
pub fn load_store(path: impl AsRef<Path>) -> Result<GraphStore, FileError> {
    let path_buf = path.as_ref().to_path_buf();
    let mut r = BufReader::new(File::open(&path_buf)?);
    let mut header = [0u8; HEADER_BYTES];
    r.read_exact(&mut header)
        .map_err(|_| FileError::BadHeader("file shorter than header".into()))?;
    if &header[0..8] != MAGIC {
        return Err(FileError::BadHeader("wrong magic".into()));
    }
    let version = le_u32(&header, 8);
    if version != VERSION {
        return Err(FileError::BadHeader(format!(
            "unsupported version {version} (expected {VERSION})"
        )));
    }
    let page_size = le_u32(&header, 12) as usize;
    let (p, q) = (header[16], header[17]);
    if !(1..=8).contains(&p) || !(1..=8).contains(&q) {
        return Err(FileError::BadHeader(format!("bad id widths ({p},{q})")));
    }
    let num_vertices = le_u64(&header, 24);
    let num_pages = le_u64(&header, 32);
    // Validate before constructing: PageFormatConfig::new treats bad
    // combinations as programming errors (panics), but here they indicate
    // a corrupt or foreign file.
    let id = PhysicalIdConfig::new(p, q);
    if !(64..=(1 << 30)).contains(&page_size) || page_size as u64 > id.max_page_size() {
        return Err(FileError::BadHeader(format!(
            "implausible page size {page_size} for {id}"
        )));
    }
    let cfg = PageFormatConfig::new(id, page_size);
    // Bound the untrusted counts before allocating anything: the page
    // count must match what the file can actually hold, and the vertex
    // count must be addressable by the format (reconstruct allocates a
    // per-vertex table from it).
    let file_len = std::fs::metadata(&path_buf).map(|m| m.len()).unwrap_or(0);
    let payload = file_len.saturating_sub(HEADER_BYTES as u64);
    if num_pages.checked_mul(page_size as u64) != Some(payload) {
        return Err(FileError::BadHeader(format!(
            "header claims {num_pages} pages of {page_size} B but the file holds {payload} payload bytes"
        )));
    }
    if num_vertices > id.max_page_id().saturating_mul(id.max_slot()) {
        return Err(FileError::BadHeader(format!(
            "header claims {num_vertices} vertices, beyond what {id} can address"
        )));
    }

    let mut pages = Vec::with_capacity(num_pages as usize);
    for pid in 0..num_pages {
        let mut data = vec![0u8; page_size];
        r.read_exact(&mut data)
            .map_err(|_| FileError::BadHeader(format!("truncated at page {pid}")))?;
        let kind = if data[0] == 0 {
            PageKind::Small
        } else {
            PageKind::Large
        };
        pages.push(Page::new(pid, kind, data.into_boxed_slice()));
    }
    GraphStore::reconstruct(cfg, pages, num_vertices).map_err(FileError::BadHeader)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::builder::build_graph_store;
    use gts_graph::generate::rmat;
    use gts_graph::EdgeList;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("gts-file-test-{}-{name}", std::process::id()));
        p
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let graph = rmat(9);
        let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
        let path = tmp("roundtrip");
        save_store(&store, &path).unwrap();
        let loaded = load_store(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.cfg(), store.cfg());
        assert_eq!(loaded.num_vertices(), store.num_vertices());
        assert_eq!(loaded.num_edges(), store.num_edges());
        assert_eq!(loaded.num_pages(), store.num_pages());
        assert_eq!(loaded.rvt(), store.rvt());
        assert_eq!(loaded.small_pids(), store.small_pids());
        assert_eq!(loaded.large_pids(), store.large_pids());
        assert_eq!(loaded.pages(), store.pages());
        for v in 0..store.num_vertices() {
            assert_eq!(loaded.rid_of_vertex(v), store.rid_of_vertex(v));
        }
        for pid in 0..store.num_pages() {
            assert_eq!(loaded.edges_in_page(pid), store.edges_in_page(pid));
        }
    }

    #[test]
    fn roundtrip_with_large_pages() {
        // A hub graph forcing multi-chunk Large Page runs.
        let mut edges: Vec<(u32, u32)> = (0..2000).map(|i| (0, 1 + i % 3000)).collect();
        edges.extend((0..1000).map(|i| (1 + i, 0)));
        let graph = EdgeList::new(3001, edges);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        assert!(store.large_pids().len() > 1);
        let path = tmp("lp");
        save_store(&store, &path).unwrap();
        let loaded = load_store(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.rvt(), store.rvt());
        assert_eq!(loaded.large_pids(), store.large_pids());
    }

    #[test]
    fn rejects_wrong_magic() {
        let path = tmp("magic");
        std::fs::write(&path, b"NOTAGTSFILE.....plus more bytes to pass header").unwrap();
        let err = load_store(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, FileError::BadHeader(_)));
    }

    #[test]
    fn rejects_truncated_pages() {
        let graph = rmat(8);
        let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
        let path = tmp("trunc");
        save_store(&store, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 100]).unwrap();
        let err = load_store(&path).unwrap_err();
        std::fs::remove_file(&path).ok();
        assert!(matches!(err, FileError::BadHeader(_)), "{err}");
    }

    #[test]
    fn loaded_store_runs_identically() {
        // A loaded store must be drop-in for the freshly built one.
        let graph = rmat(9);
        let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
        let path = tmp("run");
        save_store(&store, &path).unwrap();
        let loaded = load_store(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(loaded.decode_edges(), store.decode_edges());
    }
}
