//! Simulated secondary-storage devices.
//!
//! The paper stores graphs on Fusion-io PCI-E SSDs (~2 GB/s sequential read
//! each) and compares against SATA HDDs (Fig. 9); pages are striped over
//! multiple drives by the hash `g(j)` and fetched on demand (Algorithm 1
//! line 23). [`BlockDevice`] models one drive as a FIFO queue with a fixed
//! per-request latency plus bandwidth-proportional transfer time;
//! [`StorageArray`] stripes pages across drives exactly like `g(j)`.

use gts_sim::resource::Scheduled;
use gts_sim::{Bandwidth, Resource, SimDuration, SimTime};
use gts_telemetry::{keys, SpanCat, Telemetry, Track};

/// Kind of drive, for presets and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// PCI-E SSD (the paper's Fusion-io drives).
    Ssd,
    /// Rotational disk.
    Hdd,
    /// Anything else (custom bandwidth).
    Custom,
}

/// One simulated drive.
#[derive(Debug, Clone)]
pub struct BlockDevice {
    kind: DeviceKind,
    bandwidth: Bandwidth,
    latency: SimDuration,
    queue: Resource,
    bytes_read: u64,
}

impl BlockDevice {
    /// A drive with explicit characteristics.
    pub fn new(kind: DeviceKind, bandwidth: Bandwidth, latency: SimDuration) -> Self {
        BlockDevice {
            kind,
            bandwidth,
            latency,
            queue: Resource::new("blockdev", 1),
            bytes_read: 0,
        }
    }

    /// Paper-era PCI-E SSD: ~2 GiB/s sequential read, ~60 µs request latency.
    pub fn ssd() -> Self {
        Self::new(
            DeviceKind::Ssd,
            Bandwidth::gib_per_sec(2),
            SimDuration::from_micros(60),
        )
    }

    /// Paper-era HDD: ~165 MiB/s sequential, ~8 ms positioning latency.
    /// (Two of these in RAID-0 give the ~330 MB/s the paper quotes in
    /// Sec. 7.5.)
    pub fn hdd() -> Self {
        Self::new(
            DeviceKind::Hdd,
            Bandwidth::mib_per_sec(165),
            SimDuration::from_millis(8),
        )
    }

    /// Drive kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Sequential bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Enqueue a read of `bytes`, ready at `ready`; returns its schedule.
    pub fn read(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.bytes_read += bytes;
        let dur = self.latency + self.bandwidth.transfer_time(bytes);
        self.queue.submit(ready, dur)
    }

    /// Total bytes served.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// When the device queue drains.
    pub fn drain_time(&self) -> SimTime {
        self.queue.drain_time()
    }

    /// Reset queues and counters to t = 0.
    pub fn reset(&mut self) {
        self.queue.reset();
        self.bytes_read = 0;
    }
}

/// A set of drives with pages striped across them by `g(j) = j mod N`
/// (the paper's default hash, Sec. 4.1).
#[derive(Debug, Clone)]
pub struct StorageArray {
    devices: Vec<BlockDevice>,
    telemetry: Option<Telemetry>,
}

impl StorageArray {
    /// Build an array from drives.
    ///
    /// # Panics
    /// Panics on an empty array — an engine configured to stream from
    /// storage needs at least one drive.
    pub fn new(devices: Vec<BlockDevice>) -> Self {
        assert!(!devices.is_empty(), "storage array needs >= 1 device");
        StorageArray {
            devices,
            telemetry: None,
        }
    }

    /// Share `tel` as this array's recording surface: fetches draw I/O
    /// spans (one lane per drive) when `tel` has spans enabled.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        if tel.spans_enabled() {
            tel.name_process(keys::pid::STORAGE, "storage");
            for d in 0..self.devices.len() {
                let name = match self.devices[d].kind() {
                    DeviceKind::Ssd => format!("ssd{d}"),
                    DeviceKind::Hdd => format!("hdd{d}"),
                    DeviceKind::Custom => format!("dev{d}"),
                };
                tel.name_thread(Track::new(keys::pid::STORAGE, d as u32), name);
            }
        }
        self.telemetry = Some(tel);
    }

    /// `n` identical SSDs.
    pub fn ssds(n: usize) -> Self {
        Self::new((0..n).map(|_| BlockDevice::ssd()).collect())
    }

    /// `n` identical HDDs.
    pub fn hdds(n: usize) -> Self {
        Self::new((0..n).map(|_| BlockDevice::hdd()).collect())
    }

    /// Number of drives.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: see [`StorageArray::new`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The paper's page-to-device hash `g(j)`.
    pub fn g(&self, pid: u64) -> usize {
        (pid % self.devices.len() as u64) as usize
    }

    /// Fetch page `pid` of `bytes` bytes; ready at `ready`.
    pub fn fetch(&mut self, pid: u64, bytes: u64, ready: SimTime) -> Scheduled {
        let dev = self.g(pid);
        let s = self.devices[dev].read(bytes, ready);
        if let Some(tel) = &self.telemetry {
            tel.record_span(
                Track::new(keys::pid::STORAGE, dev as u32),
                SpanCat::Io,
                format!("page {pid}"),
                s.start,
                s.end,
            );
        }
        s
    }

    /// Total bytes read across all drives.
    pub fn bytes_read(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_read()).sum()
    }

    /// Flush the array's byte counter into `tel`'s registry.
    pub fn flush_to(&self, tel: &Telemetry) {
        tel.add(keys::IO_BYTES_READ, self.bytes_read());
    }

    /// Aggregate sequential bandwidth of the array.
    pub fn total_bandwidth(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(
            self.devices
                .iter()
                .map(|d| d.bandwidth().as_bytes_per_sec())
                .sum(),
        )
    }

    /// Latest drain time across drives.
    pub fn drain_time(&self) -> SimTime {
        self.devices
            .iter()
            .map(|d| d.drain_time())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Reset all drives.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_is_latency_plus_transfer() {
        let mut d = BlockDevice::new(
            DeviceKind::Custom,
            Bandwidth::bytes_per_sec(1_000_000_000),
            SimDuration::from_micros(100),
        );
        let s = d.read(1_000_000, SimTime::ZERO);
        assert_eq!(s.start, SimTime::ZERO);
        // 100us latency + 1ms transfer.
        assert_eq!(s.end.as_nanos(), 100_000 + 1_000_000);
        assert_eq!(d.bytes_read(), 1_000_000);
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = BlockDevice::new(
            DeviceKind::Custom,
            Bandwidth::bytes_per_sec(1_000_000_000),
            SimDuration::ZERO,
        );
        let a = d.read(1_000, SimTime::ZERO);
        let b = d.read(1_000, SimTime::ZERO);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn striping_spreads_load() {
        let mut arr = StorageArray::new(vec![
            BlockDevice::new(
                DeviceKind::Custom,
                Bandwidth::bytes_per_sec(1_000),
                SimDuration::ZERO,
            ),
            BlockDevice::new(
                DeviceKind::Custom,
                Bandwidth::bytes_per_sec(1_000),
                SimDuration::ZERO,
            ),
        ]);
        assert_eq!(arr.g(0), 0);
        assert_eq!(arr.g(1), 1);
        assert_eq!(arr.g(2), 0);
        // Two pages on different drives overlap fully.
        let a = arr.fetch(0, 1_000, SimTime::ZERO);
        let b = arr.fetch(1, 1_000, SimTime::ZERO);
        assert_eq!(a.start, b.start);
        // A third page lands behind the first on drive 0.
        let c = arr.fetch(2, 1_000, SimTime::ZERO);
        assert_eq!(c.start, a.end);
    }

    #[test]
    fn two_ssds_double_bandwidth() {
        let one = StorageArray::ssds(1).total_bandwidth();
        let two = StorageArray::ssds(2).total_bandwidth();
        assert_eq!(two.as_bytes_per_sec(), 2 * one.as_bytes_per_sec());
    }

    #[test]
    fn hdd_is_much_slower_than_ssd() {
        let hdd = BlockDevice::hdd();
        let ssd = BlockDevice::ssd();
        assert!(
            ssd.bandwidth().as_bytes_per_sec() > 10 * hdd.bandwidth().as_bytes_per_sec(),
            "SSD must be an order of magnitude faster"
        );
    }

    #[test]
    fn reset_restores_t0() {
        let mut arr = StorageArray::ssds(2);
        arr.fetch(0, 1 << 20, SimTime::ZERO);
        arr.reset();
        assert_eq!(arr.drain_time(), SimTime::ZERO);
    }

    #[test]
    fn fetches_record_io_spans_and_flush_bytes() {
        let tel = Telemetry::with_spans();
        let mut arr = StorageArray::ssds(2);
        arr.attach_telemetry(tel.clone());
        arr.fetch(0, 1_000, SimTime::ZERO);
        arr.fetch(1, 2_000, SimTime::ZERO);
        assert_eq!(tel.span_count(), 2);
        assert!(tel.spans().iter().all(|s| s.cat == SpanCat::Io));
        arr.flush_to(&tel);
        assert_eq!(tel.counter(keys::IO_BYTES_READ), 3_000);
    }

    #[test]
    #[should_panic(expected = ">= 1 device")]
    fn empty_array_rejected() {
        let _ = StorageArray::new(vec![]);
    }
}
