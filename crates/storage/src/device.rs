//! Simulated secondary-storage devices.
//!
//! The paper stores graphs on Fusion-io PCI-E SSDs (~2 GB/s sequential read
//! each) and compares against SATA HDDs (Fig. 9); pages are striped over
//! multiple drives by the hash `g(j)` and fetched on demand (Algorithm 1
//! line 23). [`BlockDevice`] models one drive as a FIFO queue with a fixed
//! per-request latency plus bandwidth-proportional transfer time;
//! [`StorageArray`] stripes pages across drives exactly like `g(j)`.
//!
//! All reads go through the single [`StorageArray::fetch`] entrypoint,
//! parameterised by a [`FetchPolicy`] whose default is *verify + retry*:
//! every fetched page's trailer checksum is checked (cached after the
//! first success, so intact hot pages pay the hash once). With a
//! [`FaultPlan`] attached, fetching turns into the recovery path of the
//! fault model: transient read errors and torn pages are retried with
//! simulated backoff (each failed attempt still occupies the drive), a
//! drive is quarantined after repeated consecutive failures (surviving
//! drives re-stripe its pages, mirroring the `g(j)` rehash), and
//! persistent checksum failures surface as a typed [`StorageError`]
//! instead of a panic.

use crate::page::Page;
use gts_faults::{FaultPlan, ReadOutcome};
use gts_sim::resource::Scheduled;
use gts_sim::{Bandwidth, Resource, SimDuration, SimTime};
use gts_telemetry::{keys, SpanCat, Telemetry, Track};
use std::collections::BTreeMap;

/// Typed failures of the verified fetch path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// Transient errors persisted past the retry budget.
    RetriesExhausted {
        /// Page that could not be read.
        pid: u64,
        /// Attempts spent (first try + retries).
        attempts: u32,
    },
    /// The page's bytes fail their trailer checksum on every attempt:
    /// the corruption is real, so re-fetching can never heal it.
    CorruptPage {
        /// Page whose checksum never matched.
        pid: u64,
    },
    /// Every drive has been quarantined; no one can serve the page.
    AllDrivesQuarantined {
        /// Page that could not be routed.
        pid: u64,
    },
    /// A page ID outside the store's page range — a corrupt RVT, a bad
    /// program-returned pid, or a stale reference to a page that a
    /// mutation never created.
    BadPid {
        /// The out-of-range page ID.
        pid: u64,
        /// How many pages the store actually has.
        num_pages: u64,
    },
}

impl std::fmt::Display for StorageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StorageError::RetriesExhausted { pid, attempts } => {
                write!(f, "page {pid}: read failed after {attempts} attempts")
            }
            StorageError::CorruptPage { pid } => {
                write!(f, "page {pid}: persistent trailer checksum mismatch")
            }
            StorageError::AllDrivesQuarantined { pid } => {
                write!(f, "page {pid}: all drives quarantined")
            }
            StorageError::BadPid { pid, num_pages } => {
                write!(f, "page {pid}: out of range (store has {num_pages} pages)")
            }
        }
    }
}

impl std::error::Error for StorageError {}

/// How a [`StorageArray::fetch`] verifies and retries.
///
/// The only constructor is [`FetchPolicy::verified`]: every fetch checks
/// the page's trailer checksum against the bytes that "arrived" (there is
/// deliberately no unverified public path — PR 4's fault model made
/// integrity checking load-bearing). Retry behaviour defaults to the
/// array's attached fault plan; [`FetchPolicy::fail_fast`] opts a single
/// fetch out of retries.
#[derive(Clone, Copy)]
pub struct FetchPolicy<'a> {
    page: &'a Page,
    fail_fast: bool,
}

impl<'a> FetchPolicy<'a> {
    /// Verify `page`'s trailer checksum on every attempt, retrying with
    /// backoff per the array's fault plan (the default policy).
    pub fn verified(page: &'a Page) -> Self {
        FetchPolicy {
            page,
            fail_fast: false,
        }
    }

    /// Disable retries for this fetch: one attempt, first failure is
    /// final. Verification still applies.
    pub fn fail_fast(mut self) -> Self {
        self.fail_fast = true;
        self
    }

    /// The page whose integrity this fetch is checked against.
    pub fn page(&self) -> &'a Page {
        self.page
    }
}

/// Kind of drive, for presets and reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// PCI-E SSD (the paper's Fusion-io drives).
    Ssd,
    /// Rotational disk.
    Hdd,
    /// Anything else (custom bandwidth).
    Custom,
}

/// One simulated drive.
#[derive(Debug, Clone)]
pub struct BlockDevice {
    kind: DeviceKind,
    bandwidth: Bandwidth,
    latency: SimDuration,
    queue: Resource,
    bytes_read: u64,
}

impl BlockDevice {
    /// A drive with explicit characteristics.
    pub fn new(kind: DeviceKind, bandwidth: Bandwidth, latency: SimDuration) -> Self {
        BlockDevice {
            kind,
            bandwidth,
            latency,
            queue: Resource::new("blockdev", 1),
            bytes_read: 0,
        }
    }

    /// Paper-era PCI-E SSD: ~2 GiB/s sequential read, ~60 µs request latency.
    pub fn ssd() -> Self {
        Self::new(
            DeviceKind::Ssd,
            Bandwidth::gib_per_sec(2),
            SimDuration::from_micros(60),
        )
    }

    /// Paper-era HDD: ~165 MiB/s sequential, ~8 ms positioning latency.
    /// (Two of these in RAID-0 give the ~330 MB/s the paper quotes in
    /// Sec. 7.5.)
    pub fn hdd() -> Self {
        Self::new(
            DeviceKind::Hdd,
            Bandwidth::mib_per_sec(165),
            SimDuration::from_millis(8),
        )
    }

    /// Drive kind.
    pub fn kind(&self) -> DeviceKind {
        self.kind
    }

    /// Sequential bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Enqueue a read of `bytes`, ready at `ready`; returns its schedule.
    pub fn read(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.bytes_read += bytes;
        let dur = self.latency + self.bandwidth.transfer_time(bytes);
        self.queue.submit(ready, dur)
    }

    /// Total bytes served.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// When the device queue drains.
    pub fn drain_time(&self) -> SimTime {
        self.queue.drain_time()
    }

    /// Reset queues and counters to t = 0.
    pub fn reset(&mut self) {
        self.queue.reset();
        self.bytes_read = 0;
    }
}

/// A set of drives with pages striped across them by `g(j) = j mod N`
/// (the paper's default hash, Sec. 4.1).
#[derive(Debug, Clone)]
pub struct StorageArray {
    devices: Vec<BlockDevice>,
    telemetry: Option<Telemetry>,
    faults: Option<FaultPlan>,
    /// Per-drive quarantine flag; quarantined drives serve no more reads.
    quarantined: Vec<bool>,
    /// Per-drive consecutive failed attempts (reset on success).
    consecutive_failures: Vec<u32>,
    /// Drive assignment for pages created after build (delta pages):
    /// the original stripe map `g(j)` knows nothing about these pids,
    /// so each is pinned to a drive that was live at creation time.
    delta_homes: BTreeMap<u64, usize>,
    read_errors: u64,
    checksum_mismatches: u64,
    retries: u64,
    drives_quarantined: u64,
}

impl StorageArray {
    /// Build an array from drives.
    ///
    /// # Panics
    /// Panics on an empty array — an engine configured to stream from
    /// storage needs at least one drive.
    pub fn new(devices: Vec<BlockDevice>) -> Self {
        assert!(!devices.is_empty(), "storage array needs >= 1 device");
        let n = devices.len();
        StorageArray {
            devices,
            telemetry: None,
            faults: None,
            quarantined: vec![false; n],
            consecutive_failures: vec![0; n],
            delta_homes: BTreeMap::new(),
            read_errors: 0,
            checksum_mismatches: 0,
            retries: 0,
            drives_quarantined: 0,
        }
    }

    /// Attach a seeded fault schedule; [`StorageArray::fetch`] consults
    /// it on every read attempt.
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// Share `tel` as this array's recording surface: fetches draw I/O
    /// spans (one lane per drive) when `tel` has spans enabled.
    pub fn attach_telemetry(&mut self, tel: Telemetry) {
        if tel.spans_enabled() {
            tel.name_process(keys::pid::STORAGE, "storage");
            for d in 0..self.devices.len() {
                let name = match self.devices[d].kind() {
                    DeviceKind::Ssd => format!("ssd{d}"),
                    DeviceKind::Hdd => format!("hdd{d}"),
                    DeviceKind::Custom => format!("dev{d}"),
                };
                tel.name_thread(Track::new(keys::pid::STORAGE, d as u32), name);
            }
        }
        self.telemetry = Some(tel);
    }

    /// `n` identical SSDs.
    pub fn ssds(n: usize) -> Self {
        Self::new((0..n).map(|_| BlockDevice::ssd()).collect())
    }

    /// `n` identical HDDs.
    pub fn hdds(n: usize) -> Self {
        Self::new((0..n).map(|_| BlockDevice::hdd()).collect())
    }

    /// Number of drives.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Always false: see [`StorageArray::new`].
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The paper's page-to-device hash `g(j)`.
    pub fn g(&self, pid: u64) -> usize {
        (pid % self.devices.len() as u64) as usize
    }

    /// `g(j)` over the *live* (non-quarantined) drives: with no drive
    /// quarantined this equals [`StorageArray::g`]; after a quarantine the
    /// victim's pages re-stripe onto the survivors.
    pub fn route(&self, pid: u64) -> Option<usize> {
        // A page created after build goes to the drive it was pinned to
        // at creation time, as long as that drive survives; if its home
        // has since been quarantined it re-stripes like any other page.
        if let Some(&d) = self.delta_homes.get(&pid) {
            if !self.quarantined[d] {
                return Some(d);
            }
        }
        let live: Vec<usize> = (0..self.devices.len())
            .filter(|&d| !self.quarantined[d])
            .collect();
        if live.is_empty() {
            None
        } else {
            Some(live[(pid % live.len() as u64) as usize])
        }
    }

    /// Register pages created after build (delta pages appended by a
    /// mutation batch). Each is pinned to a drive chosen by rehashing
    /// over the drives live *now*: the build-time stripe map `g(j)` was
    /// computed before these pids existed, and a quarantined drive must
    /// never be handed new pages. Re-registering a pid is a no-op.
    pub fn place_new_pages(&mut self, pids: &[u64]) {
        let live: Vec<usize> = (0..self.devices.len())
            .filter(|&d| !self.quarantined[d])
            .collect();
        for &pid in pids {
            if self.delta_homes.contains_key(&pid) {
                continue;
            }
            let home = if live.is_empty() {
                self.g(pid)
            } else {
                live[(pid % live.len() as u64) as usize]
            };
            self.delta_homes.insert(pid, home);
        }
    }

    /// Number of drives currently quarantined.
    pub fn quarantined_count(&self) -> usize {
        self.quarantined.iter().filter(|&&q| q).count()
    }

    /// Fetch page `pid` of `bytes` bytes, ready at `ready`, under
    /// `policy` — the single entrypoint for all reads.
    ///
    /// Every attempt occupies a live drive for the full read (failed
    /// reads are not free), the policy page's trailer checksum decides
    /// whether the bytes that "arrived" are usable (the check is cached
    /// per page after the first success, so re-fetches of an intact page
    /// are O(1)), and retries wait out the configured backoff on the
    /// simulated clock. Without an attached [`FaultPlan`] this is a
    /// single checksum-verified read; corrupt pages surface as
    /// [`StorageError::CorruptPage`].
    pub fn fetch(
        &mut self,
        pid: u64,
        bytes: u64,
        ready: SimTime,
        policy: FetchPolicy<'_>,
    ) -> Result<Scheduled, StorageError> {
        let page = policy.page;
        let (max_retries, backoff, quarantine_after) = match &self.faults {
            Some(f) if !policy.fail_fast => {
                let c = f.config();
                (c.max_retries, c.backoff, c.quarantine_after)
            }
            Some(f) => (0, SimDuration::ZERO, f.config().quarantine_after),
            None => (0, SimDuration::ZERO, u32::MAX),
        };
        let mut at = ready;
        let attempts = max_retries + 1;
        for attempt in 0..attempts {
            let dev = self
                .route(pid)
                .ok_or(StorageError::AllDrivesQuarantined { pid })?;
            let s = self.devices[dev].read(bytes, at);
            if attempt > 0 {
                self.retries += 1;
            }
            let injected = match &self.faults {
                Some(f) => f.device_read(dev as u64),
                None => ReadOutcome::Ok,
            };
            // A torn read delivers bytes that fail the trailer check — the
            // same detection path as real on-page corruption, except a
            // re-fetch heals it.
            let failure = match injected {
                ReadOutcome::TransientError => Some(("!read", true)),
                ReadOutcome::TornPage => Some(("!torn", false)),
                ReadOutcome::Ok if !page.checksum_ok_cached() => Some(("!corrupt", false)),
                ReadOutcome::Ok => None,
            };
            match failure {
                None => {
                    self.consecutive_failures[dev] = 0;
                    self.record_io_span(dev, format!("page {pid}"), s.start, s.end);
                    return Ok(s);
                }
                Some((tag, is_read_error)) => {
                    if is_read_error {
                        self.read_errors += 1;
                    } else {
                        self.checksum_mismatches += 1;
                    }
                    self.record_io_span(dev, format!("page {pid} {tag}"), s.start, s.end);
                    self.consecutive_failures[dev] += 1;
                    if self.consecutive_failures[dev] >= quarantine_after {
                        self.quarantine(dev, s.end);
                    }
                    at = s.end + backoff;
                }
            }
        }
        if page.checksum_ok_cached() {
            Err(StorageError::RetriesExhausted { pid, attempts })
        } else {
            Err(StorageError::CorruptPage { pid })
        }
    }

    /// Count an at-rest corruption detected by a scrub pass against the
    /// drive hosting `pid`: the same failure-streak bookkeeping as a
    /// fetch-time checksum mismatch, so a drive whose resident pages keep
    /// rotting crosses the quarantine threshold and its pages re-stripe
    /// onto the survivors. A no-op when every drive is already offline.
    pub fn note_corrupt_page(&mut self, pid: u64, when: SimTime) {
        let Some(dev) = self.route(pid) else {
            return;
        };
        self.checksum_mismatches += 1;
        self.consecutive_failures[dev] += 1;
        let quarantine_after = match &self.faults {
            Some(f) => f.config().quarantine_after,
            None => u32::MAX,
        };
        if self.consecutive_failures[dev] >= quarantine_after {
            self.quarantine(dev, when);
        }
    }

    /// Take `dev` offline; its pages re-stripe onto the surviving drives.
    fn quarantine(&mut self, dev: usize, when: SimTime) {
        if self.quarantined[dev] {
            return;
        }
        self.quarantined[dev] = true;
        self.drives_quarantined += 1;
        if let Some(tel) = &self.telemetry {
            tel.record_span(
                Track::new(keys::pid::STORAGE, dev as u32),
                SpanCat::Degrade,
                format!("quarantine dev{dev}"),
                when,
                when,
            );
        }
    }

    fn record_io_span(&self, dev: usize, name: String, start: SimTime, end: SimTime) {
        if let Some(tel) = &self.telemetry {
            tel.record_span(
                Track::new(keys::pid::STORAGE, dev as u32),
                SpanCat::Io,
                name,
                start,
                end,
            );
        }
    }

    /// Total bytes read across all drives.
    pub fn bytes_read(&self) -> u64 {
        self.devices.iter().map(|d| d.bytes_read()).sum()
    }

    /// Export the array's durable recovery state for a checkpoint:
    /// per-drive quarantine flags and consecutive-failure counts. The
    /// stat counters (`read_errors`, `retries`, ...) are deliberately
    /// NOT exported — a resumed run imports the run's counter registry
    /// wholesale and accumulates post-resume deltas on top, so carrying
    /// them here as well would double-count.
    pub fn export_recovery_state(&self) -> (Vec<bool>, Vec<u32>) {
        (self.quarantined.clone(), self.consecutive_failures.clone())
    }

    /// Restore state captured by [`StorageArray::export_recovery_state`].
    /// Returns `false` (importing nothing) when the drive count differs —
    /// per-drive flags from a differently-shaped array are meaningless.
    pub fn import_recovery_state(&mut self, quarantined: &[bool], failures: &[u32]) -> bool {
        if quarantined.len() != self.devices.len() || failures.len() != self.devices.len() {
            return false;
        }
        self.quarantined.copy_from_slice(quarantined);
        self.consecutive_failures.copy_from_slice(failures);
        true
    }

    /// Flush the array's byte and fault counters into `tel`'s registry.
    /// Fault counters at zero leave no key behind, so fault-free runs
    /// report exactly what they always did.
    pub fn flush_to(&self, tel: &Telemetry) {
        tel.add(keys::IO_BYTES_READ, self.bytes_read());
        tel.add(keys::IO_READ_ERRORS, self.read_errors);
        tel.add(keys::IO_CHECKSUM_MISMATCHES, self.checksum_mismatches);
        tel.add(keys::IO_RETRIES, self.retries);
        tel.add(keys::IO_DRIVES_QUARANTINED, self.drives_quarantined);
    }

    /// Aggregate sequential bandwidth of the array.
    pub fn total_bandwidth(&self) -> Bandwidth {
        Bandwidth::bytes_per_sec(
            self.devices
                .iter()
                .map(|d| d.bandwidth().as_bytes_per_sec())
                .sum(),
        )
    }

    /// Latest drain time across drives.
    pub fn drain_time(&self) -> SimTime {
        self.devices
            .iter()
            .map(|d| d.drain_time())
            .fold(SimTime::ZERO, SimTime::max)
    }

    /// Reset all drives, lifting quarantines and clearing fault counters.
    pub fn reset(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        self.quarantined.fill(false);
        self.consecutive_failures.fill(0);
        self.read_errors = 0;
        self.checksum_mismatches = 0;
        self.retries = 0;
        self.drives_quarantined = 0;
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;

    /// Every variant renders its context fields as prose an operator can
    /// act on — no `{:?}` leakage of variant or field names.
    #[test]
    fn storage_error_display_renders_every_variant() {
        let cases = [
            (
                StorageError::RetriesExhausted {
                    pid: 7,
                    attempts: 5,
                },
                "page 7: read failed after 5 attempts",
            ),
            (
                StorageError::CorruptPage { pid: 42 },
                "page 42: persistent trailer checksum mismatch",
            ),
            (
                StorageError::AllDrivesQuarantined { pid: 9 },
                "page 9: all drives quarantined",
            ),
            (
                StorageError::BadPid {
                    pid: 100,
                    num_pages: 12,
                },
                "page 100: out of range (store has 12 pages)",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
            assert_ne!(e.to_string(), format!("{e:?}"), "Display must not be Debug");
        }
    }

    #[test]
    fn read_time_is_latency_plus_transfer() {
        let mut d = BlockDevice::new(
            DeviceKind::Custom,
            Bandwidth::bytes_per_sec(1_000_000_000),
            SimDuration::from_micros(100),
        );
        let s = d.read(1_000_000, SimTime::ZERO);
        assert_eq!(s.start, SimTime::ZERO);
        // 100us latency + 1ms transfer.
        assert_eq!(s.end.as_nanos(), 100_000 + 1_000_000);
        assert_eq!(d.bytes_read(), 1_000_000);
    }

    #[test]
    fn requests_queue_fifo() {
        let mut d = BlockDevice::new(
            DeviceKind::Custom,
            Bandwidth::bytes_per_sec(1_000_000_000),
            SimDuration::ZERO,
        );
        let a = d.read(1_000, SimTime::ZERO);
        let b = d.read(1_000, SimTime::ZERO);
        assert_eq!(b.start, a.end);
    }

    #[test]
    fn striping_spreads_load() {
        let mut arr = StorageArray::new(vec![
            BlockDevice::new(
                DeviceKind::Custom,
                Bandwidth::bytes_per_sec(1_000),
                SimDuration::ZERO,
            ),
            BlockDevice::new(
                DeviceKind::Custom,
                Bandwidth::bytes_per_sec(1_000),
                SimDuration::ZERO,
            ),
        ]);
        assert_eq!(arr.g(0), 0);
        assert_eq!(arr.g(1), 1);
        assert_eq!(arr.g(2), 0);
        let page = test_page();
        let p = FetchPolicy::verified(&page);
        // Two pages on different drives overlap fully.
        let a = arr.fetch(0, 1_000, SimTime::ZERO, p).unwrap();
        let b = arr.fetch(1, 1_000, SimTime::ZERO, p).unwrap();
        assert_eq!(a.start, b.start);
        // A third page lands behind the first on drive 0.
        let c = arr.fetch(2, 1_000, SimTime::ZERO, p).unwrap();
        assert_eq!(c.start, a.end);
    }

    #[test]
    fn two_ssds_double_bandwidth() {
        let one = StorageArray::ssds(1).total_bandwidth();
        let two = StorageArray::ssds(2).total_bandwidth();
        assert_eq!(two.as_bytes_per_sec(), 2 * one.as_bytes_per_sec());
    }

    #[test]
    fn hdd_is_much_slower_than_ssd() {
        let hdd = BlockDevice::hdd();
        let ssd = BlockDevice::ssd();
        assert!(
            ssd.bandwidth().as_bytes_per_sec() > 10 * hdd.bandwidth().as_bytes_per_sec(),
            "SSD must be an order of magnitude faster"
        );
    }

    #[test]
    fn reset_restores_t0() {
        let mut arr = StorageArray::ssds(2);
        let page = test_page();
        arr.fetch(0, 1 << 20, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap();
        arr.reset();
        assert_eq!(arr.drain_time(), SimTime::ZERO);
    }

    /// Scrub detections count against the hosting drive's failure streak
    /// and cross the same quarantine threshold as fetch-time failures.
    #[test]
    fn scrub_detections_quarantine_the_hosting_drive() {
        let mut arr = StorageArray::ssds(2);
        let mut cfg = gts_faults::FaultConfig::quiet(1);
        cfg.quarantine_after = 3;
        arr.attach_faults(gts_faults::FaultPlan::new(cfg));
        // Page 0 lives on drive 0; three straight detections take it out.
        for _ in 0..2 {
            arr.note_corrupt_page(0, SimTime::ZERO);
            assert_eq!(arr.quarantined_count(), 0);
        }
        arr.note_corrupt_page(0, SimTime::ZERO);
        assert_eq!(arr.quarantined_count(), 1);
        // The victim's pages re-stripe onto the survivor.
        assert_eq!(arr.route(0), Some(1));
        // Without a fault plan the threshold is effectively infinite.
        let mut quiet = StorageArray::ssds(1);
        for _ in 0..100 {
            quiet.note_corrupt_page(0, SimTime::ZERO);
        }
        assert_eq!(quiet.quarantined_count(), 0);
    }

    #[test]
    fn fetches_record_io_spans_and_flush_bytes() {
        let tel = Telemetry::with_spans();
        let mut arr = StorageArray::ssds(2);
        arr.attach_telemetry(tel.clone());
        let page = test_page();
        let p = FetchPolicy::verified(&page);
        arr.fetch(0, 1_000, SimTime::ZERO, p).unwrap();
        arr.fetch(1, 2_000, SimTime::ZERO, p).unwrap();
        assert_eq!(tel.span_count(), 2);
        assert!(tel.spans().iter().all(|s| s.cat == SpanCat::Io));
        arr.flush_to(&tel);
        assert_eq!(tel.counter(keys::IO_BYTES_READ), 3_000);
    }

    #[test]
    #[should_panic(expected = ">= 1 device")]
    fn empty_array_rejected() {
        let _ = StorageArray::new(vec![]);
    }

    use crate::format::{PageFormatConfig, PhysicalIdConfig, RecordId, PAGE_HEADER_BYTES};
    use crate::page::SmallPageEncoder;
    use gts_faults::{FaultConfig, FaultPlan};

    fn test_page() -> Page {
        let cfg = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256);
        let mut enc = SmallPageEncoder::new(cfg);
        enc.push_vertex(1, &[RecordId::new(0, 0)]);
        enc.finish(0)
    }

    #[test]
    fn fail_fast_matches_default_policy_without_faults() {
        // With no fault plan both policies are a single verified read —
        // identical schedules on identical arrays.
        let page = test_page();
        let mut a = StorageArray::ssds(2);
        let mut b = StorageArray::ssds(2);
        let fast = a
            .fetch(
                0,
                1_000,
                SimTime::ZERO,
                FetchPolicy::verified(&page).fail_fast(),
            )
            .unwrap();
        let default = b
            .fetch(0, 1_000, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap();
        assert_eq!(fast, default);
    }

    #[test]
    fn fail_fast_skips_retries_under_faults() {
        let page = test_page();
        let cfg = FaultConfig {
            read_error_ppm: 1_000_000, // every attempt fails
            corrupt_page_ppm: 0,
            max_retries: 8,
            quarantine_after: u32::MAX,
            ..FaultConfig::with_seed(3)
        };
        let mut arr = StorageArray::ssds(1);
        arr.attach_faults(FaultPlan::new(cfg));
        let err = arr
            .fetch(
                0,
                1_000,
                SimTime::ZERO,
                FetchPolicy::verified(&page).fail_fast(),
            )
            .unwrap_err();
        assert_eq!(
            err,
            StorageError::RetriesExhausted {
                pid: 0,
                attempts: 1
            }
        );
        let tel = Telemetry::new();
        arr.flush_to(&tel);
        assert_eq!(tel.counter(keys::IO_RETRIES), 0);
    }

    #[test]
    fn verified_fetch_detects_real_corruption() {
        let mut page = test_page();
        page.data[PAGE_HEADER_BYTES] ^= 0xFF;
        let mut arr = StorageArray::ssds(2);
        let err = arr
            .fetch(7, 1_000, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap_err();
        assert_eq!(err, StorageError::CorruptPage { pid: 7 });
        // With a fault plan attached, retries are paid but cannot heal it.
        let mut arr = StorageArray::ssds(2);
        arr.attach_faults(FaultPlan::new(FaultConfig::quiet(1)));
        let err = arr
            .fetch(7, 1_000, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap_err();
        assert_eq!(err, StorageError::CorruptPage { pid: 7 });
        let tel = Telemetry::new();
        arr.flush_to(&tel);
        assert_eq!(tel.counter(keys::IO_CHECKSUM_MISMATCHES), 5); // 1 + 4 retries
        assert_eq!(tel.counter(keys::IO_RETRIES), 4);
    }

    #[test]
    fn transient_errors_cost_time_but_heal() {
        let page = test_page();
        // ~30% of reads fail; 8 retries make eventual success overwhelming.
        let cfg = FaultConfig {
            read_error_ppm: 300_000,
            corrupt_page_ppm: 0,
            max_retries: 8,
            quarantine_after: u32::MAX,
            ..FaultConfig::with_seed(42)
        };
        let mut faulty = StorageArray::ssds(1);
        faulty.attach_faults(FaultPlan::new(cfg));
        let mut clean = StorageArray::ssds(1);
        let mut saw_retry = false;
        for pid in 0..64 {
            let f = faulty
                .fetch(pid, 4_096, SimTime::ZERO, FetchPolicy::verified(&page))
                .unwrap();
            let c = clean
                .fetch(pid, 4_096, SimTime::ZERO, FetchPolicy::verified(&page))
                .unwrap();
            assert!(f.end >= c.end, "faults can only add simulated time");
            saw_retry |= f.end > c.end;
        }
        assert!(
            saw_retry,
            "seed 42 at 30% must fault at least once in 64 reads"
        );
        let tel = Telemetry::new();
        faulty.flush_to(&tel);
        assert!(tel.counter(keys::IO_READ_ERRORS) > 0);
        assert_eq!(
            tel.counter(keys::IO_RETRIES),
            tel.counter(keys::IO_READ_ERRORS)
        );
    }

    #[test]
    fn always_failing_drives_get_quarantined_then_typed_error() {
        let page = test_page();
        let cfg = FaultConfig {
            read_error_ppm: 1_000_000, // every attempt fails
            corrupt_page_ppm: 0,
            max_retries: 16,
            quarantine_after: 2,
            ..FaultConfig::with_seed(5)
        };
        let mut arr = StorageArray::ssds(2);
        arr.attach_faults(FaultPlan::new(cfg));
        assert_eq!(arr.route(0), Some(0));
        assert_eq!(arr.route(1), Some(1));
        let err = arr
            .fetch(0, 1_000, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap_err();
        assert_eq!(err, StorageError::AllDrivesQuarantined { pid: 0 });
        assert_eq!(arr.quarantined_count(), 2);
        // Both drives died after 2 consecutive failures each.
        let tel = Telemetry::new();
        arr.flush_to(&tel);
        assert_eq!(tel.counter(keys::IO_DRIVES_QUARANTINED), 2);
        assert_eq!(tel.counter(keys::IO_READ_ERRORS), 4);
        arr.reset();
        assert_eq!(arr.quarantined_count(), 0);
        assert_eq!(arr.route(0), Some(0));
    }

    #[test]
    fn quarantine_re_stripes_to_survivors() {
        let page = test_page();
        let cfg = FaultConfig {
            read_error_ppm: 0,
            corrupt_page_ppm: 0,
            ..FaultConfig::with_seed(9)
        };
        let mut arr = StorageArray::ssds(3);
        arr.attach_faults(FaultPlan::new(cfg));
        arr.quarantine(1, SimTime::ZERO);
        // Live drives are {0, 2}; pid routing rehashes over them.
        assert_eq!(arr.route(0), Some(0));
        assert_eq!(arr.route(1), Some(2));
        assert_eq!(arr.route(2), Some(0));
        let s = arr
            .fetch(1, 1_000, SimTime::ZERO, FetchPolicy::verified(&page))
            .unwrap();
        assert_eq!(s.start, SimTime::ZERO);
    }

    #[test]
    fn new_pages_are_placed_on_surviving_drives() {
        let cfg = FaultConfig {
            read_error_ppm: 0,
            corrupt_page_ppm: 0,
            ..FaultConfig::with_seed(9)
        };
        let mut arr = StorageArray::ssds(3);
        arr.attach_faults(FaultPlan::new(cfg));
        arr.quarantine(1, SimTime::ZERO);
        // The build-time stripe map would send pid 7 to drive 1 (7 % 3),
        // which is dead; placement must pick among the survivors {0, 2}.
        assert_eq!(arr.g(7), 1);
        arr.place_new_pages(&[7, 8]);
        assert_eq!(arr.route(7), Some(2)); // live[7 % 2] = live[1] = 2
        assert_eq!(arr.route(8), Some(0)); // live[8 % 2] = live[0] = 0
                                           // The placement is sticky: routing does not drift when further
                                           // drives die, as long as the pinned home survives.
        arr.quarantine(0, SimTime::ZERO);
        assert_eq!(arr.route(7), Some(2));
        // If the pinned home itself dies, the page re-stripes over the
        // remaining live drives like any other page.
        arr.quarantine(2, SimTime::ZERO);
        assert_eq!(arr.route(7), None);
    }

    #[test]
    fn placement_without_quarantines_matches_the_stripe_map() {
        let mut arr = StorageArray::ssds(3);
        arr.place_new_pages(&[9, 10, 11]);
        for pid in [9u64, 10, 11] {
            assert_eq!(arr.route(pid), Some(arr.g(pid)));
        }
    }
}
