#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]

//! # gts-storage — the out-of-core graph substrate of GTS
//!
//! Implements the *slotted page format* the paper adopts for streaming
//! topology (Sec. 2), its trillion-scale generalisation with `(p,q)`-byte
//! physical IDs (Sec. 6.1 / Table 2), the RVT record-id → vertex-id mapping
//! table (Appendix A), plus the storage hardware models the experiments
//! need: bandwidth/latency-parameterised SSD/HDD block devices striped by
//! the page-hash `g(j)` (Sec. 4.1), the main-memory buffer `MMBuf` with its
//! `bufferPIDMap` (Algorithm 1), and the pluggable page-cache policies the
//! GPU-side topology cache uses (Sec. 3.3, LRU by default "but other
//! algorithms can be used as well").
//!
//! ```
//! use gts_storage::{build_graph_store, PageFormatConfig};
//! use gts_graph::generate::rmat;
//!
//! let graph = rmat(10);
//! let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
//! // Every record ID in every page resolves back through the RVT.
//! let rid = store.rid_of_vertex(42);
//! assert_eq!(store.rvt().translate(rid), 42);
//! assert!(store.small_pids().len() > store.large_pids().len());
//! ```

pub mod builder;
pub mod cache;
pub mod device;
pub mod file;
pub mod format;
pub mod mmbuf;
pub mod mutate;
pub mod page;
pub mod rvt;
pub mod wal;

pub use builder::{build_graph_store, BuildError, GraphStore};
pub use cache::{CachePolicy, FifoCache, LruCache, PageCache, RandomCache};
pub use device::{BlockDevice, DeviceKind, FetchPolicy, StorageArray, StorageError};
pub use file::{load_store, save_store, FileError};
pub use format::{PageFormatConfig, PageKind, PhysicalIdConfig, RecordId};
pub use mmbuf::MmBuf;
pub use mutate::{EdgeOp, MutateError, MutationBatch, MutationOutcome};
pub use page::{page_checksum, Page, PageView, VerifiedPage};
pub use rvt::{Rvt, RvtEntry};
pub use wal::{store_identity_fp, Wal, WalError, WalHeader, WalRecord, WAL_FILE};
