//! Property tests of the resilience layer: under a random service
//! fault template, every job that completes is still byte-identical to
//! the same job run solo under the same derived `(job, attempt)` fault
//! domain, every quarantine is an honest record of a job whose whole
//! retry budget really fails, and the entire faulted service outcome —
//! retries, backoffs, breaker trips, sheds and all — is invariant to
//! the host thread count.

use gts_core::programs::{Bfs, Cc, GtsProgram, PageRank, Sssp};
use gts_core::{Engine, GtsConfig, JobOptions};
use gts_faults::FaultConfig;
use gts_graph::EdgeList;
use gts_serve::scheduler::{serve, JobStatus, ServeConfig, ServeOutcome};
use gts_serve::workload::JobSpec;
use gts_serve::ResilienceConfig;
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};
use gts_telemetry::Telemetry;
use proptest::prelude::*;

const ALGS: [&str; 4] = ["bfs", "pagerank", "cc", "sssp"];
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..250)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// One job as raw draws: arrival, tenant index, algorithm index, source
/// seed, iteration bound, priority.
type JobDraw = (u64, usize, usize, u64, u32, u32);

fn arb_workload() -> impl Strategy<Value = Vec<JobDraw>> {
    let job = (
        0u64..200_000,
        0usize..3,
        0usize..4,
        0u64..1 << 16,
        1u32..5,
        0u32..4,
    );
    proptest::collection::vec(job, 1..8)
}

fn build_jobs(draws: &[JobDraw], n: u64) -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = draws
        .iter()
        .map(|&(at_ns, tenant, alg, source, iters, prio)| {
            let mut spec = JobSpec::new(at_ns, TENANTS[tenant], ALGS[alg]);
            spec.source = source % n;
            spec.iterations = iters;
            spec.priority = prio;
            spec
        })
        .collect();
    jobs.sort_by_key(|j| j.at_ns);
    jobs
}

fn store_for(g: &EdgeList) -> GraphStore {
    let fmt = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512);
    build_graph_store(g, fmt).unwrap()
}

fn engine(host_threads: usize) -> Engine {
    Engine::new(
        GtsConfig::builder()
            .host_threads(host_threads)
            .build()
            .unwrap(),
    )
    .unwrap()
}

/// A service fault template hot enough that some attempts fail and some
/// succeed: GPU-side rates (the default store is in-memory, so device
/// reads never happen) with no lane-level retries, so every fault
/// surfaces to the service layer under test.
fn template(seed: u64) -> FaultConfig {
    FaultConfig {
        copy_fault_ppm: 100_000,
        launch_fault_ppm: 100_000,
        max_retries: 0,
        ..FaultConfig::with_seed(seed)
    }
}

fn solo_program(spec: &JobSpec, n: u64) -> Box<dyn GtsProgram> {
    match spec.algorithm.as_str() {
        "bfs" => Box::new(Bfs::new(n, spec.source)),
        "pagerank" => Box::new(PageRank::new(n, spec.iterations)),
        "sssp" => Box::new(Sssp::new(n, spec.source)),
        _ => Box::new(Cc::new(n)),
    }
}

/// Replay one `(job, attempt)` execution solo under its derived fault
/// domain; `Ok` carries the counters and result fingerprint.
fn solo_attempt(
    engine: &Engine,
    st: &GraphStore,
    spec: &JobSpec,
    tpl: &FaultConfig,
    job: u64,
    attempt: u32,
) -> Result<(std::collections::BTreeMap<String, u64>, u64), String> {
    let mut prog = solo_program(spec, st.num_vertices());
    let opts = JobOptions::with_telemetry(Telemetry::new())
        .tenant(spec.tenant.clone())
        .faults(tpl.derived(job, attempt));
    match engine.run_job(st, &mut *prog, &opts) {
        Ok(_) => Ok((
            opts.telemetry.counters(),
            gts_ckpt::fnv1a(&prog.save_state()),
        )),
        Err(e) => Err(e.to_string()),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// For any read workload, fault seed, and retry budget: the service
    /// never aborts; a completed job is byte-identical to a solo run
    /// under the derived domain of its final attempt; a quarantined job
    /// really fails under every derived domain in its budget; and with
    /// no retry budget failures stay `Failed`, never `Quarantined`.
    #[test]
    fn faulted_jobs_settle_honestly(
        draws in arb_workload(),
        g in arb_graph(),
        seed in 0u64..1 << 16,
        retry_max in 0u32..3,
    ) {
        let jobs = build_jobs(&draws, g.num_vertices as u64);
        let engine = engine(2);
        let mut st = store_for(&g);
        let tpl = template(seed);
        let cfg = ServeConfig {
            queue_capacity: 1024,
            tenant_queue_capacity: 1024,
            faults: Some(tpl.clone()),
            resilience: ResilienceConfig {
                retry_max,
                backoff_base_ns: 500,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(&engine, &mut st, &jobs, &cfg).unwrap();
        prop_assert_eq!(out.jobs.len(), jobs.len());
        for (job, spec) in out.jobs.iter().zip(&jobs) {
            let idx = job.index as u64;
            match &job.status {
                JobStatus::Completed => {
                    let (counters, fp) =
                        solo_attempt(&engine, &st, spec, &tpl, idx, job.attempts)
                            .map_err(|e| proptest::TestCaseError::fail(format!(
                                "job {idx} completed in service but failed solo: {e}"
                            )))?;
                    prop_assert_eq!(&job.counters, &counters, "job {}", idx);
                    prop_assert_eq!(job.result_fp, fp, "job {}", idx);
                    prop_assert!(job.attempts >= 1 && job.attempts <= retry_max + 1);
                }
                JobStatus::Failed { error } => {
                    prop_assert_eq!(retry_max, 0, "failures must retry when budgeted");
                    prop_assert_eq!(job.attempts, 1);
                    let solo = solo_attempt(&engine, &st, spec, &tpl, idx, 1);
                    prop_assert_eq!(&format!("engine: {}", solo.unwrap_err()), error);
                }
                JobStatus::Quarantined { attempts, .. } => {
                    prop_assert!(retry_max > 0);
                    prop_assert_eq!(*attempts, retry_max + 1);
                    prop_assert_eq!(job.attempts, *attempts);
                    for k in 1..=*attempts {
                        prop_assert!(
                            solo_attempt(&engine, &st, spec, &tpl, idx, k).is_err(),
                            "quarantined job {} attempt {} succeeds solo", idx, k
                        );
                    }
                }
                other => prop_assert!(false, "unexpected status {:?}", other),
            }
        }
        prop_assert_eq!(
            out.completed + out.failed + out.quarantined,
            jobs.len(),
            "wide-open caps must not drop"
        );
    }

    /// The faulted, retried, breaker-guarded, shedding service outcome
    /// is a pure function of (workload, seed, knobs) — never of the
    /// host thread count.
    #[test]
    fn resilient_outcome_is_host_thread_invariant(
        draws in arb_workload(),
        g in arb_graph(),
        seed in 0u64..1 << 16,
        retry_max in 0u32..3,
        breaker in 0u32..3,
        shed_draw in 0u32..91,
    ) {
        let jobs = build_jobs(&draws, g.num_vertices as u64);
        let cfg = ServeConfig {
            slots: 2,
            faults: Some(template(seed)),
            resilience: ResilienceConfig {
                retry_max,
                backoff_base_ns: 500,
                breaker_threshold: breaker,
                breaker_cooldown_ns: 10_000,
                shed_watermark_pct: (shed_draw >= 30).then_some(shed_draw),
            },
            ..ServeConfig::default()
        };
        let outs: Vec<ServeOutcome> = [1usize, 4]
            .iter()
            .map(|&ht| serve(&engine(ht), &mut store_for(&g), &jobs, &cfg).unwrap())
            .collect();
        prop_assert_eq!(outs[0].telemetry.counters(), outs[1].telemetry.counters());
        prop_assert_eq!(outs[0].telemetry.histograms(), outs[1].telemetry.histograms());
        prop_assert_eq!(outs[0].makespan_ns, outs[1].makespan_ns);
        for (a, b) in outs[0].jobs.iter().zip(&outs[1].jobs) {
            prop_assert_eq!(&a.status, &b.status, "job {}", a.index);
            prop_assert_eq!(&a.counters, &b.counters, "job {}", a.index);
            prop_assert_eq!((a.start_ns, a.finish_ns), (b.start_ns, b.finish_ns));
            prop_assert_eq!((a.attempts, a.result_fp), (b.attempts, b.result_fp));
        }
    }
}
