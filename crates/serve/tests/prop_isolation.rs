//! Property tests of tenant isolation: for any graph and any queued
//! workload, every job the service completes is byte-identical to the
//! same job run solo — and the whole service outcome is invariant to
//! the host thread count, the knob that changes *how* the speculative
//! read fan-out executes without being allowed to change *what* it
//! computes.

use gts_core::programs::{Bfs, Cc, GtsProgram, PageRank, Sssp};
use gts_core::{Engine, GtsConfig, JobOptions, MutationSchedule};
use gts_graph::EdgeList;
use gts_serve::scheduler::{serve, JobStatus, ServeConfig, ServeOutcome};
use gts_serve::workload::{seeded_batch, JobSpec, MutateSpec};
use gts_storage::{build_graph_store, GraphStore, PageFormatConfig, PhysicalIdConfig};
use gts_telemetry::Telemetry;
use proptest::prelude::*;

const ALGS: [&str; 4] = ["bfs", "pagerank", "cc", "sssp"];
const TENANTS: [&str; 3] = ["alpha", "beta", "gamma"];

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..80).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 1..250)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

/// One job as raw draws: arrival, tenant index, algorithm index, source
/// seed, iteration bound.
type JobDraw = (u64, usize, usize, u64, u32);

/// A workload: up to eight queued jobs, at most one of them mutating
/// (chosen by `mutate_at % len` when the flag is set).
fn arb_workload() -> impl Strategy<Value = (Vec<JobDraw>, Option<(usize, MutateSpec)>)> {
    let job = (0u64..200_000, 0usize..3, 0usize..4, 0u64..1 << 16, 1u32..5);
    (
        proptest::collection::vec(job, 1..8),
        0u32..2,
        0usize..8,
        1u32..3,
        0u64..64,
        0u64..8,
    )
        .prop_map(|(jobs, mutate, idx, at_sweep, inserts, deletes)| {
            let m = (mutate == 1).then(|| {
                let spec = MutateSpec {
                    at_sweep,
                    inserts,
                    deletes,
                    seed: inserts * 31 + deletes + 7,
                };
                (idx % jobs.len(), spec)
            });
            (jobs, m)
        })
}

fn build_jobs(draws: &[JobDraw], mutate: &Option<(usize, MutateSpec)>, n: u64) -> Vec<JobSpec> {
    let mut jobs: Vec<JobSpec> = draws
        .iter()
        .map(|&(at_ns, tenant, alg, source, iters)| {
            let mut spec = JobSpec::new(at_ns, TENANTS[tenant], ALGS[alg]);
            spec.source = source % n;
            spec.iterations = iters;
            spec
        })
        .collect();
    if let Some((idx, m)) = mutate {
        jobs[*idx].mutate = Some(*m);
    }
    // Arrival order, matching the stable sort inside `serve`, so the
    // outcome vector zips positionally with this spec vector.
    jobs.sort_by_key(|j| j.at_ns);
    jobs
}

fn store_for(g: &EdgeList) -> GraphStore {
    let fmt = PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512);
    build_graph_store(g, fmt).unwrap()
}

fn engine(host_threads: usize) -> Engine {
    Engine::new(
        GtsConfig::builder()
            .host_threads(host_threads)
            .build()
            .unwrap(),
    )
    .unwrap()
}

/// Caps wide enough that admission never drops: the property under test
/// is execution isolation, not backpressure.
fn wide_open(slots: usize) -> ServeConfig {
    ServeConfig {
        slots,
        queue_capacity: 1024,
        tenant_queue_capacity: 1024,
        deadline_ns: None,
        ..ServeConfig::default()
    }
}

fn solo_program(spec: &JobSpec, n: u64) -> Box<dyn GtsProgram> {
    match spec.algorithm.as_str() {
        "bfs" => Box::new(Bfs::new(n, spec.source)),
        "pagerank" => Box::new(PageRank::new(n, spec.iterations)),
        "sssp" => Box::new(Sssp::new(n, spec.source)),
        _ => Box::new(Cc::new(n)),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// N queued jobs, replayed solo in epoch order on an identical
    /// store, land byte-for-byte on the same counters and simulated
    /// service time — at 1 host thread and at 4.
    #[test]
    fn queued_jobs_match_solo_replay(workload in arb_workload(), g in arb_graph()) {
        let (draws, mutate) = workload;
        let jobs = build_jobs(&draws, &mutate, g.num_vertices as u64);
        for host_threads in [1usize, 4] {
            let engine = engine(host_threads);
            let mut st = store_for(&g);
            let mut solo_st = store_for(&g);
            let out = serve(&engine, &mut st, &jobs, &wide_open(2)).unwrap();
            prop_assert_eq!(out.completed, jobs.len());
            for (job, spec) in out.jobs.iter().zip(&jobs) {
                prop_assert_eq!(&job.status, &JobStatus::Completed);
                let mut prog = solo_program(spec, solo_st.num_vertices());
                let opts = JobOptions::with_telemetry(Telemetry::new())
                    .tenant(spec.tenant.clone());
                let report = match spec.mutate {
                    Some(m) => {
                        let batch = seeded_batch(&solo_st, m.inserts, m.deletes, m.seed);
                        let schedule = MutationSchedule::new().at(m.at_sweep, batch);
                        engine.run_job_live(&mut solo_st, &mut *prog, schedule, &opts).unwrap()
                    }
                    None => engine.run_job(&solo_st, &mut *prog, &opts).unwrap(),
                };
                prop_assert_eq!(&job.counters, &opts.telemetry.counters(), "job {}", job.index);
                prop_assert_eq!(job.service_ns, report.elapsed.as_nanos());
            }
            prop_assert_eq!(st.epoch(), solo_st.epoch());
        }
    }

    /// The whole service outcome — per-job counters, statuses, schedule
    /// times, and the aggregated registry — is a pure function of the
    /// workload, never of the host thread count.
    #[test]
    fn service_outcome_is_host_thread_invariant(workload in arb_workload(), g in arb_graph()) {
        let (draws, mutate) = workload;
        let jobs = build_jobs(&draws, &mutate, g.num_vertices as u64);
        let outs: Vec<ServeOutcome> = [1usize, 4]
            .iter()
            .map(|&ht| serve(&engine(ht), &mut store_for(&g), &jobs, &wide_open(3)).unwrap())
            .collect();
        prop_assert_eq!(outs[0].telemetry.counters(), outs[1].telemetry.counters());
        prop_assert_eq!(outs[0].telemetry.histograms(), outs[1].telemetry.histograms());
        prop_assert_eq!(outs[0].makespan_ns, outs[1].makespan_ns);
        for (a, b) in outs[0].jobs.iter().zip(&outs[1].jobs) {
            prop_assert_eq!(&a.counters, &b.counters, "job {}", a.index);
            prop_assert_eq!(&a.status, &b.status);
            prop_assert_eq!((a.start_ns, a.finish_ns), (b.start_ns, b.finish_ns));
        }
    }
}
