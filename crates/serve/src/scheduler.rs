//! The job scheduler: a deterministic multi-tenant queueing layer over
//! [`gts_core::Engine`].
//!
//! ## Model
//!
//! The service owns `slots` concurrent **service slots** — each slot
//! stands for one provisioned set of GPU lanes plus its share of
//! storage bandwidth. Jobs arrive at scripted simulated times and are
//! dispatched FIFO: a read job takes the earliest-free slot, an
//! edge-mutating job is an **all-slots barrier** (topology rewriting
//! owns every lane, exactly like the epoch pipeline's invalidation
//! sweep), so no read ever observes a half-applied batch. Store state
//! is therefore a clean sequence of epochs: every job admitted after a
//! mutation sees it, every job admitted before it does not.
//!
//! ## Admission control
//!
//! A job that cannot start the instant it arrives must wait, and
//! waiting is bounded three ways, surfaced as typed backpressure:
//!
//! * [`ServeError::QueueFull`] — the shared queue already holds
//!   `queue_capacity` waiting jobs.
//! * [`ServeError::Rejected`] — this tenant already has
//!   `tenant_queue_capacity` waiting jobs (one noisy tenant cannot
//!   starve the rest of the queue).
//! * [`ServeError::Deadline`] — the job's start would come more than
//!   `deadline_ns` after arrival; it is dropped at dispatch instead of
//!   running uselessly late (it still occupies queue space until the
//!   deadline expires).
//!
//! ## Determinism
//!
//! Service times are each job's *simulated* elapsed time — the same
//! number the job reports when run solo — so queueing dynamics are pure
//! u64 arithmetic over the script. Host threads only change wall-clock
//! speed: read jobs within an epoch execute speculatively in parallel
//! on the `gts-exec` pool (side-effect-free over the shared store), and
//! each runs in its own [`JobContext`](gts_core::JobContext), keeping
//! its report and counters byte-identical to a solo run.

use crate::workload::{seeded_batch, JobSpec, ALGORITHMS};
use crate::ServeError;
use gts_core::programs::{
    Bc, Bfs, Cc, Degrees, GtsProgram, KCore, PageRank, RadiusEstimation, Rwr, Sssp,
};
use gts_core::{Engine, JobOptions, MutationSchedule, RunReport};
use gts_exec::ThreadPool;
use gts_storage::builder::GraphStore;
use gts_telemetry::Telemetry;
use std::collections::BTreeMap;

/// Service provisioning and admission-control bounds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent service slots (GPU lane sets) the service multiplexes.
    pub slots: usize,
    /// Shared waiting-queue capacity; arrivals beyond it get
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-tenant waiting cap; a tenant over it gets
    /// [`ServeError::Rejected`].
    pub tenant_queue_capacity: usize,
    /// Maximum simulated wait between arrival and start; `None` waits
    /// forever, `Some(d)` drops overdue jobs with
    /// [`ServeError::Deadline`].
    pub deadline_ns: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            slots: 4,
            queue_capacity: 64,
            tenant_queue_capacity: 16,
            deadline_ns: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("slots", self.slots),
            ("queue_capacity", self.queue_capacity),
            ("tenant_queue_capacity", self.tenant_queue_capacity),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be >= 1")));
            }
        }
        if self.deadline_ns == Some(0) {
            return Err(ServeError::Config("deadline_ns must be >= 1".into()));
        }
        Ok(())
    }
}

/// How one scheduled job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; report and counters are attached.
    Completed,
    /// Never ran: dropped by admission control with this backpressure.
    Dropped(ServeError),
    /// Admitted but the engine failed it (message attached). The slot
    /// time it would have used is not charged.
    Failed(String),
}

/// The per-job record the service returns, in admission order.
#[derive(Debug)]
pub struct JobOutcome {
    /// Position in the admitted (arrival-sorted) workload.
    pub index: usize,
    /// Owning tenant.
    pub tenant: String,
    /// Job class — the algorithm name; latency histograms are keyed
    /// `serve.lat.<class>`.
    pub class: String,
    /// Whether this job mutated topology (all-slots barrier).
    pub mutating: bool,
    /// Scripted arrival, simulated ns.
    pub arrival_ns: u64,
    /// Dispatch time (0 for dropped jobs).
    pub start_ns: u64,
    /// Completion time (0 for dropped jobs).
    pub finish_ns: u64,
    /// Solo simulated elapsed time of the run (0 for dropped jobs).
    pub service_ns: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// The job's full counter registry — byte-identical to the same job
    /// run solo (empty for dropped jobs).
    pub counters: BTreeMap<String, u64>,
    /// The job's report (completed jobs only).
    pub report: Option<RunReport>,
}

impl JobOutcome {
    /// Simulated time spent waiting for a slot.
    pub fn wait_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.arrival_ns)
    }

    /// Arrival-to-completion simulated latency (what the tenant feels;
    /// the `serve.lat.*` histograms record this).
    pub fn latency_ns(&self) -> u64 {
        self.finish_ns.saturating_sub(self.arrival_ns)
    }

    fn dropped(index: usize, spec: &JobSpec, why: ServeError) -> JobOutcome {
        JobOutcome {
            index,
            tenant: spec.tenant.clone(),
            class: spec.algorithm.clone(),
            mutating: spec.mutate.is_some(),
            arrival_ns: spec.at_ns,
            start_ns: 0,
            finish_ns: 0,
            service_ns: 0,
            status: JobStatus::Dropped(why),
            counters: BTreeMap::new(),
            report: None,
        }
    }
}

/// Everything one `serve` call produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-job records, in admission (arrival-sorted) order.
    pub jobs: Vec<JobOutcome>,
    /// The service-level registry: `serve.*` counters, `serve.lat.*`
    /// latency histograms (plus their derived `.count`/`.p50`/`.p95`/
    /// `.p99` counters), and the per-tenant `tenant.<tag>.cache.*`
    /// rollup aggregated from every completed job.
    pub telemetry: Telemetry,
    /// Simulated completion time of the last finishing job.
    pub makespan_ns: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs dropped by admission control.
    pub dropped: usize,
    /// Jobs the engine failed.
    pub failed: usize,
}

/// The FIFO G/G/c state on the simulated clock. `slots[i]` is the time
/// slot *i* becomes free; `waiting` are dispatched-but-not-yet-started
/// (or deadline-doomed) jobs, kept so queue-occupancy checks at later
/// arrivals see them — a job occupies queue space from arrival until
/// its start (or until its deadline expires).
struct Sim {
    slots: Vec<u64>,
    waiting: Vec<(u64, String)>,
    queue_capacity: usize,
    tenant_queue_capacity: usize,
    deadline_ns: Option<u64>,
}

impl Sim {
    fn new(cfg: &ServeConfig) -> Sim {
        Sim {
            slots: vec![0; cfg.slots],
            waiting: Vec::new(),
            queue_capacity: cfg.queue_capacity,
            tenant_queue_capacity: cfg.tenant_queue_capacity,
            deadline_ns: cfg.deadline_ns,
        }
    }

    /// Admission decision for a job arriving at `arrival`: its start
    /// time, or the typed drop. Processing jobs in arrival order with
    /// `start = max(earliest-free, arrival)` *is* the FIFO simulation —
    /// dispatch order equals arrival order, so decisions depend only on
    /// already-settled jobs.
    fn decide(&mut self, arrival: u64, tenant: &str, mutating: bool) -> Result<u64, ServeError> {
        self.waiting.retain(|(until, _)| *until > arrival);
        let slot_free = if mutating {
            // Topology rewrite: every lane set must drain first.
            self.slots.iter().copied().max().unwrap_or(0)
        } else {
            self.slots.iter().copied().min().unwrap_or(0)
        };
        let start = slot_free.max(arrival);
        if start == arrival {
            return Ok(start); // a slot is free right now: no queueing
        }
        let mine = self.waiting.iter().filter(|(_, t)| t == tenant).count();
        if mine >= self.tenant_queue_capacity {
            return Err(ServeError::Rejected {
                tenant: tenant.to_string(),
                waiting: mine,
                capacity: self.tenant_queue_capacity,
            });
        }
        if self.waiting.len() >= self.queue_capacity {
            return Err(ServeError::QueueFull {
                waiting: self.waiting.len(),
                capacity: self.queue_capacity,
            });
        }
        if let Some(deadline) = self.deadline_ns {
            if start - arrival > deadline {
                // Doomed, but it still sits in the queue until the
                // deadline expires — later arrivals must see it there.
                self.waiting.push((arrival + deadline, tenant.to_string()));
                return Err(ServeError::Deadline {
                    waited_ns: start - arrival,
                    deadline_ns: deadline,
                });
            }
        }
        self.waiting.push((start, tenant.to_string()));
        Ok(start)
    }

    /// Occupy slot time for a job admitted at `start`.
    fn commit(&mut self, start: u64, service_ns: u64, mutating: bool) {
        let finish = start + service_ns;
        if mutating {
            for s in &mut self.slots {
                *s = finish;
            }
        } else if let Some(s) = self.slots.iter_mut().min_by_key(|s| **s) {
            *s = finish;
        }
    }
}

/// Build the program a spec names. `n` is the store's vertex count.
fn make_program(spec: &JobSpec, n: u64) -> Result<Box<dyn GtsProgram>, ServeError> {
    Ok(match spec.algorithm.as_str() {
        "bfs" => Box::new(Bfs::new(n, spec.source)),
        "pagerank" => Box::new(PageRank::new(n, spec.iterations)),
        "sssp" => Box::new(Sssp::new(n, spec.source)),
        "cc" => Box::new(Cc::new(n)),
        "bc" => Box::new(Bc::new(n, spec.source)),
        "rwr" => Box::new(Rwr::new(n, spec.source, spec.iterations)),
        "degrees" => Box::new(Degrees::new(n)),
        "kcore" => Box::new(KCore::new(n, spec.k)),
        "radius" => Box::new(RadiusEstimation::new(n)),
        other => return Err(ServeError::Workload(format!("unknown algorithm {other:?}"))),
    })
}

fn job_options(spec: &JobSpec) -> JobOptions {
    JobOptions::with_telemetry(Telemetry::new()).tenant(spec.tenant.clone())
}

/// Execute one read job solo (its own `JobContext`, its own registry).
fn execute_read(
    engine: &Engine,
    store: &GraphStore,
    spec: &JobSpec,
) -> Result<(RunReport, Telemetry), ServeError> {
    let mut prog = make_program(spec, store.num_vertices())?;
    let opts = job_options(spec);
    let report = engine
        .run_job(store, &mut *prog, &opts)
        .map_err(|e| ServeError::Engine(e.to_string()))?;
    Ok((report, opts.telemetry))
}

/// Execute the mutating job that closes an epoch group: its batch goes
/// through the store's epoch pipeline at the scripted sweep boundary.
fn execute_mutating(
    engine: &Engine,
    store: &mut GraphStore,
    spec: &JobSpec,
) -> Result<(RunReport, Telemetry), ServeError> {
    let m = spec.mutate.expect("caller checked spec.mutate");
    let batch = seeded_batch(store, m.inserts, m.deletes, m.seed);
    let schedule = MutationSchedule::new().at(m.at_sweep, batch);
    let mut prog = make_program(spec, store.num_vertices())?;
    let opts = job_options(spec);
    let report = engine
        .run_job_live(store, &mut *prog, schedule, &opts)
        .map_err(|e| ServeError::Engine(e.to_string()))?;
    Ok((report, opts.telemetry))
}

/// Fold one admitted job's execution into its outcome record and the
/// service registry: latency histograms by class, admission counters,
/// and the per-tenant `tenant.*` rollup.
fn settle(
    tel: &Telemetry,
    sim: &mut Sim,
    index: usize,
    spec: &JobSpec,
    start: u64,
    executed: Result<(RunReport, Telemetry), ServeError>,
) -> JobOutcome {
    tel.add("serve.jobs.admitted", 1);
    let mut out = JobOutcome::dropped(index, spec, ServeError::Config(String::new()));
    out.start_ns = start;
    match executed {
        Ok((report, jtel)) => {
            out.service_ns = report.elapsed.as_nanos();
            out.finish_ns = start + out.service_ns;
            out.counters = jtel.counters();
            out.report = Some(report);
            out.status = JobStatus::Completed;
            sim.commit(start, out.service_ns, out.mutating);
            tel.add("serve.jobs.completed", 1);
            if out.mutating {
                tel.add("serve.epochs", 1);
            }
            let latency = out.latency_ns();
            tel.observe(format!("serve.lat.{}", out.class), latency);
            tel.observe("serve.lat.all", latency);
            for (k, v) in &out.counters {
                if k.starts_with("tenant.") {
                    tel.add(k, *v);
                }
            }
        }
        Err(why) => {
            out.finish_ns = start;
            out.status = JobStatus::Failed(why.to_string());
            sim.commit(start, 0, out.mutating);
            tel.add("serve.jobs.failed", 1);
        }
    }
    out
}

fn check_workload(workload: &[JobSpec], store: &GraphStore) -> Result<(), ServeError> {
    for spec in workload {
        if !ALGORITHMS.contains(&spec.algorithm.as_str()) {
            return Err(ServeError::Workload(format!(
                "unknown algorithm {:?}",
                spec.algorithm
            )));
        }
        if spec.source >= store.num_vertices() {
            return Err(ServeError::Workload(format!(
                "source {} out of range ({} vertices)",
                spec.source,
                store.num_vertices()
            )));
        }
        if spec.tenant.is_empty() {
            return Err(ServeError::Workload("empty tenant tag".into()));
        }
    }
    Ok(())
}

/// Run `workload` through the service: admit jobs in arrival order
/// against `cfg`'s slots and bounds, execute the admitted ones on
/// `engine` over the shared `store`, and aggregate service-level
/// telemetry. Only scheduling errors that make the whole call
/// meaningless (bad config, malformed workload) are `Err`; per-job
/// drops and failures are data in the returned [`ServeOutcome`].
pub fn serve(
    engine: &Engine,
    store: &mut GraphStore,
    workload: &[JobSpec],
    cfg: &ServeConfig,
) -> Result<ServeOutcome, ServeError> {
    cfg.validate()?;
    check_workload(workload, store)?;
    let mut jobs = workload.to_vec();
    jobs.sort_by_key(|j| j.at_ns);
    let pool = ThreadPool::new(engine.config().host_threads);
    let tel = Telemetry::new();
    let mut sim = Sim::new(cfg);
    let mut outcomes: Vec<JobOutcome> = Vec::with_capacity(jobs.len());

    let mut next = 0;
    while next < jobs.len() {
        // One epoch group: the maximal run of read jobs, plus the
        // mutating job (if any) that terminates it. Arrival sort makes
        // groups contiguous, so group k executes entirely against the
        // store state epoch k left behind.
        let end = jobs[next..]
            .iter()
            .position(|j| j.mutate.is_some())
            .map_or(jobs.len(), |p| next + p);
        let reads = &jobs[next..end];
        // Speculative parallel execution: reads are side-effect-free, so
        // running ones that admission later drops wastes only wall time.
        let executed = pool.par_map(reads, |_, spec| execute_read(engine, store, spec));
        for (spec, executed) in reads.iter().zip(executed) {
            let index = outcomes.len();
            outcomes.push(match sim.decide(spec.at_ns, &spec.tenant, false) {
                Ok(start) => settle(&tel, &mut sim, index, spec, start, executed),
                Err(why) => JobOutcome::dropped(index, spec, why),
            });
        }
        if end < jobs.len() {
            let spec = &jobs[end];
            let index = outcomes.len();
            // Decide *before* executing: a dropped mutating job must not
            // advance the store epoch.
            outcomes.push(match sim.decide(spec.at_ns, &spec.tenant, true) {
                Ok(start) => {
                    let executed = execute_mutating(engine, store, spec);
                    settle(&tel, &mut sim, index, spec, start, executed)
                }
                Err(why) => JobOutcome::dropped(index, spec, why),
            });
        }
        next = end + 1;
    }

    for out in &outcomes {
        if let JobStatus::Dropped(why) = &out.status {
            tel.add(
                match why {
                    ServeError::QueueFull { .. } => "serve.drop.queue_full",
                    ServeError::Rejected { .. } => "serve.drop.rejected",
                    ServeError::Deadline { .. } => "serve.drop.deadline",
                    _ => "serve.drop.other",
                },
                1,
            );
        }
    }
    let makespan_ns = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
    tel.set("serve.jobs.total", outcomes.len() as u64);
    tel.set("serve.makespan_ns", makespan_ns);
    tel.set("serve.slots", cfg.slots as u64);
    // Derived percentile counters: histograms rendered into the flat
    // registry, so `--counters-out` dumps and CI diffs carry them.
    for (key, s) in tel.histogram_summaries() {
        tel.set(format!("{key}.count"), s.count);
        tel.set(format!("{key}.p50"), s.p50);
        tel.set(format!("{key}.p95"), s.p95);
        tel.set(format!("{key}.p99"), s.p99);
    }
    let count = |f: fn(&JobStatus) -> bool| outcomes.iter().filter(|o| f(&o.status)).count();
    Ok(ServeOutcome {
        completed: count(|s| matches!(s, JobStatus::Completed)),
        dropped: count(|s| matches!(s, JobStatus::Dropped(_))),
        failed: count(|s| matches!(s, JobStatus::Failed(_))),
        jobs: outcomes,
        telemetry: tel,
        makespan_ns,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{parse, synthetic};
    use gts_core::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig};

    fn store() -> GraphStore {
        build_graph_store(&rmat(8), PageFormatConfig::small_default()).unwrap()
    }

    fn engine(host_threads: usize) -> Engine {
        Engine::new(
            GtsConfig::builder()
                .host_threads(host_threads)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    /// The tentpole contract: a job admitted through the service has the
    /// same report and counters as the same job run solo, epoch by
    /// epoch, and the tenant rollup is its only addition over plain
    /// `Gts::run`.
    #[test]
    fn jobs_are_byte_identical_to_solo_runs() {
        let engine = engine(2);
        let mut st = store();
        let mut solo_st = store();
        let jobs = parse(
            "at=0    tenant=a job=bfs\n\
             at=1000 tenant=b job=pagerank iters=3\n\
             at=2000 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=3000 tenant=a job=cc\n",
        )
        .unwrap();
        let out = serve(&engine, &mut st, &jobs, &ServeConfig::default()).unwrap();
        assert_eq!(out.completed, 4, "{:?}", out.jobs);
        for (job, spec) in out.jobs.iter().zip(&jobs) {
            let mut prog = make_program(spec, solo_st.num_vertices()).unwrap();
            let opts = job_options(spec);
            let report = match spec.mutate {
                Some(m) => {
                    let batch = seeded_batch(&solo_st, m.inserts, m.deletes, m.seed);
                    let schedule = MutationSchedule::new().at(m.at_sweep, batch);
                    engine
                        .run_job_live(&mut solo_st, &mut *prog, schedule, &opts)
                        .unwrap()
                }
                None => engine.run_job(&solo_st, &mut *prog, &opts).unwrap(),
            };
            assert_eq!(job.counters, opts.telemetry.counters(), "job {}", job.index);
            assert_eq!(job.service_ns, report.elapsed.as_nanos());
        }
        assert_eq!(st.epoch(), solo_st.epoch());
        // Job 0 vs the plain solo path: identical once the tenant rollup
        // (the only serve-mode addition) is set aside.
        let gts = Gts::builder()
            .config(engine.config().clone())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(solo_st.num_vertices(), 0);
        gts.run(&store(), &mut bfs).unwrap();
        let mut tagged = out.jobs[0].counters.clone();
        tagged.retain(|k, _| !k.starts_with("tenant."));
        assert_eq!(tagged, gts.telemetry().counters());
    }

    #[test]
    fn serve_is_host_thread_invariant() {
        let jobs = synthetic(3, 3, 11, true);
        let cfg = ServeConfig {
            slots: 2,
            ..ServeConfig::default()
        };
        let outs: Vec<ServeOutcome> = [1usize, 4]
            .iter()
            .map(|&ht| serve(&engine(ht), &mut store(), &jobs, &cfg).unwrap())
            .collect();
        assert_eq!(
            outs[0].telemetry.counters(),
            outs[1].telemetry.counters(),
            "service registry must not depend on host threads"
        );
        assert_eq!(
            outs[0].telemetry.histograms(),
            outs[1].telemetry.histograms()
        );
        for (a, b) in outs[0].jobs.iter().zip(&outs[1].jobs) {
            assert_eq!(a.counters, b.counters, "job {}", a.index);
            assert_eq!(a.status, b.status);
            assert_eq!((a.start_ns, a.finish_ns), (b.start_ns, b.finish_ns));
        }
    }

    #[test]
    fn admission_control_drops_with_typed_backpressure() {
        let mut st = store();
        // Three near-simultaneous arrivals into one slot with a one-deep
        // queue: the third finds the queue full.
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=1 tenant=b job=bfs\nat=2 tenant=c job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert_eq!(out.jobs[0].status, JobStatus::Completed);
        assert_eq!(out.jobs[1].status, JobStatus::Completed);
        assert!(
            matches!(
                out.jobs[2].status,
                JobStatus::Dropped(ServeError::QueueFull { .. })
            ),
            "{:?}",
            out.jobs[2].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.queue_full"), 1);
        assert_eq!((out.completed, out.dropped), (2, 1));
        // FIFO: the queued job starts exactly when the first finishes.
        assert_eq!(out.jobs[1].start_ns, out.jobs[0].finish_ns);

        // One tenant hogging the queue is rejected before the shared
        // queue fills.
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=1 tenant=a job=bfs\nat=2 tenant=a job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            tenant_queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                &out.jobs[2].status,
                JobStatus::Dropped(ServeError::Rejected { tenant, .. }) if tenant == "a"
            ),
            "{:?}",
            out.jobs[2].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.rejected"), 1);

        // A job that cannot start within its deadline is dropped.
        let jobs = parse("at=0 tenant=a job=bfs\nat=1 tenant=b job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            deadline_ns: Some(1),
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                out.jobs[1].status,
                JobStatus::Dropped(ServeError::Deadline { waited_ns, deadline_ns: 1 })
                    if waited_ns > 1
            ),
            "{:?}",
            out.jobs[1].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.deadline"), 1);
    }

    #[test]
    fn mutation_is_an_all_slots_barrier_and_drops_keep_the_epoch() {
        let mut st = store();
        // Four reads saturate four slots; the mutation must wait for all
        // of them, and the read behind it sees the new epoch.
        let jobs = parse(
            "at=0 tenant=a job=bfs\nat=0 tenant=b job=bfs\n\
             at=0 tenant=c job=pagerank iters=3\nat=0 tenant=d job=cc\n\
             at=1 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=2 tenant=a job=bfs\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 4,
            ..ServeConfig::default()
        };
        let out = serve(&engine(2), &mut st, &jobs, &cfg).unwrap();
        assert_eq!(out.completed, 6, "{:?}", out.jobs);
        let slowest_read = out.jobs[..4].iter().map(|j| j.finish_ns).max().unwrap();
        assert_eq!(out.jobs[4].start_ns, slowest_read, "barrier waits for all");
        assert_eq!(out.jobs[5].start_ns, out.jobs[4].finish_ns);
        assert_eq!(st.epoch(), 1);
        assert_eq!(out.telemetry.counter("serve.epochs"), 1);
        assert_eq!(out.jobs[4].counters["mut.batches"], 1);
        // The post-mutation read really ran against the new epoch: its
        // counters differ from the identical pre-mutation job.
        assert_ne!(out.jobs[0].counters, out.jobs[5].counters);

        // A mutating job dropped by admission must not advance the epoch.
        let mut st = store();
        let jobs = parse(
            "at=0 tenant=a job=pagerank iters=3\n\
             at=1 tenant=m job=bfs mutate-at=1 inserts=16 seed=5\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 1,
            deadline_ns: Some(1),
            ..ServeConfig::default()
        };
        let out = serve(&engine(2), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                out.jobs[1].status,
                JobStatus::Dropped(ServeError::Deadline { .. })
            ),
            "{:?}",
            out.jobs[1].status
        );
        assert_eq!(st.epoch(), 0, "dropped mutation must not touch the store");
        assert_eq!(out.telemetry.counter("serve.epochs"), 0);
    }

    #[test]
    fn service_registry_aggregates_tenants_and_latency() {
        let mut st = store();
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=100 tenant=a job=cc\nat=200 tenant=b job=bfs\n")
                .unwrap();
        let out = serve(&engine(2), &mut st, &jobs, &ServeConfig::default()).unwrap();
        assert_eq!(out.completed, 3);
        // Latency histograms: per class and overall, with derived
        // percentile counters in the flat registry.
        let tel = &out.telemetry;
        assert_eq!(tel.counter("serve.lat.all.count"), 3);
        assert_eq!(tel.counter("serve.lat.bfs.count"), 2);
        assert_eq!(tel.counter("serve.lat.cc.count"), 1);
        assert!(tel.counter("serve.lat.all.p50") <= tel.counter("serve.lat.all.p95"));
        assert!(tel.counter("serve.lat.all.p95") <= tel.counter("serve.lat.all.p99"));
        assert_eq!(
            tel.percentile("serve.lat.all", 99),
            Some(tel.counter("serve.lat.all.p99"))
        );
        // Per-tenant rollup equals the sum over that tenant's jobs.
        for tenant in ["a", "b"] {
            let key = format!("tenant.{tenant}.cache.bytes_streamed");
            let per_job: u64 = out
                .jobs
                .iter()
                .filter(|j| j.tenant == tenant)
                .map(|j| j.counters.get(&key).copied().unwrap_or(0))
                .sum();
            assert!(per_job > 0, "expected streamed bytes for {tenant}");
            assert_eq!(tel.counter(&key), per_job);
        }
        assert_eq!(tel.counter("serve.jobs.total"), 3);
        assert_eq!(tel.counter("serve.makespan_ns"), out.makespan_ns);
        assert!(out.makespan_ns > 0);
    }

    #[test]
    fn invalid_config_and_workload_are_typed_errors() {
        let mut st = store();
        let bad_cfg = ServeConfig {
            slots: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            serve(&engine(1), &mut st, &[], &bad_cfg),
            Err(ServeError::Config(_))
        ));
        let mut spec = JobSpec::new(0, "a", "bfs");
        spec.source = u64::MAX;
        assert!(matches!(
            serve(&engine(1), &mut st, &[spec], &ServeConfig::default()),
            Err(ServeError::Workload(_))
        ));
        let spec = JobSpec::new(0, "a", "frobnicate");
        assert!(matches!(
            serve(&engine(1), &mut st, &[spec], &ServeConfig::default()),
            Err(ServeError::Workload(_))
        ));
    }
}
