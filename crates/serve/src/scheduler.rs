//! The job scheduler: a deterministic multi-tenant queueing layer over
//! [`gts_core::Engine`].
//!
//! ## Model
//!
//! The service owns `slots` concurrent **service slots** — each slot
//! stands for one provisioned set of GPU lanes plus its share of
//! storage bandwidth. Jobs arrive at scripted simulated times and are
//! dispatched FIFO: a read job takes the earliest-free slot, an
//! edge-mutating job is an **all-slots barrier** (topology rewriting
//! owns every lane, exactly like the epoch pipeline's invalidation
//! sweep), so no read ever observes a half-applied batch. Store state
//! is therefore a clean sequence of epochs: every job admitted after a
//! mutation sees it, every job admitted before it does not.
//!
//! ## Admission control
//!
//! A job that cannot start the instant it arrives must wait, and
//! waiting is bounded, surfaced as typed backpressure:
//!
//! * [`ServeError::BreakerOpen`] — the tenant's circuit breaker is
//!   open: it accumulated too many consecutive failures and its
//!   arrivals are shed until the cool-down elapses.
//! * [`ServeError::Shed`] — load-aware overload shedding: service
//!   pressure crossed the job's priority-scaled watermark.
//! * [`ServeError::QueueFull`] — the shared queue already holds
//!   `queue_capacity` waiting jobs.
//! * [`ServeError::Rejected`] — this tenant already has
//!   `tenant_queue_capacity` waiting jobs (one noisy tenant cannot
//!   starve the rest of the queue).
//! * [`ServeError::Deadline`] — the job's start would come more than
//!   `deadline_ns` after arrival; it is dropped at dispatch instead of
//!   running uselessly late, and it frees its queue slot immediately
//!   (a job known dead at decision time never crowds out later
//!   arrivals).
//!
//! ## Faults and resilience
//!
//! With a service fault template configured ([`ServeConfig::faults`]),
//! every `(job, attempt)` execution derives its own fault domain from
//! the one service seed ([`gts_faults::FaultConfig::derived`]), so one
//! tenant's faults never perturb another tenant's counters and the
//! whole service stays deterministic at any `host_threads`. An engine
//! failure becomes a typed [`JobStatus::Failed`] — never a service
//! abort — and the [`resilience`](crate::resilience) layer can
//! re-admit it with capped exponential backoff until quarantine
//! ([`JobStatus::Quarantined`]).
//!
//! ## Crash consistency
//!
//! With a journal configured ([`ServeConfig::journal`]), every settled
//! execution is logged through `gts-ckpt`'s atomic store; a daemon
//! killed mid-workload (the injected [`CrashPoint::AtEpoch`] fires
//! right before an epoch bump) resumes by re-running the simulation
//! with settled executions served from the journal — see
//! [`journal`](crate::journal) for the memoization model.
//!
//! ## Determinism
//!
//! Service times are each job's *simulated* elapsed time — the same
//! number the job reports when run solo — so queueing dynamics are pure
//! u64 arithmetic over the script. Host threads only change wall-clock
//! speed: read jobs within an epoch execute speculatively in parallel
//! on the `gts-exec` pool (side-effect-free over the shared store), and
//! each runs in its own [`JobContext`](gts_core::JobContext), keeping
//! its report and counters byte-identical to a solo run.

use crate::journal::{ExecRecord, Header, Journal, JournalConfig, Record};
use crate::resilience::{Resilience, ResilienceConfig};
use crate::workload::{seeded_batch, JobSpec, ALGORITHMS};
use crate::ServeError;
use gts_ckpt::fnv1a;
use gts_core::programs::{
    Bc, Bfs, Cc, Degrees, GtsProgram, KCore, PageRank, RadiusEstimation, Rwr, Sssp,
};
use gts_core::{Engine, JobOptions, MutationSchedule, RunReport};
use gts_exec::ThreadPool;
use gts_faults::{CrashPoint, FaultConfig};
use gts_storage::builder::GraphStore;
use gts_telemetry::{keys, Telemetry};
use std::collections::BTreeMap;

/// Service provisioning and admission-control bounds.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent service slots (GPU lane sets) the service multiplexes.
    pub slots: usize,
    /// Shared waiting-queue capacity; arrivals beyond it get
    /// [`ServeError::QueueFull`].
    pub queue_capacity: usize,
    /// Per-tenant waiting cap; a tenant over it gets
    /// [`ServeError::Rejected`].
    pub tenant_queue_capacity: usize,
    /// Maximum simulated wait between arrival and start; `None` waits
    /// forever, `Some(d)` drops overdue jobs with
    /// [`ServeError::Deadline`].
    pub deadline_ns: Option<u64>,
    /// The service fault template: each `(job, attempt)` execution
    /// derives its own domain from this seed. `None` (default) serves
    /// fault-free.
    pub faults: Option<FaultConfig>,
    /// Retry/backoff, quarantine, circuit-breaker, and shedding knobs;
    /// all default to off.
    pub resilience: ResilienceConfig,
    /// The crash-consistent service journal; `None` (default) keeps no
    /// journal.
    pub journal: Option<JournalConfig>,
    /// Mutation write-ahead log directory: when set, every mutating
    /// job's batch is logged before it applies (the engine's
    /// log-before-apply path over this directory), the journal header
    /// binds the log's epoch range, and a resumed service re-derives
    /// journaled epoch bumps from the log instead of re-generating
    /// them. `None` (default) keeps no WAL.
    pub wal_dir: Option<std::path::PathBuf>,
    /// Injected crash point for crash-consistency testing:
    /// [`CrashPoint::AtEpoch`] kills the daemon before an epoch bump;
    /// with a WAL configured, [`CrashPoint::MidWalAppend`] /
    /// [`CrashPoint::BetweenLogAndApply`] ride into the mutating job's
    /// fault domain and kill it inside the engine's logging path.
    pub crash: Option<CrashPoint>,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            slots: 4,
            queue_capacity: 64,
            tenant_queue_capacity: 16,
            deadline_ns: None,
            faults: None,
            resilience: ResilienceConfig::default(),
            journal: None,
            wal_dir: None,
            crash: None,
        }
    }
}

impl ServeConfig {
    fn validate(&self) -> Result<(), ServeError> {
        for (name, v) in [
            ("slots", self.slots),
            ("queue_capacity", self.queue_capacity),
            ("tenant_queue_capacity", self.tenant_queue_capacity),
        ] {
            if v == 0 {
                return Err(ServeError::Config(format!("{name} must be >= 1")));
            }
        }
        if self.deadline_ns == Some(0) {
            return Err(ServeError::Config("deadline_ns must be >= 1".into()));
        }
        self.resilience.validate()?;
        if let Some(crash) = self.crash {
            let wal_kind = matches!(
                crash,
                CrashPoint::MidWalAppend(_) | CrashPoint::BetweenLogAndApply(_)
            );
            if !wal_kind && !matches!(crash, CrashPoint::AtEpoch(_)) {
                return Err(ServeError::Config(format!(
                    "serve crash point must be at-epoch or a WAL kind, got {crash:?}"
                )));
            }
            if wal_kind && self.wal_dir.is_none() {
                return Err(ServeError::Config(
                    "WAL crash points need wal_dir (there is no log to tear)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// How one scheduled job ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobStatus {
    /// Ran to completion; report and counters are attached.
    Completed,
    /// Never ran: dropped by admission control with this backpressure.
    Dropped(ServeError),
    /// Admitted but the engine failed it and the service-level retry
    /// budget is zero (or the job is mutating, which is never
    /// service-retried). The slot time it would have used is not
    /// charged.
    Failed {
        /// The engine's error rendering.
        error: String,
    },
    /// Poison: the job failed every one of its `retry_max + 1`
    /// attempts, each under a fresh fault domain, and is quarantined.
    Quarantined {
        /// The final attempt's error rendering.
        error: String,
        /// Total execution attempts consumed.
        attempts: u32,
    },
}

/// The per-job record the service returns, in admission order.
#[derive(Debug)]
pub struct JobOutcome {
    /// Position in the admitted (arrival-sorted) workload.
    pub index: usize,
    /// Owning tenant.
    pub tenant: String,
    /// Job class — the algorithm name; latency histograms are keyed
    /// `serve.lat.<class>`.
    pub class: String,
    /// Whether this job mutated topology (all-slots barrier).
    pub mutating: bool,
    /// Scripted arrival, simulated ns.
    pub arrival_ns: u64,
    /// Dispatch time of the final attempt (0 for dropped jobs).
    pub start_ns: u64,
    /// Completion time (0 for dropped jobs).
    pub finish_ns: u64,
    /// Solo simulated elapsed time of the run (0 for dropped jobs).
    pub service_ns: u64,
    /// Execution attempts consumed (0 for jobs dropped before ever
    /// running; service-level retries count each re-admission).
    pub attempts: u32,
    /// FNV-1a fingerprint of the program's final state (0 unless
    /// completed) — lets callers compare results without the payload.
    pub result_fp: u64,
    /// How the job ended.
    pub status: JobStatus,
    /// The job's full counter registry — byte-identical to the same job
    /// run solo (empty for dropped and failed jobs).
    pub counters: BTreeMap<String, u64>,
    /// The job's report (completed jobs only).
    pub report: Option<RunReport>,
}

impl JobOutcome {
    /// Simulated time spent waiting for a slot.
    pub fn wait_ns(&self) -> u64 {
        self.start_ns.saturating_sub(self.arrival_ns)
    }

    /// Arrival-to-completion simulated latency (what the tenant feels;
    /// the `serve.lat.*` histograms record this).
    pub fn latency_ns(&self) -> u64 {
        self.finish_ns.saturating_sub(self.arrival_ns)
    }

    fn dropped(index: usize, spec: &JobSpec, why: ServeError) -> JobOutcome {
        JobOutcome {
            index,
            tenant: spec.tenant.clone(),
            class: spec.algorithm.clone(),
            mutating: spec.mutate.is_some(),
            arrival_ns: spec.at_ns,
            start_ns: 0,
            finish_ns: 0,
            service_ns: 0,
            attempts: 0,
            result_fp: 0,
            status: JobStatus::Dropped(why),
            counters: BTreeMap::new(),
            report: None,
        }
    }
}

/// Everything one `serve` call produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// Per-job records, in admission (arrival-sorted) order.
    pub jobs: Vec<JobOutcome>,
    /// The service-level registry: `serve.*` counters, `serve.lat.*`
    /// latency histograms (plus their derived `.count`/`.p50`/`.p95`/
    /// `.p99` counters), and the per-tenant `tenant.<tag>.cache.*`
    /// rollup aggregated from every completed job.
    pub telemetry: Telemetry,
    /// Simulated completion time of the last finishing job.
    pub makespan_ns: u64,
    /// Jobs that ran to completion.
    pub completed: usize,
    /// Jobs dropped by admission control.
    pub dropped: usize,
    /// Jobs the engine failed terminally (no retry budget).
    pub failed: usize,
    /// Jobs quarantined after exhausting their retry budget.
    pub quarantined: usize,
}

/// The FIFO G/G/c state on the simulated clock. `slots[i]` is the time
/// slot *i* becomes free; `waiting` are dispatched-but-not-yet-started
/// jobs, kept so queue-occupancy checks at later arrivals see them — a
/// job occupies queue space from arrival until its start. Jobs doomed
/// by their deadline are dropped without ever occupying queue space.
struct Sim {
    slots: Vec<u64>,
    waiting: Vec<(u64, String)>,
    queue_capacity: usize,
    tenant_queue_capacity: usize,
    deadline_ns: Option<u64>,
}

impl Sim {
    fn new(cfg: &ServeConfig) -> Sim {
        Sim {
            slots: vec![0; cfg.slots],
            waiting: Vec::new(),
            queue_capacity: cfg.queue_capacity,
            tenant_queue_capacity: cfg.tenant_queue_capacity,
            deadline_ns: cfg.deadline_ns,
        }
    }

    /// Admission decision for `spec` arriving at `arrival` (which is
    /// later than `spec.at_ns` for service-level re-admissions): its
    /// start time, or the typed drop. Processing jobs in arrival order
    /// with `start = max(earliest-free, arrival)` *is* the FIFO
    /// simulation — dispatch order equals arrival order, so decisions
    /// depend only on already-settled jobs.
    fn decide(
        &mut self,
        arrival: u64,
        spec: &JobSpec,
        resil: &Resilience,
    ) -> Result<u64, ServeError> {
        self.waiting.retain(|(until, _)| *until > arrival);
        let slot_free = if spec.mutate.is_some() {
            // Topology rewrite: every lane set must drain first.
            self.slots.iter().copied().max().unwrap_or(0)
        } else {
            self.slots.iter().copied().min().unwrap_or(0)
        };
        let start = slot_free.max(arrival);
        if start == arrival {
            return Ok(start); // a slot is free right now: no queueing
        }
        // An overloaded service refuses before capacity bookkeeping:
        // shedding is a pressure decision, not a queue-full accident.
        if let Some((pressure_pct, watermark_pct)) = resil.shed(
            spec.priority,
            self.waiting.len(),
            self.queue_capacity,
            start - arrival,
            self.deadline_ns,
        ) {
            return Err(ServeError::Shed {
                class: spec.algorithm.clone(),
                pressure_pct,
                watermark_pct,
            });
        }
        let mine = self
            .waiting
            .iter()
            .filter(|(_, t)| *t == spec.tenant)
            .count();
        if mine >= self.tenant_queue_capacity {
            return Err(ServeError::Rejected {
                tenant: spec.tenant.clone(),
                waiting: mine,
                capacity: self.tenant_queue_capacity,
            });
        }
        if self.waiting.len() >= self.queue_capacity {
            return Err(ServeError::QueueFull {
                waiting: self.waiting.len(),
                capacity: self.queue_capacity,
            });
        }
        if let Some(deadline) = self.deadline_ns {
            if start - arrival > deadline {
                // Doomed at decision time: known dead now, so it frees
                // its queue slot immediately instead of crowding out
                // later arrivals until the deadline expires.
                return Err(ServeError::Deadline {
                    waited_ns: start - arrival,
                    deadline_ns: deadline,
                });
            }
        }
        self.waiting.push((start, spec.tenant.clone()));
        Ok(start)
    }

    /// Occupy slot time for a job admitted at `start`.
    fn commit(&mut self, start: u64, service_ns: u64, mutating: bool) {
        let finish = start + service_ns;
        if mutating {
            for s in &mut self.slots {
                *s = finish;
            }
        } else if let Some(s) = self.slots.iter_mut().min_by_key(|s| **s) {
            *s = finish;
        }
    }
}

/// Build the program a spec names. `n` is the store's vertex count.
fn make_program(spec: &JobSpec, n: u64) -> Result<Box<dyn GtsProgram>, ServeError> {
    Ok(match spec.algorithm.as_str() {
        "bfs" => Box::new(Bfs::new(n, spec.source)),
        "pagerank" => Box::new(PageRank::new(n, spec.iterations)),
        "sssp" => Box::new(Sssp::new(n, spec.source)),
        "cc" => Box::new(Cc::new(n)),
        "bc" => Box::new(Bc::new(n, spec.source)),
        "rwr" => Box::new(Rwr::new(n, spec.source, spec.iterations)),
        "degrees" => Box::new(Degrees::new(n)),
        "kcore" => Box::new(KCore::new(n, spec.k)),
        "radius" => Box::new(RadiusEstimation::new(n)),
        other => return Err(ServeError::Workload(format!("unknown algorithm {other:?}"))),
    })
}

fn job_options(spec: &JobSpec) -> JobOptions {
    JobOptions::with_telemetry(Telemetry::new()).tenant(spec.tenant.clone())
}

/// A job attempt awaiting execution: the initial admission is attempt
/// 1 arriving at the scripted time; service-level re-admissions bump
/// `attempt` and arrive after backoff.
#[derive(Debug, Clone)]
struct Pending {
    arrival: u64,
    seq: u32,
    attempt: u32,
}

/// Options for one execution attempt: the job's own registry plus its
/// derived fault domain when the service has a fault template.
fn attempt_options(spec: &JobSpec, cfg: &ServeConfig, p: &Pending) -> JobOptions {
    let mut opts = job_options(spec);
    if let Some(template) = &cfg.faults {
        opts = opts.faults(template.derived(u64::from(p.seq), p.attempt));
    }
    opts
}

fn failed_record(p: &Pending, error: String) -> ExecRecord {
    ExecRecord {
        job: p.seq,
        attempt: p.attempt,
        ok: false,
        error,
        service_ns: 0,
        result_fp: 0,
        epoch_advanced: false,
        counters: BTreeMap::new(),
    }
}

fn completed_record(
    p: &Pending,
    report: &RunReport,
    prog: &dyn GtsProgram,
    opts: &JobOptions,
) -> ExecRecord {
    ExecRecord {
        job: p.seq,
        attempt: p.attempt,
        ok: true,
        error: String::new(),
        service_ns: report.elapsed.as_nanos(),
        result_fp: fnv1a(&prog.save_state()),
        epoch_advanced: false,
        counters: opts.telemetry.counters(),
    }
}

/// Execute one read job solo (its own `JobContext`, its own registry,
/// its own fault domain). Failures are data in the record, never an
/// error: a job fault must not abort the service.
fn run_read(
    engine: &Engine,
    store: &GraphStore,
    spec: &JobSpec,
    p: &Pending,
    cfg: &ServeConfig,
) -> (ExecRecord, Option<RunReport>) {
    let opts = attempt_options(spec, cfg, p);
    let mut prog = match make_program(spec, store.num_vertices()) {
        Ok(prog) => prog,
        Err(e) => return (failed_record(p, e.to_string()), None),
    };
    match engine.run_job(store, &mut *prog, &opts) {
        Ok(report) => {
            let rec = completed_record(p, &report, &*prog, &opts);
            (rec, Some(report))
        }
        Err(e) => (
            failed_record(p, ServeError::Engine(e.to_string()).to_string()),
            None,
        ),
    }
}

/// Execute the mutating job that closes an epoch group: its batch goes
/// through the store's epoch pipeline at the scripted sweep boundary.
/// `epoch_advanced` reflects the store, not the job status — a faulted
/// run may fail *after* its batch applied.
///
/// With [`ServeConfig::wal_dir`] set, the job runs under a derived
/// engine whose config points at the service WAL, so the batch is
/// logged before it applies; a configured WAL crash kind rides into
/// this attempt's fault domain and surfaces as
/// [`ServeError::InjectedCrash`] (carrying the crash's keyed sweep) so
/// the daemon dies instead of settling the job as failed.
fn run_mutating(
    engine: &Engine,
    store: &mut GraphStore,
    spec: &JobSpec,
    p: &Pending,
    cfg: &ServeConfig,
) -> Result<(ExecRecord, Option<RunReport>), ServeError> {
    let before = store.epoch();
    let m = spec.mutate.expect("caller checked spec.mutate");
    let batch = seeded_batch(store, m.inserts, m.deletes, m.seed);
    let schedule = MutationSchedule::new().at(m.at_sweep, batch);
    let mut opts = attempt_options(spec, cfg, p);
    let walled: Engine;
    let engine = match &cfg.wal_dir {
        Some(dir) => {
            let mut ecfg = engine.config().clone();
            ecfg.wal_dir = Some(dir.clone());
            walled = Engine::new(ecfg).map_err(|e| ServeError::Engine(e.to_string()))?;
            &walled
        }
        None => engine,
    };
    let wal_crash = match cfg.crash {
        Some(c @ (CrashPoint::MidWalAppend(_) | CrashPoint::BetweenLogAndApply(_))) => {
            let mut f = opts
                .faults
                .take()
                .or_else(|| cfg.faults.clone())
                .unwrap_or_else(|| FaultConfig::quiet(0));
            f.crash = Some(c);
            opts = opts.faults(f);
            true
        }
        _ => false,
    };
    let (mut rec, report) = match make_program(spec, store.num_vertices()) {
        Ok(mut prog) => match engine.run_job_live(store, &mut *prog, schedule, &opts) {
            Ok(report) => {
                let rec = completed_record(p, &report, &*prog, &opts);
                (rec, Some(report))
            }
            Err(gts_core::EngineError::InjectedCrash { sweep }) if wal_crash => {
                return Err(ServeError::InjectedCrash { epoch: sweep });
            }
            Err(e) => (
                failed_record(p, ServeError::Engine(e.to_string()).to_string()),
                None,
            ),
        },
        Err(e) => (failed_record(p, e.to_string()), None),
    };
    rec.epoch_advanced = store.epoch() > before;
    Ok((rec, report))
}

/// Rebuild a journal-restored completion's report from its memoized
/// counters — [`RunReport::from_telemetry`] reads nothing else, so the
/// rebuilt report equals the one the crashed run held in memory.
fn rebuild_report(store: &GraphStore, spec: &JobSpec, rec: &ExecRecord) -> RunReport {
    let tel = Telemetry::new();
    for (k, v) in &rec.counters {
        tel.set(k, *v);
    }
    let algorithm = make_program(spec, store.num_vertices())
        .map_or_else(|_| spec.algorithm.clone(), |prog| prog.name().to_string());
    RunReport::from_telemetry(&tel, algorithm, "GTS")
}

/// The normalized config rendering the journal header is bound to.
/// Host threads and host-phase measurement are excluded — both are
/// wall-side only, and resuming at a different `--host-threads` is part
/// of the determinism contract. The crash point and journal location
/// are excluded too: the resumed run drops the crash flag by design.
fn config_rendering(engine: &Engine, cfg: &ServeConfig) -> String {
    let mut ecfg = engine.config().clone();
    ecfg.host_threads = 1;
    ecfg.measure_host_phases = false;
    format!(
        "engine={ecfg:?} slots={} queue={} tenant_queue={} deadline={:?} faults={:?} resilience={:?}",
        cfg.slots,
        cfg.queue_capacity,
        cfg.tenant_queue_capacity,
        cfg.deadline_ns,
        cfg.faults,
        cfg.resilience,
    )
}

fn check_workload(workload: &[JobSpec], store: &GraphStore) -> Result<(), ServeError> {
    for spec in workload {
        if !ALGORITHMS.contains(&spec.algorithm.as_str()) {
            return Err(ServeError::Workload(format!(
                "unknown algorithm {:?}",
                spec.algorithm
            )));
        }
        if spec.source >= store.num_vertices() {
            return Err(ServeError::Workload(format!(
                "source {} out of range ({} vertices)",
                spec.source,
                store.num_vertices()
            )));
        }
        if spec.tenant.is_empty() {
            return Err(ServeError::Workload("empty tenant tag".into()));
        }
    }
    Ok(())
}

/// The live service: the pending-attempt pool, the queueing simulation,
/// the resilience policy, and the journal, advanced in deterministic
/// `(arrival, seq, attempt)` order.
struct Service<'a> {
    engine: &'a Engine,
    jobs: &'a [JobSpec],
    cfg: &'a ServeConfig,
    pool: ThreadPool,
    tel: Telemetry,
    sim: Sim,
    resil: Resilience,
    journal: Option<Journal>,
    /// The mutation WAL's records as of service start, for re-deriving
    /// journaled epoch bumps on resume (empty without a WAL).
    wal_records: Vec<gts_storage::WalRecord>,
    pending: Vec<Pending>,
    outcomes: Vec<Option<JobOutcome>>,
    epochs_applied: u32,
}

impl Service<'_> {
    /// Drain the pending pool: repeatedly settle the maximal wave of
    /// read attempts ordered before the next mutating job, then that
    /// mutating job (an all-slots barrier), until nothing is pending.
    /// Settled failures re-enter the pool as backoff-delayed retries.
    fn run(&mut self, store: &mut GraphStore) -> Result<(), ServeError> {
        loop {
            self.pending.sort_by_key(|p| (p.arrival, p.seq, p.attempt));
            let jobs = self.jobs;
            let wave_len = self
                .pending
                .iter()
                .position(|p| jobs[p.seq as usize].mutate.is_some())
                .unwrap_or(self.pending.len());
            if wave_len > 0 {
                let wave: Vec<Pending> = self.pending.drain(..wave_len).collect();
                self.wave(store, &wave)?;
            } else if self.pending.is_empty() {
                return Ok(());
            } else {
                let p = self.pending.remove(0);
                self.mutation(store, &p)?;
            }
        }
    }

    /// One read wave: speculative parallel execution (reads are
    /// side-effect-free, so running ones that admission later drops
    /// wastes only wall time), then settlement in deterministic order.
    /// Journal-memoized attempts skip the engine entirely.
    fn wave(&mut self, store: &GraphStore, wave: &[Pending]) -> Result<(), ServeError> {
        let (engine, jobs, cfg) = (self.engine, self.jobs, self.cfg);
        let hits: Vec<Option<ExecRecord>> = wave
            .iter()
            .map(|p| {
                self.journal
                    .as_ref()
                    .and_then(|j| j.cached(p.seq, p.attempt))
                    .cloned()
            })
            .collect();
        let hits_ref = &hits;
        let live = self.pool.par_map(wave, |i, p| {
            if hits_ref[i].is_some() {
                None
            } else {
                Some(run_read(engine, store, &jobs[p.seq as usize], p, cfg))
            }
        });
        for ((p, hit), live) in wave.iter().zip(hits).zip(live) {
            self.settle_read(store, p, hit, live);
        }
        self.flush()
    }

    fn settle_read(
        &mut self,
        store: &GraphStore,
        p: &Pending,
        hit: Option<ExecRecord>,
        live: Option<(ExecRecord, Option<RunReport>)>,
    ) {
        let jobs = self.jobs;
        let spec = &jobs[p.seq as usize];
        match self.admit(p, spec) {
            Err(why) => self.drop_job(p, spec, why),
            Ok(start) => {
                let (rec, report, cached) = match hit {
                    Some(rec) => (rec, None, true),
                    None => {
                        let (rec, report) = live.expect("speculative execution covered this job");
                        (rec, report, false)
                    }
                };
                self.record_admission(p, start, &rec, cached);
                self.settle_exec(store, p, start, rec, report, cached);
            }
        }
    }

    /// One mutating job: the injected crash point fires *before* the
    /// epoch bump it names (the journal is flushed, then the daemon
    /// "dies"); otherwise admission is decided before execution — a
    /// dropped mutating job must not advance the store epoch — and a
    /// journal-memoized mutation fast-forwards the store by re-applying
    /// its seeded batch directly, without the engine.
    fn mutation(&mut self, store: &mut GraphStore, p: &Pending) -> Result<(), ServeError> {
        let jobs = self.jobs;
        let spec = &jobs[p.seq as usize];
        if let Some(CrashPoint::AtEpoch(k)) = self.cfg.crash {
            if self.epochs_applied == k {
                self.flush()?;
                return Err(ServeError::InjectedCrash { epoch: k });
            }
        }
        match self.admit(p, spec) {
            Err(why) => self.drop_job(p, spec, why),
            Ok(start) => {
                let hit = self
                    .journal
                    .as_ref()
                    .and_then(|j| j.cached(p.seq, p.attempt))
                    .cloned();
                let (rec, report, cached) = match hit {
                    Some(rec) => {
                        if rec.epoch_advanced {
                            // Re-derive the journaled bump from the WAL
                            // when one is kept — the logged bytes, not a
                            // re-generated batch — falling back to the
                            // seeded generator without one.
                            let batch = match self
                                .wal_records
                                .iter()
                                .find(|r| r.pre_epoch == store.epoch())
                            {
                                Some(r) => {
                                    self.tel.add(keys::SERVE_WAL_REPLAYED, 1);
                                    r.batch.clone()
                                }
                                None => {
                                    let m =
                                        spec.mutate.expect("mutation() only sees mutating jobs");
                                    seeded_batch(store, m.inserts, m.deletes, m.seed)
                                }
                            };
                            store.apply_mutations(&batch).map_err(|e| {
                                ServeError::Journal(format!("epoch replay failed: {e}"))
                            })?;
                        }
                        (rec, None, true)
                    }
                    None => {
                        let ran = run_mutating(self.engine, store, spec, p, self.cfg);
                        let (rec, report) = match ran {
                            // The WAL crash kinds die like AtEpoch does:
                            // journal flushed, then the daemon is gone.
                            Err(e @ ServeError::InjectedCrash { .. }) => {
                                self.flush()?;
                                return Err(e);
                            }
                            Err(e) => return Err(e),
                            Ok(x) => x,
                        };
                        (rec, report, false)
                    }
                };
                self.record_admission(p, start, &rec, cached);
                if !cached && rec.epoch_advanced {
                    if let Some(j) = &mut self.journal {
                        j.append(Record::Epoch {
                            job: p.seq,
                            epoch: store.epoch(),
                        });
                    }
                }
                if rec.epoch_advanced {
                    self.epochs_applied += 1;
                }
                self.settle_exec(store, p, start, rec, report, cached);
            }
        }
        self.flush()
    }

    /// Breaker gate, then the queueing decision.
    fn admit(&mut self, p: &Pending, spec: &JobSpec) -> Result<u64, ServeError> {
        self.resil.admission_gate(&spec.tenant, p.arrival)?;
        self.sim.decide(p.arrival, spec, &self.resil)
    }

    fn drop_job(&mut self, p: &Pending, spec: &JobSpec, why: ServeError) {
        let mut out = JobOutcome::dropped(p.seq as usize, spec, why);
        out.attempts = p.attempt - 1;
        self.outcomes[p.seq as usize] = Some(out);
    }

    /// Journal the admission + execution of a live attempt, or count
    /// the memo hit.
    fn record_admission(&mut self, p: &Pending, start: u64, rec: &ExecRecord, cached: bool) {
        if cached {
            self.tel.add(keys::SERVE_RESUME_CACHED, 1);
            return;
        }
        if let Some(j) = &mut self.journal {
            j.append(Record::Admit {
                job: p.seq,
                attempt: p.attempt,
                at_ns: p.arrival,
            });
            j.append(Record::Start {
                job: p.seq,
                attempt: p.attempt,
                start_ns: start,
            });
            j.append(Record::Exec(rec.clone()));
        }
    }

    /// Fold one admitted attempt's execution into the simulation, the
    /// service registry, and either a settled outcome or a re-admission.
    fn settle_exec(
        &mut self,
        store: &GraphStore,
        p: &Pending,
        start: u64,
        rec: ExecRecord,
        report: Option<RunReport>,
        cached: bool,
    ) {
        let jobs = self.jobs;
        let spec = &jobs[p.seq as usize];
        let seq = p.seq as usize;
        self.tel.add("serve.jobs.admitted", 1);
        let mutating = spec.mutate.is_some();
        if rec.ok {
            let mut out = JobOutcome::dropped(seq, spec, ServeError::Config(String::new()));
            out.attempts = p.attempt;
            out.start_ns = start;
            out.service_ns = rec.service_ns;
            out.finish_ns = start + rec.service_ns;
            out.result_fp = rec.result_fp;
            out.report = Some(report.unwrap_or_else(|| rebuild_report(store, spec, &rec)));
            out.counters = rec.counters;
            out.status = JobStatus::Completed;
            self.sim.commit(start, out.service_ns, mutating);
            self.resil.record_success(&spec.tenant);
            self.tel.add("serve.jobs.completed", 1);
            if mutating {
                self.tel.add("serve.epochs", 1);
            }
            if p.attempt > 1 {
                self.tel.add(keys::SERVE_RETRY_RECOVERED, 1);
            }
            let latency = out.latency_ns();
            self.tel
                .observe(format!("serve.lat.{}", out.class), latency);
            self.tel.observe("serve.lat.all", latency);
            for (k, v) in &out.counters {
                if k.starts_with("tenant.") {
                    self.tel.add(k, *v);
                }
            }
            self.outcomes[seq] = Some(out);
            return;
        }
        // The attempt failed: the slot time it would have used is not
        // charged, and the failure feeds the tenant's breaker.
        self.sim.commit(start, 0, mutating);
        self.resil.record_failure(&spec.tenant, start);
        if !mutating && p.attempt <= self.resil.retry_max() {
            self.tel.add(keys::SERVE_RETRY_ATTEMPTS, 1);
            let delay = self.resil.backoff_ns(u64::from(p.seq), p.attempt);
            self.pending.push(Pending {
                arrival: start.saturating_add(delay),
                seq: p.seq,
                attempt: p.attempt + 1,
            });
            return;
        }
        let mut out = JobOutcome::dropped(seq, spec, ServeError::Config(String::new()));
        out.attempts = p.attempt;
        out.start_ns = start;
        out.finish_ns = start;
        if !mutating && self.resil.retry_max() > 0 {
            out.status = JobStatus::Quarantined {
                error: rec.error,
                attempts: p.attempt,
            };
            self.tel.add(keys::SERVE_QUARANTINE_JOBS, 1);
            self.tel
                .add(keys::SERVE_QUARANTINE_ATTEMPTS, u64::from(p.attempt));
            if !cached {
                if let Some(j) = &mut self.journal {
                    j.append(Record::Quarantine {
                        job: p.seq,
                        attempts: p.attempt,
                    });
                }
            }
        } else {
            out.status = JobStatus::Failed { error: rec.error };
            self.tel.add("serve.jobs.failed", 1);
        }
        self.outcomes[seq] = Some(out);
    }

    fn flush(&mut self) -> Result<(), ServeError> {
        if let Some(j) = &mut self.journal {
            j.flush(&self.tel)?;
        }
        Ok(())
    }

    /// Drop accounting, derived counters, and the final outcome.
    fn finish(self, cfg: &ServeConfig) -> ServeOutcome {
        let tel = self.tel;
        let outcomes: Vec<JobOutcome> = self
            .outcomes
            .into_iter()
            .map(|o| o.expect("every job settles before the service returns"))
            .collect();
        for out in &outcomes {
            if let JobStatus::Dropped(why) = &out.status {
                let key = match why {
                    ServeError::QueueFull { .. } => "serve.drop.queue_full",
                    ServeError::Rejected { .. } => "serve.drop.rejected",
                    ServeError::Deadline { .. } => "serve.drop.deadline",
                    ServeError::BreakerOpen { .. } => keys::SERVE_DROP_BREAKER,
                    ServeError::Shed {
                        class,
                        pressure_pct,
                        ..
                    } => {
                        tel.add(keys::SERVE_SHED_TOTAL, 1);
                        tel.add(format!("serve.shed.{class}"), 1);
                        tel.observe("serve.shed.pressure", u64::from(*pressure_pct));
                        "serve.drop.shed"
                    }
                    _ => "serve.drop.other",
                };
                tel.add(key, 1);
            }
        }
        if cfg.resilience.breaker_threshold > 0 {
            tel.set(keys::SERVE_BREAKER_TRIPS, self.resil.trips);
        }
        let makespan_ns = outcomes.iter().map(|o| o.finish_ns).max().unwrap_or(0);
        tel.set("serve.jobs.total", outcomes.len() as u64);
        tel.set("serve.makespan_ns", makespan_ns);
        tel.set("serve.slots", cfg.slots as u64);
        // Derived percentile counters: histograms rendered into the flat
        // registry, so `--counters-out` dumps and CI diffs carry them.
        for (key, s) in tel.histogram_summaries() {
            tel.set(format!("{key}.count"), s.count);
            tel.set(format!("{key}.p50"), s.p50);
            tel.set(format!("{key}.p95"), s.p95);
            tel.set(format!("{key}.p99"), s.p99);
        }
        let count = |f: fn(&JobStatus) -> bool| outcomes.iter().filter(|o| f(&o.status)).count();
        ServeOutcome {
            completed: count(|s| matches!(s, JobStatus::Completed)),
            dropped: count(|s| matches!(s, JobStatus::Dropped(_))),
            failed: count(|s| matches!(s, JobStatus::Failed { .. })),
            quarantined: count(|s| matches!(s, JobStatus::Quarantined { .. })),
            jobs: outcomes,
            telemetry: tel,
            makespan_ns,
        }
    }
}

/// Run `workload` through the service: admit jobs in arrival order
/// against `cfg`'s slots and bounds, execute the admitted ones on
/// `engine` over the shared `store`, and aggregate service-level
/// telemetry. Only errors that make the whole call meaningless (bad
/// config, malformed workload, an unusable journal) — plus the injected
/// crash point — are `Err`; per-job drops, failures, and quarantines
/// are data in the returned [`ServeOutcome`].
pub fn serve(
    engine: &Engine,
    store: &mut GraphStore,
    workload: &[JobSpec],
    cfg: &ServeConfig,
) -> Result<ServeOutcome, ServeError> {
    cfg.validate()?;
    check_workload(workload, store)?;
    let mut jobs = workload.to_vec();
    jobs.sort_by_key(|j| j.at_ns);
    // Open (or create) the mutation WAL first: its base epoch binds the
    // journal header, and its records as of now are what a resume
    // re-derives journaled epoch bumps from. The handle is dropped —
    // mutating jobs reopen the log through the engine's logging path.
    let (wal_fp, wal_records) = match &cfg.wal_dir {
        Some(dir) => {
            let wal = gts_storage::Wal::open(dir, store)
                .map_err(|e| ServeError::Journal(format!("wal: {e}")))?;
            (
                fnv1a(&wal.header().base_epoch.to_le_bytes()),
                wal.records().to_vec(),
            )
        }
        None => (0, Vec::new()),
    };
    let journal = match &cfg.journal {
        Some(jc) => Some(Journal::open(
            jc,
            Header::bind(&jobs, store, &config_rendering(engine, cfg), wal_fp),
        )?),
        None => None,
    };
    let jitter_seed = cfg.faults.as_ref().map_or(0, |f| f.seed);
    let mut svc = Service {
        engine,
        jobs: &jobs,
        cfg,
        pool: ThreadPool::new(engine.config().host_threads),
        tel: Telemetry::new(),
        sim: Sim::new(cfg),
        resil: Resilience::new(cfg.resilience.clone(), jitter_seed),
        journal,
        wal_records,
        pending: jobs
            .iter()
            .enumerate()
            .map(|(seq, spec)| Pending {
                arrival: spec.at_ns,
                seq: seq as u32,
                attempt: 1,
            })
            .collect(),
        outcomes: jobs.iter().map(|_| None).collect(),
        epochs_applied: 0,
    };
    svc.run(store)?;
    Ok(svc.finish(cfg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{parse, synthetic};
    use gts_core::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig};
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn store() -> GraphStore {
        build_graph_store(&rmat(8), PageFormatConfig::small_default()).unwrap()
    }

    fn engine(host_threads: usize) -> Engine {
        Engine::new(
            GtsConfig::builder()
                .host_threads(host_threads)
                .build()
                .unwrap(),
        )
        .unwrap()
    }

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("gts-serve-sched-{}-{tag}-{n}", std::process::id()))
    }

    /// An always-failing fault template: every H2D copy faults and the
    /// engine-level retry budget is zero, so every attempt fails. (The
    /// default in-memory storage never consults read faults; GPU-side
    /// faults fire through each job's own lanes.)
    fn poison() -> FaultConfig {
        FaultConfig {
            copy_fault_ppm: 1_000_000,
            launch_fault_ppm: 0,
            max_retries: 0,
            ..FaultConfig::with_seed(0xDEAD)
        }
    }

    /// A flaky template: a sizeable per-copy/per-launch fault rate with
    /// no engine-level retries, so some derived domains fail their job
    /// and fresh per-attempt domains can recover it.
    fn flaky(seed: u64) -> FaultConfig {
        FaultConfig {
            copy_fault_ppm: 80_000,
            launch_fault_ppm: 80_000,
            max_retries: 0,
            ..FaultConfig::with_seed(seed)
        }
    }

    /// The tentpole contract: a job admitted through the service has the
    /// same report and counters as the same job run solo, epoch by
    /// epoch, and the tenant rollup is its only addition over plain
    /// `Gts::run`.
    #[test]
    fn jobs_are_byte_identical_to_solo_runs() {
        let engine = engine(2);
        let mut st = store();
        let mut solo_st = store();
        let jobs = parse(
            "at=0    tenant=a job=bfs\n\
             at=1000 tenant=b job=pagerank iters=3\n\
             at=2000 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=3000 tenant=a job=cc\n",
        )
        .unwrap();
        let out = serve(&engine, &mut st, &jobs, &ServeConfig::default()).unwrap();
        assert_eq!(out.completed, 4, "{:?}", out.jobs);
        for (job, spec) in out.jobs.iter().zip(&jobs) {
            let mut prog = make_program(spec, solo_st.num_vertices()).unwrap();
            let opts = job_options(spec);
            let report = match spec.mutate {
                Some(m) => {
                    let batch = seeded_batch(&solo_st, m.inserts, m.deletes, m.seed);
                    let schedule = MutationSchedule::new().at(m.at_sweep, batch);
                    engine
                        .run_job_live(&mut solo_st, &mut *prog, schedule, &opts)
                        .unwrap()
                }
                None => engine.run_job(&solo_st, &mut *prog, &opts).unwrap(),
            };
            assert_eq!(job.counters, opts.telemetry.counters(), "job {}", job.index);
            assert_eq!(job.service_ns, report.elapsed.as_nanos());
            assert_eq!(job.attempts, 1);
            assert_eq!(job.result_fp, fnv1a(&prog.save_state()));
        }
        assert_eq!(st.epoch(), solo_st.epoch());
        // Job 0 vs the plain solo path: identical once the tenant rollup
        // (the only serve-mode addition) is set aside.
        let gts = Gts::builder()
            .config(engine.config().clone())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(solo_st.num_vertices(), 0);
        gts.run(&store(), &mut bfs).unwrap();
        let mut tagged = out.jobs[0].counters.clone();
        tagged.retain(|k, _| !k.starts_with("tenant."));
        assert_eq!(tagged, gts.telemetry().counters());
    }

    #[test]
    fn serve_is_host_thread_invariant() {
        let jobs = synthetic(3, 3, 11, true);
        let cfg = ServeConfig {
            slots: 2,
            ..ServeConfig::default()
        };
        let outs: Vec<ServeOutcome> = [1usize, 4]
            .iter()
            .map(|&ht| serve(&engine(ht), &mut store(), &jobs, &cfg).unwrap())
            .collect();
        assert_eq!(
            outs[0].telemetry.counters(),
            outs[1].telemetry.counters(),
            "service registry must not depend on host threads"
        );
        assert_eq!(
            outs[0].telemetry.histograms(),
            outs[1].telemetry.histograms()
        );
        for (a, b) in outs[0].jobs.iter().zip(&outs[1].jobs) {
            assert_eq!(a.counters, b.counters, "job {}", a.index);
            assert_eq!(a.status, b.status);
            assert_eq!((a.start_ns, a.finish_ns), (b.start_ns, b.finish_ns));
        }
    }

    #[test]
    fn admission_control_drops_with_typed_backpressure() {
        let mut st = store();
        // Three near-simultaneous arrivals into one slot with a one-deep
        // queue: the third finds the queue full.
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=1 tenant=b job=bfs\nat=2 tenant=c job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert_eq!(out.jobs[0].status, JobStatus::Completed);
        assert_eq!(out.jobs[1].status, JobStatus::Completed);
        assert!(
            matches!(
                out.jobs[2].status,
                JobStatus::Dropped(ServeError::QueueFull { .. })
            ),
            "{:?}",
            out.jobs[2].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.queue_full"), 1);
        assert_eq!((out.completed, out.dropped), (2, 1));
        // FIFO: the queued job starts exactly when the first finishes.
        assert_eq!(out.jobs[1].start_ns, out.jobs[0].finish_ns);

        // One tenant hogging the queue is rejected before the shared
        // queue fills.
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=1 tenant=a job=bfs\nat=2 tenant=a job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            tenant_queue_capacity: 1,
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                &out.jobs[2].status,
                JobStatus::Dropped(ServeError::Rejected { tenant, .. }) if tenant == "a"
            ),
            "{:?}",
            out.jobs[2].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.rejected"), 1);

        // A job that cannot start within its deadline is dropped.
        let jobs = parse("at=0 tenant=a job=bfs\nat=1 tenant=b job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            deadline_ns: Some(1),
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                out.jobs[1].status,
                JobStatus::Dropped(ServeError::Deadline { waited_ns, deadline_ns: 1 })
                    if waited_ns > 1
            ),
            "{:?}",
            out.jobs[1].status
        );
        assert_eq!(out.telemetry.counter("serve.drop.deadline"), 1);
    }

    /// Regression for the doomed-job queue leak: a job already known
    /// dead (its wait exceeds the deadline) must not occupy queue space
    /// until its deadline expires. Under the old accounting, the third
    /// job here found the one-deep queue full; the correct drop is its
    /// own deadline, and the queue stays available for admissible work.
    #[test]
    fn doomed_jobs_free_their_queue_space_immediately() {
        let mut st = store();
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=1 tenant=b job=bfs\nat=5 tenant=c job=bfs").unwrap();
        let cfg = ServeConfig {
            slots: 1,
            queue_capacity: 1,
            deadline_ns: Some(10),
            ..ServeConfig::default()
        };
        let out = serve(&engine(1), &mut st, &jobs, &cfg).unwrap();
        assert_eq!(out.jobs[0].status, JobStatus::Completed);
        assert!(
            out.jobs[0].finish_ns > 15,
            "bfs must outlast both deadlines"
        );
        for doomed in &out.jobs[1..] {
            assert!(
                matches!(
                    doomed.status,
                    JobStatus::Dropped(ServeError::Deadline { .. })
                ),
                "expected a deadline drop, not queue-full: {:?}",
                doomed.status
            );
        }
        assert_eq!(out.telemetry.counter("serve.drop.deadline"), 2);
        assert_eq!(out.telemetry.counter("serve.drop.queue_full"), 0);
    }

    #[test]
    fn mutation_is_an_all_slots_barrier_and_drops_keep_the_epoch() {
        let mut st = store();
        // Four reads saturate four slots; the mutation must wait for all
        // of them, and the read behind it sees the new epoch.
        let jobs = parse(
            "at=0 tenant=a job=bfs\nat=0 tenant=b job=bfs\n\
             at=0 tenant=c job=pagerank iters=3\nat=0 tenant=d job=cc\n\
             at=1 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=2 tenant=a job=bfs\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 4,
            ..ServeConfig::default()
        };
        let out = serve(&engine(2), &mut st, &jobs, &cfg).unwrap();
        assert_eq!(out.completed, 6, "{:?}", out.jobs);
        let slowest_read = out.jobs[..4].iter().map(|j| j.finish_ns).max().unwrap();
        assert_eq!(out.jobs[4].start_ns, slowest_read, "barrier waits for all");
        assert_eq!(out.jobs[5].start_ns, out.jobs[4].finish_ns);
        assert_eq!(st.epoch(), 1);
        assert_eq!(out.telemetry.counter("serve.epochs"), 1);
        assert_eq!(out.jobs[4].counters["mut.batches"], 1);
        // The post-mutation read really ran against the new epoch: its
        // counters differ from the identical pre-mutation job.
        assert_ne!(out.jobs[0].counters, out.jobs[5].counters);

        // A mutating job dropped by admission must not advance the epoch.
        let mut st = store();
        let jobs = parse(
            "at=0 tenant=a job=pagerank iters=3\n\
             at=1 tenant=m job=bfs mutate-at=1 inserts=16 seed=5\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 1,
            deadline_ns: Some(1),
            ..ServeConfig::default()
        };
        let out = serve(&engine(2), &mut st, &jobs, &cfg).unwrap();
        assert!(
            matches!(
                out.jobs[1].status,
                JobStatus::Dropped(ServeError::Deadline { .. })
            ),
            "{:?}",
            out.jobs[1].status
        );
        assert_eq!(st.epoch(), 0, "dropped mutation must not touch the store");
        assert_eq!(out.telemetry.counter("serve.epochs"), 0);
    }

    #[test]
    fn service_registry_aggregates_tenants_and_latency() {
        let mut st = store();
        let jobs =
            parse("at=0 tenant=a job=bfs\nat=100 tenant=a job=cc\nat=200 tenant=b job=bfs\n")
                .unwrap();
        let out = serve(&engine(2), &mut st, &jobs, &ServeConfig::default()).unwrap();
        assert_eq!(out.completed, 3);
        // Latency histograms: per class and overall, with derived
        // percentile counters in the flat registry.
        let tel = &out.telemetry;
        assert_eq!(tel.counter("serve.lat.all.count"), 3);
        assert_eq!(tel.counter("serve.lat.bfs.count"), 2);
        assert_eq!(tel.counter("serve.lat.cc.count"), 1);
        assert!(tel.counter("serve.lat.all.p50") <= tel.counter("serve.lat.all.p95"));
        assert!(tel.counter("serve.lat.all.p95") <= tel.counter("serve.lat.all.p99"));
        assert_eq!(
            tel.percentile("serve.lat.all", 99),
            Some(tel.counter("serve.lat.all.p99"))
        );
        // Per-tenant rollup equals the sum over that tenant's jobs.
        for tenant in ["a", "b"] {
            let key = format!("tenant.{tenant}.cache.bytes_streamed");
            let per_job: u64 = out
                .jobs
                .iter()
                .filter(|j| j.tenant == tenant)
                .map(|j| j.counters.get(&key).copied().unwrap_or(0))
                .sum();
            assert!(per_job > 0, "expected streamed bytes for {tenant}");
            assert_eq!(tel.counter(&key), per_job);
        }
        assert_eq!(tel.counter("serve.jobs.total"), 3);
        assert_eq!(tel.counter("serve.makespan_ns"), out.makespan_ns);
        assert!(out.makespan_ns > 0);
    }

    /// Job-scoped fault domains: under a service fault template, a
    /// faulted job becomes a typed `Failed` — never a service abort —
    /// while the other tenants' jobs complete byte-identical to solo
    /// runs under the same derived domains.
    #[test]
    fn job_faults_are_isolated_and_never_abort_the_service() {
        let engine = engine(2);
        let mut st = store();
        let jobs = parse(
            "at=0 tenant=a job=bfs\nat=1000 tenant=b job=cc\nat=2000 tenant=c job=degrees\n\
             at=3000 tenant=d job=pagerank iters=3\nat=4000 tenant=e job=sssp\n\
             at=5000 tenant=f job=kcore k=2\n",
        )
        .unwrap();
        let template = FaultConfig {
            copy_fault_ppm: 200_000,
            launch_fault_ppm: 200_000,
            max_retries: 0,
            ..FaultConfig::with_seed(0x5EED)
        };
        let cfg = ServeConfig {
            faults: Some(template.clone()),
            ..ServeConfig::default()
        };
        let out = serve(&engine, &mut st, &jobs, &cfg).unwrap();
        assert!(
            out.failed > 0,
            "expected at least one fault: {:?}",
            out.jobs
        );
        assert!(out.completed > 0, "expected survivors: {:?}", out.jobs);
        for (seq, (job, spec)) in out.jobs.iter().zip(&jobs).enumerate() {
            // Solo replay under the same derived fault domain.
            let mut prog = make_program(spec, st.num_vertices()).unwrap();
            let opts = job_options(spec).faults(template.derived(seq as u64, 1));
            match engine.run_job(&st, &mut *prog, &opts) {
                Ok(_) => {
                    assert_eq!(job.status, JobStatus::Completed, "job {seq}");
                    assert_eq!(job.counters, opts.telemetry.counters(), "job {seq}");
                    assert_eq!(job.result_fp, fnv1a(&prog.save_state()));
                }
                Err(e) => {
                    let error = ServeError::Engine(e.to_string()).to_string();
                    assert_eq!(job.status, JobStatus::Failed { error }, "job {seq}");
                }
            }
        }
        assert_eq!(
            out.telemetry.counter("serve.jobs.failed"),
            out.failed as u64
        );
    }

    /// Retry/backoff and quarantine: an always-failing job burns its
    /// whole budget and is quarantined with typed attempts; a job whose
    /// fresh per-attempt domain eventually succeeds recovers.
    #[test]
    fn retries_backoff_then_recover_or_quarantine() {
        let engine = engine(2);
        // Poison: every attempt of every job fails, so the lone job is
        // quarantined after retry_max + 1 attempts.
        let jobs = parse("at=0 tenant=a job=bfs\n").unwrap();
        let cfg = ServeConfig {
            faults: Some(poison()),
            resilience: ResilienceConfig {
                retry_max: 2,
                backoff_base_ns: 500,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(&engine, &mut store(), &jobs, &cfg).unwrap();
        assert_eq!(out.quarantined, 1);
        assert!(
            matches!(
                &out.jobs[0].status,
                JobStatus::Quarantined { attempts: 3, error } if !error.is_empty()
            ),
            "{:?}",
            out.jobs[0].status
        );
        assert_eq!(out.jobs[0].attempts, 3);
        // Re-admission k starts after capped-exponential backoff.
        assert!(out.jobs[0].start_ns >= 500 + 1000);
        let tel = &out.telemetry;
        assert_eq!(tel.counter(keys::SERVE_RETRY_ATTEMPTS), 2);
        assert_eq!(tel.counter(keys::SERVE_QUARANTINE_JOBS), 1);
        assert_eq!(tel.counter(keys::SERVE_QUARANTINE_ATTEMPTS), 3);
        assert_eq!(tel.counter(keys::SERVE_RETRY_RECOVERED), 0);

        // Recovery: a fault rate that fails some first attempts but not
        // every derived domain lets retried jobs complete.
        let jobs = synthetic(4, 3, 11, false);
        let cfg = ServeConfig {
            faults: Some(flaky(0x5EED)),
            resilience: ResilienceConfig {
                retry_max: 4,
                backoff_base_ns: 500,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(&engine, &mut store(), &jobs, &cfg).unwrap();
        let recovered = out
            .jobs
            .iter()
            .filter(|j| j.status == JobStatus::Completed && j.attempts > 1)
            .count() as u64;
        assert!(recovered > 0, "expected a retry to recover: {:?}", out.jobs);
        assert_eq!(
            out.telemetry.counter(keys::SERVE_RETRY_RECOVERED),
            recovered
        );
        assert_eq!(
            out.failed, 0,
            "retry_max > 0 never leaves a bare Failed read"
        );
    }

    /// The per-tenant circuit breaker: consecutive failures trip it,
    /// the tripped tenant's arrivals shed with `BreakerOpen`, and other
    /// tenants are untouched.
    #[test]
    fn breaker_trips_shed_the_tenant_and_spare_the_rest() {
        let engine = engine(1);
        let jobs = parse(
            "at=0 tenant=bad job=bfs\nat=1 tenant=bad job=bfs\n\
             at=2 tenant=bad job=bfs\nat=3 tenant=good job=bfs\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 4,
            faults: Some(poison()),
            resilience: ResilienceConfig {
                breaker_threshold: 2,
                breaker_cooldown_ns: 1_000_000,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let mut st = store();
        let out = serve(&engine, &mut st, &jobs, &cfg).unwrap();
        assert!(matches!(out.jobs[0].status, JobStatus::Failed { .. }));
        assert!(matches!(out.jobs[1].status, JobStatus::Failed { .. }));
        assert!(
            matches!(
                &out.jobs[2].status,
                JobStatus::Dropped(ServeError::BreakerOpen { tenant, failures: 2, .. })
                    if tenant == "bad"
            ),
            "{:?}",
            out.jobs[2].status
        );
        // "good" fails too (poison template) but its breaker is its own.
        assert!(matches!(out.jobs[3].status, JobStatus::Failed { .. }));
        let tel = &out.telemetry;
        assert_eq!(tel.counter(keys::SERVE_BREAKER_TRIPS), 1);
        assert_eq!(tel.counter(keys::SERVE_DROP_BREAKER), 1);
        assert_eq!((out.failed, out.dropped), (3, 1));
    }

    /// Overload shedding: past the watermark, the lowest-priority
    /// arrivals shed first with a typed `Shed` drop; a high-priority
    /// job rides out the same pressure.
    #[test]
    fn overload_sheds_lowest_priority_first() {
        let engine = engine(1);
        let jobs = parse(
            "at=0 tenant=t0 job=bfs\nat=1 tenant=t1 job=bfs\nat=2 tenant=t2 job=bfs\n\
             at=3 tenant=t3 job=bfs\nat=4 tenant=t4 job=bfs\n\
             at=5 tenant=low job=cc prio=0\nat=6 tenant=high job=cc prio=3\n",
        )
        .unwrap();
        let cfg = ServeConfig {
            slots: 1,
            queue_capacity: 10,
            resilience: ResilienceConfig {
                shed_watermark_pct: Some(40),
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let out = serve(&engine, &mut store(), &jobs, &cfg).unwrap();
        // Arrivals 1-4 queue (occupancy 0-30% at decision time); the
        // prio-0 job sees 40% >= its watermark 40 and sheds; the prio-3
        // job shares that pressure but its watermark is 85.
        assert!(
            matches!(
                &out.jobs[5].status,
                JobStatus::Dropped(ServeError::Shed { class, pressure_pct: 40, watermark_pct: 40 })
                    if class == "cc"
            ),
            "{:?}",
            out.jobs[5].status
        );
        assert_eq!(
            out.jobs[6].status,
            JobStatus::Completed,
            "prio 3 rides it out"
        );
        let tel = &out.telemetry;
        assert_eq!(tel.counter(keys::SERVE_SHED_TOTAL), 1);
        assert_eq!(tel.counter("serve.shed.cc"), 1);
        assert_eq!(tel.counter("serve.drop.shed"), 1);
        assert_eq!(tel.counter("serve.shed.pressure.count"), 1);
        assert_eq!(out.completed, 6);
    }

    /// Crash consistency: a daemon killed at an epoch bump resumes from
    /// its journal, serves settled executions from the memo table, and
    /// lands byte-identical (outcomes, job counters, contract-side
    /// service counters) to an uncrashed run.
    #[test]
    fn killed_daemon_resumes_byte_identical_to_uncrashed() {
        let engine = engine(2);
        let jobs = parse(
            "at=0 tenant=a job=bfs\nat=1000 tenant=b job=pagerank iters=3\n\
             at=2000 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=3000 tenant=a job=cc\n\
             at=4000 tenant=m job=cc mutate-at=1 inserts=8 seed=7\n\
             at=5000 tenant=b job=degrees\n",
        )
        .unwrap();
        let baseline = serve(&engine, &mut store(), &jobs, &ServeConfig::default()).unwrap();

        let dir = tempdir("resume");
        let crash_cfg = ServeConfig {
            journal: Some(JournalConfig::new(&dir)),
            crash: Some(CrashPoint::AtEpoch(1)),
            ..ServeConfig::default()
        };
        let mut crashed_st = store();
        let err = serve(&engine, &mut crashed_st, &jobs, &crash_cfg).unwrap_err();
        assert_eq!(err, ServeError::InjectedCrash { epoch: 1 });
        assert_eq!(crashed_st.epoch(), 1, "first epoch landed before the kill");

        // Restart: fresh store (the daemon reloads its base graph), the
        // same workload, resume from the journal, no crash flag.
        let resume_cfg = ServeConfig {
            journal: Some(JournalConfig {
                dir: dir.clone(),
                resume: true,
            }),
            ..ServeConfig::default()
        };
        let mut resumed_st = store();
        let out = serve(&engine, &mut resumed_st, &jobs, &resume_cfg).unwrap();
        assert!(
            out.telemetry.counter(keys::SERVE_RESUME_CACHED) >= 4,
            "settled executions must come from the journal: {}",
            out.telemetry.counter(keys::SERVE_RESUME_CACHED)
        );
        assert_eq!(resumed_st.epoch(), 2);
        for (a, b) in baseline.jobs.iter().zip(&out.jobs) {
            assert_eq!(a.status, b.status, "job {}", a.index);
            assert_eq!(a.counters, b.counters, "job {}", a.index);
            assert_eq!(
                (a.start_ns, a.finish_ns, a.attempts, a.result_fp),
                (b.start_ns, b.finish_ns, b.attempts, b.result_fp),
                "job {}",
                a.index
            );
        }
        // Contract-side counters match exactly once the wall-side
        // journal/resume keys are set aside.
        let strip = |t: &Telemetry| {
            let mut c = t.counters();
            c.retain(|k, _| !k.starts_with("serve.journal.") && !k.starts_with("serve.resume."));
            c
        };
        assert_eq!(strip(&baseline.telemetry), strip(&out.telemetry));

        // Resuming against a different workload is refused, typed.
        let other = parse("at=0 tenant=z job=bfs\n").unwrap();
        let err = serve(&engine, &mut store(), &other, &resume_cfg).unwrap_err();
        assert!(
            err.to_string().contains("workload fingerprint mismatch"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The workload the WAL tests share: two mutating jobs interleaved
    /// with reads, so a crash at the first epoch leaves a second bump
    /// to re-derive after resume.
    fn wal_workload() -> Vec<JobSpec> {
        parse(
            "at=0 tenant=a job=bfs\n\
             at=1000 tenant=m job=bfs mutate-at=1 inserts=16 deletes=2 seed=5\n\
             at=2000 tenant=a job=cc\n\
             at=3000 tenant=m job=cc mutate-at=1 inserts=8 seed=7\n\
             at=4000 tenant=b job=degrees\n",
        )
        .unwrap()
    }

    /// Service counters with the wall-side journal/resume/WAL keys set
    /// aside — everything else is under the byte-identity contract.
    fn contract_counters(t: &Telemetry) -> std::collections::BTreeMap<String, u64> {
        let mut c = t.counters();
        c.retain(|k, _| {
            !k.starts_with("serve.journal.")
                && !k.starts_with("serve.resume.")
                && !k.starts_with("serve.wal.")
        });
        c
    }

    /// Durability, serve side: a daemon keeping a mutation WAL dies
    /// inside the log-before-apply window — torn frame (`MidWalAppend`)
    /// or sealed-but-unapplied record (`BetweenLogAndApply`) — and the
    /// resumed daemon lands byte-identical to an uncrashed WAL-keeping
    /// run, with no double-applied batch.
    #[test]
    fn wal_crashed_daemon_resumes_byte_identical() {
        let engine = engine(2);
        let jobs = wal_workload();
        for (tag, crash) in [
            ("torn", CrashPoint::MidWalAppend(1)),
            ("sealed", CrashPoint::BetweenLogAndApply(1)),
        ] {
            let base_wal = tempdir(&format!("wal-base-{tag}"));
            let base_cfg = ServeConfig {
                wal_dir: Some(base_wal.clone()),
                ..ServeConfig::default()
            };
            let baseline = serve(&engine, &mut store(), &jobs, &base_cfg).unwrap();

            let dir = tempdir(&format!("wal-jrnl-{tag}"));
            let wal = tempdir(&format!("wal-log-{tag}"));
            let crash_cfg = ServeConfig {
                journal: Some(JournalConfig::new(&dir)),
                wal_dir: Some(wal.clone()),
                crash: Some(crash),
                ..ServeConfig::default()
            };
            let mut crashed_st = store();
            let err = serve(&engine, &mut crashed_st, &jobs, &crash_cfg).unwrap_err();
            assert_eq!(err, ServeError::InjectedCrash { epoch: 1 }, "{tag}");
            assert_eq!(
                crashed_st.epoch(),
                0,
                "{tag}: the kill lands before the apply"
            );

            let resume_cfg = ServeConfig {
                journal: Some(JournalConfig {
                    dir: dir.clone(),
                    resume: true,
                }),
                wal_dir: Some(wal.clone()),
                ..ServeConfig::default()
            };
            let mut resumed_st = store();
            let out = serve(&engine, &mut resumed_st, &jobs, &resume_cfg).unwrap();
            assert_eq!(resumed_st.epoch(), 2, "{tag}");
            for (a, b) in baseline.jobs.iter().zip(&out.jobs) {
                assert_eq!(a.status, b.status, "{tag} job {}", a.index);
                assert_eq!(a.result_fp, b.result_fp, "{tag} job {}", a.index);
                // The sealed-record recovery re-logs the batch as an
                // idempotent zero-byte append, so only the wall-side
                // `wal.*` keys may differ from the uncrashed run.
                let strip = |c: &std::collections::BTreeMap<String, u64>| {
                    let mut c = c.clone();
                    c.retain(|k, _| !k.starts_with("wal."));
                    c
                };
                assert_eq!(
                    strip(&a.counters),
                    strip(&b.counters),
                    "{tag} job {}",
                    a.index
                );
            }
            assert_eq!(
                contract_counters(&baseline.telemetry),
                contract_counters(&out.telemetry),
                "{tag}"
            );
            for d in [&base_wal, &dir, &wal] {
                std::fs::remove_dir_all(d).ok();
            }
        }
    }

    /// A journal-memoized epoch bump is re-derived from the WAL's logged
    /// bytes on resume (`serve.wal.replayed`), not from the seeded
    /// generator, and the replayed store matches the uncrashed one.
    #[test]
    fn cached_epoch_bumps_replay_from_the_wal() {
        let engine = engine(2);
        let jobs = wal_workload();
        let base_wal = tempdir("wal-replay-base");
        let base_cfg = ServeConfig {
            wal_dir: Some(base_wal.clone()),
            ..ServeConfig::default()
        };
        let baseline = serve(&engine, &mut store(), &jobs, &base_cfg).unwrap();

        let dir = tempdir("wal-replay-jrnl");
        let wal = tempdir("wal-replay-log");
        let crash_cfg = ServeConfig {
            journal: Some(JournalConfig::new(&dir)),
            wal_dir: Some(wal.clone()),
            crash: Some(CrashPoint::AtEpoch(1)),
            ..ServeConfig::default()
        };
        let err = serve(&engine, &mut store(), &jobs, &crash_cfg).unwrap_err();
        assert_eq!(err, ServeError::InjectedCrash { epoch: 1 });

        let resume_cfg = ServeConfig {
            journal: Some(JournalConfig {
                dir: dir.clone(),
                resume: true,
            }),
            wal_dir: Some(wal.clone()),
            ..ServeConfig::default()
        };
        let mut resumed_st = store();
        let out = serve(&engine, &mut resumed_st, &jobs, &resume_cfg).unwrap();
        assert_eq!(
            out.telemetry.counter(keys::SERVE_WAL_REPLAYED),
            1,
            "the journaled first bump must come from the log"
        );
        assert_eq!(resumed_st.epoch(), 2);
        assert_eq!(
            contract_counters(&baseline.telemetry),
            contract_counters(&out.telemetry)
        );
        for d in [&base_wal, &dir, &wal] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    /// The journal header binds the WAL: resuming a WAL-keeping daemon
    /// without its log is refused with a typed header mismatch.
    #[test]
    fn resume_without_the_wal_is_refused() {
        let engine = engine(1);
        let jobs = wal_workload();
        let dir = tempdir("wal-bind-jrnl");
        let wal = tempdir("wal-bind-log");
        let crash_cfg = ServeConfig {
            journal: Some(JournalConfig::new(&dir)),
            wal_dir: Some(wal.clone()),
            crash: Some(CrashPoint::AtEpoch(1)),
            ..ServeConfig::default()
        };
        let err = serve(&engine, &mut store(), &jobs, &crash_cfg).unwrap_err();
        assert_eq!(err, ServeError::InjectedCrash { epoch: 1 });

        let resume_cfg = ServeConfig {
            journal: Some(JournalConfig {
                dir: dir.clone(),
                resume: true,
            }),
            ..ServeConfig::default()
        };
        let err = serve(&engine, &mut store(), &jobs, &resume_cfg).unwrap_err();
        assert!(
            err.to_string().contains("wal"),
            "dropping the WAL must be a typed header mismatch: {err}"
        );
        for d in [&dir, &wal] {
            std::fs::remove_dir_all(d).ok();
        }
    }

    /// WAL crash points without a WAL directory are a config error —
    /// there is no log to tear.
    #[test]
    fn wal_crash_points_need_a_wal_dir() {
        let cfg = ServeConfig {
            crash: Some(CrashPoint::MidWalAppend(1)),
            ..ServeConfig::default()
        };
        let err = serve(&engine(1), &mut store(), &wal_workload(), &cfg).unwrap_err();
        assert!(matches!(err, ServeError::Config(_)), "{err}");
    }

    /// The whole resilience layer is host-thread invariant: same fault
    /// seed, same retries, same quarantines, same shed decisions at 1
    /// and 4 host threads.
    #[test]
    fn resilience_is_host_thread_invariant() {
        let jobs = synthetic(4, 3, 11, true);
        let cfg = ServeConfig {
            slots: 2,
            faults: Some(flaky(0x5EED)),
            resilience: ResilienceConfig {
                retry_max: 2,
                backoff_base_ns: 500,
                breaker_threshold: 3,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        let outs: Vec<ServeOutcome> = [1usize, 4]
            .iter()
            .map(|&ht| serve(&engine(ht), &mut store(), &jobs, &cfg).unwrap())
            .collect();
        assert_eq!(outs[0].telemetry.counters(), outs[1].telemetry.counters());
        for (a, b) in outs[0].jobs.iter().zip(&outs[1].jobs) {
            assert_eq!(a.status, b.status, "job {}", a.index);
            assert_eq!(a.counters, b.counters, "job {}", a.index);
            assert_eq!(
                (a.start_ns, a.finish_ns, a.attempts, a.result_fp),
                (b.start_ns, b.finish_ns, b.attempts, b.result_fp)
            );
        }
        assert_eq!(
            (outs[0].completed, outs[0].failed, outs[0].quarantined),
            (outs[1].completed, outs[1].failed, outs[1].quarantined)
        );
    }

    #[test]
    fn invalid_config_and_workload_are_typed_errors() {
        let mut st = store();
        let bad_cfg = ServeConfig {
            slots: 0,
            ..ServeConfig::default()
        };
        assert!(matches!(
            serve(&engine(1), &mut st, &[], &bad_cfg),
            Err(ServeError::Config(_))
        ));
        let bad_cfg = ServeConfig {
            crash: Some(CrashPoint::AtSweep(1)),
            ..ServeConfig::default()
        };
        assert!(matches!(
            serve(&engine(1), &mut st, &[], &bad_cfg),
            Err(ServeError::Config(_))
        ));
        let bad_cfg = ServeConfig {
            resilience: ResilienceConfig {
                backoff_base_ns: 0,
                ..ResilienceConfig::default()
            },
            ..ServeConfig::default()
        };
        assert!(matches!(
            serve(&engine(1), &mut st, &[], &bad_cfg),
            Err(ServeError::Config(_))
        ));
        let mut spec = JobSpec::new(0, "a", "bfs");
        spec.source = u64::MAX;
        assert!(matches!(
            serve(&engine(1), &mut st, &[spec], &ServeConfig::default()),
            Err(ServeError::Workload(_))
        ));
        let spec = JobSpec::new(0, "a", "frobnicate");
        assert!(matches!(
            serve(&engine(1), &mut st, &[spec], &ServeConfig::default()),
            Err(ServeError::Workload(_))
        ));
    }
}
