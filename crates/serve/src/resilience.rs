//! Service-level fault policy: retry/backoff, quarantine, the
//! per-tenant circuit breaker, and load-aware overload shedding.
//!
//! Everything here is pure u64 arithmetic over the simulated clock plus
//! splitmix-derived jitter — no wall clock, no shared RNG — so every
//! decision is a function of `(workload, service seed)` alone and the
//! whole service stays host-thread invariant.
//!
//! ## Retry → quarantine
//!
//! A read job whose engine run fails (its fault domain exhausted the
//! engine-level retry budget) is re-admitted up to `retry_max` times.
//! Re-admission `k` (1-based) arrives `backoff_base_ns · 2^(k-1)` after
//! the failure, capped at [`BACKOFF_CAP_DOUBLINGS`] doublings and
//! jittered from the job's fault domain, and each attempt draws a fresh
//! per-`(job, attempt)` fault domain — retrying under the *same* seeded
//! schedule would fail forever. A job that fails `retry_max + 1` total
//! attempts is quarantined as poison ([`crate::JobStatus::Quarantined`]);
//! with `retry_max = 0` (the default) a failure is final
//! ([`crate::JobStatus::Failed`]) and nothing is re-admitted. Mutating
//! jobs are never service-retried: their failure may land after the
//! epoch boundary, and re-running would double-apply the batch.
//!
//! ## Circuit breaker
//!
//! `breaker_threshold` consecutive failures by one tenant trip that
//! tenant's breaker: until `breaker_cooldown_ns` elapses on the
//! simulated clock, the tenant's arrivals are dropped with
//! [`crate::ServeError::BreakerOpen`] instead of occupying queue space.
//! Any success (or an elapsed cool-down) closes it and resets the count.
//!
//! ## Overload shedding
//!
//! With a shed watermark configured, admission computes a service
//! *pressure* — the max of queue occupancy (percent of
//! `queue_capacity`) and projected deadline consumption (percent of
//! `deadline_ns` the job would spend waiting) — and sheds arrivals
//! whose priority-scaled watermark the pressure crosses, lowest
//! priority first. Shed jobs are data ([`crate::ServeError::Shed`]
//! inside a `Dropped` status), not errors.

use crate::ServeError;
use std::collections::BTreeMap;

/// Doublings after which exponential backoff stops growing
/// (`backoff_base_ns << 6` = 64× base).
pub const BACKOFF_CAP_DOUBLINGS: u32 = 6;

/// The service-level resilience knobs, all defaulting to *off* so a
/// plain serve run behaves exactly as before this layer existed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResilienceConfig {
    /// Service-level re-admissions of a failed read job. 0 (default)
    /// makes the first failure final.
    pub retry_max: u32,
    /// Base of the capped exponential backoff between a failure and its
    /// re-admission, simulated ns.
    pub backoff_base_ns: u64,
    /// Consecutive per-tenant failures that trip the circuit breaker;
    /// 0 (default) disables the breaker.
    pub breaker_threshold: u32,
    /// How long a tripped breaker sheds the tenant's arrivals,
    /// simulated ns.
    pub breaker_cooldown_ns: u64,
    /// Load-aware shedding watermark, percent; `None` (default)
    /// disables shedding.
    pub shed_watermark_pct: Option<u32>,
}

impl Default for ResilienceConfig {
    fn default() -> ResilienceConfig {
        ResilienceConfig {
            retry_max: 0,
            backoff_base_ns: 1_000_000,
            breaker_threshold: 0,
            breaker_cooldown_ns: 8_000_000,
            shed_watermark_pct: None,
        }
    }
}

impl ResilienceConfig {
    pub(crate) fn validate(&self) -> Result<(), ServeError> {
        if self.backoff_base_ns == 0 {
            return Err(ServeError::Config("backoff_base_ns must be >= 1".into()));
        }
        if self.breaker_threshold > 0 && self.breaker_cooldown_ns == 0 {
            return Err(ServeError::Config(
                "breaker_cooldown_ns must be >= 1".into(),
            ));
        }
        if let Some(pct) = self.shed_watermark_pct {
            if pct > 100 {
                return Err(ServeError::Config(format!(
                    "shed_watermark_pct {pct} must be <= 100"
                )));
            }
        }
        Ok(())
    }
}

/// One tenant's breaker: the consecutive-failure count and, when
/// tripped, the simulated instant it closes.
#[derive(Debug, Default, Clone)]
struct Breaker {
    consecutive: u32,
    open_until: Option<u64>,
}

/// The live policy state the scheduler threads through settlement, in
/// strict admission order — which is what keeps it deterministic.
#[derive(Debug)]
pub(crate) struct Resilience {
    cfg: ResilienceConfig,
    jitter_seed: u64,
    breakers: BTreeMap<String, Breaker>,
    /// Breaker trips, drained into telemetry by the scheduler.
    pub(crate) trips: u64,
}

impl Resilience {
    pub(crate) fn new(cfg: ResilienceConfig, jitter_seed: u64) -> Resilience {
        Resilience {
            cfg,
            jitter_seed,
            breakers: BTreeMap::new(),
            trips: 0,
        }
    }

    pub(crate) fn retry_max(&self) -> u32 {
        self.cfg.retry_max
    }

    /// The simulated delay before re-admission `attempt` (1-based count
    /// of service-level retries so far): capped exponential in the
    /// attempt, plus sub-base jitter drawn purely from
    /// `(jitter seed, job, attempt)`.
    pub(crate) fn backoff_ns(&self, job: u64, attempt: u32) -> u64 {
        let base = self.cfg.backoff_base_ns;
        let exp = base << attempt.saturating_sub(1).min(BACKOFF_CAP_DOUBLINGS);
        let jitter = gts_faults::domain_seed(self.jitter_seed, job, u64::from(attempt)) % base;
        exp.saturating_add(jitter)
    }

    /// Gate an arrival on its tenant's breaker: `Err(BreakerOpen)` while
    /// tripped and inside the cool-down; closes (and resets the count)
    /// once the cool-down has elapsed.
    pub(crate) fn admission_gate(&mut self, tenant: &str, now: u64) -> Result<(), ServeError> {
        let Some(b) = self.breakers.get_mut(tenant) else {
            return Ok(());
        };
        match b.open_until {
            Some(until) if now < until => Err(ServeError::BreakerOpen {
                tenant: tenant.to_string(),
                failures: b.consecutive,
                until_ns: until,
            }),
            Some(_) => {
                *b = Breaker::default();
                Ok(())
            }
            None => Ok(()),
        }
    }

    /// Record a failed attempt by `tenant` at simulated time `now`,
    /// tripping the breaker at the configured threshold.
    pub(crate) fn record_failure(&mut self, tenant: &str, now: u64) {
        if self.cfg.breaker_threshold == 0 {
            return;
        }
        let b = self.breakers.entry(tenant.to_string()).or_default();
        b.consecutive += 1;
        if b.consecutive >= self.cfg.breaker_threshold && b.open_until.is_none() {
            b.open_until = Some(now + self.cfg.breaker_cooldown_ns);
            self.trips += 1;
        }
    }

    /// Record a success: any completion closes the tenant's breaker
    /// bookkeeping entirely.
    pub(crate) fn record_success(&mut self, tenant: &str) {
        self.breakers.remove(tenant);
    }

    /// Load-aware shedding decision for an arrival that would have to
    /// queue: `Some((pressure, watermark))` when the job must shed.
    /// `pressure` is the max of queue occupancy and projected deadline
    /// consumption (both percent); the watermark scales with the job's
    /// priority so the lowest classes shed first.
    pub(crate) fn shed(
        &self,
        prio: u32,
        waiting: usize,
        queue_capacity: usize,
        projected_wait_ns: u64,
        deadline_ns: Option<u64>,
    ) -> Option<(u32, u32)> {
        let base = self.cfg.shed_watermark_pct?;
        let depth_pct = (waiting * 100 / queue_capacity.max(1)) as u32;
        let wait_pct = deadline_ns
            .map(|d| (projected_wait_ns.saturating_mul(100) / d.max(1)).min(100) as u32)
            .unwrap_or(0);
        let pressure = depth_pct.max(wait_pct);
        // prio 0 sheds at the base watermark; each higher priority gets
        // a quarter of the remaining headroom, so prio 3 sheds only at
        // near-total pressure.
        let watermark = base + prio.min(3) * (100 - base) / 4;
        (pressure >= watermark.max(1)).then_some((pressure, watermark))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(cfg: ResilienceConfig) -> Resilience {
        Resilience::new(cfg, 0xB0FF)
    }

    #[test]
    fn backoff_is_capped_exponential_with_seeded_jitter() {
        let r = policy(ResilienceConfig {
            retry_max: 8,
            backoff_base_ns: 1000,
            ..ResilienceConfig::default()
        });
        // Deterministic, growing, jitter strictly below the base.
        for attempt in 1..=8u32 {
            let d = r.backoff_ns(7, attempt);
            assert_eq!(d, r.backoff_ns(7, attempt));
            let exp = 1000u64 << attempt.saturating_sub(1).min(BACKOFF_CAP_DOUBLINGS);
            assert!(d >= exp && d < exp + 1000, "attempt {attempt}: {d}");
        }
        // Capped: attempts 7 and 8 share the exponential part.
        assert_eq!(r.backoff_ns(7, 7) / 1000, r.backoff_ns(7, 8) / 1000);
        // Jitter differs across jobs and attempts.
        assert_ne!(r.backoff_ns(1, 1), r.backoff_ns(2, 1));
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_and_cools_down() {
        let mut r = policy(ResilienceConfig {
            breaker_threshold: 2,
            breaker_cooldown_ns: 100,
            ..ResilienceConfig::default()
        });
        assert!(r.admission_gate("a", 0).is_ok());
        r.record_failure("a", 10);
        assert!(r.admission_gate("a", 11).is_ok(), "one failure is not K");
        r.record_failure("a", 20);
        assert_eq!(r.trips, 1);
        let err = r.admission_gate("a", 50).unwrap_err();
        assert!(
            matches!(&err, ServeError::BreakerOpen { tenant, failures: 2, until_ns: 120 }
                if tenant == "a"),
            "{err}"
        );
        // Another tenant is unaffected; the cool-down closes it.
        assert!(r.admission_gate("b", 50).is_ok());
        assert!(r.admission_gate("a", 120).is_ok());
        assert!(r.admission_gate("a", 121).is_ok(), "count reset on close");
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let mut r = policy(ResilienceConfig {
            breaker_threshold: 2,
            ..ResilienceConfig::default()
        });
        r.record_failure("a", 0);
        r.record_success("a");
        r.record_failure("a", 1);
        assert_eq!(r.trips, 0, "non-consecutive failures never trip");
    }

    #[test]
    fn shedding_orders_by_priority_and_watches_both_pressures() {
        let r = policy(ResilienceConfig {
            shed_watermark_pct: Some(40),
            ..ResilienceConfig::default()
        });
        // Queue 50% full: prio 0 sheds (watermark 40), prio 1 (55) not.
        assert_eq!(r.shed(0, 5, 10, 0, None), Some((50, 40)));
        assert_eq!(r.shed(1, 5, 10, 0, None), None);
        // Projected deadline consumption alone also sheds.
        assert_eq!(r.shed(0, 0, 10, 90, Some(100)), Some((90, 40)));
        // prio 3 holds its slot until near-total pressure (watermark 85).
        assert_eq!(r.shed(3, 8, 10, 0, None), None);
        assert_eq!(r.shed(3, 9, 10, 0, None), Some((90, 85)));
        // No watermark, no shedding.
        let off = policy(ResilienceConfig::default());
        assert_eq!(off.shed(0, 10, 10, 100, Some(1)), None);
    }

    #[test]
    fn config_validation_is_typed() {
        assert!(ResilienceConfig::default().validate().is_ok());
        let bad = ResilienceConfig {
            backoff_base_ns: 0,
            ..ResilienceConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ResilienceConfig {
            shed_watermark_pct: Some(101),
            ..ResilienceConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
        let bad = ResilienceConfig {
            breaker_threshold: 1,
            breaker_cooldown_ns: 0,
            ..ResilienceConfig::default()
        };
        assert!(matches!(bad.validate(), Err(ServeError::Config(_))));
    }
}
