//! The crash-consistent service journal: `JRNL1` records over
//! `gts-ckpt`'s atomic snapshot store.
//!
//! After every scheduler step (a speculative read wave or one mutating
//! job), the service encodes its full record log — admissions, starts,
//! execution results, quarantines, epoch bumps — into one snapshot
//! section and writes it through [`CkptStore`]'s tmp → fsync → rename
//! path, so a kill at any instant leaves either the previous or the new
//! journal intact, never a torn one.
//!
//! ## Resume model
//!
//! The scheduler is a pure function of `(workload, service seed)`, so a
//! resumed daemon does not reconstruct queue state from the journal — it
//! *re-runs the whole simulation* and uses the journal as a memo table:
//! every `(job, attempt)` execution whose [`ExecRecord`] was journaled
//! is served from the record instead of touching the engine (settled
//! jobs are never re-run; a journaled mutation re-applies its seeded
//! batch directly so the store fast-forwards through the same epochs),
//! while in-flight work — attempts with no record — executes fresh,
//! deterministically reproducing what the crashed run would have done.
//! The header binds the journal to its workload, store, and normalized
//! config (host threads excluded — resuming at a different
//! `--host-threads` is part of the determinism contract), with typed
//! [`ServeError::Journal`] mismatches.

use crate::workload::{render, JobSpec};
use crate::ServeError;
use gts_ckpt::{fnv1a, ByteReader, ByteWriter, CkptStore, Snapshot};
use gts_storage::GraphStore;
use gts_telemetry::{keys, Telemetry};
use std::collections::BTreeMap;
use std::path::PathBuf;

/// The record-format tag written at the head of every journal section.
pub const JRNL_MAGIC: &str = "JRNL1";
/// Snapshot payload schema version for journal snapshots. Version 2
/// added the mutation-WAL binding (`wal_fp`) to the header.
const JRNL_VERSION: u32 = 2;
/// The single snapshot section holding the encoded journal.
const SECTION: &str = "journal";

/// Where the service journal lives and whether this run resumes from it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalConfig {
    /// Directory for the journal's snapshot store.
    pub dir: PathBuf,
    /// Resume from the newest intact journal instead of starting empty.
    pub resume: bool,
}

impl JournalConfig {
    /// A journal at `dir`, starting fresh.
    pub fn new(dir: impl Into<PathBuf>) -> JournalConfig {
        JournalConfig {
            dir: dir.into(),
            resume: false,
        }
    }
}

/// The memoized result of one `(job, attempt)` engine execution — the
/// payload a resumed service replays instead of re-running the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct ExecRecord {
    /// Position in the arrival-sorted workload.
    pub job: u32,
    /// 1-based execution attempt.
    pub attempt: u32,
    /// Whether the engine run completed.
    pub ok: bool,
    /// The engine's error rendering when `!ok` (empty otherwise).
    pub error: String,
    /// Simulated service time of the run (0 when `!ok`).
    pub service_ns: u64,
    /// FNV-1a fingerprint of the program's final state (0 when `!ok`).
    pub result_fp: u64,
    /// Whether this execution advanced the store epoch (mutating jobs).
    pub epoch_advanced: bool,
    /// The job's full counter registry.
    pub counters: BTreeMap<String, u64>,
}

/// One journal entry, appended in settle order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Record {
    /// Admission granted: the job will occupy slot time.
    Admit {
        /// Workload position.
        job: u32,
        /// 1-based attempt.
        attempt: u32,
        /// Simulated arrival of this attempt.
        at_ns: u64,
    },
    /// Execution dispatched at `start_ns` on the simulated clock.
    Start {
        /// Workload position.
        job: u32,
        /// 1-based attempt.
        attempt: u32,
        /// Simulated dispatch instant.
        start_ns: u64,
    },
    /// The attempt's engine execution settled (completion or failure).
    Exec(ExecRecord),
    /// The job exhausted its service-level retries and was quarantined.
    Quarantine {
        /// Workload position.
        job: u32,
        /// Total attempts consumed.
        attempts: u32,
    },
    /// A mutating job advanced the store epoch.
    Epoch {
        /// Workload position of the mutating job.
        job: u32,
        /// The store epoch after the bump.
        epoch: u64,
    },
}

fn jerr(e: impl std::fmt::Display) -> ServeError {
    ServeError::Journal(e.to_string())
}

/// The identity a journal is bound to. `cfg_fp` must be computed from a
/// *normalized* config rendering (host threads and crash point
/// excluded) so a journal written at `--host-threads 4` resumes at 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Header {
    pub workload_fp: u64,
    pub store_fp: u64,
    pub cfg_fp: u64,
    /// Binding to the mutation WAL's epoch range: a fingerprint of the
    /// log's base epoch when the service keeps a WAL, 0 otherwise. A
    /// resume pointed at a WAL whose chain starts elsewhere — or at no
    /// WAL when the journal was written with one — is refused, typed.
    pub wal_fp: u64,
}

impl Header {
    pub(crate) fn bind(
        jobs: &[JobSpec],
        store: &GraphStore,
        cfg_rendering: &str,
        wal_fp: u64,
    ) -> Header {
        Header {
            workload_fp: fnv1a(render(jobs).as_bytes()),
            store_fp: store_binding_fp(store),
            cfg_fp: fnv1a(cfg_rendering.as_bytes()),
            wal_fp,
        }
    }
}

/// The store-shape fingerprint a journal header binds: vertices, edges,
/// pages, and epoch of the store the service opened over. Public so an
/// offline verifier (`gts fsck`) can recompute it from a loaded store
/// and cross-check [`JournalInfo::store_fp`].
pub fn store_binding_fp(store: &GraphStore) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(store.num_vertices());
    w.put_u64(store.num_edges());
    w.put_u64(store.num_pages());
    w.put_u64(store.epoch());
    fnv1a(&w.into_bytes())
}

/// One journal's decoded identity and shape — the non-mutating view
/// [`inspect_journal`] hands an offline verifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalInfo {
    /// FNV-1a of the canonical workload rendering.
    pub workload_fp: u64,
    /// FNV-1a of the base store's shape ([`store_binding_fp`]).
    pub store_fp: u64,
    /// FNV-1a of the normalized engine/service config rendering.
    pub cfg_fp: u64,
    /// Binding to the mutation WAL's base epoch (0 when none was kept).
    pub wal_fp: u64,
    /// Total records in the newest intact journal.
    pub records: usize,
    /// Post-bump store epochs recorded by mutating jobs, in log order.
    pub epochs: Vec<u64>,
    /// Newer manifest entries skipped as torn or unreadable on the way
    /// to the newest intact journal.
    pub skipped: Vec<String>,
}

/// Load and decode the newest intact journal in `dir` without a service
/// to bind against — the `gts fsck` entry point. Typed
/// [`ServeError::Journal`] when no journal decodes at all.
pub fn inspect_journal(dir: impl Into<PathBuf>) -> Result<JournalInfo, ServeError> {
    let ck = CkptStore::open(dir).map_err(jerr)?;
    let (_seq, snap, skipped) = ck.load_latest_with_skipped().map_err(jerr)?;
    snap.require_version(JRNL_VERSION).map_err(jerr)?;
    let (header, records) = decode(snap.section(SECTION).map_err(jerr)?)?;
    let epochs = records
        .iter()
        .filter_map(|r| match r {
            Record::Epoch { epoch, .. } => Some(*epoch),
            _ => None,
        })
        .collect();
    Ok(JournalInfo {
        workload_fp: header.workload_fp,
        store_fp: header.store_fp,
        cfg_fp: header.cfg_fp,
        wal_fp: header.wal_fp,
        records: records.len(),
        epochs,
        skipped,
    })
}

fn encode(header: &Header, records: &[Record]) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_str(JRNL_MAGIC);
    w.put_u64(header.workload_fp);
    w.put_u64(header.store_fp);
    w.put_u64(header.cfg_fp);
    w.put_u64(header.wal_fp);
    w.put_u32(records.len() as u32);
    for r in records {
        match r {
            Record::Admit {
                job,
                attempt,
                at_ns,
            } => {
                w.put_u8(1);
                w.put_u32(*job);
                w.put_u32(*attempt);
                w.put_u64(*at_ns);
            }
            Record::Start {
                job,
                attempt,
                start_ns,
            } => {
                w.put_u8(2);
                w.put_u32(*job);
                w.put_u32(*attempt);
                w.put_u64(*start_ns);
            }
            Record::Exec(e) => {
                w.put_u8(3);
                w.put_u32(e.job);
                w.put_u32(e.attempt);
                w.put_bool(e.ok);
                w.put_str(&e.error);
                w.put_u64(e.service_ns);
                w.put_u64(e.result_fp);
                w.put_bool(e.epoch_advanced);
                w.put_u32(e.counters.len() as u32);
                for (k, v) in &e.counters {
                    w.put_str(k);
                    w.put_u64(*v);
                }
            }
            Record::Quarantine { job, attempts } => {
                w.put_u8(4);
                w.put_u32(*job);
                w.put_u32(*attempts);
            }
            Record::Epoch { job, epoch } => {
                w.put_u8(5);
                w.put_u32(*job);
                w.put_u64(*epoch);
            }
        }
    }
    w.into_bytes()
}

fn decode(bytes: &[u8]) -> Result<(Header, Vec<Record>), ServeError> {
    let mut r = ByteReader::new(bytes);
    let magic = r.take_str("journal magic").map_err(jerr)?;
    if magic != JRNL_MAGIC {
        return Err(ServeError::Journal(format!(
            "bad magic {magic:?}, expected {JRNL_MAGIC:?}"
        )));
    }
    let header = Header {
        workload_fp: r.take_u64("workload fingerprint").map_err(jerr)?,
        store_fp: r.take_u64("store fingerprint").map_err(jerr)?,
        cfg_fp: r.take_u64("config fingerprint").map_err(jerr)?,
        wal_fp: r.take_u64("wal fingerprint").map_err(jerr)?,
    };
    let n = r.take_u32("record count").map_err(jerr)?;
    let mut records = Vec::with_capacity((n as usize).min(bytes.len()));
    for _ in 0..n {
        let rec = match r.take_u8("record tag").map_err(jerr)? {
            1 => Record::Admit {
                job: r.take_u32("admit job").map_err(jerr)?,
                attempt: r.take_u32("admit attempt").map_err(jerr)?,
                at_ns: r.take_u64("admit at").map_err(jerr)?,
            },
            2 => Record::Start {
                job: r.take_u32("start job").map_err(jerr)?,
                attempt: r.take_u32("start attempt").map_err(jerr)?,
                start_ns: r.take_u64("start ns").map_err(jerr)?,
            },
            3 => {
                let job = r.take_u32("exec job").map_err(jerr)?;
                let attempt = r.take_u32("exec attempt").map_err(jerr)?;
                let ok = r.take_bool("exec ok").map_err(jerr)?;
                let error = r.take_str("exec error").map_err(jerr)?;
                let service_ns = r.take_u64("exec service").map_err(jerr)?;
                let result_fp = r.take_u64("exec result fp").map_err(jerr)?;
                let epoch_advanced = r.take_bool("exec epoch flag").map_err(jerr)?;
                let k = r.take_u32("exec counter count").map_err(jerr)?;
                let mut counters = BTreeMap::new();
                for _ in 0..k {
                    let key = r.take_str("exec counter key").map_err(jerr)?;
                    let v = r.take_u64("exec counter value").map_err(jerr)?;
                    counters.insert(key, v);
                }
                Record::Exec(ExecRecord {
                    job,
                    attempt,
                    ok,
                    error,
                    service_ns,
                    result_fp,
                    epoch_advanced,
                    counters,
                })
            }
            4 => Record::Quarantine {
                job: r.take_u32("quarantine job").map_err(jerr)?,
                attempts: r.take_u32("quarantine attempts").map_err(jerr)?,
            },
            5 => Record::Epoch {
                job: r.take_u32("epoch job").map_err(jerr)?,
                epoch: r.take_u64("epoch value").map_err(jerr)?,
            },
            tag => return Err(ServeError::Journal(format!("unknown record tag {tag}"))),
        };
        records.push(rec);
    }
    r.finish().map_err(jerr)?;
    Ok((header, records))
}

/// The live journal: the record log, the memo table of settled
/// executions, and the snapshot store the log flushes through.
#[derive(Debug)]
pub(crate) struct Journal {
    ck: CkptStore,
    header: Header,
    records: Vec<Record>,
    cached: BTreeMap<(u32, u32), ExecRecord>,
    seq: u64,
}

impl Journal {
    /// Open (and on `cfg.resume` load + verify) the journal at
    /// `cfg.dir`. A resume with no intact journal, or one bound to a
    /// different workload/store/config, is a typed error.
    pub(crate) fn open(cfg: &JournalConfig, header: Header) -> Result<Journal, ServeError> {
        let ck = CkptStore::open(&cfg.dir).map_err(jerr)?;
        let mut j = Journal {
            ck,
            header,
            records: Vec::new(),
            cached: BTreeMap::new(),
            seq: 0,
        };
        if cfg.resume {
            let (seq, snap) = j.ck.load_latest().map_err(jerr)?;
            snap.require_version(JRNL_VERSION).map_err(jerr)?;
            let (found, records) = decode(snap.section(SECTION).map_err(jerr)?)?;
            for (what, found, want) in [
                ("workload", found.workload_fp, header.workload_fp),
                ("store", found.store_fp, header.store_fp),
                ("config", found.cfg_fp, header.cfg_fp),
                ("wal", found.wal_fp, header.wal_fp),
            ] {
                if found != want {
                    return Err(ServeError::Journal(format!(
                        "{what} fingerprint mismatch: journal {found:#x}, this run {want:#x}"
                    )));
                }
            }
            for r in &records {
                if let Record::Exec(e) = r {
                    j.cached.insert((e.job, e.attempt), e.clone());
                }
            }
            j.records = records;
            j.seq = seq + 1;
        }
        Ok(j)
    }

    /// The memoized execution of `(job, attempt)`, when it settled
    /// before the crash.
    pub(crate) fn cached(&self, job: u32, attempt: u32) -> Option<&ExecRecord> {
        self.cached.get(&(job, attempt))
    }

    /// Append one record (live settles only — memo hits are already in
    /// the log from the crashed run).
    pub(crate) fn append(&mut self, r: Record) {
        if let Record::Exec(e) = &r {
            self.cached.insert((e.job, e.attempt), e.clone());
        }
        self.records.push(r);
    }

    /// Flush the full log as one atomic snapshot and account the I/O
    /// under the wall-side `serve.journal.*` keys.
    pub(crate) fn flush(&mut self, tel: &Telemetry) -> Result<(), ServeError> {
        let mut snap = Snapshot::new(JRNL_VERSION);
        snap.insert(SECTION, encode(&self.header, &self.records));
        let bytes = self.ck.write(self.seq, &snap).map_err(jerr)?;
        self.seq += 1;
        tel.add(keys::SERVE_JOURNAL_FLUSHES, 1);
        tel.set(keys::SERVE_JOURNAL_RECORDS, self.records.len() as u64);
        tel.add("serve.journal.bytes", bytes);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};

    fn tempdir(tag: &str) -> PathBuf {
        static N: AtomicU32 = AtomicU32::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!(
            "gts-serve-journal-{}-{tag}-{n}",
            std::process::id()
        ))
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Admit {
                job: 0,
                attempt: 1,
                at_ns: 10,
            },
            Record::Start {
                job: 0,
                attempt: 1,
                start_ns: 10,
            },
            Record::Exec(ExecRecord {
                job: 0,
                attempt: 1,
                ok: false,
                error: "gpu0: H2D copy failed after 5 attempts".into(),
                service_ns: 0,
                result_fp: 0,
                epoch_advanced: false,
                counters: BTreeMap::new(),
            }),
            Record::Exec(ExecRecord {
                job: 1,
                attempt: 2,
                ok: true,
                error: String::new(),
                service_ns: 1234,
                result_fp: 0xFEED,
                epoch_advanced: true,
                counters: BTreeMap::from([("run.sweeps".to_string(), 3u64)]),
            }),
            Record::Quarantine {
                job: 0,
                attempts: 3,
            },
            Record::Epoch { job: 1, epoch: 1 },
        ]
    }

    #[test]
    fn records_round_trip_through_the_codec() {
        let header = Header {
            workload_fp: 1,
            store_fp: 2,
            cfg_fp: 3,
            wal_fp: 4,
        };
        let records = sample_records();
        let (h, rs) = decode(&encode(&header, &records)).unwrap();
        assert_eq!(h, header);
        assert_eq!(rs, records);
    }

    #[test]
    fn truncated_or_mislabeled_bytes_are_typed_errors() {
        let header = Header {
            workload_fp: 1,
            store_fp: 2,
            cfg_fp: 3,
            wal_fp: 4,
        };
        let bytes = encode(&header, &sample_records());
        let err = decode(&bytes[..bytes.len() - 3]).unwrap_err();
        assert!(matches!(err, ServeError::Journal(_)), "{err}");
        let err = decode(&encode_bad_magic()).unwrap_err();
        assert!(err.to_string().contains("bad magic"), "{err}");
    }

    fn encode_bad_magic() -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_str("NOPE!");
        w.into_bytes()
    }

    #[test]
    fn flush_load_resume_verifies_the_binding() {
        let dir = tempdir("bind");
        let header = Header {
            workload_fp: 11,
            store_fp: 22,
            cfg_fp: 33,
            wal_fp: 44,
        };
        let tel = Telemetry::new();
        let mut j = Journal::open(&JournalConfig::new(&dir), header).unwrap();
        for r in sample_records() {
            j.append(r);
        }
        j.flush(&tel).unwrap();
        assert_eq!(tel.counter(keys::SERVE_JOURNAL_FLUSHES), 1);
        assert_eq!(tel.counter(keys::SERVE_JOURNAL_RECORDS), 6);

        // Resume with the same binding: the memo table holds both execs.
        let resume = JournalConfig {
            dir: dir.clone(),
            resume: true,
        };
        let j2 = Journal::open(&resume, header).unwrap();
        assert!(!j2.cached(0, 1).unwrap().ok);
        assert_eq!(j2.cached(1, 2).unwrap().service_ns, 1234);
        assert_eq!(j2.cached(9, 1), None);

        // A different workload fingerprint is refused, typed.
        let other = Header {
            workload_fp: 99,
            ..header
        };
        let err = Journal::open(&resume, other).unwrap_err();
        assert!(
            err.to_string().contains("workload fingerprint mismatch"),
            "{err}"
        );
        // Resuming an empty directory is refused, not silently fresh.
        let empty = JournalConfig {
            dir: tempdir("empty"),
            resume: true,
        };
        assert!(matches!(
            Journal::open(&empty, header),
            Err(ServeError::Journal(_))
        ));
        std::fs::remove_dir_all(&dir).ok();
    }
}
