#![warn(missing_docs)]
#![warn(clippy::too_many_lines)]

//! # gts-serve — the GTS engine as a long-lived multi-tenant service
//!
//! The paper's engine answers one query and exits; a deployment keeps the
//! slotted-page store resident and admits a *stream* of jobs from many
//! tenants. This crate is that serving layer over [`gts_core::Engine`]:
//!
//! * [`workload`] — deterministic scripted workloads: a line format of
//!   arrival sim-times × job specs (`at=… tenant=… job=…`), a parser,
//!   a seeded synthetic generator, and the seeded mutation-batch
//!   generator shared with the CLI's `--mutate-*` flags.
//! * [`scheduler`] — the service itself: a FIFO queueing simulation on
//!   the *simulated* clock that multiplexes a fixed number of service
//!   slots (GPU lane sets + their share of storage bandwidth) across
//!   tenants, with admission control and typed backpressure
//!   ([`ServeError::QueueFull`] / [`ServeError::Rejected`] /
//!   [`ServeError::Deadline`]). Edge-mutating jobs serialise through the
//!   store's epoch pipeline as an all-slots barrier.
//!
//! ## The determinism contract, extended to serving
//!
//! Each admitted job runs in its own [`gts_core::JobContext`] (own lanes,
//! page caches, fault domains, counter registry), so its report and
//! counters are **byte-identical to the same job run solo** — at any
//! `host_threads` value, at any slot count, regardless of what the other
//! tenants are doing. Host threads only change wall-clock speed: read
//! jobs are executed speculatively in parallel on the `gts-exec` pool
//! (they are side-effect-free over a shared store), while the queueing
//! dynamics — start times, drops, latency percentiles — are pure
//! sim-time arithmetic. The property tests and the CI `serve-smoke` job
//! diff exactly this.
//!
//! ## Quick start
//!
//! ```
//! use gts_core::{Engine, GtsConfig};
//! use gts_graph::generate::rmat;
//! use gts_serve::scheduler::{serve, ServeConfig};
//! use gts_serve::workload;
//! use gts_storage::{build_graph_store, PageFormatConfig};
//!
//! let mut store = build_graph_store(&rmat(8), PageFormatConfig::small_default()).unwrap();
//! let engine = Engine::new(GtsConfig::default()).unwrap();
//! let jobs = workload::parse("at=0 tenant=a job=bfs\nat=1000 tenant=b job=cc").unwrap();
//! let outcome = serve(&engine, &mut store, &jobs, &ServeConfig::default()).unwrap();
//! assert_eq!(outcome.completed, 2);
//! assert_eq!(outcome.telemetry.counter("serve.lat.all.count"), 2);
//! ```

pub mod scheduler;
pub mod workload;

pub use scheduler::{serve, JobOutcome, JobStatus, ServeConfig, ServeOutcome};
pub use workload::{parse, synthetic, JobSpec, MutateSpec};

/// Why the service refused or abandoned a job (or could not start at
/// all). The first three variants are the typed backpressure surfaced
/// per job in [`JobOutcome`]: scripts and tenants can tell "the service
/// is saturated" ([`ServeError::QueueFull`]) from "you are over your
/// share" ([`ServeError::Rejected`]) from "it waited too long"
/// ([`ServeError::Deadline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shared waiting queue was at capacity when the job arrived.
    QueueFull {
        /// Jobs waiting at the arrival instant.
        waiting: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The tenant already had its full share of waiting jobs.
    Rejected {
        /// The over-quota tenant.
        tenant: String,
        /// That tenant's waiting jobs at the arrival instant.
        waiting: usize,
        /// The configured per-tenant queue capacity.
        capacity: usize,
    },
    /// The job could not start within its deadline; it was dropped at
    /// dispatch time instead of running uselessly late.
    Deadline {
        /// Simulated wait it would have needed.
        waited_ns: u64,
        /// The configured admission deadline.
        deadline_ns: u64,
    },
    /// The service configuration itself is invalid.
    Config(String),
    /// The workload script is malformed or names impossible work.
    Workload(String),
    /// The engine rejected the configuration or a run failed.
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { waiting, capacity } => {
                write!(f, "queue full: {waiting} waiting >= capacity {capacity}")
            }
            ServeError::Rejected {
                tenant,
                waiting,
                capacity,
            } => write!(
                f,
                "tenant {tenant:?} rejected: {waiting} waiting >= per-tenant capacity {capacity}"
            ),
            ServeError::Deadline {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline exceeded: would wait {waited_ns} ns > deadline {deadline_ns} ns"
            ),
            ServeError::Config(m) => write!(f, "serve config: {m}"),
            ServeError::Workload(m) => write!(f, "workload: {m}"),
            ServeError::Engine(m) => write!(f, "engine: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
