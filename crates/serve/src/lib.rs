#![warn(missing_docs)]
#![warn(clippy::too_many_lines)]

//! # gts-serve — the GTS engine as a long-lived multi-tenant service
//!
//! The paper's engine answers one query and exits; a deployment keeps the
//! slotted-page store resident and admits a *stream* of jobs from many
//! tenants. This crate is that serving layer over [`gts_core::Engine`]:
//!
//! * [`workload`] — deterministic scripted workloads: a line format of
//!   arrival sim-times × job specs (`at=… tenant=… job=…`), a parser,
//!   a seeded synthetic generator, and the seeded mutation-batch
//!   generator shared with the CLI's `--mutate-*` flags.
//! * [`scheduler`] — the service itself: a FIFO queueing simulation on
//!   the *simulated* clock that multiplexes a fixed number of service
//!   slots (GPU lane sets + their share of storage bandwidth) across
//!   tenants, with admission control and typed backpressure
//!   ([`ServeError::QueueFull`] / [`ServeError::Rejected`] /
//!   [`ServeError::Deadline`]). Edge-mutating jobs serialise through the
//!   store's epoch pipeline as an all-slots barrier.
//! * [`resilience`] — the service-level fault policy: per-job fault
//!   domains derived from one service seed, capped exponential backoff
//!   retry with quarantine ([`JobStatus::Quarantined`]), a per-tenant
//!   circuit breaker ([`ServeError::BreakerOpen`]), and load-aware
//!   overload shedding ([`ServeError::Shed`]).
//! * [`journal`] — the crash-consistent service journal (`JRNL1`
//!   records over `gts-ckpt`'s atomic snapshot store): a killed daemon
//!   resumes without re-running settled jobs, byte-identical to an
//!   uncrashed run.
//!
//! ## The determinism contract, extended to serving
//!
//! Each admitted job runs in its own [`gts_core::JobContext`] (own lanes,
//! page caches, fault domains, counter registry), so its report and
//! counters are **byte-identical to the same job run solo** — at any
//! `host_threads` value, at any slot count, regardless of what the other
//! tenants are doing. Host threads only change wall-clock speed: read
//! jobs are executed speculatively in parallel on the `gts-exec` pool
//! (they are side-effect-free over a shared store), while the queueing
//! dynamics — start times, drops, latency percentiles — are pure
//! sim-time arithmetic. The property tests and the CI `serve-smoke` job
//! diff exactly this.
//!
//! ## Quick start
//!
//! ```
//! use gts_core::{Engine, GtsConfig};
//! use gts_graph::generate::rmat;
//! use gts_serve::scheduler::{serve, ServeConfig};
//! use gts_serve::workload;
//! use gts_storage::{build_graph_store, PageFormatConfig};
//!
//! let mut store = build_graph_store(&rmat(8), PageFormatConfig::small_default()).unwrap();
//! let engine = Engine::new(GtsConfig::default()).unwrap();
//! let jobs = workload::parse("at=0 tenant=a job=bfs\nat=1000 tenant=b job=cc").unwrap();
//! let outcome = serve(&engine, &mut store, &jobs, &ServeConfig::default()).unwrap();
//! assert_eq!(outcome.completed, 2);
//! assert_eq!(outcome.telemetry.counter("serve.lat.all.count"), 2);
//! ```

pub mod journal;
pub mod resilience;
pub mod scheduler;
pub mod workload;

pub use journal::{inspect_journal, store_binding_fp, JournalConfig, JournalInfo};
pub use resilience::ResilienceConfig;
pub use scheduler::{serve, JobOutcome, JobStatus, ServeConfig, ServeOutcome};
pub use workload::{parse, synthetic, JobSpec, MutateSpec, WorkloadError};

/// Why the service refused or abandoned a job (or could not start at
/// all). The first three variants are the typed backpressure surfaced
/// per job in [`JobOutcome`]: scripts and tenants can tell "the service
/// is saturated" ([`ServeError::QueueFull`]) from "you are over your
/// share" ([`ServeError::Rejected`]) from "it waited too long"
/// ([`ServeError::Deadline`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The shared waiting queue was at capacity when the job arrived.
    QueueFull {
        /// Jobs waiting at the arrival instant.
        waiting: usize,
        /// The configured queue capacity.
        capacity: usize,
    },
    /// The tenant already had its full share of waiting jobs.
    Rejected {
        /// The over-quota tenant.
        tenant: String,
        /// That tenant's waiting jobs at the arrival instant.
        waiting: usize,
        /// The configured per-tenant queue capacity.
        capacity: usize,
    },
    /// The job could not start within its deadline; it was dropped at
    /// dispatch time instead of running uselessly late.
    Deadline {
        /// Simulated wait it would have needed.
        waited_ns: u64,
        /// The configured admission deadline.
        deadline_ns: u64,
    },
    /// The tenant's circuit breaker was open when the job arrived: the
    /// tenant accumulated `breaker_threshold` consecutive failures and
    /// its arrivals are shed until the cool-down elapses.
    BreakerOpen {
        /// The tenant whose breaker tripped.
        tenant: String,
        /// Consecutive failures that tripped it.
        failures: u32,
        /// Simulated instant the breaker closes again.
        until_ns: u64,
    },
    /// Load-aware admission shed the job: service pressure crossed the
    /// job's priority-scaled watermark, so the lowest classes go first.
    Shed {
        /// The shed job's class (algorithm name).
        class: String,
        /// Effective pressure at arrival, percent (max of queue
        /// occupancy and projected deadline consumption).
        pressure_pct: u32,
        /// The watermark this job's priority had to stay under.
        watermark_pct: u32,
    },
    /// The injected serve-mode crash point fired
    /// ([`CrashPoint::AtEpoch`](gts_faults::CrashPoint)): the daemon
    /// "died" right before applying this epoch bump, after flushing its
    /// journal, so `--resume-serve` must reproduce the uncrashed run.
    InjectedCrash {
        /// The 0-based epoch bump the service was about to apply.
        epoch: u32,
    },
    /// The service journal is unusable: the directory cannot be opened,
    /// a record is malformed, or the journal belongs to a different
    /// workload/config/store than the one being resumed.
    Journal(String),
    /// The service configuration itself is invalid.
    Config(String),
    /// The workload script is malformed or names impossible work.
    Workload(String),
    /// The engine rejected the configuration or a run failed.
    Engine(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::QueueFull { waiting, capacity } => {
                write!(f, "queue full: {waiting} waiting >= capacity {capacity}")
            }
            ServeError::Rejected {
                tenant,
                waiting,
                capacity,
            } => write!(
                f,
                "tenant {tenant:?} rejected: {waiting} waiting >= per-tenant capacity {capacity}"
            ),
            ServeError::Deadline {
                waited_ns,
                deadline_ns,
            } => write!(
                f,
                "deadline exceeded: would wait {waited_ns} ns > deadline {deadline_ns} ns"
            ),
            ServeError::BreakerOpen {
                tenant,
                failures,
                until_ns,
            } => write!(
                f,
                "tenant {tenant:?} breaker open after {failures} consecutive failures (closes at {until_ns} ns)"
            ),
            ServeError::Shed {
                class,
                pressure_pct,
                watermark_pct,
            } => write!(
                f,
                "shed {class} job: pressure {pressure_pct}% over watermark {watermark_pct}%"
            ),
            ServeError::InjectedCrash { epoch } => {
                write!(f, "injected crash before epoch bump {epoch}")
            }
            ServeError::Journal(m) => write!(f, "serve journal: {m}"),
            ServeError::Config(m) => write!(f, "serve config: {m}"),
            ServeError::Workload(m) => write!(f, "workload: {m}"),
            ServeError::Engine(m) => write!(f, "engine: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}
