//! K-core decomposition — one of the traversal-family algorithms the
//! paper lists in Sec. 3.3 ("neighborhood, induced subgraph, egonet,
//! K-core, and cross-edges").
//!
//! The k-core of a graph is the maximal subgraph in which every vertex
//! has (undirected) degree ≥ k. The streamed formulation is round-based
//! peeling: every sweep recomputes each alive vertex's degree *among
//! alive vertices* (counting both directions of every edge, which only
//! needs out-adjacency pages: an edge `v→w` contributes to both `v` and
//! `w`), then kills vertices below k. The fixpoint is exactly the k-core;
//! rounds-based peeling reaches it in at most `#removed` sweeps and
//! usually far fewer.

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;

/// K-core vertex program. Each sweep counts alive-degrees over the
/// streamed topology; peeling happens at the sweep barrier (a trivial
/// WA-only pass).
pub struct KCore {
    k: u32,
    alive: Vec<bool>,
    degree: Vec<u32>,
}

impl KCore {
    /// Decompose `num_vertices` for core number `k`.
    pub fn new(num_vertices: u64, k: u32) -> Self {
        KCore {
            k,
            alive: vec![true; num_vertices as usize],
            degree: vec![0; num_vertices as usize],
        }
    }

    /// Which vertices belong to the k-core.
    pub fn in_core(&self) -> &[bool] {
        &self.alive
    }

    /// Number of vertices in the k-core.
    pub fn core_size(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }
}

impl GtsProgram for KCore {
    fn kind(&self) -> AlgorithmKind {
        // One 4-byte degree vector + flags: SSSP's WA class.
        AlgorithmKind::Sssp
    }

    fn name(&self) -> &'static str {
        "KCore"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, _kind, rids| {
            scratch.degrees.push(len);
            if !self.alive[vid as usize] {
                return;
            }
            work.active_vertices += 1;
            for rid in rids {
                work.active_edges += 1;
                let adj = ctx.rvt.translate(rid) as usize;
                if !self.alive[adj] {
                    continue;
                }
                // The edge contributes to both endpoints' degrees.
                self.degree[vid as usize] += 1;
                self.degree[adj] += 1;
                work.atomic_ops += 2;
            }
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work.updated = true;
        work
    }

    fn end_sweep(&mut self, _sweep: u32, _frontier_empty: bool, _any_update: bool) -> SweepControl {
        // Degrees are complete for this round: peel below-k vertices.
        let mut removed = false;
        for v in 0..self.alive.len() {
            if self.alive[v] && self.degree[v] < self.k {
                self.alive[v] = false;
                removed = true;
            }
        }
        if !removed {
            return SweepControl::Done;
        }
        self.degree.fill(0);
        SweepControl::Continue
    }

    fn save_state(&self) -> Vec<u8> {
        // Boundary invariant: `end_sweep` just zero-filled `degree`, so
        // only the alive flags carry state (degree saved for robustness).
        let mut w = ByteWriter::new();
        state::put_bools(&mut w, &self.alive);
        state::put_u32s(&mut w, &self.degree);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_bools(&mut r, "kcore.alive", &mut self.alive)?;
        state::load_u32s(&mut r, "kcore.degree", &mut self.degree)?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_graph::{Csr, EdgeList};
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    /// Sequential reference: classic peeling on the undirected multigraph.
    fn reference_kcore(g: &Csr, k: u32) -> Vec<bool> {
        let n = g.num_vertices() as usize;
        let mut alive = vec![true; n];
        loop {
            let mut degree = vec![0u32; n];
            for (s, d) in g.edges() {
                if alive[s as usize] && alive[d as usize] {
                    degree[s as usize] += 1;
                    degree[d as usize] += 1;
                }
            }
            let mut removed = false;
            for v in 0..n {
                if alive[v] && degree[v] < k {
                    alive[v] = false;
                    removed = true;
                }
            }
            if !removed {
                return alive;
            }
        }
    }

    fn run(graph: &EdgeList, k: u32) -> Vec<bool> {
        let store = build_graph_store(
            graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut kc = KCore::new(store.num_vertices(), k);
        Gts::new(GtsConfig::default()).run(&store, &mut kc).unwrap();
        kc.in_core().to_vec()
    }

    #[test]
    fn matches_reference_on_rmat() {
        let graph = rmat(9);
        let csr = Csr::from_edge_list(&graph);
        for k in [2, 4, 8, 16, 40] {
            assert_eq!(run(&graph, k), reference_kcore(&csr, k), "k = {k}");
        }
    }

    #[test]
    fn triangle_survives_2core_and_pendant_does_not() {
        // Triangle 0-1-2 plus a pendant 3 attached to 0.
        let graph = EdgeList::new(4, vec![(0, 1), (1, 2), (2, 0), (0, 3)]);
        let core = run(&graph, 2);
        assert_eq!(core, vec![true, true, true, false]);
    }

    #[test]
    fn cores_are_nested() {
        let graph = rmat(9);
        let c2 = run(&graph, 2);
        let c8 = run(&graph, 8);
        for v in 0..graph.num_vertices as usize {
            assert!(!c8[v] || c2[v], "8-core ⊆ 2-core violated at {v}");
        }
        let s2 = c2.iter().filter(|&&b| b).count();
        let s8 = c8.iter().filter(|&&b| b).count();
        assert!(s8 < s2, "higher k strictly shrinks the core on RMAT");
    }

    #[test]
    fn k_zero_keeps_everything() {
        let graph = rmat(7);
        let core = run(&graph, 0);
        assert!(core.iter().all(|&a| a));
    }
}
