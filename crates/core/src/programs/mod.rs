//! Vertex programs: the user-level side of the GTS framework.
//!
//! A [`GtsProgram`] supplies what the paper calls the user-defined GPU
//! kernels `K_SP` and `K_LP` (Algorithm 1 takes both because Small and
//! Large pages have slightly different structure), plus the WA/RA layout
//! the engine must place in device memory.
//!
//! ## Execution semantics of the kernels
//!
//! On real hardware each kernel runs on thousands of GPU threads with
//! atomic updates (`atomicAdd`, compare-and-swap on LV — Appendix B). All
//! of those updates are commutative and idempotent-per-claim, so applying
//! them sequentially on the host produces bit-identical WA state; the
//! parallel-hardware *cost* is accounted separately through
//! [`PageWork::lane_slots`] / [`PageWork::atomic_ops`] feeding the
//! warp-level duration model in `gts-gpu`. This functional/timed split is
//! the core of the simulation substitution (DESIGN.md §1).

mod bc;
mod bfs;
mod cc;
mod degrees;
mod kcore;
mod pagerank;
mod radius;
mod rwr;
mod sssp;

pub use bc::Bc;
pub use bfs::Bfs;
pub use cc::Cc;
pub use degrees::Degrees;
pub use kcore::KCore;
pub use pagerank::PageRank;
pub use radius::RadiusEstimation;
pub use rwr::Rwr;
pub use sssp::Sssp;

use crate::attrs::AlgorithmKind;
use gts_ckpt::CkptError;
use gts_gpu::timer::KernelClass;
use gts_gpu::warp::MicroTechnique;
use gts_storage::builder::GraphStore;
use gts_storage::page::PageView;
use gts_storage::rvt::Rvt;
use gts_storage::{MutationOutcome, PageKind, RecordId};

/// Everything a kernel sees when invoked on one streamed page.
pub struct PageCtx<'a> {
    /// Decoded view of the page in SPBuf/LPBuf.
    pub view: PageView<'a>,
    /// The global page ID (Algorithm 1's `j`).
    pub pid: u64,
    /// The RVT translation table (Appendix A).
    pub rvt: &'a Rvt,
    /// Micro-level parallel technique in effect (Sec. 6.2).
    pub technique: MicroTechnique,
    /// Current sweep: the traversal level for BFS-like programs, the
    /// iteration number for sweep programs.
    pub sweep: u32,
    /// For Large Pages: the vertex's *total* degree across all its chunks
    /// (the `v.ADJLIST_SZ` of Appendix B's K_PR_LP). Zero for Small Pages.
    pub lp_total_degree: u64,
}

/// Reusable per-engine scratch buffers so kernels stay allocation-free on
/// the hot path.
#[derive(Default)]
pub struct KernelScratch {
    /// Out-degrees of the page's *active* vertices, fed to the warp model.
    pub degrees: Vec<u32>,
    /// Page IDs marked for the next level (the local `nextPIDSet_GPU`);
    /// the engine drains this after each kernel, so the buffer is reused
    /// across pages without reallocating.
    pub next_pids: Vec<u64>,
}

impl KernelScratch {
    /// Clear both buffers, keeping capacity.
    pub fn reset(&mut self) {
        self.degrees.clear();
        self.next_pids.clear();
    }
}

/// What one kernel invocation did, for timing and frontier bookkeeping.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PageWork {
    /// Warp lane-slots consumed (drives simulated kernel duration).
    pub lane_slots: u64,
    /// Atomic device-memory updates performed.
    pub atomic_ops: u64,
    /// Vertices that did work in this page.
    pub active_vertices: u64,
    /// Edges traversed.
    pub active_edges: u64,
    /// Whether any WA entry changed.
    pub updated: bool,
}

/// How the framework iterates a program (Sec. 3.3's two algorithm types).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// BFS-like: level-by-level, streaming only `nextPIDSet` pages.
    Traversal,
    /// PageRank-like: every sweep streams the entire topology once.
    Sweep,
}

/// Program's verdict at the end of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SweepControl {
    /// Algorithm converged / finished.
    Done,
    /// Run another sweep (next frontier for traversal, all pages for sweep
    /// programs).
    Continue,
    /// Run another sweep over exactly these pages (used by BC's backward
    /// phase, which replays the forward levels in reverse).
    ContinueWith(Vec<u64>),
}

/// A graph algorithm expressed against the GTS streaming framework.
pub trait GtsProgram {
    /// Which WA/RA layout class this program uses (drives device-memory
    /// accounting via [`AlgorithmKind`]).
    fn kind(&self) -> AlgorithmKind;

    /// Human-readable algorithm name for reports. Defaults to the layout
    /// class's name; programs that merely *reuse* another algorithm's
    /// layout (RWR, degree distribution, ...) override it.
    fn name(&self) -> &'static str {
        self.kind().name()
    }

    /// Device-resident (WA) bytes per vertex; defaults to the layout
    /// class's.
    fn wa_bytes_per_vertex(&self) -> u64 {
        self.kind().wa_bytes_per_vertex()
    }

    /// Streamed read-only (RA) bytes per vertex; defaults to the layout
    /// class's. Programs with their own streamed vector (e.g. radius
    /// estimation's previous-sweep sketches) override it.
    fn ra_bytes_per_vertex(&self) -> u64 {
        self.kind().ra_bytes_per_vertex()
    }

    /// Kernel cost class (traversal kernels are memory-bound, PageRank-like
    /// kernels compute-bound — Table 1's premise).
    fn class(&self) -> KernelClass;

    /// Iteration style.
    fn mode(&self) -> ExecMode;

    /// For traversal programs: the vertex whose page seeds `nextPIDSet`
    /// (Algorithm 1 line 5).
    fn start_vertex(&self) -> Option<u64>;

    /// The kernel: process one streamed page (K_SP or K_LP depending on
    /// `ctx.view.kind()`), updating WA state and reporting work done.
    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork;

    /// End-of-sweep callback (Algorithm 1 line 31's loop condition).
    /// `frontier_empty` is whether any page was marked for the next level;
    /// `any_update` whether any kernel changed WA this sweep.
    fn end_sweep(&mut self, sweep: u32, frontier_empty: bool, any_update: bool) -> SweepControl;

    /// Serialize the program's mutable state as of a sweep boundary (the
    /// top of the engine loop, where per-sweep accumulators are freshly
    /// cleared — PageRank's fixed-point scatter sums, SSSP's next
    /// frontier, ...). The engine embeds the blob in checkpoint
    /// snapshots; [`GtsProgram::load_state`] must reconstruct the exact
    /// same state in a freshly-constructed program. The empty default
    /// means "nothing beyond the constructed state".
    fn save_state(&self) -> Vec<u8> {
        Vec::new()
    }

    /// Restore a blob produced by [`GtsProgram::save_state`] into a
    /// program freshly constructed with the *same* arguments (graph size,
    /// source vertex, iteration budget, ...).
    ///
    /// # Errors
    /// [`CkptError`] when the blob is truncated, carries trailing bytes,
    /// or belongs to a differently-sized graph.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(CkptError::Corrupt {
                reason: "program does not carry checkpoint state".to_string(),
            })
        }
    }

    /// Notification that a mutation batch was applied at a sweep boundary:
    /// `outcome.dirty_pids` were rewritten in place and `outcome.new_pids`
    /// are freshly-allocated delta pages (`store` already reflects the new
    /// topology). Programs that can continue *incrementally* re-activate
    /// the affected vertices in their own state and return the pages to
    /// seed the next sweep with; the engine widens those seeds through
    /// [`crate::sweep::plan::SweepPlan::from_marked`] (LP runs and delta
    /// pages included). The empty default means "no incremental seeds" —
    /// the engine falls back to a full re-sweep, which is always sound.
    fn on_mutation(&mut self, _store: &GraphStore, _outcome: &MutationOutcome) -> Vec<u64> {
        Vec::new()
    }

    /// The shared-state form of the kernel, if this program supports
    /// executing pages concurrently on host threads. Returning `Some`
    /// asserts that every WA update the kernel performs is *atomically
    /// commutative* — the final state is a pure function of the multiset of
    /// updates, independent of page order and interleaving — which is
    /// exactly the property the paper relies on for device-side atomics.
    /// Programs whose accounting depends on claim order (the CAS-based
    /// traversal family) return `None` and run serially.
    fn shared_kernel(&self) -> Option<&dyn SharedKernel> {
        None
    }
}

/// A kernel whose page invocations may run concurrently (`&self`, `Sync`)
/// because all of its shared-state updates commute exactly (atomic integer
/// adds, fixed-point accumulators, atomic min over order-preserving bits).
///
/// Implementors must guarantee `process_page_shared` is observationally
/// identical to [`GtsProgram::process_page`] — the engine picks between
/// them based on `host_threads`, and reports/traces must not change.
pub trait SharedKernel: Sync {
    /// Process one streamed page; see [`GtsProgram::process_page`].
    fn process_page_shared(&self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork;
}

/// Drive a kernel over one page's vertices: `f(vid, len, kind, rids)` is
/// called once per Small-Page slot, or once for a Large-Page chunk's
/// single vertex (`len` is then the *chunk* length — programs that need
/// the vertex's total degree read [`PageCtx::lp_total_degree`]).
///
/// This is the K_SP/K_LP dispatch every program shares; keeping it in one
/// place keeps the per-page bookkeeping conventions (degree pushes,
/// active-vertex counting) from drifting across the nine kernels.
/// Helpers for [`GtsProgram::save_state`] / [`GtsProgram::load_state`]
/// blobs. Every vector is length-prefixed and, on load, checked against
/// the freshly-constructed vector's length — so resuming a snapshot
/// against a different graph fails with a typed [`CkptError::Mismatch`]
/// instead of scribbling over the wrong vertices.
pub(crate) mod state {
    use gts_ckpt::{ByteReader, ByteWriter, CkptError};

    fn check_len(what: &'static str, want: usize, got: u64) -> Result<(), CkptError> {
        if got == want as u64 {
            Ok(())
        } else {
            Err(CkptError::Mismatch {
                what,
                want: want as u64,
                got,
            })
        }
    }

    pub(crate) fn put_u16s(w: &mut ByteWriter, v: &[u16]) {
        w.put_u64(v.len() as u64);
        for &x in v {
            w.put_u16(x);
        }
    }

    pub(crate) fn load_u16s(
        r: &mut ByteReader<'_>,
        what: &'static str,
        into: &mut [u16],
    ) -> Result<(), CkptError> {
        check_len(what, into.len(), r.take_u64(what)?)?;
        for slot in into {
            *slot = r.take_u16(what)?;
        }
        Ok(())
    }

    pub(crate) fn put_u32s(w: &mut ByteWriter, v: &[u32]) {
        w.put_u64(v.len() as u64);
        for &x in v {
            w.put_u32(x);
        }
    }

    pub(crate) fn load_u32s(
        r: &mut ByteReader<'_>,
        what: &'static str,
        into: &mut [u32],
    ) -> Result<(), CkptError> {
        check_len(what, into.len(), r.take_u64(what)?)?;
        for slot in into {
            *slot = r.take_u32(what)?;
        }
        Ok(())
    }

    pub(crate) fn put_u64s(w: &mut ByteWriter, v: &[u64]) {
        w.put_u64(v.len() as u64);
        for &x in v {
            w.put_u64(x);
        }
    }

    pub(crate) fn load_u64s(
        r: &mut ByteReader<'_>,
        what: &'static str,
        into: &mut [u64],
    ) -> Result<(), CkptError> {
        check_len(what, into.len(), r.take_u64(what)?)?;
        for slot in into {
            *slot = r.take_u64(what)?;
        }
        Ok(())
    }

    pub(crate) fn put_f32s(w: &mut ByteWriter, v: &[f32]) {
        w.put_u64(v.len() as u64);
        for &x in v {
            w.put_f32(x);
        }
    }

    pub(crate) fn load_f32s(
        r: &mut ByteReader<'_>,
        what: &'static str,
        into: &mut [f32],
    ) -> Result<(), CkptError> {
        check_len(what, into.len(), r.take_u64(what)?)?;
        for slot in into {
            *slot = r.take_f32(what)?;
        }
        Ok(())
    }

    pub(crate) fn put_bools(w: &mut ByteWriter, v: &[bool]) {
        w.put_u64(v.len() as u64);
        for &x in v {
            w.put_bool(x);
        }
    }

    pub(crate) fn load_bools(
        r: &mut ByteReader<'_>,
        what: &'static str,
        into: &mut [bool],
    ) -> Result<(), CkptError> {
        check_len(what, into.len(), r.take_u64(what)?)?;
        for slot in into {
            *slot = r.take_bool(what)?;
        }
        Ok(())
    }
}

pub(crate) fn visit_page<F>(view: PageView<'_>, mut f: F)
where
    F: FnMut(u64, u32, PageKind, &mut dyn Iterator<Item = RecordId>),
{
    match view.kind() {
        PageKind::Small => {
            for slot in 0..view.count() {
                let vid = view.sp_vid(slot);
                let len = view.sp_adj_len(slot);
                let mut rids = (0..len).map(|i| view.sp_adj(slot, i));
                f(vid, len, PageKind::Small, &mut rids);
            }
        }
        PageKind::Large => {
            let vid = view.lp_vid();
            let len = view.count();
            let mut rids = (0..len).map(|i| view.lp_adj(i));
            f(vid, len, PageKind::Large, &mut rids);
        }
    }
}
