//! Degree distribution — the simplest of the paper's PageRank-like
//! (whole-graph linear scan) algorithms (Sec. 3.3 lists it alongside
//! PageRank, RWR, radius estimation and connected components).
//!
//! One sweep over the topology; each kernel records every scanned
//! vertex's out-degree into the WA degree vector. Useful both as a
//! user-facing analytic and as the minimal example of writing a
//! [`GtsProgram`].

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SharedKernel,
    SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;
use gts_storage::PageKind;
use std::sync::atomic::{AtomicU32, Ordering};

/// Degree-distribution vertex program (single sweep).
pub struct Degrees {
    /// Shared kernel target: Small-Page stores are per-vertex disjoint and
    /// Large-Page chunk contributions are commutative `fetch_add`s, so
    /// pages can execute on any number of host threads.
    acc: Vec<AtomicU32>,
    /// Plain snapshot taken at end of sweep, what `degrees()` exposes.
    degree: Vec<u32>,
}

impl Degrees {
    /// Prepare for a graph of `num_vertices`.
    pub fn new(num_vertices: u64) -> Self {
        Degrees {
            acc: (0..num_vertices).map(|_| AtomicU32::new(0)).collect(),
            degree: vec![0; num_vertices as usize],
        }
    }

    /// Per-vertex out-degrees after the sweep.
    pub fn degrees(&self) -> &[u32] {
        &self.degree
    }

    /// Power-of-two histogram of the degrees (bucket 0 holds 0 and 1).
    pub fn histogram(&self) -> Vec<u64> {
        let mut hist = vec![0u64; 33];
        for &d in &self.degree {
            let bucket = if d <= 1 {
                0
            } else {
                63 - (d as u64).leading_zeros() as usize
            };
            hist[bucket.min(32)] += 1;
        }
        while hist.len() > 1 && *hist.last().unwrap() == 0 {
            hist.pop();
        }
        hist
    }
}

impl GtsProgram for Degrees {
    fn kind(&self) -> AlgorithmKind {
        // Same WA footprint class as SSSP: one 4-byte vector, no RA.
        AlgorithmKind::Sssp
    }

    fn name(&self) -> &'static str {
        "DegreeDistribution"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        self.process_page_shared(ctx, scratch)
    }

    fn shared_kernel(&self) -> Option<&dyn SharedKernel> {
        Some(self)
    }

    fn end_sweep(&mut self, _sweep: u32, _frontier_empty: bool, _any_update: bool) -> SweepControl {
        for (slot, acc) in self.degree.iter_mut().zip(&mut self.acc) {
            *slot = *acc.get_mut();
        }
        SweepControl::Done
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u64(self.acc.len() as u64);
        for a in &self.acc {
            w.put_u32(a.load(Ordering::Relaxed));
        }
        state::put_u32s(&mut w, &self.degree);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        let n = r.take_u64("degrees.acc count")?;
        if n != self.acc.len() as u64 {
            return Err(CkptError::Mismatch {
                what: "degrees.acc",
                want: self.acc.len() as u64,
                got: n,
            });
        }
        for a in &self.acc {
            a.store(r.take_u32("degrees.acc")?, Ordering::Relaxed);
        }
        state::load_u32s(&mut r, "degrees.degree", &mut self.degree)?;
        r.finish()
    }
}

impl SharedKernel for Degrees {
    fn process_page_shared(&self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, kind, _rids| {
            match kind {
                // A vertex lives in exactly one Small Page: disjoint writes.
                PageKind::Small => self.acc[vid as usize].store(len, Ordering::Relaxed),
                // Chunks accumulate into the vertex's total degree;
                // fetch_add commutes across chunk order.
                PageKind::Large => {
                    self.acc[vid as usize].fetch_add(len, Ordering::Relaxed);
                }
            }
            work.active_vertices += 1;
            work.atomic_ops += 1;
        });
        // The kernel only reads slot headers: one lane-slot per vertex.
        work.lane_slots = work.active_vertices;
        work.updated = true;
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_graph::Csr;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    #[test]
    fn degrees_match_csr() {
        let graph = rmat(9);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512),
        )
        .unwrap();
        let csr = Csr::from_edge_list(&graph);
        let mut deg = Degrees::new(store.num_vertices());
        let report = Gts::new(GtsConfig::default())
            .run(&store, &mut deg)
            .unwrap();
        assert_eq!(report.sweeps, 1, "single linear scan");
        for v in 0..csr.num_vertices() {
            assert_eq!(deg.degrees()[v as usize] as u64, csr.out_degree(v));
        }
    }

    #[test]
    fn histogram_matches_stats_module() {
        let graph = rmat(10);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let csr = Csr::from_edge_list(&graph);
        let mut deg = Degrees::new(store.num_vertices());
        Gts::new(GtsConfig::default())
            .run(&store, &mut deg)
            .unwrap();
        assert_eq!(deg.histogram(), gts_graph::stats::degree_histogram(&csr));
    }

    #[test]
    fn lp_chunks_sum_to_full_degree() {
        // A hub too big for one page: its degree must sum across chunks.
        let edges: Vec<(u32, u32)> = (0..500).map(|i| (0, 1 + i % 500)).collect();
        let graph = gts_graph::EdgeList::new(501, edges);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256),
        )
        .unwrap();
        assert!(store.large_pids().len() > 1, "hub spans several chunks");
        let mut deg = Degrees::new(store.num_vertices());
        Gts::new(GtsConfig::default())
            .run(&store, &mut deg)
            .unwrap();
        assert_eq!(deg.degrees()[0], 500);
    }
}
