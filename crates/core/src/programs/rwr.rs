//! Random Walk with Restart (RWR) — one of the PageRank-like algorithms
//! the paper lists in Sec. 3.3 ("PageRank, degree distribution, Random
//! Walk with Restart (RWR), radius estimations, and connected
//! components").
//!
//! RWR is personalised PageRank: the walker teleports back to a single
//! *seed* vertex instead of to the uniform distribution, producing a
//! proximity score of every vertex to the seed. Structurally it is the
//! same streamed kernel as PageRank — WA is the next score vector, RA the
//! previous one — so it exercises the identical engine path with a
//! different Apply rule.

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SharedKernel,
    SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_exec::FixedVec;
use gts_gpu::timer::KernelClass;
use gts_storage::PageKind;

/// Random-walk-with-restart vertex program.
pub struct Rwr {
    prev: Vec<f32>,
    /// Scores materialised from `acc` at the end of each sweep.
    next: Vec<f32>,
    /// Shared `atomicAdd` target in fixed point — commutative, so page
    /// kernels can run on any number of host threads with identical bits.
    acc: FixedVec,
    restart: f32,
    seed: u64,
    iterations: u32,
}

impl Rwr {
    /// Classic restart probability.
    pub const DEFAULT_RESTART: f32 = 0.15;

    /// RWR from `seed` for `iterations` sweeps.
    ///
    /// # Panics
    /// Panics if `seed` is out of range.
    pub fn new(num_vertices: u64, seed: u64, iterations: u32) -> Self {
        Self::with_restart(num_vertices, seed, iterations, Self::DEFAULT_RESTART)
    }

    /// RWR with an explicit restart probability `c`.
    pub fn with_restart(num_vertices: u64, seed: u64, iterations: u32, c: f32) -> Self {
        assert!(seed < num_vertices, "seed {seed} out of range");
        let n = num_vertices as usize;
        let mut prev = vec![0.0f32; n];
        prev[seed as usize] = 1.0;
        let mut next = vec![0.0f32; n];
        next[seed as usize] = c;
        Rwr {
            prev,
            next,
            acc: FixedVec::new(n),
            restart: c,
            seed,
            iterations,
        }
    }

    /// Fold the accumulated shares into `next` (restart mass at the seed,
    /// zero elsewhere) and reset the accumulator.
    fn materialize(&mut self) {
        for (v, slot) in self.next.iter_mut().enumerate() {
            let base = if v as u64 == self.seed {
                self.restart as f64
            } else {
                0.0
            };
            *slot = (base + self.acc.get(v)) as f32;
        }
        self.acc.clear();
    }

    /// Proximity scores to the seed after the last completed iteration.
    pub fn scores(&self) -> &[f32] {
        &self.next
    }

    fn scatter(
        &self,
        ctx: &PageCtx<'_>,
        work: &mut PageWork,
        vid: u64,
        total_degree: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        if total_degree == 0 {
            return;
        }
        let share = (1.0 - self.restart) * self.prev[vid as usize] / total_degree as f32;
        if share == 0.0 {
            // The walk has not reached this vertex yet; nothing to push.
            // (Counting the scan anyway mirrors the kernel's work.)
        }
        for rid in rids {
            let adj_vid = ctx.rvt.translate(rid) as usize;
            self.acc.add(adj_vid, share as f64);
            work.active_edges += 1;
            work.atomic_ops += 1;
        }
        work.updated = true;
    }
}

impl GtsProgram for Rwr {
    fn kind(&self) -> AlgorithmKind {
        // Same WA/RA layout as PageRank: one resident f32 vector, one
        // streamed f32 vector.
        AlgorithmKind::PageRank
    }

    fn name(&self) -> &'static str {
        "RWR"
    }

    fn class(&self) -> KernelClass {
        KernelClass::Compute
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        self.process_page_shared(ctx, scratch)
    }

    fn shared_kernel(&self) -> Option<&dyn SharedKernel> {
        Some(self)
    }

    fn end_sweep(&mut self, sweep: u32, _frontier_empty: bool, _any_update: bool) -> SweepControl {
        self.materialize();
        if sweep + 1 >= self.iterations {
            return SweepControl::Done;
        }
        std::mem::swap(&mut self.prev, &mut self.next);
        SweepControl::Continue
    }

    fn save_state(&self) -> Vec<u8> {
        // Boundary invariant: `materialize` already folded and cleared
        // `acc`, so only the two score vectors carry state.
        let mut w = ByteWriter::new();
        state::put_f32s(&mut w, &self.prev);
        state::put_f32s(&mut w, &self.next);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_f32s(&mut r, "rwr.prev", &mut self.prev)?;
        state::load_f32s(&mut r, "rwr.next", &mut self.next)?;
        r.finish()
    }
}

impl SharedKernel for Rwr {
    fn process_page_shared(&self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, kind, rids| {
            scratch.degrees.push(len);
            work.active_vertices += 1;
            let total_degree = match kind {
                PageKind::Small => len as u64,
                PageKind::Large => ctx.lp_total_degree,
            };
            self.scatter(ctx, &mut work, vid, total_degree, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_graph::Csr;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    /// Sequential RWR reference (same kernel semantics).
    fn reference_rwr(g: &Csr, seed: u32, c: f64, iters: u32) -> Vec<f64> {
        let n = g.num_vertices() as usize;
        let mut prev = vec![0.0; n];
        prev[seed as usize] = 1.0;
        let mut next = Vec::new();
        for _ in 0..iters {
            next = vec![0.0; n];
            next[seed as usize] = c;
            for v in 0..g.num_vertices() {
                let deg = g.out_degree(v);
                if deg == 0 {
                    continue;
                }
                let share = (1.0 - c) * prev[v as usize] / deg as f64;
                for &w in g.neighbors(v) {
                    next[w as usize] += share;
                }
            }
            prev = next.clone();
        }
        next
    }

    #[test]
    fn rwr_matches_sequential_reference() {
        let graph = rmat(9);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let csr = Csr::from_edge_list(&graph);
        let mut rwr = Rwr::new(store.num_vertices(), 3, 8);
        Gts::new(GtsConfig::default())
            .run(&store, &mut rwr)
            .unwrap();
        let want = reference_rwr(&csr, 3, 0.15, 8);
        for (got, want) in rwr.scores().iter().zip(&want) {
            assert!((*got as f64 - want).abs() < 1e-5, "{got} vs {want}");
        }
    }

    #[test]
    fn seed_keeps_the_restart_mass() {
        let graph = rmat(8);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut rwr = Rwr::new(store.num_vertices(), 0, 10);
        Gts::new(GtsConfig::default())
            .run(&store, &mut rwr)
            .unwrap();
        let scores = rwr.scores();
        assert!(scores[0] >= 0.15, "seed retains at least the restart mass");
        let max = scores.iter().cloned().fold(0.0f32, f32::max);
        assert_eq!(max, scores[0], "the seed is its own closest vertex");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn seed_bounds_checked() {
        let _ = Rwr::new(10, 10, 1);
    }
}
