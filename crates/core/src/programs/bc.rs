//! Betweenness centrality (Appendix D), Brandes-style, in two streamed
//! phases.
//!
//! * **Forward**: a BFS that additionally accumulates shortest-path counts
//!   σ — when a kernel sees an edge `v → w` with `dist[w] = dist[v] + 1` it
//!   performs `atomicAdd(σ[w], σ[v])`. The program records which pages were
//!   active at each level.
//! * **Backward**: replays the recorded levels deepest-first
//!   (via [`SweepControl::ContinueWith`]); for a vertex `v` at level `l`,
//!   scanning its out-edges finds exactly its Brandes successors
//!   (`dist[w] = l + 1`), so
//!   `δ[v] = Σ σ[v]/σ[w] · (1 + δ[w])` completes in one kernel pass and
//!   `bc[v] += δ[v]` accumulates in place.
//!
//! The paper runs BC in single-source mode (its Fig. 13c); multi-source BC
//! is the sum over sources of independent runs.

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;

const DIST_NULL: u16 = u16::MAX;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Forward,
    /// Backward accumulation currently replaying this forward level.
    Backward(u32),
}

/// Betweenness-centrality vertex program (one source).
pub struct Bc {
    dist: Vec<u16>,
    sigma: Vec<f32>,
    delta: Vec<f32>,
    bc: Vec<f32>,
    /// Pages whose vertices were frontier members at each forward level.
    pages_by_level: Vec<Vec<u64>>,
    phase: Phase,
    source: u64,
}

impl Bc {
    /// BC contribution of shortest paths from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(num_vertices: u64, source: u64) -> Self {
        assert!(source < num_vertices, "source {source} out of range");
        let n = num_vertices as usize;
        let mut dist = vec![DIST_NULL; n];
        dist[source as usize] = 0;
        let mut sigma = vec![0.0; n];
        sigma[source as usize] = 1.0;
        Bc {
            dist,
            sigma,
            delta: vec![0.0; n],
            bc: vec![0.0; n],
            pages_by_level: Vec::new(),
            phase: Phase::Forward,
            source,
        }
    }

    /// Accumulated centrality scores.
    pub fn centrality(&self) -> &[f32] {
        &self.bc
    }

    fn forward_vertex(
        &mut self,
        ctx: &PageCtx<'_>,
        scratch: &mut KernelScratch,
        work: &mut PageWork,
        vid: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let next = ctx.sweep as u16 + 1;
        let sv = self.sigma[vid as usize];
        for rid in rids {
            work.active_edges += 1;
            let adj = ctx.rvt.translate(rid) as usize;
            if self.dist[adj] == DIST_NULL {
                self.dist[adj] = next;
                scratch.next_pids.push(rid.pid);
                work.updated = true;
            }
            if self.dist[adj] == next {
                self.sigma[adj] += sv; // atomicAdd on hardware
                work.atomic_ops += 1;
            }
        }
    }

    fn backward_vertex(
        &mut self,
        ctx: &PageCtx<'_>,
        work: &mut PageWork,
        level: u32,
        vid: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let succ_level = level as u16 + 1;
        let sv = self.sigma[vid as usize];
        let mut acc = 0.0f32;
        for rid in rids {
            work.active_edges += 1;
            let adj = ctx.rvt.translate(rid) as usize;
            if self.dist[adj] == succ_level && self.sigma[adj] > 0.0 {
                acc += sv / self.sigma[adj] * (1.0 + self.delta[adj]);
                work.atomic_ops += 1;
            }
        }
        if acc > 0.0 {
            // A Large-Page vertex is visited once per chunk, so δ must be
            // accumulated here and folded into bc only once, at the end of
            // the whole backward phase (see `end_sweep`).
            self.delta[vid as usize] += acc;
            work.updated = true;
        }
    }

    fn record_forward_page(&mut self, level: u32, pid: u64) {
        let l = level as usize;
        if self.pages_by_level.len() <= l {
            self.pages_by_level.resize(l + 1, Vec::new());
        }
        self.pages_by_level[l].push(pid);
    }
}

impl GtsProgram for Bc {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::BetweennessCentrality
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Traversal
    }

    fn start_vertex(&self) -> Option<u64> {
        Some(self.source)
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        let (level, forward) = match self.phase {
            Phase::Forward => (ctx.sweep, true),
            Phase::Backward(l) => (l, false),
        };
        assert!(
            level + 1 < DIST_NULL as u32,
            "BC traversal depth exceeds the 2-byte dist field"
        );
        let cur = level as u16;
        let mut page_active = false;
        visit_page(ctx.view, |vid, len, _kind, rids| {
            if self.dist[vid as usize] != cur {
                return;
            }
            scratch.degrees.push(len);
            work.active_vertices += 1;
            page_active = true;
            if forward {
                self.forward_vertex(ctx, scratch, &mut work, vid, rids);
            } else {
                self.backward_vertex(ctx, &mut work, level, vid, rids);
            }
        });
        if forward && page_active {
            self.record_forward_page(level, ctx.pid);
        }
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, frontier_empty: bool, _any_update: bool) -> SweepControl {
        match self.phase {
            Phase::Forward => {
                if !frontier_empty {
                    return SweepControl::Continue;
                }
                // Forward done. Deepest level D vertices have δ = 0; start
                // accumulating from D−1 (if the traversal went anywhere).
                let depth = self.pages_by_level.len() as u32;
                if depth <= 1 {
                    return SweepControl::Done;
                }
                let start = depth - 2;
                self.phase = Phase::Backward(start);
                SweepControl::ContinueWith(self.pages_by_level[start as usize].clone())
            }
            Phase::Backward(l) => {
                if l == 0 {
                    // Fold δ into the centrality scores (a final trivial
                    // kernel over WA; its cost is negligible and the cost
                    // model for BFS-like algorithms omits it).
                    for v in 0..self.bc.len() {
                        if v as u64 != self.source {
                            self.bc[v] += self.delta[v];
                        }
                    }
                    SweepControl::Done
                } else {
                    self.phase = Phase::Backward(l - 1);
                    SweepControl::ContinueWith(self.pages_by_level[(l - 1) as usize].clone())
                }
            }
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        state::put_u16s(&mut w, &self.dist);
        state::put_f32s(&mut w, &self.sigma);
        state::put_f32s(&mut w, &self.delta);
        state::put_f32s(&mut w, &self.bc);
        match self.phase {
            Phase::Forward => {
                w.put_u8(0);
                w.put_u32(0);
            }
            Phase::Backward(l) => {
                w.put_u8(1);
                w.put_u32(l);
            }
        }
        w.put_u64(self.pages_by_level.len() as u64);
        for level in &self.pages_by_level {
            state::put_u64s(&mut w, level);
        }
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u16s(&mut r, "bc.dist", &mut self.dist)?;
        state::load_f32s(&mut r, "bc.sigma", &mut self.sigma)?;
        state::load_f32s(&mut r, "bc.delta", &mut self.delta)?;
        state::load_f32s(&mut r, "bc.bc", &mut self.bc)?;
        let tag = r.take_u8("bc.phase tag")?;
        let level = r.take_u32("bc.phase level")?;
        self.phase = match tag {
            0 => Phase::Forward,
            1 => Phase::Backward(level),
            other => {
                return Err(CkptError::Corrupt {
                    reason: format!("bc.phase: unknown tag {other}"),
                })
            }
        };
        let depth = r.take_u64("bc.pages_by_level count")? as usize;
        self.pages_by_level = Vec::with_capacity(depth);
        for _ in 0..depth {
            let n = r.take_u64("bc.level pids count")? as usize;
            let mut pids = vec![0u64; n];
            state_load_raw_u64s(&mut r, &mut pids)?;
            self.pages_by_level.push(pids);
        }
        r.finish()
    }
}

/// Read `into.len()` raw u64s (no length prefix — the caller already
/// consumed it to size the buffer).
fn state_load_raw_u64s(r: &mut ByteReader<'_>, into: &mut [u64]) -> Result<(), CkptError> {
    for slot in into {
        *slot = r.take_u64("bc.level pid")?;
    }
    Ok(())
}
