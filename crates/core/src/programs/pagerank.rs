//! PageRank — the paper's Appendix B.2 kernels (`K_PR_SP` / `K_PR_LP`).
//!
//! The read/write attribute vector (WA, device-resident) is `nextPR`; the
//! read-only vector (RA, streamed page-by-page) is `prevPR` (Sec. 3.1).
//! Each kernel scatters `df * prevPR[v] / ADJLIST_SZ` to every
//! out-neighbour with an `atomicAdd`; dangling vertices scatter nothing,
//! exactly like the paper's kernel (so mass leaks — matching
//! `gts_graph::reference::pagerank`).

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SharedKernel,
    SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_exec::FixedVec;
use gts_gpu::timer::KernelClass;
use gts_storage::PageKind;

/// When a PageRank run stops.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Termination {
    /// After exactly this many sweeps (the paper's experiments: ten).
    Fixed(u32),
    /// When the L1 change between iterations drops below `epsilon`, or at
    /// `max` sweeps, whichever comes first.
    Converged { epsilon: f32, max: u32 },
}

/// PageRank vertex program.
pub struct PageRank {
    /// RA: previous iteration's ranks, streamed alongside pages.
    prev: Vec<f32>,
    /// WA: next iteration's ranks, materialised from `acc` at end of sweep.
    next: Vec<f32>,
    /// The `atomicAdd` target: scattered shares accumulate here in 64-bit
    /// fixed point, so concurrent page kernels produce bit-identical sums
    /// in any execution order (see `gts_exec::FixedVec`).
    acc: FixedVec,
    df: f32,
    termination: Termination,
    converged_at: Option<u32>,
}

impl PageRank {
    /// The paper's damping factor.
    pub const DEFAULT_DAMPING: f32 = 0.85;

    /// PageRank over `num_vertices` for `iterations` sweeps with damping
    /// [`Self::DEFAULT_DAMPING`].
    pub fn new(num_vertices: u64, iterations: u32) -> Self {
        Self::with_damping(num_vertices, iterations, Self::DEFAULT_DAMPING)
    }

    /// PageRank with an explicit damping factor.
    pub fn with_damping(num_vertices: u64, iterations: u32, df: f32) -> Self {
        Self::with_termination(num_vertices, df, Termination::Fixed(iterations))
    }

    /// PageRank that iterates until the L1 change between consecutive
    /// iterations drops below `epsilon` (capped at `max_iterations`).
    pub fn until_convergence(num_vertices: u64, epsilon: f32, max_iterations: u32) -> Self {
        Self::with_termination(
            num_vertices,
            Self::DEFAULT_DAMPING,
            Termination::Converged {
                epsilon,
                max: max_iterations,
            },
        )
    }

    fn with_termination(num_vertices: u64, df: f32, termination: Termination) -> Self {
        if let Termination::Fixed(iterations) = termination {
            // The engine always executes a sweep before asking the program
            // whether to stop, so "zero iterations" cannot be honoured.
            assert!(iterations >= 1, "PageRank needs at least one iteration");
        }
        let n = num_vertices as usize;
        let base = (1.0 - df) / n as f32;
        PageRank {
            prev: vec![1.0 / n as f32; n],
            next: vec![base; n],
            acc: FixedVec::new(n),
            df,
            termination,
            converged_at: None,
        }
    }

    /// Fold the fixed-point scatter sums into `next` (teleport base plus
    /// accumulated shares) and reset the accumulator for the next sweep.
    fn materialize(&mut self) {
        let base = (1.0 - self.df) / self.next.len() as f32;
        for (v, slot) in self.next.iter_mut().enumerate() {
            *slot = (base as f64 + self.acc.get(v)) as f32;
        }
        self.acc.clear();
    }

    /// The sweep (1-based) at which convergence-mode termination fired,
    /// if it did.
    pub fn converged_at(&self) -> Option<u32> {
        self.converged_at
    }

    /// The ranks after the last completed iteration.
    pub fn ranks(&self) -> &[f32] {
        &self.next
    }

    fn scatter(
        &self,
        ctx: &PageCtx<'_>,
        work: &mut PageWork,
        vid: u64,
        total_degree: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        if total_degree == 0 {
            return;
        }
        let share = self.df * self.prev[vid as usize] / total_degree as f32;
        for rid in rids {
            let adj_vid = ctx.rvt.translate(rid) as usize;
            // atomicAdd on hardware (Algorithm 4 line 16); the fixed-point
            // add commutes exactly, so any page order — serial or across
            // host threads — yields the same bits.
            self.acc.add(adj_vid, share as f64);
            work.active_edges += 1;
            work.atomic_ops += 1;
        }
        work.updated = true;
    }
}

impl GtsProgram for PageRank {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::PageRank
    }

    fn class(&self) -> KernelClass {
        KernelClass::Compute
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        self.process_page_shared(ctx, scratch)
    }

    fn shared_kernel(&self) -> Option<&dyn SharedKernel> {
        Some(self)
    }

    fn end_sweep(&mut self, sweep: u32, _frontier_empty: bool, _any_update: bool) -> SweepControl {
        self.materialize();
        let done = match self.termination {
            Termination::Fixed(iterations) => sweep + 1 >= iterations,
            Termination::Converged { epsilon, max } => {
                let delta: f32 = self
                    .next
                    .iter()
                    .zip(&self.prev)
                    .map(|(a, b)| (a - b).abs())
                    .sum();
                if delta < epsilon {
                    self.converged_at = Some(sweep + 1);
                    true
                } else {
                    sweep + 1 >= max
                }
            }
        };
        if done {
            return SweepControl::Done;
        }
        // nextPR becomes prevPR (the paper: "at the end of every iteration,
        // nextPR should be initialized after being copied to prevPR");
        // re-initialisation happened in `materialize` (accumulator reset +
        // teleport base re-applied on the next fold).
        std::mem::swap(&mut self.prev, &mut self.next);
        SweepControl::Continue
    }

    fn save_state(&self) -> Vec<u8> {
        // Boundary invariant: `materialize` ran at the end of the previous
        // sweep, so `acc` is empty — only the rank vectors and the
        // convergence marker carry state.
        let mut w = ByteWriter::new();
        state::put_f32s(&mut w, &self.prev);
        state::put_f32s(&mut w, &self.next);
        w.put_bool(self.converged_at.is_some());
        w.put_u32(self.converged_at.unwrap_or(0));
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_f32s(&mut r, "pagerank.prev", &mut self.prev)?;
        state::load_f32s(&mut r, "pagerank.next", &mut self.next)?;
        let some = r.take_bool("pagerank.converged_at tag")?;
        let at = r.take_u32("pagerank.converged_at")?;
        self.converged_at = some.then_some(at);
        r.finish()
    }
}

impl SharedKernel for PageRank {
    fn process_page_shared(&self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, kind, rids| {
            scratch.degrees.push(len);
            work.active_vertices += 1;
            // K_PR_LP divides by the vertex's total ADJLIST_SZ across all
            // chunks, not this chunk's count (Algorithm 5 line 7).
            let total_degree = match kind {
                PageKind::Small => len as u64,
                PageKind::Large => ctx.lp_total_degree,
            };
            self.scatter(ctx, &mut work, vid, total_degree, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    #[test]
    fn convergence_mode_stops_early_and_is_stable() {
        let graph = rmat(9);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut pr = PageRank::until_convergence(store.num_vertices(), 1e-6, 200);
        let report = Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
        let at = pr.converged_at().expect("must converge well before 200");
        assert_eq!(report.sweeps, at);
        assert!(at < 100, "converged at {at}");
        // Converged ranks change by < epsilon under one more fixed sweep.
        let mut fixed = PageRank::new(store.num_vertices(), at + 1);
        Gts::new(GtsConfig::default())
            .run(&store, &mut fixed)
            .unwrap();
        let delta: f32 = pr
            .ranks()
            .iter()
            .zip(fixed.ranks())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(delta < 1e-5, "post-convergence drift {delta}");
    }

    #[test]
    fn max_cap_bounds_convergence_mode() {
        let graph = rmat(8);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut pr = PageRank::until_convergence(store.num_vertices(), 0.0, 3);
        let report = Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
        assert_eq!(report.sweeps, 3);
        assert_eq!(pr.converged_at(), None);
    }
}
