//! Breadth-first search — the paper's Appendix B.1 kernels
//! (`K_BFS_SP` / `K_BFS_LP`), expressed functionally.
//!
//! WA is the per-vertex traversal level `LV` (2 bytes, matching Table 4's
//! 0.5 GB for 256M vertices). A vertex at the current level expands its
//! adjacency list; undiscovered neighbours are claimed at `level + 1` and
//! their *pages* are marked in the local `nextPIDSet` so only pages
//! containing frontier vertices are streamed next level (Sec. 3.3).

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;
use gts_storage::builder::GraphStore;
use gts_storage::MutationOutcome;
use std::collections::BTreeSet;

/// Level value for undiscovered vertices (the kernel's `NULL`).
pub const LV_NULL: u16 = u16::MAX;

/// BFS vertex program.
pub struct Bfs {
    lv: Vec<u16>,
    source: u64,
    /// Discovered vertices re-activated outside the plain frontier — by a
    /// mutation batch ([`GtsProgram::on_mutation`]) or by a relaxation
    /// that improved an already-assigned level. They expand this sweep
    /// regardless of `lv == sweep`. Empty in non-mutated runs, so the
    /// plain BFS path is untouched.
    pending: BTreeSet<u64>,
    /// Vertices relaxed this sweep to a level other than `sweep + 1`
    /// (only possible after mutations); they become `pending` next sweep.
    pending_next: BTreeSet<u64>,
    /// Home pages of `pending_next`, handed to the engine as seeds when
    /// the regular frontier is empty.
    pending_pids_next: BTreeSet<u64>,
}

impl Bfs {
    /// BFS over `num_vertices` from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(num_vertices: u64, source: u64) -> Self {
        assert!(source < num_vertices, "source {source} out of range");
        let mut lv = vec![LV_NULL; num_vertices as usize];
        lv[source as usize] = 0;
        Bfs {
            lv,
            source,
            pending: BTreeSet::new(),
            pending_next: BTreeSet::new(),
            pending_pids_next: BTreeSet::new(),
        }
    }

    /// Final per-vertex levels ([`LV_NULL`] = unreached).
    pub fn levels(&self) -> &[u16] {
        &self.lv
    }

    /// Levels widened to the reference format (`u32::MAX` = unreached).
    pub fn levels_u32(&self) -> Vec<u32> {
        self.lv
            .iter()
            .map(|&l| if l == LV_NULL { u32::MAX } else { l as u32 })
            .collect()
    }

    /// Expand one vertex's adjacency list (the `expand_warp` device routine
    /// of Algorithm 2), generalised to a monotone relaxation: a neighbour
    /// is claimed when undiscovered *or* when this expansion offers a
    /// strictly smaller level (only possible for `pending` vertices after
    /// a mutation). In a non-mutated run every expanding vertex sits at
    /// `lv == sweep`, so `cand == sweep + 1`, the improvement case never
    /// fires, and the claims are bit-identical to plain BFS.
    fn expand(
        &mut self,
        ctx: &PageCtx<'_>,
        scratch: &mut KernelScratch,
        work: &mut PageWork,
        vid: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let cand = self.lv[vid as usize] + 1;
        for rid in rids {
            work.active_edges += 1;
            let adj_vid = ctx.rvt.translate(rid) as usize;
            if self.lv[adj_vid] == LV_NULL || cand < self.lv[adj_vid] {
                // atomic claim on hardware; sequential here, same result.
                self.lv[adj_vid] = cand;
                work.atomic_ops += 1;
                work.updated = true;
                scratch.next_pids.push(rid.pid);
                if cand as u32 != ctx.sweep + 1 {
                    // Claimed off-frontier: the plain `lv == sweep` gate
                    // will not pick it up next sweep, so remember it.
                    self.pending_next.insert(adj_vid as u64);
                    self.pending_pids_next.insert(rid.pid);
                }
            }
        }
    }
}

impl GtsProgram for Bfs {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Bfs
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Traversal
    }

    fn start_vertex(&self) -> Option<u64> {
        Some(self.source)
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        // LV is 2 bytes (Table 4); a level that would collide with the
        // LV_NULL sentinel means the traversal is deeper than the format
        // supports — fail loudly rather than loop forever re-discovering.
        assert!(
            ctx.sweep + 1 < LV_NULL as u32,
            "BFS depth exceeds the 2-byte LV field"
        );
        let cur = ctx.sweep as u16;
        // K_BFS_SP / K_BFS_LP: frontier vertices expand, plus any vertex a
        // mutation re-activated (`pending` is only consulted, never drained
        // here — an LP vertex spans several chunks and must stay active for
        // all of them).
        visit_page(ctx.view, |vid, len, _kind, rids| {
            let lv = self.lv[vid as usize];
            let active = lv == cur || (!self.pending.is_empty() && self.pending.contains(&vid));
            if !active || lv == LV_NULL {
                return;
            }
            scratch.degrees.push(len);
            work.active_vertices += 1;
            self.expand(ctx, scratch, &mut work, vid, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, frontier_empty: bool, _any_update: bool) -> SweepControl {
        self.pending = std::mem::take(&mut self.pending_next);
        let seeds: Vec<u64> = std::mem::take(&mut self.pending_pids_next)
            .into_iter()
            .collect();
        if !frontier_empty {
            SweepControl::Continue
        } else if !self.pending.is_empty() {
            // Off-frontier relaxations but no regular frontier: replay
            // exactly the pages holding the re-activated vertices.
            SweepControl::ContinueWith(seeds)
        } else {
            SweepControl::Done
        }
    }

    fn on_mutation(&mut self, store: &GraphStore, outcome: &MutationOutcome) -> Vec<u64> {
        // Re-activate every *discovered* vertex resident in a rewritten or
        // freshly-allocated page: an inserted edge out of it may lower (or
        // first assign) a neighbour's level. Undiscovered residents have
        // nothing to propagate. The returned home pages seed the next
        // sweep; `from_marked` widens them to LP runs and delta pages.
        // Deleted edges are not re-derived: levels stay upper bounds of
        // the post-deletion distances (documented in DESIGN.md §12).
        let mut seeds = Vec::new();
        for &pid in outcome.dirty_pids.iter().chain(&outcome.new_pids) {
            let mut any = false;
            visit_page(store.view(pid), |vid, _len, _kind, _rids| {
                if self.lv[vid as usize] != LV_NULL {
                    self.pending.insert(vid);
                    any = true;
                }
            });
            if any {
                seeds.push(pid);
            }
        }
        seeds
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        state::put_u16s(&mut w, &self.lv);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u16s(&mut r, "bfs.lv", &mut self.lv)?;
        r.finish()
    }
}
