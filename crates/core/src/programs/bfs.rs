//! Breadth-first search — the paper's Appendix B.1 kernels
//! (`K_BFS_SP` / `K_BFS_LP`), expressed functionally.
//!
//! WA is the per-vertex traversal level `LV` (2 bytes, matching Table 4's
//! 0.5 GB for 256M vertices). A vertex at the current level expands its
//! adjacency list; undiscovered neighbours are claimed at `level + 1` and
//! their *pages* are marked in the local `nextPIDSet` so only pages
//! containing frontier vertices are streamed next level (Sec. 3.3).

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;

/// Level value for undiscovered vertices (the kernel's `NULL`).
pub const LV_NULL: u16 = u16::MAX;

/// BFS vertex program.
pub struct Bfs {
    lv: Vec<u16>,
    source: u64,
}

impl Bfs {
    /// BFS over `num_vertices` from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(num_vertices: u64, source: u64) -> Self {
        assert!(source < num_vertices, "source {source} out of range");
        let mut lv = vec![LV_NULL; num_vertices as usize];
        lv[source as usize] = 0;
        Bfs { lv, source }
    }

    /// Final per-vertex levels ([`LV_NULL`] = unreached).
    pub fn levels(&self) -> &[u16] {
        &self.lv
    }

    /// Levels widened to the reference format (`u32::MAX` = unreached).
    pub fn levels_u32(&self) -> Vec<u32> {
        self.lv
            .iter()
            .map(|&l| if l == LV_NULL { u32::MAX } else { l as u32 })
            .collect()
    }

    /// Expand one vertex's adjacency list (the `expand_warp` device routine
    /// of Algorithm 2).
    fn expand(
        &mut self,
        ctx: &PageCtx<'_>,
        scratch: &mut KernelScratch,
        work: &mut PageWork,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let next_level = ctx.sweep as u16 + 1;
        for rid in rids {
            work.active_edges += 1;
            let adj_vid = ctx.rvt.translate(rid) as usize;
            if self.lv[adj_vid] == LV_NULL {
                // atomic claim on hardware; sequential here, same result.
                self.lv[adj_vid] = next_level;
                work.atomic_ops += 1;
                work.updated = true;
                scratch.next_pids.push(rid.pid);
            }
        }
    }
}

impl GtsProgram for Bfs {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Bfs
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Traversal
    }

    fn start_vertex(&self) -> Option<u64> {
        Some(self.source)
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        // LV is 2 bytes (Table 4); a level that would collide with the
        // LV_NULL sentinel means the traversal is deeper than the format
        // supports — fail loudly rather than loop forever re-discovering.
        assert!(
            ctx.sweep + 1 < LV_NULL as u32,
            "BFS depth exceeds the 2-byte LV field"
        );
        let cur = ctx.sweep as u16;
        // K_BFS_SP / K_BFS_LP: only frontier vertices expand.
        visit_page(ctx.view, |vid, len, _kind, rids| {
            if self.lv[vid as usize] != cur {
                return;
            }
            scratch.degrees.push(len);
            work.active_vertices += 1;
            self.expand(ctx, scratch, &mut work, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, frontier_empty: bool, _any_update: bool) -> SweepControl {
        if frontier_empty {
            SweepControl::Done
        } else {
            SweepControl::Continue
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        state::put_u16s(&mut w, &self.lv);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u16s(&mut r, "bfs.lv", &mut self.lv)?;
        r.finish()
    }
}
