//! Single-source shortest paths (Appendix D).
//!
//! A BFS-like traversal with relaxations: WA is the 4-byte distance vector;
//! vertices whose distance improved in the previous level relax their
//! out-edges with `atomicMin`. Edge weights are the deterministic synthetic
//! weights of [`gts_graph::EdgeList::edge_weight`] (the paper's datasets
//! are unweighted, so its SSSP runs also used generated weights).

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;
use gts_graph::EdgeList;

/// Distance of unreachable vertices.
pub const DIST_INF: u32 = u32::MAX;

/// SSSP vertex program (label-correcting, level-synchronous).
pub struct Sssp {
    dist: Vec<u32>,
    /// Frontier flags for the current level.
    active: Vec<bool>,
    /// Vertices improved during this level (next frontier).
    next_active: Vec<bool>,
    source: u64,
}

impl Sssp {
    /// Shortest paths over `num_vertices` from `source`.
    ///
    /// # Panics
    /// Panics if `source` is out of range.
    pub fn new(num_vertices: u64, source: u64) -> Self {
        assert!(source < num_vertices, "source {source} out of range");
        let n = num_vertices as usize;
        let mut dist = vec![DIST_INF; n];
        dist[source as usize] = 0;
        let mut active = vec![false; n];
        active[source as usize] = true;
        Sssp {
            dist,
            active,
            next_active: vec![false; n],
            source,
        }
    }

    /// Final distances ([`DIST_INF`] = unreachable).
    pub fn distances(&self) -> &[u32] {
        &self.dist
    }

    fn relax(
        &mut self,
        ctx: &PageCtx<'_>,
        scratch: &mut KernelScratch,
        work: &mut PageWork,
        vid: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let dv = self.dist[vid as usize];
        for rid in rids {
            work.active_edges += 1;
            work.atomic_ops += 1; // atomicMin per edge on hardware
            let adj_vid = ctx.rvt.translate(rid);
            let w = EdgeList::edge_weight(vid as u32, adj_vid as u32);
            let nd = dv.saturating_add(w);
            if nd < self.dist[adj_vid as usize] {
                self.dist[adj_vid as usize] = nd;
                self.next_active[adj_vid as usize] = true;
                scratch.next_pids.push(rid.pid);
                work.updated = true;
            }
        }
    }
}

impl GtsProgram for Sssp {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::Sssp
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Traversal
    }

    fn start_vertex(&self) -> Option<u64> {
        Some(self.source)
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, _kind, rids| {
            if !self.active[vid as usize] {
                return;
            }
            scratch.degrees.push(len);
            work.active_vertices += 1;
            self.relax(ctx, scratch, &mut work, vid, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, frontier_empty: bool, _any_update: bool) -> SweepControl {
        std::mem::swap(&mut self.active, &mut self.next_active);
        self.next_active.fill(false);
        if frontier_empty {
            SweepControl::Done
        } else {
            SweepControl::Continue
        }
    }

    fn save_state(&self) -> Vec<u8> {
        // Boundary invariant: `end_sweep` swapped the frontiers and
        // blanked `next_active`, so only `dist` and `active` carry state.
        let mut w = ByteWriter::new();
        state::put_u32s(&mut w, &self.dist);
        state::put_bools(&mut w, &self.active);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u32s(&mut r, "sssp.dist", &mut self.dist)?;
        state::load_bools(&mut r, "sssp.active", &mut self.active)?;
        self.next_active.fill(false);
        r.finish()
    }
}
