//! Radius estimation — the HADI-style neighbourhood-function sketch, one
//! of the PageRank-like (whole-graph sweep) algorithms the paper lists in
//! Sec. 3.3 ("radius estimations").
//!
//! Every vertex carries a reachability sketch. Each sweep ORs each
//! vertex's sketch with its out-neighbours' sketches, so after `h` sweeps
//! the sketch of `v` summarises the set of vertices reachable from `v`
//! within `h` hops. A vertex's *estimated eccentricity* is the last sweep
//! at which its sketch changed; sweeping until no sketch changes yields
//! every vertex's estimate plus the graph's (out-)radius and effective
//! diameter.
//!
//! Sketches are 64-bit. For graphs of ≤ 64 vertices the sketch is the
//! exact reachability bitset (used by the tests to validate against exact
//! eccentricities); for larger graphs it is a Flajolet–Martin register
//! (the hash's trailing-zero count sets one bit), trading exactness for
//! constant space, exactly as HADI does.

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;

/// Radius-estimation vertex program.
///
/// Double-buffered like PageRank: the previous sweep's sketches play the
/// read-only (streamed) role and the current sweep's the device-resident
/// one, which keeps the propagation level-synchronous — after `h` sweeps a
/// sketch summarises exactly the ≤ h-hop neighbourhood, so `last_change`
/// is the (estimated) eccentricity.
pub struct RadiusEstimation {
    /// RA role: sketches as of the previous sweep.
    prev: Vec<u64>,
    /// WA role: sketches being built this sweep.
    cur: Vec<u64>,
    /// Last sweep (1-based) at which each vertex's sketch grew.
    last_change: Vec<u16>,
    changed: bool,
    exact: bool,
}

impl RadiusEstimation {
    /// Prepare for `num_vertices`. Sketches are exact bitsets when the
    /// graph has at most 64 vertices, FM registers otherwise.
    pub fn new(num_vertices: u64) -> Self {
        let exact = num_vertices <= 64;
        let mask = (0..num_vertices)
            .map(|v| if exact { 1u64 << v } else { 1u64 << fm_bit(v) })
            .collect();
        let mask: Vec<u64> = mask;
        RadiusEstimation {
            cur: mask.clone(),
            prev: mask,
            last_change: vec![0; num_vertices as usize],
            changed: false,
            exact,
        }
    }

    /// Estimated out-eccentricity per vertex (exact for ≤ 64 vertices).
    pub fn eccentricities(&self) -> &[u16] {
        &self.last_change
    }

    /// Estimated radius: the smallest eccentricity among vertices that can
    /// reach anything (eccentricity 0 vertices reach nothing and are
    /// excluded, matching the usual convention for digraph radius over
    /// non-trivial vertices). `None` for edgeless graphs.
    pub fn radius(&self) -> Option<u16> {
        self.last_change.iter().copied().filter(|&e| e > 0).min()
    }

    /// Estimated (out-)diameter: the largest eccentricity.
    pub fn diameter(&self) -> u16 {
        self.last_change.iter().copied().max().unwrap_or(0)
    }

    /// Whether sketches are exact bitsets.
    pub fn is_exact(&self) -> bool {
        self.exact
    }
}

/// Flajolet–Martin register bit for a vertex: trailing zeros of a mixed
/// hash, capped to keep the register in range.
fn fm_bit(v: u64) -> u32 {
    let mut z = v.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^= z >> 31;
    (z.trailing_zeros()).min(63)
}

impl GtsProgram for RadiusEstimation {
    fn kind(&self) -> AlgorithmKind {
        // One 8-byte sketch per vertex: CC's WA class.
        AlgorithmKind::ConnectedComponents
    }

    fn name(&self) -> &'static str {
        "RadiusEstimation"
    }

    fn ra_bytes_per_vertex(&self) -> u64 {
        // The previous sweep's sketches play the streamed read-only role,
        // exactly like PageRank's prevPR — 8 bytes per vertex.
        8
    }

    fn class(&self) -> KernelClass {
        KernelClass::Compute
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        let sweep = ctx.sweep as u16 + 1;
        visit_page(ctx.view, |vid, len, _kind, rids| {
            scratch.degrees.push(len);
            work.active_vertices += 1;
            // Pull strictly from the previous sweep's sketches, so one
            // sweep advances exactly one hop (synchronous semantics).
            let mut acc = self.prev[vid as usize];
            for rid in rids {
                work.active_edges += 1;
                work.atomic_ops += 1;
                acc |= self.prev[ctx.rvt.translate(rid) as usize];
            }
            // OR-merge rather than assign: a multi-chunk Large-Page vertex
            // is visited once per chunk and each chunk contributes a
            // different adjacency subset. (Sketches only grow, and the
            // stale value left in `cur` from two sweeps ago is a subset of
            // `prev`, so the merge is exact.)
            self.cur[vid as usize] |= acc;
            if self.cur[vid as usize] != self.prev[vid as usize] {
                self.last_change[vid as usize] = sweep;
                self.changed = true;
                work.updated = true;
            }
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, _frontier_empty: bool, _any_update: bool) -> SweepControl {
        std::mem::swap(&mut self.prev, &mut self.cur);
        if self.changed {
            self.changed = false;
            SweepControl::Continue
        } else {
            SweepControl::Done
        }
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        state::put_u64s(&mut w, &self.prev);
        state::put_u64s(&mut w, &self.cur);
        state::put_u16s(&mut w, &self.last_change);
        w.put_bool(self.changed);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u64s(&mut r, "radius.prev", &mut self.prev)?;
        state::load_u64s(&mut r, "radius.cur", &mut self.cur)?;
        state::load_u16s(&mut r, "radius.last_change", &mut self.last_change)?;
        self.changed = r.take_bool("radius.changed")?;
        r.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Gts, GtsConfig};
    use gts_graph::generate::rmat;
    use gts_graph::{reference, Csr, EdgeList};
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    fn run(graph: &EdgeList) -> RadiusEstimation {
        let store = build_graph_store(
            graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512),
        )
        .unwrap();
        let mut r = RadiusEstimation::new(store.num_vertices());
        Gts::new(GtsConfig::default()).run(&store, &mut r).unwrap();
        r
    }

    /// Exact out-eccentricity via BFS (finite distances only).
    fn ecc(csr: &Csr, v: u32) -> u16 {
        reference::bfs(csr, v)
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap() as u16
    }

    #[test]
    fn exact_mode_matches_bfs_eccentricities() {
        // 60 vertices: exact-bitset mode.
        let graph = EdgeList::new(
            60,
            (0..59u32)
                .map(|i| (i, i + 1))
                .chain([(59, 0), (0, 30)])
                .collect(),
        );
        let csr = Csr::from_edge_list(&graph);
        let r = run(&graph);
        assert!(r.is_exact());
        for v in 0..60u32 {
            assert_eq!(r.eccentricities()[v as usize], ecc(&csr, v), "vertex {v}");
        }
        assert_eq!(
            r.radius().unwrap(),
            (0..60).map(|v| ecc(&csr, v)).min().unwrap()
        );
        assert_eq!(r.diameter(), (0..60).map(|v| ecc(&csr, v)).max().unwrap());
    }

    #[test]
    fn estimates_are_lower_bounded_by_nothing_and_upper_bounded_by_ecc() {
        // FM mode on a bigger graph: sketch saturation can only *stop
        // early*, so the estimate never exceeds the true eccentricity.
        let graph = rmat(9);
        let csr = Csr::from_edge_list(&graph);
        let r = run(&graph);
        assert!(!r.is_exact());
        for v in (0..graph.num_vertices).step_by(37) {
            assert!(r.eccentricities()[v as usize] <= ecc(&csr, v), "vertex {v}");
        }
    }

    #[test]
    fn isolated_vertices_have_zero_eccentricity() {
        let graph = EdgeList::new(10, vec![(0, 1)]);
        let r = run(&graph);
        assert_eq!(r.eccentricities()[5], 0);
        assert_eq!(r.eccentricities()[0], 1);
        assert_eq!(r.radius(), Some(1));
    }

    #[test]
    fn edgeless_graph_has_no_radius() {
        let r = run(&EdgeList::new(8, vec![]));
        assert_eq!(r.radius(), None);
        assert_eq!(r.diameter(), 0);
    }

    #[test]
    fn multi_chunk_hub_merges_all_chunks() {
        // A hub with 60 out-edges at page_size 512 spans several LP chunks
        // in exact-bitset mode (62 vertices <= 64): its sketch must union
        // every chunk's contribution, giving the true eccentricity.
        let mut edges: Vec<(u32, u32)> = (1..=60).map(|i| (0, i)).collect();
        edges.push((60, 61)); // one vertex two hops out
        let graph = EdgeList::new(62, edges);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 128),
        )
        .unwrap();
        assert!(store.large_pids().len() > 1, "hub must span chunks");
        let mut r = RadiusEstimation::new(store.num_vertices());
        Gts::new(GtsConfig::default()).run(&store, &mut r).unwrap();
        assert!(r.is_exact());
        let csr = Csr::from_edge_list(&graph);
        for v in 0..62u32 {
            assert_eq!(r.eccentricities()[v as usize], ecc(&csr, v), "vertex {v}");
        }
    }

    #[test]
    fn deep_chain_has_large_diameter_estimate() {
        let n = 3000u32;
        let graph = EdgeList::new(n, (0..n - 1).map(|i| (i, i + 1)).collect());
        let r = run(&graph);
        // FM collisions shrink the estimate, but a 3000-hop chain must
        // still register a deep diameter.
        assert!(r.diameter() > 100, "diameter estimate {}", r.diameter());
    }
}
