//! Weakly connected components (Appendix D).
//!
//! PageRank-like access pattern (full sweeps over the topology) with
//! traversal-class arithmetic: min-label propagation. Each kernel pushes a
//! vertex's label to its out-neighbours with `atomicMin` and pulls the
//! minimum neighbour label back, so labels flow against edge direction as
//! well — converging to the weakly-connected fixpoint where every vertex
//! carries the minimum vertex ID of its component (the same labelling as
//! `gts_graph::reference::connected_components`).

use super::{
    state, visit_page, ExecMode, GtsProgram, KernelScratch, PageCtx, PageWork, SweepControl,
};
use crate::attrs::AlgorithmKind;
use gts_ckpt::{ByteReader, ByteWriter, CkptError};
use gts_gpu::timer::KernelClass;
use gts_storage::builder::GraphStore;
use gts_storage::MutationOutcome;

/// Connected-components vertex program.
pub struct Cc {
    /// WA: 8-byte component labels (Table 4's CC row).
    label: Vec<u64>,
}

impl Cc {
    /// CC over `num_vertices`; every vertex starts in its own component.
    pub fn new(num_vertices: u64) -> Self {
        Cc {
            label: (0..num_vertices).collect(),
        }
    }

    /// Final component labels (minimum vertex ID per component).
    pub fn labels(&self) -> &[u64] {
        &self.label
    }

    /// Labels narrowed to the reference format.
    pub fn labels_u32(&self) -> Vec<u32> {
        self.label.iter().map(|&l| l as u32).collect()
    }

    fn propagate(
        &mut self,
        ctx: &PageCtx<'_>,
        work: &mut PageWork,
        vid: u64,
        rids: &mut dyn Iterator<Item = gts_storage::RecordId>,
    ) {
        let mut lv = self.label[vid as usize];
        let mut pulled = lv;
        for rid in rids {
            work.active_edges += 1;
            work.atomic_ops += 2; // atomicMin both directions
            let adj_vid = ctx.rvt.translate(rid) as usize;
            let la = self.label[adj_vid];
            if lv < la {
                self.label[adj_vid] = lv;
                work.updated = true;
            } else if la < pulled {
                pulled = la;
            }
        }
        if pulled < lv {
            self.label[vid as usize] = pulled;
            lv = pulled;
            let _ = lv;
            work.updated = true;
        }
    }
}

impl GtsProgram for Cc {
    fn kind(&self) -> AlgorithmKind {
        AlgorithmKind::ConnectedComponents
    }

    fn class(&self) -> KernelClass {
        KernelClass::Traversal
    }

    fn mode(&self) -> ExecMode {
        ExecMode::Sweep
    }

    fn start_vertex(&self) -> Option<u64> {
        None
    }

    fn process_page(&mut self, ctx: &PageCtx<'_>, scratch: &mut KernelScratch) -> PageWork {
        scratch.reset();
        let mut work = PageWork::default();
        visit_page(ctx.view, |vid, len, _kind, rids| {
            scratch.degrees.push(len);
            work.active_vertices += 1;
            self.propagate(ctx, &mut work, vid, rids);
        });
        work.lane_slots = ctx.technique.lane_slots(&scratch.degrees);
        work
    }

    fn end_sweep(&mut self, _sweep: u32, _frontier_empty: bool, any_update: bool) -> SweepControl {
        if any_update {
            SweepControl::Continue
        } else {
            SweepControl::Done
        }
    }

    fn on_mutation(&mut self, _store: &GraphStore, outcome: &MutationOutcome) -> Vec<u64> {
        // Labels are already a fixpoint of the old topology, so only the
        // rewritten and freshly-allocated pages can start new propagation:
        // seed exactly those. Min-label propagation is monotone, so if the
        // restricted sweep updates anything the engine falls back to full
        // sweeps until the new fixpoint; if it updates nothing, the old
        // labels were already correct. (Deletions never *raise* labels —
        // a split component keeps its old minimum; documented in
        // DESIGN.md §12.)
        outcome
            .dirty_pids
            .iter()
            .chain(&outcome.new_pids)
            .copied()
            .collect()
    }

    fn save_state(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        state::put_u64s(&mut w, &self.label);
        w.into_bytes()
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), CkptError> {
        let mut r = ByteReader::new(bytes);
        state::load_u64s(&mut r, "cc.label", &mut self.label)?;
        r.finish()
    }
}
