#![warn(missing_docs)]
// The sweep-pipeline decomposition must stick: any function growing back
// toward the old 320-line `Gts::run` monolith trips this lint (threshold
// in clippy.toml at the workspace root).
#![warn(clippy::too_many_lines)]

//! # gts-core — the GTS engine
//!
//! The paper's contribution: processing graphs far larger than GPU device
//! memory by **storing only updatable attribute data (WA) on the GPU and
//! streaming topology data to it** over PCI-E, page by page, through
//! asynchronous streams (Sections 3–6 of the paper).
//!
//! * [`engine::Gts`] implements Algorithm 1: the `nextPIDSet` /
//!   `cachedPIDMap` / `MMBuf` machinery, SP-then-LP phase separation,
//!   multi-stream copy/kernel pipelining, and the GPU-side page cache.
//! * [`programs`] holds the user-level vertex programs with the GPU kernels
//!   of Appendix B (BFS, PageRank) and Appendix D (SSSP, CC, BC), written
//!   against the warp-cost model of `gts-gpu`.
//! * [`strategy`] implements Strategy-P (partition topology, replicate WA,
//!   peer-to-peer merge) and Strategy-S (partition WA, broadcast topology)
//!   from Section 4.
//! * [`cost`] is Section 5's analytic cost models, Eq. (1) and Eq. (2), as
//!   executable functions compared against the simulator in the benches.
//!
//! ## Quick start
//!
//! ```
//! use gts_core::engine::Gts;
//! use gts_core::programs::Bfs;
//! use gts_graph::generate::rmat;
//! use gts_storage::{build_graph_store, PageFormatConfig};
//!
//! let graph = rmat(10);
//! let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
//! let engine = Gts::builder().num_streams(16).build().unwrap();
//! let mut bfs = Bfs::new(store.num_vertices(), 0);
//! let report = engine.run(&store, &mut bfs).unwrap();
//! assert!(report.elapsed.as_nanos() > 0);
//! let levels = bfs.levels();
//! assert_eq!(levels[0], 0);
//! ```
//!
//! ## Observability
//!
//! Every run records into a [`gts_telemetry::Telemetry`] handle: a counter
//! registry (pages streamed, cache hits, kernel launches, bytes moved, ...)
//! plus — when built with [`Telemetry::with_spans`] — the per-stream
//! copy/kernel spans behind the paper's Fig. 4. The returned [`RunReport`]
//! is a *view* derived from those counters, and
//! [`Telemetry::to_chrome_trace`] exports a Perfetto-loadable JSON trace:
//!
//! ```
//! use gts_core::engine::Gts;
//! use gts_core::programs::Bfs;
//! use gts_core::Telemetry;
//! use gts_graph::generate::rmat;
//! use gts_storage::{build_graph_store, PageFormatConfig};
//!
//! let store = build_graph_store(&rmat(8), PageFormatConfig::small_default()).unwrap();
//! let engine = Gts::builder().telemetry(Telemetry::with_spans()).build().unwrap();
//! let mut bfs = Bfs::new(store.num_vertices(), 0);
//! engine.run(&store, &mut bfs).unwrap();
//! let trace = engine.telemetry().to_chrome_trace();
//! assert!(trace.contains("traceEvents"));
//! ```

pub mod attrs;
pub mod cost;
pub mod engine;
pub mod job;
pub mod programs;
pub mod queries;
pub mod report;
pub mod strategy;
pub mod sweep;

pub use engine::{
    CheckpointConfig, ConfigError, EngineError, Gts, GtsBuilder, GtsConfig, MutationSchedule,
    StorageLocation,
};
pub use gts_faults::{CrashPoint, FaultConfig, FaultPlan};
pub use gts_storage::{EdgeOp, MutateError, MutationBatch, MutationOutcome};
pub use gts_telemetry::Telemetry;
pub use job::{Engine, JobContext, JobOptions};
pub use report::RunReport;
pub use strategy::Strategy;
pub use sweep::ckpt::{snapshot_progress, store_fingerprint};
