#![warn(missing_docs)]

//! # gts-core — the GTS engine
//!
//! The paper's contribution: processing graphs far larger than GPU device
//! memory by **storing only updatable attribute data (WA) on the GPU and
//! streaming topology data to it** over PCI-E, page by page, through
//! asynchronous streams (Sections 3–6 of the paper).
//!
//! * [`engine::Gts`] implements Algorithm 1: the `nextPIDSet` /
//!   `cachedPIDMap` / `MMBuf` machinery, SP-then-LP phase separation,
//!   multi-stream copy/kernel pipelining, and the GPU-side page cache.
//! * [`programs`] holds the user-level vertex programs with the GPU kernels
//!   of Appendix B (BFS, PageRank) and Appendix D (SSSP, CC, BC), written
//!   against the warp-cost model of `gts-gpu`.
//! * [`strategy`] implements Strategy-P (partition topology, replicate WA,
//!   peer-to-peer merge) and Strategy-S (partition WA, broadcast topology)
//!   from Section 4.
//! * [`cost`] is Section 5's analytic cost models, Eq. (1) and Eq. (2), as
//!   executable functions compared against the simulator in the benches.
//!
//! ## Quick start
//!
//! ```
//! use gts_core::engine::{Gts, GtsConfig};
//! use gts_core::programs::Bfs;
//! use gts_graph::generate::rmat;
//! use gts_storage::{build_graph_store, PageFormatConfig};
//!
//! let graph = rmat(10);
//! let store = build_graph_store(&graph, PageFormatConfig::small_default()).unwrap();
//! let mut engine = Gts::new(GtsConfig::default());
//! let mut bfs = Bfs::new(store.num_vertices(), 0);
//! let report = engine.run(&store, &mut bfs).unwrap();
//! assert!(report.elapsed.as_nanos() > 0);
//! let levels = bfs.levels();
//! assert_eq!(levels[0], 0);
//! ```

pub mod attrs;
pub mod cost;
pub mod engine;
pub mod programs;
pub mod queries;
pub mod report;
pub mod strategy;

pub use engine::{EngineError, Gts, GtsConfig, StorageLocation};
pub use report::RunReport;
pub use strategy::Strategy;
