//! Attribute-data accounting: the WA/RA split of Section 3.1.
//!
//! GTS divides per-vertex attribute data into **WA** (read/write — must be
//! resident in device memory because it is updated randomly and frequently)
//! and **RA** (read-only — streamed to the device alongside each topology
//! page). Keeping *only* WA resident is what lets billion-scale graphs fit:
//! Table 4 shows WA is 1.7–10 % of topology size.
//!
//! This module centralises the per-algorithm WA/RA byte layouts so both the
//! engine's device-memory allocator and the Table 4 bench use one source of
//! truth.

/// The five algorithms of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AlgorithmKind {
    /// Breadth-first search (traversal; Appendix B.1).
    Bfs,
    /// PageRank (full-sweep; Appendix B.2).
    PageRank,
    /// Single-source shortest paths (traversal; Appendix D).
    Sssp,
    /// Weakly connected components (full-sweep; Appendix D).
    ConnectedComponents,
    /// Betweenness centrality (traversal, two phases; Appendix D).
    BetweennessCentrality,
}

impl AlgorithmKind {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            AlgorithmKind::Bfs => "BFS",
            AlgorithmKind::PageRank => "PageRank",
            AlgorithmKind::Sssp => "SSSP",
            AlgorithmKind::ConnectedComponents => "CC",
            AlgorithmKind::BetweennessCentrality => "BC",
        }
    }

    /// WA bytes per vertex (the paper's Table 4 row logic: BFS keeps a
    /// 2-byte traversal level LV; PageRank a 4-byte nextPR; SSSP a 4-byte
    /// distance; CC an 8-byte component label; BC needs σ, δ, the level and
    /// the accumulating centrality).
    pub fn wa_bytes_per_vertex(&self) -> u64 {
        match self {
            AlgorithmKind::Bfs => 2,
            AlgorithmKind::PageRank => 4,
            AlgorithmKind::Sssp => 4,
            AlgorithmKind::ConnectedComponents => 8,
            AlgorithmKind::BetweennessCentrality => 14, // sigma f32 + delta f32 + bc f32 + level u16
        }
    }

    /// RA bytes per vertex, streamed with each page (only PageRank carries
    /// a read-only vector — prevPR — in a given iteration; Sec. 3.1).
    pub fn ra_bytes_per_vertex(&self) -> u64 {
        match self {
            AlgorithmKind::PageRank => 4,
            _ => 0,
        }
    }

    /// Total WA bytes for a graph of `num_vertices`.
    pub fn wa_bytes(&self, num_vertices: u64) -> u64 {
        self.wa_bytes_per_vertex() * num_vertices
    }

    /// Total RA bytes for a graph of `num_vertices`.
    pub fn ra_bytes(&self, num_vertices: u64) -> u64 {
        self.ra_bytes_per_vertex() * num_vertices
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table4_ratios_hold_at_paper_scale() {
        // RMAT28: 256M vertices, 20 GB topology (Table 4). WA must be a
        // small fraction of topology: 1.7 %–10 % per the paper's Sec. 7.1.
        let v: u64 = 256 * 1024 * 1024;
        let topology: u64 = 20 * (1 << 30);
        for alg in [
            AlgorithmKind::Bfs,
            AlgorithmKind::PageRank,
            AlgorithmKind::Sssp,
            AlgorithmKind::ConnectedComponents,
        ] {
            let ratio = alg.wa_bytes(v) as f64 / topology as f64;
            assert!(
                ratio < 0.11,
                "{} WA ratio {ratio} out of the paper's band",
                alg.name()
            );
        }
    }

    #[test]
    fn paper_table4_absolute_sizes() {
        // Table 4's RMAT28 row: BFS 0.5 GB, PageRank 1 GB, SSSP 1 GB,
        // CC 2 GB for 256M vertices.
        let v: u64 = 256 * 1024 * 1024;
        assert_eq!(AlgorithmKind::Bfs.wa_bytes(v), 512 << 20);
        assert_eq!(AlgorithmKind::PageRank.wa_bytes(v), 1 << 30);
        assert_eq!(AlgorithmKind::Sssp.wa_bytes(v), 1 << 30);
        assert_eq!(AlgorithmKind::ConnectedComponents.wa_bytes(v), 2 << 30);
    }

    #[test]
    fn only_pagerank_streams_ra() {
        assert_eq!(AlgorithmKind::PageRank.ra_bytes_per_vertex(), 4);
        assert_eq!(AlgorithmKind::Bfs.ra_bytes_per_vertex(), 0);
        assert_eq!(AlgorithmKind::Sssp.ra_bytes_per_vertex(), 0);
    }
}
