//! Section 5's analytic cost models, as executable functions.
//!
//! Eq. (1) — PageRank-like algorithms (one full sweep):
//!
//! ```text
//! 2|WA|/c1 + (|RA|+|SP|+|LP|)/(c2·N) + tcall((S+L)/N)
//!          + tkernel(SP|1| + LP|1|) + tsync(N)
//! ```
//!
//! Eq. (2) — BFS-like algorithms (level-by-level):
//!
//! ```text
//! 2|WA|/c1 + Σ_l [ (|RA{l}|+|SP{l}|+|LP{l}|) / (c2·N·dskew) · (1−rhit)
//!                  + tcall((S{l}+L{l}) / (N·dskew)) ]
//! ```
//!
//! The `cost_model` bench compares these against the simulator's measured
//! elapsed times (the paper does the same sanity check in Sec. 7.5, e.g.
//! "153 seconds … approximately equal to 114 × 10 ÷ 6 = 190 seconds").

use gts_sim::{Bandwidth, SimDuration};

/// Inputs shared by both models.
#[derive(Debug, Clone)]
pub struct CostParams {
    /// Total read/write attribute bytes |WA|.
    pub wa_bytes: u64,
    /// Chunk-copy rate c1.
    pub c1: Bandwidth,
    /// Streaming-copy rate c2.
    pub c2: Bandwidth,
    /// Number of GPUs N.
    pub num_gpus: u64,
    /// Kernel-call overhead for one page, tcall(1).
    pub t_call: SimDuration,
    /// Synchronisation overhead per GPU, tsync(1) (Strategy-P's per-GPU
    /// merge cost).
    pub t_sync: SimDuration,
}

/// Eq. (1): one PageRank-like sweep.
///
/// `ra_bytes`/`sp_bytes`/`lp_bytes` are totals; `num_pages = S + L`;
/// `t_kernel_last` is the execution time of the final SP and LP kernels
/// that no further transfer can hide.
pub fn pagerank_like(
    p: &CostParams,
    ra_bytes: u64,
    sp_bytes: u64,
    lp_bytes: u64,
    num_pages: u64,
    t_kernel_last: SimDuration,
) -> SimDuration {
    let wa = p.c1.transfer_time(2 * p.wa_bytes);
    let stream =
        p.c2.transfer_time((ra_bytes + sp_bytes + lp_bytes) / p.num_gpus.max(1));
    let calls = p.t_call * (num_pages / p.num_gpus.max(1));
    let sync = p.t_sync * p.num_gpus;
    wa + stream + calls + t_kernel_last + sync
}

/// One traversal level's streaming volume for Eq. (2).
#[derive(Debug, Clone, Copy)]
pub struct LevelVolume {
    /// Bytes of RA + SP + LP streamed at this level.
    pub bytes: u64,
    /// Pages visited at this level (S{l} + L{l}).
    pub pages: u64,
}

/// Eq. (2): a BFS-like traversal.
///
/// `d_skew` ∈ [1/N, 1] is the workload-balance factor (1 = perfectly
/// balanced); `r_hit` ∈ [0, 1] the cache hit rate.
pub fn bfs_like(p: &CostParams, levels: &[LevelVolume], d_skew: f64, r_hit: f64) -> SimDuration {
    assert!((0.0..=1.0).contains(&r_hit), "r_hit must be in [0,1]");
    assert!(d_skew > 0.0 && d_skew <= 1.0, "d_skew must be in (0,1]");
    let mut total = p.c1.transfer_time(2 * p.wa_bytes);
    let denom = p.num_gpus as f64 * d_skew;
    for l in levels {
        let transfer = p.c2.transfer_time(l.bytes).as_nanos() as f64 / denom * (1.0 - r_hit);
        let calls = p.t_call.as_nanos() as f64 * l.pages as f64 / denom;
        total += SimDuration::from_nanos((transfer + calls).round() as u64);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(n: u64) -> CostParams {
        CostParams {
            wa_bytes: 1 << 20,
            c1: Bandwidth::gib_per_sec(16),
            c2: Bandwidth::gib_per_sec(6),
            num_gpus: n,
            t_call: SimDuration::from_micros(10),
            t_sync: SimDuration::from_millis(1),
        }
    }

    #[test]
    fn pagerank_model_sec75_example() {
        // Sec. 7.5: 10 PageRank iterations over a 114 GB RMAT30 at c2 =
        // 6 GB/s ≈ 190 s. One iteration ≈ 19 s dominated by streaming.
        let p = CostParams {
            wa_bytes: 4 * (1u64 << 30) / 4, // 1G vertices × 4 B / 4 (not dominant)
            c1: Bandwidth::gib_per_sec(16),
            c2: Bandwidth::gib_per_sec(6),
            num_gpus: 1,
            t_call: SimDuration::ZERO,
            t_sync: SimDuration::ZERO,
        };
        let topo = 114 * (1u64 << 30);
        let t = pagerank_like(&p, 0, topo, 0, 0, SimDuration::ZERO);
        let secs = t.as_secs_f64();
        assert!((18.0..21.0).contains(&secs), "one sweep ≈ 19 s, got {secs}");
    }

    #[test]
    fn streaming_term_scales_with_gpus() {
        let one = pagerank_like(&params(1), 0, 6 << 30, 0, 600, SimDuration::ZERO);
        let two = pagerank_like(&params(2), 0, 6 << 30, 0, 600, SimDuration::ZERO);
        assert!(two < one);
        // But the WA term does not shrink: speedup is sub-linear.
        assert!(two.as_nanos() * 2 > one.as_nanos());
    }

    #[test]
    fn sync_overhead_grows_with_gpus() {
        let base = params(1);
        let mut many = params(8);
        many.wa_bytes = 0;
        let mut one = base.clone();
        one.wa_bytes = 0;
        let t1 = pagerank_like(&one, 0, 0, 0, 0, SimDuration::ZERO);
        let t8 = pagerank_like(&many, 0, 0, 0, 0, SimDuration::ZERO);
        assert!(t8 > t1, "tsync(N) increases with N");
    }

    #[test]
    fn bfs_model_sums_levels_and_applies_cache() {
        let p = params(1);
        let levels = vec![
            LevelVolume {
                bytes: 1 << 20,
                pages: 16,
            },
            LevelVolume {
                bytes: 4 << 20,
                pages: 64,
            },
        ];
        let cold = bfs_like(&p, &levels, 1.0, 0.0);
        let hot = bfs_like(&p, &levels, 1.0, 0.9);
        assert!(hot < cold, "cache hits remove transfer time");
        // With full cache hits only the call overhead and WA term remain.
        let all_hits = bfs_like(&p, &levels, 1.0, 1.0);
        let wa_only = p.c1.transfer_time(2 * p.wa_bytes) + p.t_call * 80;
        assert_eq!(all_hits, wa_only);
    }

    #[test]
    fn skew_degrades_bfs_scaling() {
        let p = params(4);
        let levels = vec![LevelVolume {
            bytes: 64 << 20,
            pages: 1024,
        }];
        let balanced = bfs_like(&p, &levels, 1.0, 0.0);
        let skewed = bfs_like(&p, &levels, 0.25, 0.0);
        // dskew = 1/N: as slow as a single GPU.
        assert!(skewed > balanced);
        let single = bfs_like(&params(1), &levels, 1.0, 0.0);
        let diff = skewed.as_secs_f64() - single.as_secs_f64();
        assert!(diff.abs() < 1e-6, "fully skewed 4-GPU ≈ 1 GPU");
    }

    #[test]
    #[should_panic(expected = "r_hit")]
    fn invalid_hit_rate_rejected() {
        let _ = bfs_like(&params(1), &[], 1.0, 1.5);
    }
}
