//! Stage 2 — ingest: when is a page's data ready on the host?
//!
//! Algorithm 1 lines 15-26: if the page sits in the main-memory buffer
//! (MMBuf) it is ready immediately; otherwise it is fetched from the
//! secondary-storage array first (and admitted to the MMBuf). Crucially,
//! line 16 precedes all of that: a page that *every* target GPU already
//! caches generates no storage traffic and no MMBuf churn at all — that
//! rule lives here, in exactly one place, as the `all_cached` fast path.
//!
//! A [`PageSource`] answers only the "when" question on the simulated
//! clock; scheduling the resulting H2D copies is the next stage
//! ([`crate::sweep::schedule`]). Every storage fetch verifies the page's
//! trailer checksum and is subject to the run's fault plan (injected
//! transient read errors and torn pages, bounded retry with backoff,
//! drive quarantine) — see `gts_storage::StorageArray::fetch` and its
//! default verify+retry `gts_storage::FetchPolicy`.

use crate::engine::{EngineError, GtsConfig, StorageLocation};
use gts_faults::FaultPlan;
use gts_sim::SimTime;
use gts_storage::device::StorageArray;
use gts_storage::mmbuf::MmBuf;
use gts_storage::Page;
use gts_telemetry::{keys, Telemetry};

/// Where streamed pages come from, on the simulated clock.
pub trait PageSource {
    /// The instant page `pid`'s bytes are available on the host for H2D
    /// scheduling. `all_cached` is the Alg. 1 line-16 predicate: every
    /// target GPU holds the page, so the source must not be touched (no
    /// storage fetch, no MMBuf admission). `page` is the page itself so
    /// a storage-backed source can verify its trailer checksum; a fetch
    /// that keeps failing surfaces as a typed error, never a panic.
    fn page_ready(
        &mut self,
        pid: u64,
        page: &Page,
        all_cached: bool,
        sweep_start: SimTime,
    ) -> Result<SimTime, EngineError>;

    /// Flush the source's counters (MMBuf hits/misses, I/O bytes) into
    /// `tel`'s registry at end of run.
    fn flush_to(&self, tel: &Telemetry);

    /// Checkpoint-boundary reset: discard warm state a resumed run could
    /// not rebuild (the MMBuf ring), banking its statistics first so run
    /// totals survive. The in-memory source holds no such state.
    fn checkpoint_reset(&mut self) {}

    /// Per-drive recovery state (quarantine flags, consecutive-failure
    /// counts) for a snapshot; empty for sources without drives.
    fn export_recovery(&self) -> (Vec<bool>, Vec<u32>) {
        (Vec::new(), Vec::new())
    }

    /// Restore state captured by [`PageSource::export_recovery`]. Ignored
    /// by sources without drives (and by arrays of a different shape).
    fn import_recovery(&mut self, _quarantined: &[bool], _failures: &[u32]) {}

    /// Drop host-side buffered copies of `pids` after a mutation batch
    /// rewrote them: the buffered bytes are stale and the next access must
    /// re-fetch. Sources without host buffering ignore it.
    fn invalidate(&mut self, _pids: &[u64]) {}

    /// Register pages allocated *after* build (delta/overflow pages from a
    /// mutation batch) so storage placement can pin them to surviving
    /// drives instead of the original stripe map. Sources without drives
    /// ignore it.
    fn note_new_pages(&mut self, _pids: &[u64]) {}

    /// A background scrub pass found page `pid`'s at-rest copy failing its
    /// trailer checksum at simulated instant `when`. Storage-backed
    /// sources route the detection to the hosting drive's failure streak
    /// (repeated rot quarantines the drive and re-stripes its pages);
    /// sources without drives ignore it.
    fn note_scrub_detection(&mut self, _pid: u64, _when: SimTime) {}
}

/// The whole graph is resident in main memory (the paper's in-memory
/// setting): every page is ready the moment the sweep starts.
#[derive(Debug, Default)]
pub struct InMemorySource;

impl PageSource for InMemorySource {
    fn page_ready(
        &mut self,
        _pid: u64,
        _page: &Page,
        _all_cached: bool,
        start: SimTime,
    ) -> Result<SimTime, EngineError> {
        Ok(start)
    }

    fn flush_to(&self, _tel: &Telemetry) {}
}

/// Pages stream from a striped storage array through the MMBuf
/// (Alg. 1 lines 9-10, 18-26).
#[derive(Debug)]
pub struct StorageSource {
    array: StorageArray,
    mmbuf: MmBuf,
    /// MMBuf statistics accumulated before checkpoint-boundary clears
    /// (`MmBuf::clear` zeroes its counters along with residency).
    banked_hits: u64,
    banked_misses: u64,
    banked_evictions: u64,
}

impl StorageSource {
    /// A source reading from `array` with `mmbuf` in front.
    pub fn new(array: StorageArray, mmbuf: MmBuf) -> StorageSource {
        StorageSource {
            array,
            mmbuf,
            banked_hits: 0,
            banked_misses: 0,
            banked_evictions: 0,
        }
    }

    /// The underlying MMBuf (hit/miss statistics).
    pub fn mmbuf(&self) -> &MmBuf {
        &self.mmbuf
    }

    /// The underlying storage array (bytes-read statistics).
    pub fn array(&self) -> &StorageArray {
        &self.array
    }
}

impl PageSource for StorageSource {
    fn page_ready(
        &mut self,
        pid: u64,
        page: &Page,
        all_cached: bool,
        start: SimTime,
    ) -> Result<SimTime, EngineError> {
        // Alg. 1 line 16: cached-everywhere pages skip storage entirely.
        if all_cached {
            return Ok(start);
        }
        if self.mmbuf.access(pid) {
            Ok(start)
        } else {
            let bytes = page.size_bytes() as u64;
            let policy = gts_storage::FetchPolicy::verified(page);
            Ok(self.array.fetch(pid, bytes, start, policy)?.end)
        }
    }

    fn flush_to(&self, tel: &Telemetry) {
        tel.add(keys::MMBUF_HITS, self.banked_hits + self.mmbuf.hits());
        tel.add(keys::MMBUF_MISSES, self.banked_misses + self.mmbuf.misses());
        tel.add(
            keys::MMBUF_EVICTIONS,
            self.banked_evictions + self.mmbuf.evictions(),
        );
        self.array.flush_to(tel);
    }

    fn checkpoint_reset(&mut self) {
        // A resumed run's MMBuf starts empty; the checkpointing run must
        // go cold at the same boundary or the ready-times diverge. Bank
        // the counters first — `clear` zeroes them with the residency.
        self.banked_hits += self.mmbuf.hits();
        self.banked_misses += self.mmbuf.misses();
        self.banked_evictions += self.mmbuf.evictions();
        self.mmbuf.clear();
    }

    fn export_recovery(&self) -> (Vec<bool>, Vec<u32>) {
        self.array.export_recovery_state()
    }

    fn import_recovery(&mut self, quarantined: &[bool], failures: &[u32]) {
        self.array.import_recovery_state(quarantined, failures);
    }

    fn invalidate(&mut self, pids: &[u64]) {
        for &pid in pids {
            self.mmbuf.invalidate(pid);
        }
    }

    fn note_new_pages(&mut self, pids: &[u64]) {
        self.array.place_new_pages(pids);
    }

    fn note_scrub_detection(&mut self, pid: u64, when: SimTime) {
        self.array.note_corrupt_page(pid, when);
    }
}

/// Build the source the configuration asks for, telemetry attached.
/// `num_pages` sizes the MMBuf as `cfg.mmbuf_percent` of the graph;
/// `faults` (when present) injects the run's device-read fault schedule.
pub fn for_config(
    cfg: &GtsConfig,
    num_pages: u64,
    tel: &Telemetry,
    faults: Option<&FaultPlan>,
) -> Box<dyn PageSource> {
    let array = match cfg.storage {
        StorageLocation::InMemory => return Box::new(InMemorySource),
        StorageLocation::Ssds(k) => StorageArray::ssds(k),
        StorageLocation::Hdds(k) => StorageArray::hdds(k),
    };
    let mut array = array;
    array.attach_telemetry(tel.clone());
    if let Some(plan) = faults {
        array.attach_faults(plan.clone());
    }
    Box::new(StorageSource::new(
        array,
        MmBuf::with_fraction(num_pages, cfg.mmbuf_percent),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    /// A real, sealed page (valid trailer checksum) for fetch tests; its
    /// size in bytes doubles as the expected I/O accounting unit.
    fn sample_page() -> Page {
        let store = build_graph_store(
            &rmat(6),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        store.page(0).clone()
    }

    #[test]
    fn in_memory_pages_are_always_ready_at_sweep_start() {
        let page = sample_page();
        let mut src = InMemorySource;
        let start = SimTime::ZERO + gts_sim::SimDuration::from_nanos(500);
        for pid in 0..4 {
            assert_eq!(src.page_ready(pid, &page, false, start).unwrap(), start);
        }
        let tel = Telemetry::new();
        src.flush_to(&tel);
        assert!(tel.counters().is_empty(), "nothing to flush");
    }

    #[test]
    fn fully_cached_pages_generate_zero_storage_traffic() {
        let page = sample_page();
        let mut src = StorageSource::new(StorageArray::ssds(2), MmBuf::new(8));
        let start = SimTime::ZERO;
        // Line 16: every target GPU caches the page — the source must not
        // be consulted, so no I/O bytes and no MMBuf admission.
        assert_eq!(src.page_ready(7, &page, true, start).unwrap(), start);
        assert_eq!(src.array().bytes_read(), 0);
        assert_eq!(src.mmbuf().hits() + src.mmbuf().misses(), 0);
        assert!(!src.mmbuf().contains(7), "must not admit a skipped page");
    }

    #[test]
    fn miss_fetches_from_storage_then_mmbuf_serves_the_repeat() {
        let page = sample_page();
        let bytes = page.size_bytes() as u64;
        let mut src = StorageSource::new(StorageArray::ssds(1), MmBuf::new(8));
        let start = SimTime::ZERO;
        // Cold: the page comes off the drive — ready strictly later.
        let ready = src.page_ready(3, &page, false, start).unwrap();
        assert!(ready > start, "SSD fetch takes simulated time");
        assert_eq!(src.array().bytes_read(), bytes);
        assert_eq!(src.mmbuf().misses(), 1);
        // Warm: the MMBuf serves it — ready immediately, no extra I/O.
        let again = src.page_ready(3, &page, false, start).unwrap();
        assert_eq!(again, start);
        assert_eq!(src.array().bytes_read(), bytes);
        assert_eq!(src.mmbuf().hits(), 1);
    }

    #[test]
    fn flush_reports_mmbuf_and_io_counters() {
        let page = sample_page();
        let mut src = StorageSource::new(StorageArray::ssds(1), MmBuf::new(8));
        src.page_ready(0, &page, false, SimTime::ZERO).unwrap();
        src.page_ready(0, &page, false, SimTime::ZERO).unwrap();
        let tel = Telemetry::new();
        src.flush_to(&tel);
        assert_eq!(tel.counter(gts_telemetry::keys::MMBUF_HITS), 1);
        assert_eq!(tel.counter(gts_telemetry::keys::MMBUF_MISSES), 1);
        assert_eq!(
            tel.counter(gts_telemetry::keys::IO_BYTES_READ),
            page.size_bytes() as u64
        );
    }

    #[test]
    fn zero_capacity_mmbuf_always_fetches() {
        let page = sample_page();
        let mut src = StorageSource::new(StorageArray::ssds(1), MmBuf::new(0));
        for _ in 0..3 {
            let r = src.page_ready(1, &page, false, SimTime::ZERO).unwrap();
            assert!(r > SimTime::ZERO);
        }
        assert_eq!(src.array().bytes_read(), 3 * page.size_bytes() as u64);
        assert_eq!(src.mmbuf().hits(), 0);
    }

    #[test]
    fn corrupt_page_surfaces_as_a_typed_engine_error() {
        let mut page = sample_page();
        // Flip one payload bit: the trailer checksum no longer matches.
        page.data[PAGE_HEADER_FLIP] ^= 0x40;
        let mut src = StorageSource::new(StorageArray::ssds(1), MmBuf::new(8));
        match src.page_ready(0, &page, false, SimTime::ZERO) {
            Err(EngineError::Storage(e)) => {
                assert!(e.to_string().contains("checksum"), "{e}");
            }
            other => panic!("expected a storage error, got {other:?}"),
        }
    }

    /// Some payload byte well inside the page (past the 8-byte header).
    const PAGE_HEADER_FLIP: usize = 64;
}
