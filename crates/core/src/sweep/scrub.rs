//! Background scrub: verify the at-rest topology pages between sweeps.
//!
//! A scrub pass walks every page of the store in pid order at a sweep
//! boundary (`GtsConfig::scrub_every` picks the cadence) and checks the
//! page's *at-rest* copy — the bytes that would come back off the drive —
//! against its trailer checksum. The at-rest copy can rot: the fault
//! plan's seeded bit-rot schedule ([`FaultPlan::bit_rot`]) decides, per
//! page and per visit, whether a single bit has flipped since the page
//! was last written. A detection is repaired by rewriting the page from
//! the authoritative in-memory copy (the store itself, which never rots)
//! and is routed to the storage array as a failure of the hosting drive,
//! so persistent rot crosses the same quarantine/re-striping threshold as
//! fetch-time corruption.
//!
//! The pass runs serially in the boundary's accounting region and draws
//! on per-page fault streams, so the `scrub.{pages,errors,repaired}`
//! counters are sim-side deterministic at any `host_threads`. Scrubbing
//! is modelled as background I/O hidden under foreground compute: it
//! advances no simulated time, only the counters and (with spans on) a
//! zero-width marker at the boundary instant.

use crate::sweep::ingest::PageSource;
use gts_faults::FaultPlan;
use gts_sim::SimTime;
use gts_storage::builder::GraphStore;
use gts_storage::Page;
use gts_telemetry::{keys, SpanCat, Telemetry, Track};

/// What one scrub pass found.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ScrubReport {
    /// Pages walked (every page of the store, delta pages included).
    pub pages: u64,
    /// At-rest copies whose trailer checksum failed.
    pub errors: u64,
    /// Detections repaired from the authoritative in-memory copy.
    pub repaired: u64,
}

/// Walk every page of `store`, verify its at-rest copy, repair and route
/// detections, and account the pass under the `scrub.*` counters.
pub(crate) fn scrub_pass(
    store: &GraphStore,
    faults: Option<&FaultPlan>,
    source: &mut dyn PageSource,
    tel: &Telemetry,
    t: SimTime,
    sweep: u32,
) -> ScrubReport {
    let mut report = ScrubReport::default();
    for pid in 0..store.num_pages() {
        let page = store.page(pid);
        report.pages += 1;
        // The seeded schedule decides whether this page's at-rest copy
        // rotted since its last write; the draw happens for every page on
        // every pass so the per-page streams stay aligned.
        let Some(rot) = faults.and_then(|plan| plan.bit_rot(pid, page.size_bytes())) else {
            continue;
        };
        // Detection is the trailer check over the *rotted* bytes, not a
        // trust of the schedule: a flip the checksum cannot see (it never
        // happens for FNV-1a over these sizes, but the code must not
        // assume it) would honestly go unnoticed, exactly like hardware.
        let (off, mask) = rot;
        let mut data = page.data.to_vec();
        data[off] ^= mask;
        let rotted = Page::new(pid, page.kind, data.into_boxed_slice());
        if rotted.checksum_ok() {
            continue;
        }
        report.errors += 1;
        // Repair: rewrite the at-rest copy from the in-memory page (the
        // bit-flip is self-inverse, so the store stays byte-identical),
        // and charge the detection to the hosting drive.
        report.repaired += 1;
        source.note_scrub_detection(pid, t);
    }
    tel.add(keys::SCRUB_PAGES, report.pages);
    tel.add(keys::SCRUB_ERRORS, report.errors);
    tel.add(keys::SCRUB_REPAIRED, report.repaired);
    if tel.spans_enabled() {
        tel.record_span(
            Track::new(keys::pid::ENGINE, 0),
            SpanCat::Io,
            format!("scrub sweep {sweep}"),
            t,
            t,
        );
    }
    report
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests panic on failure by design
mod tests {
    use super::*;
    use crate::sweep::ingest::InMemorySource;
    use gts_faults::FaultConfig;
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    fn small_store() -> GraphStore {
        build_graph_store(
            &rmat(8),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap()
    }

    #[test]
    fn clean_pass_walks_every_page_and_finds_nothing() {
        let store = small_store();
        let tel = Telemetry::new();
        let r = scrub_pass(&store, None, &mut InMemorySource, &tel, SimTime::ZERO, 4);
        assert_eq!(r.pages, store.num_pages());
        assert_eq!(r.errors, 0);
        assert_eq!(r.repaired, 0);
        assert_eq!(tel.counter(keys::SCRUB_PAGES), store.num_pages());
        assert_eq!(tel.counter(keys::SCRUB_ERRORS), 0);
    }

    #[test]
    fn bit_rot_is_detected_repaired_and_deterministic() {
        let store = small_store();
        let run = || {
            let mut cfg = FaultConfig::quiet(0xB17);
            cfg.bit_rot_ppm = 400_000; // rot ~40% of pages per pass
            let plan = FaultPlan::new(cfg);
            let tel = Telemetry::new();
            let r = scrub_pass(
                &store,
                Some(&plan),
                &mut InMemorySource,
                &tel,
                SimTime::ZERO,
                4,
            );
            (r, tel.counter(keys::SCRUB_REPAIRED))
        };
        let (a, repaired) = run();
        assert_eq!(a.pages, store.num_pages());
        assert!(a.errors > 0, "a 40% rate must hit at least one page");
        assert_eq!(a.repaired, a.errors, "every detection is repairable");
        assert_eq!(repaired, a.repaired);
        // Same seed, same pass: the schedule is a pure function.
        let (b, _) = run();
        assert_eq!(a, b);
    }
}
