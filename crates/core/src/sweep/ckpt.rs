//! Stage 6 — checkpointing: snapshot the sweep loop's resumable state.
//!
//! A snapshot is taken at a *sweep boundary* (the top of the loop, after
//! the previous sweep's `end_sweep`), where every program's accumulators
//! are in their between-sweeps shape. It captures exactly the state a
//! resumed process cannot recompute:
//!
//! * the simulated clock, sweep index, and edge total,
//! * the effective (possibly degraded) execution rung,
//! * the telemetry counter registry — including what the lanes and the
//!   page source would flush at finalize, folded in through a scratch
//!   registry so the live one is untouched,
//! * the program's attribute vectors ([`GtsProgram::save_state`]),
//! * the next sweep's page plan,
//! * the fault plan's per-entity RNG cursors, and
//! * the storage array's quarantine flags.
//!
//! Deliberately *not* captured: GPU page caches, the MMBuf, GPU timers,
//! and drive queues. Caches and the MMBuf are reset cold at every
//! boundary (statistics banked first) so the checkpointing run and the
//! resumed run see identical schedules; timers and drive queues are fully
//! drained at the boundary barrier, so fresh ones behave identically.

use crate::engine::{EngineError, GtsConfig, StorageLocation};
use crate::job::LaneSetup;
use crate::programs::GtsProgram;
use crate::strategy::Strategy;
use crate::sweep::ingest::PageSource;
use crate::sweep::plan::SweepPlan;
use crate::sweep::schedule::GpuLane;
use gts_ckpt::{fnv1a, ByteReader, ByteWriter, CkptError, CkptStore, Snapshot};
use gts_faults::FaultPlan;
use gts_sim::{SimDuration, SimTime};
use gts_storage::builder::GraphStore;
use gts_telemetry::{keys, SpanCat, Telemetry, Track};
use std::collections::BTreeMap;
use std::time::Instant;

/// Payload-schema version of the snapshot sections written here.
pub(crate) const SNAPSHOT_VERSION: u32 = 1;

/// The effective execution rung: what [`LaneSetup`] settled on after any
/// O.O.M. degradations. A resumed run re-enters at this rung directly
/// instead of replaying the ladder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Rung {
    /// Multi-GPU strategy in effect.
    pub strategy: Strategy,
    /// Streams per GPU in effect (post-clamp, post-degrade).
    pub num_streams: usize,
    /// Whether the page cache was stepped down to off.
    pub cache_off: bool,
}

impl Rung {
    /// The rung a [`LaneSetup`] ended up on.
    pub fn of(setup: &LaneSetup) -> Rung {
        Rung {
            strategy: setup.strategy,
            num_streams: setup.num_streams,
            cache_off: setup.cache_off,
        }
    }
}

/// Wire code for a strategy (shared with `run.final_strategy`):
/// 1 = Performance, 2 = Scalability.
pub(crate) fn strategy_code(s: Strategy) -> u8 {
    match s {
        Strategy::Performance => 1,
        Strategy::Scalability => 2,
    }
}

fn strategy_from_code(code: u8) -> Result<Strategy, CkptError> {
    match code {
        1 => Ok(Strategy::Performance),
        2 => Ok(Strategy::Scalability),
        other => Err(CkptError::Corrupt {
            reason: format!("unknown strategy code {other} in rung section"),
        }),
    }
}

/// Everything a checkpoint write needs besides the loop's mutable state.
pub(crate) struct WriteCtx<'a> {
    /// The engine configuration (cache policy for the boundary rebuild).
    pub cfg: &'a GtsConfig,
    /// The live telemetry registry (counter capture + ckpt bookkeeping).
    pub tel: &'a Telemetry,
    /// The graph being processed (fingerprint).
    pub store: &'a GraphStore,
    /// The snapshot directory.
    pub ck: &'a CkptStore,
    /// The run's fault plan, for RNG cursor export.
    pub faults: Option<&'a FaultPlan>,
}

/// One sweep boundary: the rung plus the loop progress at that instant.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Boundary {
    /// The effective execution rung.
    pub rung: Rung,
    /// Simulated clock at the boundary.
    pub t: SimTime,
    /// The sweep about to run.
    pub sweep: u32,
    /// Edges traversed so far.
    pub edges: u64,
}

/// What a resumed run restores from the latest snapshot.
pub(crate) struct ResumeState {
    /// Simulated clock to continue from.
    pub t: SimTime,
    /// The sweep to run next.
    pub sweep: u32,
    /// Edges traversed before the crash.
    pub edges: u64,
    /// The next sweep's page plan.
    pub plan: SweepPlan,
}

/// Fingerprint of the graph store a snapshot belongs to. The mutation
/// epoch is folded in, so a snapshot taken before a mutation batch was
/// applied refuses to resume against the mutated store (typed
/// [`CkptError::Mismatch`] on `"store fingerprint"`) — an in-flight
/// sweep's saved state describes the pre-mutation topology.
pub fn store_fingerprint(store: &GraphStore) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(store.num_vertices());
    w.put_u64(store.num_edges());
    w.put_u64(store.num_pages());
    w.put_u64(store.cfg().page_size as u64);
    w.put_u64(store.small_pids().len() as u64);
    w.put_u64(store.large_pids().len() as u64);
    w.put_u64(store.epoch());
    fnv1a(&w.into_bytes())
}

/// Fingerprint of the configuration facets that shape a run's schedule.
/// `host_threads` is excluded (any value is byte-identical by contract),
/// as are the checkpoint block itself, the WAL directory, and the fault
/// plan's crash point — a resumed run differs from the crashed one in
/// exactly those. `scrub_every` and the bit-rot rate ARE folded in: scrub
/// passes draw on the fault plan's per-page streams, so a run scrubbed on
/// a different cadence is a different schedule.
pub(crate) fn config_fingerprint(cfg: &GtsConfig) -> u64 {
    let mut w = ByteWriter::new();
    w.put_u64(cfg.num_gpus as u64);
    w.put_u64(cfg.num_streams as u64);
    w.put_u8(strategy_code(cfg.strategy));
    match cfg.storage {
        StorageLocation::InMemory => w.put_u8(0),
        StorageLocation::Ssds(k) => {
            w.put_u8(1);
            w.put_u64(k as u64);
        }
        StorageLocation::Hdds(k) => {
            w.put_u8(2);
            w.put_u64(k as u64);
        }
    }
    w.put_u32(cfg.mmbuf_percent);
    w.put_u8(cfg.cache_policy as u8);
    w.put_bool(cfg.cache_limit_bytes.is_some());
    w.put_u64(cfg.cache_limit_bytes.unwrap_or(0));
    w.put_bool(cfg.p2p_sync);
    w.put_bool(cfg.degrade_on_oom);
    w.put_bool(cfg.scrub_every.is_some());
    w.put_u32(cfg.scrub_every.unwrap_or(0));
    // A plan with every injection rate at zero never draws a fault, so it
    // is behaviorally identical to no plan at all — normalize it to None.
    // (The CLI hosts `--crash-at-sweep` in a quiet plan when no
    // `--fault-seed` is given; the resumed run, crash point gone, must
    // still fingerprint-match.)
    let quiet = |f: &gts_faults::FaultConfig| {
        f.read_error_ppm == 0
            && f.corrupt_page_ppm == 0
            && f.copy_fault_ppm == 0
            && f.launch_fault_ppm == 0
            && f.bit_rot_ppm == 0
    };
    match &cfg.faults {
        Some(f) if !quiet(f) => {
            w.put_bool(true);
            w.put_u64(f.seed);
            w.put_u32(f.read_error_ppm);
            w.put_u32(f.corrupt_page_ppm);
            w.put_u32(f.copy_fault_ppm);
            w.put_u32(f.launch_fault_ppm);
            w.put_u32(f.bit_rot_ppm);
            w.put_u32(f.max_retries);
            w.put_u32(f.quarantine_after);
            w.put_u64(f.backoff.as_nanos());
        }
        _ => w.put_bool(false),
    }
    fnv1a(&w.into_bytes())
}

/// Check a loaded snapshot against this run's schema version, algorithm,
/// graph store, and configuration before anything is restored from it.
pub(crate) fn verify_meta(
    snap: &Snapshot,
    store: &GraphStore,
    cfg: &GtsConfig,
    algorithm: &str,
) -> Result<(), CkptError> {
    snap.require_version(SNAPSHOT_VERSION)?;
    let mut r = ByteReader::new(snap.section("meta")?);
    let alg = r.take_str("meta algorithm")?;
    let store_fp = r.take_u64("meta store fingerprint")?;
    let cfg_fp = r.take_u64("meta config fingerprint")?;
    r.finish()?;
    if alg != algorithm {
        return Err(CkptError::Corrupt {
            reason: format!("snapshot was taken by {alg}, this run executes {algorithm}"),
        });
    }
    let want = store_fingerprint(store);
    if store_fp != want {
        return Err(CkptError::Mismatch {
            what: "store fingerprint",
            want,
            got: store_fp,
        });
    }
    let want = config_fingerprint(cfg);
    if cfg_fp != want {
        return Err(CkptError::Mismatch {
            what: "config fingerprint",
            want,
            got: cfg_fp,
        });
    }
    Ok(())
}

/// The store fingerprint and sweep index a snapshot recorded, read ahead
/// of [`verify_meta`]: crash recovery needs the *target* state before the
/// caller's store can be rolled forward to match it.
pub fn snapshot_progress(snap: &Snapshot) -> Result<(u64, u32), CkptError> {
    let mut r = ByteReader::new(snap.section("meta")?);
    let _alg = r.take_str("meta algorithm")?;
    let store_fp = r.take_u64("meta store fingerprint")?;
    let _cfg_fp = r.take_u64("meta config fingerprint")?;
    r.finish()?;
    let mut r = ByteReader::new(snap.section("clock")?);
    let _t = r.take_u64("clock t")?;
    let sweep = r.take_u32("clock sweep")?;
    Ok((store_fp, sweep))
}

/// Crash recovery for a live run: replay `wal` records onto `store`, in
/// chain order, until [`store_fingerprint`] equals `target` — the
/// fingerprint the snapshot about to be restored recorded. The epoch is
/// folded into the fingerprint, so reaching `target` means the store is
/// byte-identical (topology *and* epoch) to the instant the snapshot was
/// taken. Returns how many records were applied.
///
/// Typed [`CkptError::Mismatch`] when the log is exhausted — or a record
/// does not chain onto the store's epoch — before `target` is reached:
/// the WAL does not cover the gap, so the old refusal stands.
pub(crate) fn recover_store(
    store: &mut GraphStore,
    wal: &gts_storage::Wal,
    target: u64,
) -> Result<u64, EngineError> {
    let mut applied = 0u64;
    if store_fingerprint(store) == target {
        return Ok(applied);
    }
    for rec in wal.records() {
        if rec.post_epoch <= store.epoch() {
            continue;
        }
        if rec.pre_epoch != store.epoch() {
            return Err(EngineError::Checkpoint(CkptError::Mismatch {
                what: "wal replay pre-epoch",
                want: store.epoch(),
                got: rec.pre_epoch,
            }));
        }
        store
            .apply_mutations(&rec.batch)
            .map_err(EngineError::Mutation)?;
        applied += 1;
        if store_fingerprint(store) == target {
            return Ok(applied);
        }
    }
    Err(EngineError::Checkpoint(CkptError::Mismatch {
        what: "store fingerprint",
        want: target,
        got: store_fingerprint(store),
    }))
}

/// The execution rung recorded in a snapshot.
pub(crate) fn rung_of(snap: &Snapshot) -> Result<Rung, CkptError> {
    let mut r = ByteReader::new(snap.section("rung")?);
    let strategy = strategy_from_code(r.take_u8("rung strategy")?)?;
    let num_streams = r.take_u64("rung streams")? as usize;
    let cache_off = r.take_bool("rung cache_off")?;
    r.finish()?;
    if num_streams == 0 {
        return Err(CkptError::Corrupt {
            reason: "rung records zero streams".to_string(),
        });
    }
    Ok(Rung {
        strategy,
        num_streams,
        cache_off,
    })
}

/// Reset the warm state a resumed run cannot rebuild (page caches, the
/// MMBuf), write a snapshot crash-atomically, and account the write. With
/// `torn` (the `MidSnapshotWrite` crash point) the snapshot lands torn at
/// its final path with the manifest naming it, and the injected crash
/// surfaces as the typed error.
pub(crate) fn write_checkpoint(
    w: &WriteCtx<'_>,
    lanes: &mut [GpuLane],
    source: &mut dyn PageSource,
    prog: &dyn GtsProgram,
    plan: &SweepPlan,
    b: &Boundary,
    torn: bool,
) -> Result<(), EngineError> {
    for lane in lanes.iter_mut() {
        // Rebuild rather than clear: a resumed run's caches are brand-new
        // policy instances (fresh RNG state for Random), so the
        // checkpointing run must match exactly.
        let fresh = w.cfg.cache_policy.build(lane.cache().capacity());
        lane.checkpoint_reset(fresh);
    }
    source.checkpoint_reset();
    let snap = build_snapshot(w, lanes, source, prog, plan, b);
    let started = Instant::now();
    let write = if torn {
        w.ck.write_torn(b.sweep as u64, &snap)
    } else {
        w.ck.write(b.sweep as u64, &snap)
    };
    let bytes = write.map_err(EngineError::Checkpoint)?;
    w.tel.add(keys::CKPT_BYTES, bytes);
    w.tel
        .add(keys::CKPT_WRITE_NS, started.elapsed().as_nanos() as u64);
    if w.tel.spans_enabled() {
        w.tel.record_span(
            Track::new(keys::pid::ENGINE, 0),
            SpanCat::Checkpoint,
            format!("ckpt sweep {}", b.sweep),
            b.t,
            b.t,
        );
    }
    if torn {
        return Err(EngineError::InjectedCrash { sweep: b.sweep });
    }
    Ok(())
}

/// Encode the full resumable state. Counters are captured through a
/// scratch registry: copy the live counters, then fold in what every lane
/// and the source *would* flush at finalize (their flushes are additive
/// and non-destructive), plus the finalize-derived cache aggregates — so
/// restoring the section and adding the post-resume deltas reproduces the
/// uncrashed totals exactly.
fn build_snapshot(
    w: &WriteCtx<'_>,
    lanes: &[GpuLane],
    source: &dyn PageSource,
    prog: &dyn GtsProgram,
    plan: &SweepPlan,
    b: &Boundary,
) -> Snapshot {
    let mut snap = Snapshot::new(SNAPSHOT_VERSION);
    let mut m = ByteWriter::new();
    m.put_str(prog.name());
    m.put_u64(store_fingerprint(w.store));
    m.put_u64(config_fingerprint(w.cfg));
    snap.insert("meta", m.into_bytes());

    let mut c = ByteWriter::new();
    c.put_u64((b.t - SimTime::ZERO).as_nanos());
    c.put_u32(b.sweep);
    c.put_u64(b.edges);
    snap.insert("clock", c.into_bytes());

    let mut rg = ByteWriter::new();
    rg.put_u8(strategy_code(b.rung.strategy));
    rg.put_u64(b.rung.num_streams as u64);
    rg.put_bool(b.rung.cache_off);
    snap.insert("rung", rg.into_bytes());

    let scratch = Telemetry::new();
    for (k, v) in w.tel.counters() {
        scratch.set(k, v);
    }
    for (i, lane) in lanes.iter().enumerate() {
        lane.flush_to(&scratch, i as u32);
    }
    source.flush_to(&scratch);
    let hits: u64 = lanes.iter().map(GpuLane::cache_hits_total).sum();
    let misses: u64 = lanes.iter().map(GpuLane::cache_misses_total).sum();
    scratch.add(keys::CACHE_HITS, hits);
    scratch.add(keys::CACHE_MISSES, misses);
    scratch.add(keys::PAGES_STREAMED, misses);
    let counters = scratch.counters();
    let mut cw = ByteWriter::new();
    cw.put_u64(counters.len() as u64);
    for (k, v) in &counters {
        cw.put_str(k);
        cw.put_u64(*v);
    }
    snap.insert("counters", cw.into_bytes());

    snap.insert("program", prog.save_state());

    let mut pw = ByteWriter::new();
    pw.put_u64(plan.sp_pids().len() as u64);
    for &p in plan.sp_pids() {
        pw.put_u64(p);
    }
    pw.put_u64(plan.lp_pids().len() as u64);
    for &p in plan.lp_pids() {
        pw.put_u64(p);
    }
    snap.insert("plan", pw.into_bytes());

    let cursors = w.faults.map(FaultPlan::export_cursors).unwrap_or_default();
    let mut fw = ByteWriter::new();
    fw.put_u64(cursors.len() as u64);
    for (&(domain, entity), state) in &cursors {
        fw.put_u8(domain);
        fw.put_u64(entity);
        for &word in state {
            fw.put_u64(word);
        }
    }
    snap.insert("faults", fw.into_bytes());

    let (quarantined, failures) = source.export_recovery();
    let mut sw = ByteWriter::new();
    sw.put_u64(quarantined.len() as u64);
    for &q in &quarantined {
        sw.put_bool(q);
    }
    for &f in &failures {
        sw.put_u32(f);
    }
    snap.insert("storage", sw.into_bytes());
    snap
}

/// Restore everything [`build_snapshot`] captured (the caller already
/// verified the meta section and rebuilt the lanes from the rung): the
/// counter registry, the program's vectors, the fault-plan RNG cursors,
/// the storage quarantine state, and the loop progress returned as a
/// [`ResumeState`].
pub(crate) fn import_snapshot(
    snap: &Snapshot,
    tel: &Telemetry,
    prog: &mut dyn GtsProgram,
    source: &mut dyn PageSource,
    faults: Option<&FaultPlan>,
) -> Result<ResumeState, CkptError> {
    let mut r = ByteReader::new(snap.section("counters")?);
    let n = r.take_u64("counter count")?;
    for _ in 0..n {
        let key = r.take_str("counter key")?;
        let value = r.take_u64("counter value")?;
        tel.set(key, value);
    }
    r.finish()?;

    prog.load_state(snap.section("program")?)?;

    let mut r = ByteReader::new(snap.section("plan")?);
    let sp_count = r.take_u64("plan sp count")?;
    let mut sp = Vec::with_capacity(sp_count as usize);
    for _ in 0..sp_count {
        sp.push(r.take_u64("plan sp pid")?);
    }
    let lp_count = r.take_u64("plan lp count")?;
    let mut lp = Vec::with_capacity(lp_count as usize);
    for _ in 0..lp_count {
        lp.push(r.take_u64("plan lp pid")?);
    }
    r.finish()?;

    let mut r = ByteReader::new(snap.section("faults")?);
    let n = r.take_u64("fault cursor count")?;
    let mut cursors = BTreeMap::new();
    for _ in 0..n {
        let domain = r.take_u8("fault cursor domain")?;
        let entity = r.take_u64("fault cursor entity")?;
        let mut state = [0u64; 4];
        for word in &mut state {
            *word = r.take_u64("fault cursor state")?;
        }
        cursors.insert((domain, entity), state);
    }
    r.finish()?;
    if let Some(plan) = faults {
        plan.restore_cursors(&cursors);
    }

    let mut r = ByteReader::new(snap.section("storage")?);
    let drives = r.take_u64("storage drive count")? as usize;
    let mut quarantined = Vec::with_capacity(drives);
    for _ in 0..drives {
        quarantined.push(r.take_bool("storage quarantine flag")?);
    }
    let mut failures = Vec::with_capacity(drives);
    for _ in 0..drives {
        failures.push(r.take_u32("storage failure count")?);
    }
    r.finish()?;
    source.import_recovery(&quarantined, &failures);

    let mut r = ByteReader::new(snap.section("clock")?);
    let t_ns = r.take_u64("clock t")?;
    let sweep = r.take_u32("clock sweep")?;
    let edges = r.take_u64("clock edges")?;
    r.finish()?;

    Ok(ResumeState {
        t: SimTime::ZERO + SimDuration::from_nanos(t_ns),
        sweep,
        edges,
        plan: SweepPlan::from_parts(sp, lp),
    })
}
