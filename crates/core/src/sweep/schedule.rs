//! Stage 3 — scheduling: one GPU's streams, cache, and copy/kernel issue.
//!
//! A [`GpuLane`] owns everything one GPU contributes to the pipeline of
//! Fig. 2 step 2: the `cachedPIDMap` page cache (Sec. 3.3), round-robin
//! assignment over the asynchronous streams, and the H2D → RA → kernel
//! issue against the [`GpuTimer`]. The engine drives one lane per GPU;
//! the GPU baselines (`gts-baselines`) reuse the same lane instead of
//! hand-rolling timer choreography.

use crate::engine::{EngineError, GtsConfig};
use gts_faults::FaultPlan;
use gts_gpu::memory::{DeviceAlloc, DeviceMemory};
use gts_gpu::timer::{GpuTimer, KernelCost};
use gts_sim::resource::Scheduled;
use gts_sim::{SimDuration, SimTime};
use gts_storage::builder::GraphStore;
use gts_storage::cache::{CachePolicy, LruCache, PageCache};
use gts_storage::format::{ADJLIST_SZ_BYTES, OFF_BYTES, VID_BYTES};
use gts_storage::PageKind;
use gts_telemetry::{keys, Telemetry};

/// One GPU's slice of the streaming pipeline: simulated timer, topology
/// page cache, and the stream cursor for round-robin issue.
pub struct GpuLane {
    timer: GpuTimer,
    cache: PageCache,
    stream_cursor: usize,
    /// This lane's GPU index (fault-stream entity and counter scope).
    index: u32,
    /// Optional injected-fault schedule for copies and kernel launches.
    faults: Option<FaultPlan>,
    /// Injected transient copy faults absorbed by retry.
    copy_faults: u64,
    /// Injected transient kernel-launch faults absorbed by retry.
    launch_faults: u64,
    /// Cache hits accumulated before checkpoint-boundary cache resets
    /// (the live cache's counters die with it; see `checkpoint_reset`).
    banked_cache_hits: u64,
    /// Cache misses accumulated before checkpoint-boundary cache resets.
    banked_cache_misses: u64,
    /// Evictions accumulated before checkpoint-boundary cache resets.
    banked_cache_evictions: u64,
    /// Tenant this lane's cache traffic is attributed to. A lane serves
    /// exactly one job, so every probe it takes belongs to one tenant;
    /// flushing the attribution per lane is therefore identical to
    /// tagging each probe individually, and deterministic because probes
    /// are issued in the serial accounting phase. `None` (solo runs)
    /// writes no `tenant.*` keys.
    tenant: Option<String>,
    /// Page size in bytes, for tenant byte attribution (0 for bare lanes
    /// built via [`GpuLane::new`], which never carry a tenant).
    page_size: u64,
    // Held for their Drop-based accounting; the device-memory pool itself
    // is owned here too so allocations stay alive exactly as long as the
    // lane (i.e. the run).
    _mem: Option<DeviceMemory>,
    _allocs: Vec<DeviceAlloc>,
}

impl GpuLane {
    /// A lane over `timer` with an explicit page cache.
    pub fn new(timer: GpuTimer, cache: PageCache) -> GpuLane {
        GpuLane {
            timer,
            cache,
            stream_cursor: 0,
            index: 0,
            faults: None,
            copy_faults: 0,
            launch_faults: 0,
            banked_cache_hits: 0,
            banked_cache_misses: 0,
            banked_cache_evictions: 0,
            tenant: None,
            page_size: 0,
            _mem: None,
            _allocs: Vec::new(),
        }
    }

    /// Attribute this lane's cache traffic to `tenant`: the flush adds
    /// `tenant.<tenant>.cache.{hits,misses,evictions,bytes_streamed}` to
    /// the job's registry alongside the per-GPU keys.
    pub fn set_tenant(&mut self, tenant: impl Into<String>) {
        self.tenant = Some(tenant.into());
    }

    /// Subject this lane's copies and kernel launches to `plan`'s
    /// injected transient faults (retried with backoff, bounded by the
    /// plan's `max_retries`).
    pub fn attach_faults(&mut self, plan: FaultPlan) {
        self.faults = Some(plan);
    }

    /// A lane with no page cache — every probe misses. The GPU baselines
    /// use this: they model engines without GTS's topology cache.
    pub fn uncached(timer: GpuTimer) -> GpuLane {
        GpuLane::new(timer, Box::new(LruCache::new(0)))
    }

    /// The engine's lane for GPU `index`: allocate the four streaming
    /// buffers plus the RVT in device memory (Alg. 1 lines 2-3, OOM is the
    /// paper's O.O.M. cells), give the leftover to the topology cache
    /// (Sec. 3.3), and attach the run's telemetry. Fault plans are wired
    /// afterwards via [`GpuLane::attach_faults`].
    pub(crate) fn for_engine(
        cfg: &GtsConfig,
        store: &GraphStore,
        streams: usize,
        wa_bytes_per_gpu: u64,
        ra_bytes_per_vertex: u64,
        tel: &Telemetry,
        index: u32,
    ) -> Result<GpuLane, EngineError> {
        let page_size = store.cfg().page_size as u64;
        let mem = DeviceMemory::new(cfg.gpu.device_memory);
        let mut allocs = Vec::new();
        allocs.push(mem.alloc(wa_bytes_per_gpu, "WABuf")?);
        allocs.push(mem.alloc(streams as u64 * page_size, "SPBuf")?);
        if !store.large_pids().is_empty() {
            allocs.push(mem.alloc(streams as u64 * page_size, "LPBuf")?);
        }
        if ra_bytes_per_vertex > 0 {
            let max_sp_vertices = page_size / (VID_BYTES + OFF_BYTES + ADJLIST_SZ_BYTES) as u64;
            allocs.push(mem.alloc(
                streams as u64 * max_sp_vertices * ra_bytes_per_vertex,
                "RABuf",
            )?);
        }
        allocs.push(mem.alloc(store.rvt().memory_bytes(), "RVT")?);
        // Leftover memory becomes the topology cache (Sec. 3.3).
        let mut cache_bytes = mem.free();
        if let Some(cap) = cfg.cache_limit_bytes {
            cache_bytes = cache_bytes.min(cap);
        }
        let cache_pages = (cache_bytes / page_size) as usize;
        allocs.push(mem.alloc(cache_pages as u64 * page_size, "page cache")?);
        let mut timer = GpuTimer::new(cfg.gpu.clone(), cfg.pcie.clone(), streams);
        timer.attach_telemetry(tel.clone(), index);
        Ok(GpuLane {
            timer,
            cache: cfg.cache_policy.build(cache_pages),
            stream_cursor: 0,
            index,
            faults: None,
            copy_faults: 0,
            launch_faults: 0,
            banked_cache_hits: 0,
            banked_cache_misses: 0,
            banked_cache_evictions: 0,
            tenant: None,
            page_size,
            _mem: Some(mem),
            _allocs: allocs,
        })
    }

    /// Round-robin stream selection.
    fn next_stream(&mut self) -> usize {
        let s = self.stream_cursor;
        self.stream_cursor = (self.stream_cursor + 1) % self.timer.num_streams();
        s
    }

    /// Is `pid` cached, without touching recency or hit/miss counters?
    /// (The line-16 "cached on every target" predicate must not disturb
    /// the probes that follow.)
    pub fn contains(&self, pid: u64) -> bool {
        self.cache.contains(pid)
    }

    /// Probe the cache for `pid`: records the access, admits on miss,
    /// returns whether it hit.
    pub fn probe(&mut self, pid: u64) -> bool {
        self.cache.access(pid)
    }

    /// Probe the cache for every pid in order with a single policy call —
    /// semantically identical to [`GpuLane::probe`] per page (same hits,
    /// misses, evictions and counters), but the per-probe virtual dispatch
    /// amortises over the whole sweep-plan chunk. The accounting phase
    /// batches each phase's probes per lane through this.
    pub fn probe_batch(&mut self, pids: &[u64]) -> Vec<bool> {
        self.cache.probe_batch(pids)
    }

    /// This lane's retry budget: attempts allowed per operation and the
    /// sim-time backoff between them. Without a fault plan exactly one
    /// attempt is made and it cannot be failed by injection.
    fn fault_policy(&self) -> (u32, SimDuration) {
        match &self.faults {
            Some(f) => (f.config().max_retries + 1, f.config().backoff),
            None => (1, SimDuration::ZERO),
        }
    }

    /// Launch `label` on `stream`, retrying injected launch faults with
    /// backoff. Every attempt — failed ones included — occupies the
    /// stream and consumes simulated time.
    fn kernel_with_retry(
        &mut self,
        stream: usize,
        cost: KernelCost,
        ready: SimTime,
        label: &str,
    ) -> Result<Scheduled, EngineError> {
        let (attempts, backoff) = self.fault_policy();
        let mut at = ready;
        for _ in 0..attempts {
            let faulted = self
                .faults
                .as_ref()
                .is_some_and(|f| f.gpu_launch_fault(self.index));
            if !faulted {
                return Ok(self.timer.stream_kernel(stream, cost, at, label));
            }
            self.launch_faults += 1;
            let s = self
                .timer
                .stream_kernel(stream, cost, at, &format!("{label}!"));
            at = s.end + backoff;
        }
        Err(EngineError::GpuFault {
            gpu: self.index,
            op: "kernel launch",
            attempts,
        })
    }

    /// Copy `bytes` H2D on `stream`, retrying injected copy faults with
    /// backoff; failed attempts pay the full transfer again.
    fn h2d_with_retry(
        &mut self,
        stream: usize,
        bytes: u64,
        ready: SimTime,
        label: &str,
    ) -> Result<Scheduled, EngineError> {
        let (attempts, backoff) = self.fault_policy();
        let mut at = ready;
        for _ in 0..attempts {
            let faulted = self
                .faults
                .as_ref()
                .is_some_and(|f| f.gpu_copy_fault(self.index));
            if !faulted {
                return Ok(self.timer.stream_h2d(stream, bytes, at, label));
            }
            self.copy_faults += 1;
            let s = self
                .timer
                .stream_h2d(stream, bytes, at, &format!("{label}!"));
            at = s.end + backoff;
        }
        Err(EngineError::GpuFault {
            gpu: self.index,
            op: "H2D copy",
            attempts,
        })
    }

    /// Launch a kernel on the next stream with its inputs already on the
    /// device (the cache-hit path, or a baseline's whole-graph kernel).
    /// Errs only when a fault plan's injected launch faults exhaust the
    /// retry budget.
    pub fn issue_kernel(
        &mut self,
        cost: KernelCost,
        ready: SimTime,
        label: &str,
    ) -> Result<Scheduled, EngineError> {
        let stream = self.next_stream();
        self.kernel_with_retry(stream, cost, ready, label)
    }

    /// Stream a page in and launch its kernel (the miss path, Fig. 2
    /// step 2): topology H2D, then the RA subvector if the program has
    /// one (`None` = program streams no RA; even a zero-byte RA copy
    /// costs a PCI-E latency), then the kernel — all program-ordered on
    /// one stream. Injected copy/launch faults are retried in place on
    /// the same stream; exhaustion errs.
    pub fn issue_streamed(
        &mut self,
        page_bytes: u64,
        ra_bytes: Option<u64>,
        cost: KernelCost,
        data_ready: SimTime,
    ) -> Result<Scheduled, EngineError> {
        let stream = self.next_stream();
        let c = self.h2d_with_retry(stream, page_bytes, data_ready, "SP/LP")?;
        let mut ready = c.end;
        if let Some(ra) = ra_bytes {
            ready = self.h2d_with_retry(stream, ra, ready, "RA")?.end;
        }
        self.kernel_with_retry(stream, cost, ready, "K")
    }

    /// Blocking chunk copy host→device (WA broadcast, Fig. 2 step 1).
    pub fn load_chunk(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.timer.chunk_h2d(bytes, ready)
    }

    /// Blocking chunk copy device→host (WA / bitmap write-back).
    pub fn write_back(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.timer.chunk_d2h(bytes, ready)
    }

    /// Peer-to-peer push to another GPU (Strategy-P's WA merge, Sec. 4.1).
    pub fn push_peer(&mut self, bytes: u64, ready: SimTime) -> Scheduled {
        self.timer.p2p_copy(bytes, ready)
    }

    /// When every engine on this GPU has drained.
    pub fn sync(&self) -> SimTime {
        self.timer.sync()
    }

    /// The underlying simulated timer (read-only statistics).
    pub fn timer(&self) -> &GpuTimer {
        &self.timer
    }

    /// The page cache (hit/miss/capacity statistics).
    pub fn cache(&self) -> &dyn CachePolicy {
        self.cache.as_ref()
    }

    /// Cache hits including those banked before checkpoint-boundary
    /// cache resets.
    pub fn cache_hits_total(&self) -> u64 {
        self.banked_cache_hits + self.cache.hits()
    }

    /// Cache misses including those banked before checkpoint-boundary
    /// cache resets.
    pub fn cache_misses_total(&self) -> u64 {
        self.banked_cache_misses + self.cache.misses()
    }

    /// Cache evictions including those banked before checkpoint-boundary
    /// cache resets.
    pub fn cache_evictions_total(&self) -> u64 {
        self.banked_cache_evictions + self.cache.evictions()
    }

    /// Drop rewritten pages from this lane's topology cache after a
    /// mutation batch: the cached copies are stale and the next probe
    /// must miss and re-stream. Returns how many of `pids` were resident.
    /// Hit/miss counters and the survivors' replacement bookkeeping are
    /// untouched (the [`CachePolicy::invalidate`] contract).
    pub fn invalidate_pages(&mut self, pids: &[u64]) -> u64 {
        let mut dropped = 0;
        for &pid in pids {
            if self.cache.invalidate(pid) {
                dropped += 1;
            }
        }
        dropped
    }

    /// Checkpoint-boundary reset. A resumed run rebuilds its page cache
    /// cold, so the checkpointing run itself must also go cold at every
    /// boundary or the two schedules diverge; the dying cache's hit/miss
    /// counters are banked first so run totals still add up. The
    /// round-robin stream cursor rewinds with it (it is not serialized).
    pub(crate) fn checkpoint_reset(&mut self, fresh: PageCache) {
        self.banked_cache_hits += self.cache.hits();
        self.banked_cache_misses += self.cache.misses();
        self.banked_cache_evictions += self.cache.evictions();
        self.cache = fresh;
        self.stream_cursor = 0;
    }

    /// Flush the lane's counters — timer statistics plus cache
    /// hits/misses/capacity — into `tel`'s registry as GPU `index`.
    pub fn flush_to(&self, tel: &Telemetry, index: u32) {
        self.timer.flush_to(tel, index);
        tel.add(
            keys::gpu(index, keys::GPU_CACHE_HITS),
            self.cache_hits_total(),
        );
        tel.add(
            keys::gpu(index, keys::GPU_CACHE_MISSES),
            self.cache_misses_total(),
        );
        tel.set(
            keys::gpu(index, keys::GPU_CACHE_CAPACITY_PAGES),
            self.cache.capacity() as u64,
        );
        // Zero deltas record nothing: fault-free runs emit no fault keys.
        tel.add(keys::gpu(index, keys::GPU_COPY_FAULTS), self.copy_faults);
        tel.add(
            keys::gpu(index, keys::GPU_LAUNCH_FAULTS),
            self.launch_faults,
        );
        // Per-tenant attribution, only for tagged (serve-mode) jobs:
        // solo runs keep their key set — and their goldens — unchanged.
        if let Some(tenant) = &self.tenant {
            tel.add(
                keys::tenant(tenant, keys::TENANT_CACHE_HITS),
                self.cache_hits_total(),
            );
            tel.add(
                keys::tenant(tenant, keys::TENANT_CACHE_MISSES),
                self.cache_misses_total(),
            );
            tel.add(
                keys::tenant(tenant, keys::TENANT_CACHE_EVICTIONS),
                self.cache_evictions_total(),
            );
            tel.add(
                keys::tenant(tenant, keys::TENANT_CACHE_BYTES_STREAMED),
                self.cache_misses_total() * self.page_size,
            );
        }
    }
}

impl std::fmt::Debug for GpuLane {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuLane")
            .field("streams", &self.timer.num_streams())
            .field("cache_capacity", &self.cache.capacity())
            .field("stream_cursor", &self.stream_cursor)
            .finish()
    }
}

/// RA bytes that ride along with one streamed page: a Small Page carries
/// one attribute value per resident vertex; for a Large Page "RAj is a
/// subvector of a single attribute value" (Sec. 3.4).
pub fn ra_copy_bytes(kind: PageKind, vertex_count: usize, ra_bytes_per_vertex: u64) -> u64 {
    match kind {
        PageKind::Small => vertex_count as u64 * ra_bytes_per_vertex,
        PageKind::Large => ra_bytes_per_vertex,
    }
}

/// Copy `bytes` to every lane in parallel (each GPU has its own PCI-E
/// link) starting at `t`; returns when the slowest copy lands.
pub fn broadcast_wa(lanes: &mut [GpuLane], bytes: u64, t: SimTime) -> SimTime {
    let mut end = t;
    for lane in lanes.iter_mut() {
        end = end.max(lane.load_chunk(bytes, t).end);
    }
    end
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_gpu::timer::KernelClass;
    use gts_gpu::{GpuConfig, PcieConfig};

    fn lane(streams: usize) -> GpuLane {
        GpuLane::uncached(GpuTimer::new(
            GpuConfig::titan_x(),
            PcieConfig::gen3_x16(),
            streams,
        ))
    }

    fn cost(slots: u64) -> KernelCost {
        KernelCost {
            class: KernelClass::Compute,
            lane_slots: slots,
            atomic_ops: 0,
        }
    }

    #[test]
    fn kernels_round_robin_over_streams() {
        // Two streams, three equal kernels, all ready at t=0: k1 and k2
        // land on different streams (k2 need not wait for k1's stream),
        // and k3 wraps around to stream 0 — program order forces
        // k3.start >= k1.end.
        let mut lane = lane(2);
        let k1 = lane
            .issue_kernel(cost(1 << 20), SimTime::ZERO, "K")
            .unwrap();
        let k2 = lane
            .issue_kernel(cost(1 << 20), SimTime::ZERO, "K")
            .unwrap();
        let k3 = lane
            .issue_kernel(cost(1 << 20), SimTime::ZERO, "K")
            .unwrap();
        assert_eq!(k1.start, SimTime::ZERO);
        assert_eq!(k2.start, SimTime::ZERO, "second stream starts fresh");
        assert!(k3.start >= k1.end, "wrap-around queues behind stream 0");
    }

    #[test]
    fn ra_copy_sizing_differs_for_sp_and_lp() {
        // SP: one RA value per resident vertex. LP: a single subvector.
        assert_eq!(ra_copy_bytes(PageKind::Small, 100, 4), 400);
        assert_eq!(ra_copy_bytes(PageKind::Large, 100, 4), 4);
        assert_eq!(ra_copy_bytes(PageKind::Small, 7, 0), 0);
    }

    #[test]
    fn streamed_issue_orders_h2d_before_kernel() {
        let mut l = lane(4);
        let k = l
            .issue_streamed(1 << 16, Some(256), cost(1 << 10), SimTime::ZERO)
            .unwrap();
        assert!(k.start > SimTime::ZERO, "kernel waits for its copies");
        assert_eq!(l.timer().bytes_h2d(), (1 << 16) + 256);
        assert_eq!(l.timer().kernels(), 1);
        // No RA at all skips the copy; a zero-byte RA still pays latency.
        let mut bare = lane(4);
        let k_bare = bare
            .issue_streamed(1 << 16, None, cost(1 << 10), SimTime::ZERO)
            .unwrap();
        assert_eq!(bare.timer().bytes_h2d(), 1 << 16);
        let mut zero = lane(4);
        let k_zero = zero
            .issue_streamed(1 << 16, Some(0), cost(1 << 10), SimTime::ZERO)
            .unwrap();
        assert!(
            k_zero.start > k_bare.start,
            "zero-byte RA copy still costs a PCI-E latency"
        );
    }

    #[test]
    fn quiet_fault_plan_changes_nothing() {
        use gts_faults::{FaultConfig, FaultPlan};
        let mut plain = lane(2);
        let mut quiet = lane(2);
        quiet.attach_faults(FaultPlan::new(FaultConfig::quiet(7)));
        for _ in 0..4 {
            let a = plain
                .issue_streamed(1 << 14, Some(64), cost(1 << 10), SimTime::ZERO)
                .unwrap();
            let b = quiet
                .issue_streamed(1 << 14, Some(64), cost(1 << 10), SimTime::ZERO)
                .unwrap();
            assert_eq!(a, b, "zero-rate plan must not perturb the schedule");
        }
        assert_eq!(quiet.copy_faults, 0);
        assert_eq!(quiet.launch_faults, 0);
    }

    #[test]
    fn certain_faults_exhaust_retries_into_typed_errors() {
        use gts_faults::{FaultConfig, FaultPlan, PPM_SCALE};
        let cfg = FaultConfig {
            copy_fault_ppm: PPM_SCALE,
            launch_fault_ppm: 0,
            max_retries: 2,
            ..FaultConfig::quiet(1)
        };
        let mut l = lane(2);
        l.attach_faults(FaultPlan::new(cfg.clone()));
        match l.issue_streamed(1 << 14, None, cost(1 << 10), SimTime::ZERO) {
            Err(EngineError::GpuFault { gpu, op, attempts }) => {
                assert_eq!(gpu, 0);
                assert_eq!(op, "H2D copy");
                assert_eq!(attempts, 3);
            }
            other => panic!("expected GpuFault, got {other:?}"),
        }
        // Every failed attempt paid the full transfer on the timer.
        assert_eq!(l.timer().bytes_h2d(), 3 << 14);
        assert_eq!(l.copy_faults, 3);

        let mut k = lane(2);
        k.attach_faults(FaultPlan::new(FaultConfig {
            copy_fault_ppm: 0,
            launch_fault_ppm: PPM_SCALE,
            ..cfg
        }));
        match k.issue_kernel(cost(1 << 10), SimTime::ZERO, "K") {
            Err(EngineError::GpuFault { op, .. }) => assert_eq!(op, "kernel launch"),
            other => panic!("expected GpuFault, got {other:?}"),
        }
    }

    #[test]
    fn transient_launch_fault_is_retried_on_the_same_stream() {
        use gts_faults::{FaultConfig, FaultPlan};
        // Find a seed whose first launch draw faults and second does not;
        // the scan is deterministic, so the test is too.
        let mk = |seed| {
            FaultPlan::new(FaultConfig {
                launch_fault_ppm: 500_000,
                max_retries: 4,
                ..FaultConfig::quiet(seed)
            })
        };
        let seed = (0..64)
            .find(|&s| {
                let probe = mk(s);
                probe.gpu_launch_fault(0) && !probe.gpu_launch_fault(0)
            })
            .expect("some seed faults once then heals");
        let mut l = lane(2);
        l.attach_faults(mk(seed));
        let healthy = lane(2)
            .issue_kernel(cost(1 << 12), SimTime::ZERO, "K")
            .unwrap();
        let k = l.issue_kernel(cost(1 << 12), SimTime::ZERO, "K").unwrap();
        assert_eq!(l.launch_faults, 1);
        assert_eq!(l.timer().kernels(), 2, "failed attempt also launched");
        assert!(
            k.start > healthy.end,
            "retry waits out the failed attempt plus backoff"
        );
    }

    #[test]
    fn uncached_lane_always_misses() {
        let mut l = lane(1);
        assert!(!l.probe(42));
        assert!(!l.probe(42), "capacity 0 admits nothing");
        assert!(!l.contains(42));
        assert_eq!(l.cache().misses(), 2);
    }

    #[test]
    fn broadcast_returns_the_slowest_lane() {
        let mut lanes = vec![lane(1), lane(1)];
        // Pre-load one lane so its chunk engine is busy.
        lanes[0].load_chunk(1 << 24, SimTime::ZERO);
        let t = broadcast_wa(&mut lanes, 1 << 20, SimTime::ZERO);
        let ends: Vec<SimTime> = lanes.iter().map(|l| l.sync()).collect();
        assert_eq!(t, *ends.iter().max().unwrap());
    }
}
