//! Live-topology glue: mutation schedules, the sweep loop's store handle,
//! and the sweep-boundary application path (DESIGN.md §12).
//!
//! Mutation is confined to sweep boundaries: mid-sweep code can only
//! obtain `&GraphStore`, so an in-flight sweep always reads one
//! consistent epoch. Everything that touches `&mut GraphStore` — the
//! due-ordered batch queue, outcome merging, cache/MMBuf invalidation,
//! plan reseeding — lives in this module.

use crate::programs::GtsProgram;
use crate::sweep::ingest::PageSource;
use crate::sweep::kernels;
use crate::sweep::plan::SweepPlan;
use crate::sweep::schedule::GpuLane;
use crate::EngineError;
use gts_faults::CrashPoint;
use gts_storage::builder::GraphStore;
use gts_storage::{MutationBatch, MutationOutcome, Wal};
use gts_telemetry::{keys, Telemetry};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};

/// When each [`MutationBatch`] of a live run applies: at the boundary of
/// the keyed sweep (before that sweep streams any page), so an in-flight
/// sweep always sees one consistent epoch of the topology. A batch whose
/// sweep the algorithm never reaches — it converged earlier — is *not*
/// dropped: the engine keeps the run alive at the fixpoint, applies the
/// batch, and re-sweeps incrementally (see [`crate::Gts::run_live`]).
#[derive(Debug, Clone, Default)]
pub struct MutationSchedule {
    batches: BTreeMap<u32, MutationBatch>,
}

impl MutationSchedule {
    /// An empty schedule ([`crate::Gts::run_live`] then behaves like
    /// [`crate::Gts::run`]).
    pub fn new() -> MutationSchedule {
        MutationSchedule::default()
    }

    /// Apply `batch` at the boundary of sweep `sweep` (builder-style).
    /// Scheduling twice at the same sweep appends to the existing batch in
    /// call order.
    pub fn at(mut self, sweep: u32, batch: MutationBatch) -> MutationSchedule {
        let slot = self.batches.entry(sweep).or_default();
        for &op in batch.ops() {
            slot.push(op);
        }
        self
    }

    /// Number of scheduled (non-empty-keyed) batches.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// The due-ordered application queue.
    pub(crate) fn into_queue(self) -> VecDeque<(u32, MutationBatch)> {
        self.batches.into_iter().collect()
    }
}

/// What one boundary's [`StoreHandle::apply_due`] did: the merged outcome
/// of every batch that came due, how many batches that was, and what the
/// write-ahead log absorbed (zero when no WAL is attached, or when every
/// append was an idempotent re-log during a recovery replay).
pub(crate) struct AppliedMutations {
    pub(crate) outcome: MutationOutcome,
    pub(crate) batches: u64,
    pub(crate) wal_appends: u64,
    pub(crate) wal_bytes: u64,
}

/// The sweep loop's access to the graph: read-only for [`crate::Gts::run`],
/// or a mutable store plus a due-ordered mutation queue for
/// [`crate::Gts::run_live`]. Mutation is confined to
/// [`StoreHandle::apply_due`], which only the sweep boundary calls —
/// mid-sweep code can only obtain `&GraphStore`, so a sweep in flight
/// always reads one consistent epoch.
pub(crate) enum StoreHandle<'a> {
    /// Immutable topology (the classic static run).
    Shared(&'a GraphStore),
    /// Live topology: batches from a [`MutationSchedule`] apply at sweep
    /// boundaries.
    Live {
        store: &'a mut GraphStore,
        queue: VecDeque<(u32, MutationBatch)>,
    },
}

impl StoreHandle<'_> {
    /// The store, read-only (any variant).
    pub(crate) fn store(&self) -> &GraphStore {
        match self {
            StoreHandle::Shared(s) => s,
            StoreHandle::Live { store, .. } => store,
        }
    }

    /// The earliest sweep with an unapplied batch, if any.
    pub(crate) fn earliest_pending(&self) -> Option<u32> {
        match self {
            StoreHandle::Shared(_) => None,
            StoreHandle::Live { queue, .. } => queue.front().map(|&(s, _)| s),
        }
    }

    /// Apply every batch due at or before the boundary of `sweep`,
    /// merging their outcomes. `None` when nothing was due. A rejected
    /// batch aborts with [`EngineError::Mutation`], the store unchanged
    /// by the rejected batch (earlier batches of the same boundary stay
    /// applied — each batch is individually atomic).
    ///
    /// With a `wal` attached, every non-empty batch is logged before it
    /// is applied ([`GraphStore::apply_mutations_logged`]), so a crash at
    /// any instant leaves the log at or ahead of the store and recovery
    /// can always roll forward. The WAL crash points fire here, on the
    /// first due batch of their keyed sweep: `MidWalAppend` persists a
    /// torn frame and dies, `BetweenLogAndApply` persists the full record
    /// and dies before touching the store. Both are ignored when no WAL
    /// is attached (there is no log to tear).
    pub(crate) fn apply_due(
        &mut self,
        sweep: u32,
        mut wal: Option<&mut Wal>,
        crash: Option<CrashPoint>,
    ) -> Result<Option<AppliedMutations>, EngineError> {
        let StoreHandle::Live { store, queue } = self else {
            return Ok(None);
        };
        let mut applied: Option<AppliedMutations> = None;
        while queue.front().is_some_and(|&(s, _)| s <= sweep) {
            let Some((_, batch)) = queue.pop_front() else {
                break;
            };
            let (outcome, bytes) = match wal.as_deref_mut() {
                Some(w) => {
                    let pre = store.epoch();
                    match crash {
                        Some(CrashPoint::MidWalAppend(s)) if s == sweep => {
                            w.log_batch_torn(&batch, pre, pre + 1)?;
                            return Err(EngineError::InjectedCrash { sweep });
                        }
                        Some(CrashPoint::BetweenLogAndApply(s)) if s == sweep => {
                            w.log_batch(&batch, pre, pre + 1)?;
                            return Err(EngineError::InjectedCrash { sweep });
                        }
                        _ => {}
                    }
                    store.apply_mutations_logged(&batch, w)?
                }
                None => (store.apply_mutations(&batch)?, 0),
            };
            applied = Some(match applied {
                None => AppliedMutations {
                    outcome,
                    batches: 1,
                    wal_appends: u64::from(bytes > 0),
                    wal_bytes: bytes,
                },
                Some(prev) => AppliedMutations {
                    outcome: merge_outcomes(prev.outcome, outcome),
                    batches: prev.batches + 1,
                    wal_appends: prev.wal_appends + u64::from(bytes > 0),
                    wal_bytes: prev.wal_bytes + bytes,
                },
            });
        }
        Ok(applied)
    }
}

/// Fold two same-boundary outcomes into one. A pid allocated by the first
/// batch and rewritten by the second stays in `new_pids` (no sweep ran in
/// between, so no cache ever saw it and placement happens once).
fn merge_outcomes(a: MutationOutcome, b: MutationOutcome) -> MutationOutcome {
    let new_pids: Vec<u64> = {
        let mut set: BTreeSet<u64> = a.new_pids.into_iter().collect();
        set.extend(b.new_pids);
        set.into_iter().collect()
    };
    let dirty_pids: Vec<u64> = {
        let mut set: BTreeSet<u64> = a.dirty_pids.into_iter().collect();
        set.extend(b.dirty_pids);
        set.into_iter()
            .filter(|pid| !new_pids.contains(pid))
            .collect()
    };
    MutationOutcome {
        inserted: a.inserted + b.inserted,
        deleted: a.deleted + b.deleted,
        pages_rewritten: a.pages_rewritten + b.pages_rewritten,
        delta_pages_allocated: a.delta_pages_allocated + b.delta_pages_allocated,
        dirty_pids,
        new_pids,
        epoch: a.epoch.max(b.epoch),
    }
}

/// Everything a mutation boundary reaches into: the job's counter
/// registry, the per-GPU lanes and the page source (for targeted
/// invalidation), the LP degree map, the sweep plan it rebuilds, and the
/// loop flags that pick the rebuild shape.
pub(crate) struct BoundaryCtx<'a> {
    pub(crate) tel: &'a Telemetry,
    pub(crate) lanes: &'a mut [GpuLane],
    pub(crate) source: &'a mut dyn PageSource,
    pub(crate) lp_degrees: &'a mut HashMap<u64, u64>,
    pub(crate) plan: &'a mut SweepPlan,
    pub(crate) sweep: u32,
    pub(crate) sweep_mode: bool,
    pub(crate) revived: bool,
    /// Write-ahead log for log-before-apply durability (live runs with
    /// `GtsConfig::wal_dir` only).
    pub(crate) wal: Option<&'a mut Wal>,
    /// The run's injected crash point, so the WAL crash kinds can fire
    /// on the first due batch of their keyed sweep.
    pub(crate) crash: Option<CrashPoint>,
}

/// Apply every mutation batch due at the top of `ctx.sweep` and absorb
/// the result into the run: drop rewritten pages from all GPU caches and
/// the MMBuf, register the fresh delta pages with the storage array,
/// refresh the LP degree map, bump the `mut.*` counters, and rebuild the
/// sweep plan around the program's re-activation seeds.
///
/// Returns `true` when the new plan is a seed-restricted sweep-mode plan
/// (only sound after a `Done` revival: the program's state is a fixpoint
/// of the pre-mutation topology, so only the disturbed pages can start
/// new propagation). `false` — with a full rebuild of the plan — in every
/// other case, including "nothing was due".
pub(crate) fn mutation_boundary(
    handle: &mut StoreHandle<'_>,
    prog: &mut dyn GtsProgram,
    ctx: BoundaryCtx<'_>,
) -> Result<bool, EngineError> {
    let Some(applied) = handle.apply_due(ctx.sweep, ctx.wal, ctx.crash)? else {
        return Ok(false);
    };
    let tel = ctx.tel;
    let o = &applied.outcome;
    // Targeted invalidation: every cached copy of a rewritten page —
    // GPU page caches and the host-side MMBuf — is stale. Delta pages
    // are brand new, so they cannot be cached and only need placement
    // on the storage array's live drives.
    let mut dropped = 0u64;
    for lane in ctx.lanes.iter_mut() {
        dropped += lane.invalidate_pages(&o.dirty_pids);
    }
    ctx.source.invalidate(&o.dirty_pids);
    ctx.source.note_new_pages(&o.new_pids);
    let store = handle.store();
    *ctx.lp_degrees = kernels::lp_total_degrees(store);
    tel.add(keys::MUT_BATCHES, applied.batches);
    tel.add(keys::MUT_INSERTED, o.inserted);
    tel.add(keys::MUT_DELETED, o.deleted);
    tel.add(keys::MUT_PAGES_REWRITTEN, o.pages_rewritten);
    tel.add(keys::MUT_DELTA_PAGES, o.delta_pages_allocated);
    tel.add(keys::MUT_CACHE_INVALIDATIONS, dropped);
    tel.set(keys::MUT_EPOCH, o.epoch);
    tel.add(keys::WAL_APPENDS, applied.wal_appends);
    tel.add(keys::WAL_BYTES, applied.wal_bytes);
    let seeds = prog.on_mutation(store, o);
    if ctx.sweep_mode {
        if ctx.revived && !seeds.is_empty() {
            *ctx.plan = SweepPlan::from_marked(store, seeds.into_iter().collect())?;
            return Ok(true);
        }
        // Mid-run (state is not a fixpoint) the full plan is the only
        // sound choice; likewise when the program gave no seeds.
        *ctx.plan = SweepPlan::full(store);
    } else {
        // Traversal: the pending frontier pages stay planned; the
        // mutation's seeds join them.
        let mut marked: BTreeSet<u64> = ctx
            .plan
            .sp_pids()
            .iter()
            .chain(ctx.plan.lp_pids())
            .copied()
            .collect();
        marked.extend(seeds);
        *ctx.plan = SweepPlan::from_marked(store, marked)?;
    }
    Ok(false)
}
