//! The staged sweep pipeline behind [`crate::engine::Gts::run`].
//!
//! Algorithm 1 is a *pipeline* — plan which pages to stream, fetch them
//! from wherever they live, schedule them onto GPU streams, account the
//! sweep — and each stage lives in its own module with a narrow,
//! unit-testable interface:
//!
//! * [`plan`] — frontier → [`SweepPlan`]: SP/LP ordering and the
//!   `split_and_expand` chunk-run widening (Alg. 1 lines 4-7, 28).
//!   Pure: no clocks, no telemetry.
//! * [`ingest`] — a [`PageSource`] answering "when is page j's data ready
//!   on the host?" (Alg. 1 lines 15-26). The line-16 rule — pages cached
//!   on *every* target GPU never touch storage or the MMBuf — lives here,
//!   in one place.
//! * [`schedule`] — a [`GpuLane`] owning one GPU's cache probe, stream
//!   round-robin, and H2D/RA/kernel issue against `GpuTimer` (Fig. 2
//!   step 2). The GPU baselines reuse it instead of hand-rolling timer
//!   choreography.
//! * [`account`] — the strictly-serial phase-B loop, the sweep barrier,
//!   WA synchronisation, and per-sweep telemetry (Alg. 1 lines 27-30).
//! * [`kernels`] — phase A: functional kernel execution, possibly spread
//!   over host threads (simulated time is accounted afterwards, in
//!   [`account`], so host parallelism can never change a number).
//! * [`ckpt`] — sweep-boundary snapshots: build, write, verify, and
//!   restore the resumable state behind crash-consistent
//!   checkpoint/restart.
//! * [`live`] — live-topology glue: mutation schedules, the sweep loop's
//!   store handle, and the boundary application path that keeps every
//!   in-flight sweep on one consistent epoch (DESIGN.md §12).
//! * [`scrub`] — background at-rest verification: walk the store's pages
//!   at a configured sweep cadence, detect seeded bit rot by trailer
//!   checksum, repair from the authoritative copy, and route detections
//!   into drive quarantine (DESIGN.md §15).
//!
//! `Gts::run` composes these stages; the decomposition is
//! behavior-preserving by construction and pinned byte-for-byte by the
//! golden-report fixtures in `tests/golden/`.

pub mod account;
pub(crate) mod ckpt;
pub mod ingest;
pub mod kernels;
pub(crate) mod live;
pub mod plan;
pub mod schedule;
pub(crate) mod scrub;

pub use ingest::{InMemorySource, PageSource, StorageSource};
pub use plan::SweepPlan;
pub use schedule::GpuLane;
