//! Phase A — functional kernel execution (the "what happened" half).
//!
//! Kernels really run on the host and produce exact algorithm results;
//! only *time* is simulated, and that accounting happens strictly
//! afterwards in [`crate::sweep::account`]. Splitting the two phases is
//! what makes host parallelism safe: pages may execute concurrently on
//! the thread pool here, but the serial accounting pass consumes their
//! outcomes in page order, so `host_threads` can never change a
//! simulated number.

use crate::programs::{GtsProgram, KernelScratch, PageCtx, PageWork};
use gts_exec::ThreadPool;
use gts_gpu::warp::MicroTechnique;
use gts_storage::builder::GraphStore;
use gts_storage::PageKind;
use std::collections::HashMap;

/// Result of one page's functional kernel execution: everything the
/// serial accounting pass (phase B) needs.
pub struct PageOutcome {
    /// The cost-relevant work the kernel reported.
    pub work: PageWork,
    /// Pages the kernel marked for the next sweep (local `nextPIDSet`).
    pub next_pids: Vec<u64>,
}

/// Sweep-invariant inputs of the functional kernel phase.
pub struct KernelEnv<'a> {
    /// The graph being processed.
    pub store: &'a GraphStore,
    /// Total adjacency length per Large-Page vertex (K_PR_LP needs it).
    pub lp_degrees: &'a HashMap<u64, u64>,
    /// Micro-level parallel technique (Sec. 6.2).
    pub technique: MicroTechnique,
    /// The current sweep number.
    pub sweep: u32,
}

/// Execute the functional kernels for `pids` (phase A of a sweep). When
/// the program exposes a [`crate::programs::SharedKernel`] and more than
/// one host thread is configured, pages run concurrently on the pool:
/// outcomes still come back in page order, and every shared-state update
/// the kernels perform commutes exactly, so the program state and the
/// returned [`PageWork`]s are bit-identical to serial execution.
pub fn run_page_kernels(
    prog: &mut dyn GtsProgram,
    pool: &ThreadPool,
    env: &KernelEnv<'_>,
    pids: &[u64],
    scratch: &mut KernelScratch,
) -> Vec<PageOutcome> {
    let ctx_for = |pid: u64| {
        let view = env.store.view(pid);
        let lp_total_degree = if view.kind() == PageKind::Large {
            *env.lp_degrees.get(&view.lp_vid()).unwrap_or(&0)
        } else {
            0
        };
        PageCtx {
            view,
            pid,
            rvt: env.store.rvt(),
            technique: env.technique,
            sweep: env.sweep,
            lp_total_degree,
        }
    };
    if pool.threads() > 1 && pids.len() > 1 && prog.shared_kernel().is_some() {
        let kernel = prog.shared_kernel().expect("checked above");
        pool.par_map_init(pids, KernelScratch::default, |scratch, _, &pid| {
            scratch.reset();
            let work = kernel.process_page_shared(&ctx_for(pid), scratch);
            PageOutcome {
                work,
                next_pids: std::mem::take(&mut scratch.next_pids),
            }
        })
        .0
    } else {
        pids.iter()
            .map(|&pid| {
                let work = prog.process_page(&ctx_for(pid), scratch);
                PageOutcome {
                    work,
                    next_pids: std::mem::take(&mut scratch.next_pids),
                }
            })
            .collect()
    }
}

/// Total adjacency length of every Large-Page vertex, keyed by vertex ID.
pub fn lp_total_degrees(store: &GraphStore) -> HashMap<u64, u64> {
    let mut map: HashMap<u64, u64> = HashMap::new();
    for &pid in store.large_pids() {
        let v = store.view(pid);
        *map.entry(v.lp_vid()).or_insert(0) += v.count() as u64;
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::PageRank;
    use gts_graph::generate::rmat;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    #[test]
    fn outcomes_come_back_in_page_order_regardless_of_threads() {
        let store = build_graph_store(
            &rmat(8),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let lp_degrees = lp_total_degrees(&store);
        let env = |sweep| KernelEnv {
            store: &store,
            lp_degrees: &lp_degrees,
            technique: MicroTechnique::default_edge_centric(),
            sweep,
        };
        let pids = store.small_pids().to_vec();
        let run = |threads: usize| {
            let mut pr = PageRank::new(store.num_vertices(), 1);
            let pool = ThreadPool::new(threads);
            let mut scratch = KernelScratch::default();
            run_page_kernels(&mut pr, &pool, &env(0), &pids, &mut scratch)
                .iter()
                .map(|o| (o.work.active_edges, o.work.lane_slots))
                .collect::<Vec<_>>()
        };
        let serial = run(1);
        assert_eq!(serial.len(), pids.len());
        assert_eq!(run(4), serial, "parallel phase A must match serial");
    }
}
