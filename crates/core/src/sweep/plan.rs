//! Stage 1 — planning: which pages the next sweep streams, in what order.
//!
//! A [`SweepPlan`] is the engine's `nextPIDSet` materialised as two sorted
//! page lists: Small Pages first, then Large Pages (Sec. 3.2's phase
//! separation — batching by kind reduces kernel switching). Planning is
//! pure — it reads the store's RVT and page kinds, touches no clock and
//! no telemetry — so it can be tested exhaustively in isolation.

use crate::engine::EngineError;
use gts_storage::builder::GraphStore;
use gts_storage::PageKind;
use std::collections::BTreeSet;

/// The pages one sweep will stream: SP phase then LP phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepPlan {
    sp_pids: Vec<u64>,
    lp_pids: Vec<u64>,
}

impl SweepPlan {
    /// Plan a full sweep over every page (sweep programs stream the whole
    /// graph each iteration, Alg. 1 line 14).
    pub fn full(store: &GraphStore) -> SweepPlan {
        SweepPlan {
            sp_pids: store.small_pids().to_vec(),
            lp_pids: store.large_pids().to_vec(),
        }
    }

    /// Seed the first sweep (Alg. 1 lines 4-7): traversal programs start
    /// from the source vertex's page, sweep programs from every page.
    pub fn seeded(store: &GraphStore, start_vertex: Option<u64>) -> Result<SweepPlan, EngineError> {
        match start_vertex {
            Some(src) => {
                SweepPlan::from_marked(store, std::iter::once(store.pid_of_vertex(src)).collect())
            }
            None => Ok(SweepPlan::full(store)),
        }
    }

    /// Expand a marked page set into a plan, widening each Large-Page
    /// reference to the vertex's whole chunk run: a record ID always points
    /// at the *first* chunk, but a traversal must stream them all. A page
    /// holding a vertex with delta/overflow pages (allocated by a mutation
    /// batch) additionally pulls those delta pages in — record IDs only
    /// ever name home pages, so without this widening a mutated vertex's
    /// overflow edges would never be streamed.
    ///
    /// Fails with [`EngineError::CorruptRvt`] if a Large Page's RVT entry
    /// is missing its `LP_RANGE` (the tuple the paper's Fig. 12 stores as
    /// −1 only for Small Pages) — a store corruption the engine surfaces
    /// instead of panicking — and with [`EngineError::Storage`] when a
    /// marked pid is out of range (`ContinueWith` lists are
    /// program-supplied, so they are validated, not trusted).
    pub fn from_marked(
        store: &GraphStore,
        marked: BTreeSet<u64>,
    ) -> Result<SweepPlan, EngineError> {
        let mut sps = Vec::new();
        let mut lps = Vec::new();
        for pid in marked {
            match store.try_view(pid)?.kind() {
                PageKind::Small => sps.push(pid),
                PageKind::Large => {
                    let range = store
                        .rvt()
                        .entry(pid)
                        .lp_range
                        .ok_or(EngineError::CorruptRvt { pid })?;
                    for p in pid..=pid + range as u64 {
                        lps.push(p);
                    }
                }
            }
            lps.extend(store.delta_pids_for_page(pid));
        }
        // Several chunks of one run may have been marked independently
        // (each record ID points at the first chunk, but ContinueWith
        // lists replay every chunk); their expansions overlap, and a page
        // must be processed at most once per sweep — kernels like BC's
        // backward accumulation are not idempotent.
        lps.sort_unstable();
        lps.dedup();
        Ok(SweepPlan {
            sp_pids: sps,
            lp_pids: lps,
        })
    }

    /// Rebuild a plan from checkpointed page lists. Both lists were
    /// sorted when the snapshot was taken and the snapshot container is
    /// checksummed, so they are trusted as-is.
    pub(crate) fn from_parts(sp_pids: Vec<u64>, lp_pids: Vec<u64>) -> SweepPlan {
        SweepPlan { sp_pids, lp_pids }
    }

    /// The Small-Page phase, ascending.
    pub fn sp_pids(&self) -> &[u64] {
        &self.sp_pids
    }

    /// The Large-Page phase, ascending.
    pub fn lp_pids(&self) -> &[u64] {
        &self.lp_pids
    }

    /// The two phases in streaming order: SPs first, then LPs.
    pub fn phases(&self) -> [&[u64]; 2] {
        [&self.sp_pids, &self.lp_pids]
    }

    /// Total pages the sweep will touch.
    pub fn num_pages(&self) -> usize {
        self.sp_pids.len() + self.lp_pids.len()
    }

    /// True when nothing is marked.
    pub fn is_empty(&self) -> bool {
        self.sp_pids.is_empty() && self.lp_pids.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::EdgeList;
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    /// A star graph whose hub adjacency overflows one page: vertex 0
    /// points at every other vertex, so it becomes a Large-Page chunk run.
    fn star_store() -> GraphStore {
        let n = 600u32;
        let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        edges.extend((1..n).map(|v| (v, 0)));
        build_graph_store(
            &EdgeList::new(n, edges),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap()
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let store = star_store();
        let marked: BTreeSet<u64> = store
            .small_pids()
            .iter()
            .chain(store.large_pids().iter())
            .copied()
            .collect();
        let a = SweepPlan::from_marked(&store, marked.clone()).unwrap();
        let b = SweepPlan::from_marked(&store, marked).unwrap();
        assert_eq!(a, b, "same marked set must produce the same plan");
        assert!(a.sp_pids().windows(2).all(|w| w[0] < w[1]));
        assert!(a.lp_pids().windows(2).all(|w| w[0] < w[1]));
        assert_eq!(a.num_pages(), a.sp_pids().len() + a.lp_pids().len());
    }

    #[test]
    fn full_plan_covers_every_page_sp_then_lp() {
        let store = star_store();
        let plan = SweepPlan::full(&store);
        assert_eq!(plan.sp_pids(), store.small_pids());
        assert_eq!(plan.lp_pids(), store.large_pids());
        assert_eq!(plan.num_pages() as u64, store.num_pages());
        assert!(!plan.is_empty());
        assert_eq!(plan.phases(), [store.small_pids(), store.large_pids()]);
    }

    #[test]
    fn marking_one_lp_chunk_widens_to_the_whole_run() {
        let store = star_store();
        let lps = store.large_pids();
        assert!(lps.len() >= 2, "hub must span multiple Large Pages");
        let first = lps[0];
        // Marking only the first chunk must pull in the entire run...
        let plan = SweepPlan::from_marked(&store, std::iter::once(first).collect()).unwrap();
        let run_len = store.rvt().entry(first).lp_range.unwrap() as usize + 1;
        let want: Vec<u64> = (first..first + run_len as u64).collect();
        assert_eq!(plan.lp_pids(), want.as_slice());
        assert!(plan.sp_pids().is_empty());
        // ...and marking several chunks of the same run must not duplicate.
        let marked: BTreeSet<u64> = want.iter().copied().collect();
        let plan2 = SweepPlan::from_marked(&store, marked).unwrap();
        assert_eq!(plan2.lp_pids(), want.as_slice());
    }

    #[test]
    fn marking_a_home_page_pulls_in_its_delta_pages() {
        use gts_storage::MutationBatch;
        let mut store = star_store();
        // Overflow a spoke vertex's Small-Page slot so the batch spills it
        // into delta pages.
        let mut batch = MutationBatch::new();
        for d in 2..40 {
            batch.insert(1, d);
        }
        let out = store.apply_mutations(&batch).unwrap();
        assert!(
            !out.new_pids.is_empty(),
            "38 inserts must overflow the slot: {out:?}"
        );
        let home = store.pid_of_vertex(1);
        let plan = SweepPlan::from_marked(&store, std::iter::once(home).collect()).unwrap();
        assert!(plan.sp_pids().contains(&home));
        for pid in &out.new_pids {
            assert!(
                plan.lp_pids().contains(pid),
                "delta page {pid} missing from {plan:?}"
            );
        }
    }

    #[test]
    fn out_of_range_marked_pid_is_a_typed_error() {
        let store = star_store();
        // ContinueWith lists are program-supplied: validated, not trusted.
        let bad = store.num_pages() + 7;
        match SweepPlan::from_marked(&store, std::iter::once(bad).collect()) {
            Err(crate::engine::EngineError::Storage(_)) => {}
            other => panic!("expected a typed BadPid error, got {other:?}"),
        }
    }

    #[test]
    fn seeded_traversal_starts_at_the_source_page() {
        let store = star_store();
        // A spoke vertex lives in a Small Page: exactly one page planned.
        let spoke = 1u64;
        let plan = SweepPlan::seeded(&store, Some(spoke)).unwrap();
        assert_eq!(plan.num_pages(), 1);
        assert_eq!(plan.sp_pids(), [store.pid_of_vertex(spoke)]);
        // No source: a full sweep.
        let full = SweepPlan::seeded(&store, None).unwrap();
        assert_eq!(full.num_pages() as u64, store.num_pages());
    }
}
