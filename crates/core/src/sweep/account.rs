//! Stage 4 — accounting: phase B of a sweep, strictly serial.
//!
//! Consumes the page outcomes of [`crate::sweep::kernels`] in page order
//! and charges their simulated cost: the Alg. 1 line-16 cache check, the
//! storage/MMBuf fetch via the [`PageSource`], the per-target kernel or
//! H2D+RA+kernel issue on each [`GpuLane`], then the sweep barrier
//! (line 27), the nextPIDSet/cachedPIDMap write-back (lines 29-30), the
//! WA synchronisation, and the per-sweep telemetry. Because this pass is
//! serial and in page order, simulated time is identical for every
//! `host_threads` setting.

use crate::engine::EngineError;
use crate::report::SweepStats;
use crate::strategy::Strategy;
use crate::sweep::ingest::PageSource;
use crate::sweep::kernels::PageOutcome;
use crate::sweep::schedule::{self, GpuLane};
use gts_gpu::timer::{KernelClass, KernelCost};
use gts_sim::SimTime;
use gts_storage::builder::GraphStore;
use gts_telemetry::{keys, SpanCat, Telemetry, Track};
use std::collections::BTreeSet;

/// Sweep-invariant inputs of the accounting pass.
pub(crate) struct AccountCtx<'a> {
    /// The graph being processed.
    pub store: &'a GraphStore,
    /// Multi-GPU page placement (`h(j)`).
    pub strategy: Strategy,
    /// Number of GPUs (the strategy's `N`).
    pub num_gpus: usize,
    /// Bytes per topology page.
    pub page_size: u64,
    /// RA bytes per vertex the program streams alongside topology.
    pub ra_bytes_per_vertex: u64,
    /// The program's kernel cost class.
    pub class: KernelClass,
    /// The run's telemetry registry.
    pub tel: &'a Telemetry,
    /// Whether spans are recorded (cache-probe markers).
    pub spans: bool,
}

/// Accumulator for one sweep's accounting across both phases.
pub(crate) struct SweepAccounting {
    /// Global `nextPIDSet` for the following sweep (deduplicated).
    pub next: BTreeSet<u64>,
    /// Did any kernel update an attribute this sweep?
    pub any_update: bool,
    /// Per-sweep statistics (pages, hits, active vertices/edges).
    pub stats: SweepStats,
    /// Edges traversed this sweep.
    pub edges: u64,
    sweep_start: SimTime,
}

impl SweepAccounting {
    /// Start accounting a sweep whose streaming begins at `sweep_start`.
    pub fn new(sweep_start: SimTime) -> SweepAccounting {
        SweepAccounting {
            next: BTreeSet::new(),
            any_update: false,
            stats: SweepStats::default(),
            edges: 0,
            sweep_start,
        }
    }

    /// Account one phase's pages, in page order: merge kernel outcomes,
    /// resolve data readiness through the source (line 16 first!), then
    /// issue the per-target copies and kernels on the lanes. Because this
    /// pass is the serial one, it is also where every fault decision is
    /// made: a fetch or issue that exhausts its retries aborts the run
    /// with a typed error.
    pub fn account_phase(
        &mut self,
        ctx: &AccountCtx<'_>,
        lanes: &mut [GpuLane],
        source: &mut dyn PageSource,
        pids: &[u64],
        outcomes: &[PageOutcome],
    ) -> Result<(), EngineError> {
        for (&pid, outcome) in pids.iter().zip(outcomes) {
            let work = &outcome.work;
            self.edges += work.active_edges;
            self.stats.active_vertices += work.active_vertices;
            self.stats.active_edges += work.active_edges;
            self.any_update |= work.updated;
            // Merge the kernel's local nextPIDSet; the BTreeSet
            // deduplicates globally.
            self.next.extend(outcome.next_pids.iter().copied());

            // Algorithm 1 checks cachedPIDMap BEFORE touching storage
            // (line 16 precedes lines 18-26): a page every target GPU
            // already caches must not generate SSD traffic or MMBuf churn.
            let view = ctx.store.view(pid);
            let targets = ctx.strategy.targets(pid, ctx.num_gpus);
            let fanout = targets.len() as u64;
            let all_cached = !targets.clone().any(|gi| !lanes[gi].contains(pid));
            let page = ctx.store.page(pid);
            let data_ready = source.page_ready(pid, page, all_cached, self.sweep_start)?;
            for (ti, gi) in targets.enumerate() {
                let cost = KernelCost {
                    class: ctx.class,
                    lane_slots: work.lane_slots,
                    atomic_ops: per_target_atomic_ops(work.atomic_ops, fanout, ti),
                };
                self.stats.pages += 1;
                let lane = &mut lanes[gi];
                let hit = lane.probe(pid);
                if ctx.spans {
                    // Zero-duration marker: cache probes are bookkeeping,
                    // not time, but they explain why a page did (not)
                    // generate PCI-E traffic.
                    ctx.tel.record_span(
                        Track::new(keys::pid::ENGINE, 1),
                        SpanCat::Cache,
                        format!("{} p{pid} g{gi}", if hit { "hit" } else { "miss" }),
                        self.sweep_start,
                        self.sweep_start,
                    );
                }
                if hit {
                    self.stats.cache_hits += 1;
                    lane.issue_kernel(cost, self.sweep_start, "K(cached)")?;
                } else {
                    let ra_bytes = (ctx.ra_bytes_per_vertex > 0).then(|| {
                        schedule::ra_copy_bytes(
                            view.kind(),
                            view.count() as usize,
                            ctx.ra_bytes_per_vertex,
                        )
                    });
                    lane.issue_streamed(ctx.page_size, ra_bytes, cost, data_ready)?;
                }
            }
        }
        Ok(())
    }
}

/// The sweep barrier (Alg. 1 line 27): all GPUs finish before `t` moves on.
pub(crate) fn barrier(lanes: &[GpuLane], t: SimTime) -> SimTime {
    lanes.iter().fold(t, |t, lane| t.max(lane.sync()))
}

/// Copy nextPIDSet / cachedPIDMap back (Alg. 1 lines 29-30): one small
/// bitmap pair per GPU, all starting at the barrier.
pub(crate) fn frontier_copy_back(lanes: &mut [GpuLane], num_pages: u64, t: SimTime) -> SimTime {
    let bitmap_bytes = num_pages.div_ceil(8).max(1);
    let start = t;
    let mut end = t;
    for lane in lanes.iter_mut() {
        let s = lane.write_back(2 * bitmap_bytes, start);
        end = end.max(s.end);
    }
    end
}

/// WA write-back: Strategy-P merges replicas peer-to-peer onto the master
/// GPU and copies once (Fig. 5a steps 3-4); the naive variant and
/// Strategy-S perform N direct copies, which contend on the host side and
/// therefore chain (Sec. 4.2).
pub(crate) fn sync_wa(
    lanes: &mut [GpuLane],
    strategy: Strategy,
    p2p_sync: bool,
    per_gpu_bytes: u64,
    t: SimTime,
) -> SimTime {
    if lanes.len() == 1 {
        return lanes[0].write_back(per_gpu_bytes, t).end.max(t);
    }
    match (strategy, p2p_sync) {
        (Strategy::Performance, true) => {
            // Peer-to-peer merge: every non-master GPU pushes its WA to
            // the master in parallel on its own P2P engine...
            let mut merged = t;
            for lane in lanes.iter_mut().skip(1) {
                merged = merged.max(lane.push_peer(per_gpu_bytes, t).end);
            }
            // ...then one chunk copy to host.
            lanes[0].write_back(per_gpu_bytes, merged).end
        }
        _ => {
            // Naive: N serialised GPU→host copies (host-side WA buffer is
            // shared, so the writes contend).
            let mut end = t;
            for lane in lanes.iter_mut() {
                end = lane.write_back(per_gpu_bytes, end).end;
            }
            end
        }
    }
}

/// Record one sweep's telemetry. One definition of a sweep's extent,
/// shared by the counter registry and the trace: `sweep_wall..t` brackets
/// Alg. 1 lines 13-30 — the per-sweep WA broadcast, page streaming and
/// kernels, the barrier, and the nextPIDSet/cachedPIDMap/WA write-backs.
/// `SWEEP_ELAPSED_NS` and the sweep span are set from the same two
/// instants, so trace and registry agree.
pub(crate) fn emit_sweep(
    tel: &Telemetry,
    spans: bool,
    sweep: u32,
    stats: &SweepStats,
    sweep_wall: SimTime,
    t: SimTime,
) {
    tel.add(keys::sweep(sweep, keys::SWEEP_PAGES), stats.pages);
    tel.add(keys::sweep(sweep, keys::SWEEP_CACHE_HITS), stats.cache_hits);
    tel.add(
        keys::sweep(sweep, keys::SWEEP_ACTIVE_VERTICES),
        stats.active_vertices,
    );
    tel.add(
        keys::sweep(sweep, keys::SWEEP_ACTIVE_EDGES),
        stats.active_edges,
    );
    tel.set(
        keys::sweep(sweep, keys::SWEEP_ELAPSED_NS),
        stats.elapsed.as_nanos(),
    );
    if spans {
        tel.record_span(
            Track::new(keys::pid::ENGINE, 0),
            SpanCat::Sweep,
            format!("sweep {sweep}"),
            sweep_wall,
            t,
        );
    }
}

/// Split `total` atomic operations across `fanout` replica GPUs so the
/// per-target shares always sum back to `total`: every target gets the
/// truncated quotient and the first `total % fanout` targets one extra op.
/// (Truncating division alone under-accounted atomic work whenever the
/// fanout did not divide it — 7 atomics across 2 GPUs silently lost one.)
pub fn per_target_atomic_ops(total: u64, fanout: u64, target_index: usize) -> u64 {
    let fanout = fanout.max(1);
    total / fanout + u64::from((target_index as u64) < total % fanout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_gpu::timer::GpuTimer;
    use gts_gpu::{GpuConfig, PcieConfig};

    #[test]
    fn per_target_atomic_ops_sum_to_the_total_for_odd_fanouts() {
        for total in [0u64, 1, 6, 7, 13, 101, 1_000_003] {
            for fanout in [1u64, 2, 3, 4, 5, 7, 16] {
                let shares: Vec<u64> = (0..fanout as usize)
                    .map(|ti| per_target_atomic_ops(total, fanout, ti))
                    .collect();
                assert_eq!(
                    shares.iter().sum::<u64>(),
                    total,
                    "total={total} fanout={fanout} shares={shares:?}"
                );
                // The split is as even as possible: shares differ by <= 1.
                let max = shares.iter().max().unwrap();
                let min = shares.iter().min().unwrap();
                assert!(max - min <= 1, "uneven split {shares:?}");
            }
        }
        // The truncating-division bug this replaces: 7 across 2 lost an op.
        assert_eq!(
            per_target_atomic_ops(7, 2, 0) + per_target_atomic_ops(7, 2, 1),
            7
        );
        // Degenerate fanout 0 is clamped, not a division fault.
        assert_eq!(per_target_atomic_ops(5, 0, 0), 5);
    }

    fn lanes(n: usize) -> Vec<GpuLane> {
        (0..n)
            .map(|_| {
                GpuLane::uncached(GpuTimer::new(
                    GpuConfig::titan_x(),
                    PcieConfig::gen3_x16(),
                    4,
                ))
            })
            .collect()
    }

    #[test]
    fn p2p_sync_merges_then_copies_once() {
        let bytes = 1 << 24;
        let mut p2p = lanes(4);
        let p2p_end = sync_wa(&mut p2p, Strategy::Performance, true, bytes, SimTime::ZERO);
        // Non-master lanes pushed their WA peer-to-peer; only the master
        // copied to host.
        for lane in &p2p[1..] {
            assert_eq!(lane.timer().bytes_p2p(), bytes);
            assert_eq!(lane.timer().bytes_d2h(), 0);
        }
        assert_eq!(p2p[0].timer().bytes_d2h(), bytes);

        // The naive fallback chains N host copies and must finish later.
        let mut naive = lanes(4);
        let naive_end = sync_wa(
            &mut naive,
            Strategy::Performance,
            false,
            bytes,
            SimTime::ZERO,
        );
        for lane in &naive {
            assert_eq!(lane.timer().bytes_d2h(), bytes);
        }
        assert!(naive_end > p2p_end, "{naive_end:?} vs {p2p_end:?}");
    }

    #[test]
    fn barrier_takes_the_slowest_lane() {
        let mut ls = lanes(2);
        ls[1].load_chunk(1 << 26, SimTime::ZERO);
        let t = barrier(&ls, SimTime::ZERO);
        assert_eq!(t, ls[1].sync());
        assert!(t > ls[0].sync());
    }
}
