//! Stage 4 — accounting: phase B of a sweep.
//!
//! Consumes the page outcomes of [`crate::sweep::kernels`] in page order
//! and charges their simulated cost: the Alg. 1 line-16 cache check, the
//! storage/MMBuf fetch via the [`PageSource`], the per-target kernel or
//! H2D+RA+kernel issue on each [`GpuLane`], then the sweep barrier
//! (line 27), the nextPIDSet/cachedPIDMap write-back (lines 29-30), the
//! WA synchronisation, and the per-sweep telemetry.
//!
//! Phase B used to be one strictly serial loop — the Amdahl ceiling of
//! the host pipeline once phase A went parallel. It is now three
//! sub-stages with the *serial core* reduced to what genuinely orders
//! the simulation:
//!
//! 1. **Outcome merge** (parallel): edge/vertex totals are exact integer
//!    sums into a [`CounterVec`] (commutative, so schedule-independent),
//!    `any_update` is a commutative OR, and the kernels' local
//!    nextPIDSets land in a `BTreeSet` whose content is insertion-order
//!    independent.
//! 2. **Cache probes** (batched, parallel across lanes): each lane's
//!    probe subsequence — the phase's pids that target it, in page
//!    order — is executed with one [`GpuLane::probe_batch`] call. Lane
//!    caches are independent and `probe_batch` is byte-identical to
//!    per-page probes (a property test in `gts-storage` pins this), so
//!    hit/miss sequences and eviction state match the old interleaved
//!    loop exactly. The line-16 `all_cached` predicate is recovered as
//!    the AND of a page's per-target hits: a probe hits iff the page
//!    was resident *before* it, which is precisely what the old
//!    `contains` pre-check observed.
//! 3. **Issue** (serial, page order): MMBuf/storage readiness and the
//!    per-target copy/kernel issue mutate globally ordered simulated
//!    state, so they stay serial — but they now only walk precomputed
//!    hit flags. Spans are recorded here too, in the original order.
//!
//! Simulated time, counters, and traces are therefore identical for
//! every `host_threads` setting, as before.

use crate::engine::EngineError;
use crate::report::SweepStats;
use crate::strategy::Strategy;
use crate::sweep::ingest::PageSource;
use crate::sweep::kernels::PageOutcome;
use crate::sweep::schedule::{self, GpuLane};
use gts_exec::{CounterVec, ThreadPool};
use gts_gpu::timer::{KernelClass, KernelCost};
use gts_sim::SimTime;
use gts_storage::builder::GraphStore;
use gts_telemetry::{keys, SpanCat, Telemetry, Track};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, Ordering};

/// Minimum merge work (outcomes plus their nextPIDSet entries) before
/// the outcome merge fans out across workers. Spawning scoped workers
/// costs ~100µs and merge items cost single-digit nanoseconds, so only
/// genuinely heavy phases (large BFS frontiers) clear the bar. The
/// threshold only changes which code path computes the (identical)
/// result, never the result itself.
const MERGE_PAR_MIN: usize = 65_536;

/// Minimum total probes in a phase before the per-lane batches fan out
/// across workers; below this they run inline (same batched calls, same
/// results — the threshold is wall-clock-only, like [`MERGE_PAR_MIN`]).
/// Sized against the same ~100µs scoped-spawn cost: a probe is a few
/// tens of nanoseconds, so fanning out under ~16k probes loses.
const PROBE_PAR_MIN: usize = 16_384;

/// Sweep-invariant inputs of the accounting pass.
pub(crate) struct AccountCtx<'a> {
    /// The graph being processed.
    pub store: &'a GraphStore,
    /// Multi-GPU page placement (`h(j)`).
    pub strategy: Strategy,
    /// Number of GPUs (the strategy's `N`).
    pub num_gpus: usize,
    /// Bytes per topology page.
    pub page_size: u64,
    /// RA bytes per vertex the program streams alongside topology.
    pub ra_bytes_per_vertex: u64,
    /// The program's kernel cost class.
    pub class: KernelClass,
    /// The run's telemetry registry.
    pub tel: &'a Telemetry,
    /// Whether spans are recorded (cache-probe markers).
    pub spans: bool,
}

/// Accumulator for one sweep's accounting across both phases.
pub(crate) struct SweepAccounting {
    /// Global `nextPIDSet` for the following sweep (deduplicated).
    pub next: BTreeSet<u64>,
    /// Did any kernel update an attribute this sweep?
    pub any_update: bool,
    /// Per-sweep statistics (pages, hits, active vertices/edges).
    pub stats: SweepStats,
    /// Edges traversed this sweep.
    pub edges: u64,
    sweep_start: SimTime,
}

impl SweepAccounting {
    /// Start accounting a sweep whose streaming begins at `sweep_start`.
    pub fn new(sweep_start: SimTime) -> SweepAccounting {
        SweepAccounting {
            next: BTreeSet::new(),
            any_update: false,
            stats: SweepStats::default(),
            edges: 0,
            sweep_start,
        }
    }

    /// Account one phase's pages, in page order: merge kernel outcomes,
    /// resolve data readiness through the source (line 16 first!), then
    /// issue the per-target copies and kernels on the lanes. The merge
    /// and the cache probes run parallel/batched (see the module doc for
    /// the equivalence argument); the issue core is serial, so it is
    /// also where every fault decision is made — a fetch or issue that
    /// exhausts its retries aborts the run with a typed error.
    pub fn account_phase(
        &mut self,
        ctx: &AccountCtx<'_>,
        pool: &ThreadPool,
        lanes: &mut [GpuLane],
        source: &mut dyn PageSource,
        pids: &[u64],
        outcomes: &[PageOutcome],
    ) -> Result<(), EngineError> {
        self.merge_outcomes(pool, outcomes);
        let lane_hits = probe_lanes_batched(ctx, pool, lanes, pids);

        // Serial issue core, in page order. `cursors[gi]` walks lane
        // `gi`'s precomputed hit flags in step with its probe
        // subsequence.
        let mut cursors = vec![0usize; lanes.len()];
        let mut pid_hits: Vec<bool> = Vec::with_capacity(lanes.len());
        for (&pid, outcome) in pids.iter().zip(outcomes) {
            let work = &outcome.work;
            let view = ctx.store.view(pid);
            let targets = ctx.strategy.targets(pid, ctx.num_gpus);
            let fanout = targets.len() as u64;
            // Algorithm 1 checks cachedPIDMap BEFORE touching storage
            // (line 16 precedes lines 18-26): a page every target GPU
            // already caches must not generate SSD traffic or MMBuf
            // churn. A batched probe hits iff the page was resident
            // before it, so ANDing the per-target hits IS the line-16
            // pre-check.
            pid_hits.clear();
            let mut all_cached = true;
            for gi in targets.clone() {
                let hit = lane_hits[gi][cursors[gi]];
                cursors[gi] += 1;
                pid_hits.push(hit);
                all_cached &= hit;
            }
            let page = ctx.store.page(pid);
            let data_ready = source.page_ready(pid, page, all_cached, self.sweep_start)?;
            for (ti, gi) in targets.enumerate() {
                let cost = KernelCost {
                    class: ctx.class,
                    lane_slots: work.lane_slots,
                    atomic_ops: per_target_atomic_ops(work.atomic_ops, fanout, ti),
                };
                self.stats.pages += 1;
                let hit = pid_hits[ti];
                if ctx.spans {
                    // Zero-duration marker: cache probes are bookkeeping,
                    // not time, but they explain why a page did (not)
                    // generate PCI-E traffic.
                    ctx.tel.record_span(
                        Track::new(keys::pid::ENGINE, 1),
                        SpanCat::Cache,
                        format!("{} p{pid} g{gi}", if hit { "hit" } else { "miss" }),
                        self.sweep_start,
                        self.sweep_start,
                    );
                }
                let lane = &mut lanes[gi];
                if hit {
                    self.stats.cache_hits += 1;
                    lane.issue_kernel(cost, self.sweep_start, "K(cached)")?;
                } else {
                    let ra_bytes = (ctx.ra_bytes_per_vertex > 0).then(|| {
                        schedule::ra_copy_bytes(
                            view.kind(),
                            view.count() as usize,
                            ctx.ra_bytes_per_vertex,
                        )
                    });
                    lane.issue_streamed(ctx.page_size, ra_bytes, cost, data_ready)?;
                }
            }
        }
        Ok(())
    }

    /// Sub-stage 1: fold the kernels' work summaries and local
    /// nextPIDSets into the sweep accumulator. Totals are exact integer
    /// sums ([`CounterVec`] slots), `any_update` a commutative OR, and
    /// the per-range pid lists feed a `BTreeSet` — all order-independent
    /// merges, so the result is identical for every thread count.
    fn merge_outcomes(&mut self, pool: &ThreadPool, outcomes: &[PageOutcome]) {
        // The dominant merge cost is the nextPIDSet traffic, not the
        // outcome count (PageRank sweeps carry empty next lists; BFS
        // frontier phases carry most of the graph), so the fan-out gate
        // weighs both.
        let work: usize = outcomes
            .iter()
            .map(|o| 1 + o.next_pids.len())
            .sum::<usize>();
        if pool.threads() == 1 || work < MERGE_PAR_MIN {
            for outcome in outcomes {
                let w = &outcome.work;
                self.edges += w.active_edges;
                self.stats.active_vertices += w.active_vertices;
                self.stats.active_edges += w.active_edges;
                self.any_update |= w.updated;
                self.next.extend(outcome.next_pids.iter().copied());
            }
            return;
        }
        const AV: usize = 0;
        const AE: usize = 1;
        let totals = CounterVec::new(2);
        let updated = AtomicBool::new(false);
        let grain = outcomes.len().div_ceil(4 * pool.threads()).max(1);
        let partial_next = pool.par_ranges(outcomes.len(), grain, Vec::new, |next, range| {
            for outcome in &outcomes[range] {
                let work = &outcome.work;
                totals.add(AV, work.active_vertices);
                totals.add(AE, work.active_edges);
                if work.updated {
                    updated.store(true, Ordering::Relaxed);
                }
                next.extend(outcome.next_pids.iter().copied());
            }
        });
        self.edges += totals.get(AE);
        self.stats.active_vertices += totals.get(AV);
        self.stats.active_edges += totals.get(AE);
        self.any_update |= updated.load(Ordering::Relaxed);
        for next in partial_next {
            // The BTreeSet deduplicates globally; its content does not
            // depend on which worker contributed which range.
            self.next.extend(next);
        }
    }
}

/// Sub-stage 2: batch every lane's cache probes for one phase. Builds
/// each lane's probe subsequence (the phase's pids that target it, in
/// page order), then runs the per-lane batches in parallel — lane caches
/// are disjoint, so [`ThreadPool::par_slices_mut`] hands each worker an
/// exclusive lane. Returns one hit-flag vector per lane, aligned with
/// its subsequence.
fn probe_lanes_batched(
    ctx: &AccountCtx<'_>,
    pool: &ThreadPool,
    lanes: &mut [GpuLane],
    pids: &[u64],
) -> Vec<Vec<bool>> {
    let mut per_lane: Vec<Vec<u64>> = vec![Vec::new(); lanes.len()];
    for &pid in pids {
        for gi in ctx.strategy.targets(pid, ctx.num_gpus) {
            per_lane[gi].push(pid);
        }
    }
    struct ProbeTask<'a> {
        lane: &'a mut GpuLane,
        pids: Vec<u64>,
        hits: Vec<bool>,
    }
    let total: usize = per_lane.iter().map(Vec::len).sum();
    let mut tasks: Vec<ProbeTask<'_>> = lanes
        .iter_mut()
        .zip(per_lane)
        .map(|(lane, pids)| ProbeTask {
            lane,
            pids,
            hits: Vec::new(),
        })
        .collect();
    if pool.threads() == 1 || total < PROBE_PAR_MIN {
        for t in tasks.iter_mut() {
            t.hits = t.lane.probe_batch(&t.pids);
        }
    } else {
        pool.par_slices_mut(tasks.chunks_mut(1).collect(), |_, tasks| {
            for t in tasks.iter_mut() {
                t.hits = t.lane.probe_batch(&t.pids);
            }
        });
    }
    tasks.into_iter().map(|t| t.hits).collect()
}

/// The sweep barrier (Alg. 1 line 27): all GPUs finish before `t` moves on.
pub(crate) fn barrier(lanes: &[GpuLane], t: SimTime) -> SimTime {
    lanes.iter().fold(t, |t, lane| t.max(lane.sync()))
}

/// Copy nextPIDSet / cachedPIDMap back (Alg. 1 lines 29-30): one small
/// bitmap pair per GPU, all starting at the barrier.
pub(crate) fn frontier_copy_back(lanes: &mut [GpuLane], num_pages: u64, t: SimTime) -> SimTime {
    let bitmap_bytes = num_pages.div_ceil(8).max(1);
    let start = t;
    let mut end = t;
    for lane in lanes.iter_mut() {
        let s = lane.write_back(2 * bitmap_bytes, start);
        end = end.max(s.end);
    }
    end
}

/// WA write-back: Strategy-P merges replicas peer-to-peer onto the master
/// GPU and copies once (Fig. 5a steps 3-4); the naive variant and
/// Strategy-S perform N direct copies, which contend on the host side and
/// therefore chain (Sec. 4.2).
pub(crate) fn sync_wa(
    lanes: &mut [GpuLane],
    strategy: Strategy,
    p2p_sync: bool,
    per_gpu_bytes: u64,
    t: SimTime,
) -> SimTime {
    if lanes.len() == 1 {
        return lanes[0].write_back(per_gpu_bytes, t).end.max(t);
    }
    match (strategy, p2p_sync) {
        (Strategy::Performance, true) => {
            // Peer-to-peer merge: every non-master GPU pushes its WA to
            // the master in parallel on its own P2P engine...
            let mut merged = t;
            for lane in lanes.iter_mut().skip(1) {
                merged = merged.max(lane.push_peer(per_gpu_bytes, t).end);
            }
            // ...then one chunk copy to host.
            lanes[0].write_back(per_gpu_bytes, merged).end
        }
        _ => {
            // Naive: N serialised GPU→host copies (host-side WA buffer is
            // shared, so the writes contend).
            let mut end = t;
            for lane in lanes.iter_mut() {
                end = lane.write_back(per_gpu_bytes, end).end;
            }
            end
        }
    }
}

/// Record one sweep's telemetry. One definition of a sweep's extent,
/// shared by the counter registry and the trace: `sweep_wall..t` brackets
/// Alg. 1 lines 13-30 — the per-sweep WA broadcast, page streaming and
/// kernels, the barrier, and the nextPIDSet/cachedPIDMap/WA write-backs.
/// `SWEEP_ELAPSED_NS` and the sweep span are set from the same two
/// instants, so trace and registry agree.
pub(crate) fn emit_sweep(
    tel: &Telemetry,
    spans: bool,
    sweep: u32,
    stats: &SweepStats,
    sweep_wall: SimTime,
    t: SimTime,
) {
    tel.add(keys::sweep(sweep, keys::SWEEP_PAGES), stats.pages);
    tel.add(keys::sweep(sweep, keys::SWEEP_CACHE_HITS), stats.cache_hits);
    tel.add(
        keys::sweep(sweep, keys::SWEEP_ACTIVE_VERTICES),
        stats.active_vertices,
    );
    tel.add(
        keys::sweep(sweep, keys::SWEEP_ACTIVE_EDGES),
        stats.active_edges,
    );
    tel.set(
        keys::sweep(sweep, keys::SWEEP_ELAPSED_NS),
        stats.elapsed.as_nanos(),
    );
    if spans {
        tel.record_span(
            Track::new(keys::pid::ENGINE, 0),
            SpanCat::Sweep,
            format!("sweep {sweep}"),
            sweep_wall,
            t,
        );
    }
}

/// Split `total` atomic operations across `fanout` replica GPUs so the
/// per-target shares always sum back to `total`: every target gets the
/// truncated quotient and the first `total % fanout` targets one extra op.
/// (Truncating division alone under-accounted atomic work whenever the
/// fanout did not divide it — 7 atomics across 2 GPUs silently lost one.)
pub fn per_target_atomic_ops(total: u64, fanout: u64, target_index: usize) -> u64 {
    let fanout = fanout.max(1);
    total / fanout + u64::from((target_index as u64) < total % fanout)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_gpu::timer::GpuTimer;
    use gts_gpu::{GpuConfig, PcieConfig};

    #[test]
    fn per_target_atomic_ops_sum_to_the_total_for_odd_fanouts() {
        for total in [0u64, 1, 6, 7, 13, 101, 1_000_003] {
            for fanout in [1u64, 2, 3, 4, 5, 7, 16] {
                let shares: Vec<u64> = (0..fanout as usize)
                    .map(|ti| per_target_atomic_ops(total, fanout, ti))
                    .collect();
                assert_eq!(
                    shares.iter().sum::<u64>(),
                    total,
                    "total={total} fanout={fanout} shares={shares:?}"
                );
                // The split is as even as possible: shares differ by <= 1.
                let max = shares.iter().max().unwrap();
                let min = shares.iter().min().unwrap();
                assert!(max - min <= 1, "uneven split {shares:?}");
            }
        }
        // The truncating-division bug this replaces: 7 across 2 lost an op.
        assert_eq!(
            per_target_atomic_ops(7, 2, 0) + per_target_atomic_ops(7, 2, 1),
            7
        );
        // Degenerate fanout 0 is clamped, not a division fault.
        assert_eq!(per_target_atomic_ops(5, 0, 0), 5);
    }

    fn lanes(n: usize) -> Vec<GpuLane> {
        (0..n)
            .map(|_| {
                GpuLane::uncached(GpuTimer::new(
                    GpuConfig::titan_x(),
                    PcieConfig::gen3_x16(),
                    4,
                ))
            })
            .collect()
    }

    #[test]
    fn p2p_sync_merges_then_copies_once() {
        let bytes = 1 << 24;
        let mut p2p = lanes(4);
        let p2p_end = sync_wa(&mut p2p, Strategy::Performance, true, bytes, SimTime::ZERO);
        // Non-master lanes pushed their WA peer-to-peer; only the master
        // copied to host.
        for lane in &p2p[1..] {
            assert_eq!(lane.timer().bytes_p2p(), bytes);
            assert_eq!(lane.timer().bytes_d2h(), 0);
        }
        assert_eq!(p2p[0].timer().bytes_d2h(), bytes);

        // The naive fallback chains N host copies and must finish later.
        let mut naive = lanes(4);
        let naive_end = sync_wa(
            &mut naive,
            Strategy::Performance,
            false,
            bytes,
            SimTime::ZERO,
        );
        for lane in &naive {
            assert_eq!(lane.timer().bytes_d2h(), bytes);
        }
        assert!(naive_end > p2p_end, "{naive_end:?} vs {p2p_end:?}");
    }

    #[test]
    fn barrier_takes_the_slowest_lane() {
        let mut ls = lanes(2);
        ls[1].load_chunk(1 << 26, SimTime::ZERO);
        let t = barrier(&ls, SimTime::ZERO);
        assert_eq!(t, ls[1].sync());
        assert!(t > ls[0].sync());
    }
}
