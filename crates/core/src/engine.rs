//! The GTS framework engine — Algorithm 1 of the paper.
//!
//! One `run` executes a [`GtsProgram`] over a slotted-page [`GraphStore`]:
//!
//! 1. **Initialisation** — allocate WABuf / RABuf / SPBuf / LPBuf (and the
//!    RVT) in each GPU's device memory, sized by the program's WA/RA layout
//!    and the strategy's WA split; whatever device memory remains becomes
//!    the topology page cache (`cachedPIDMap`, Sec. 3.3). Allocation beyond
//!    capacity fails with [`EngineError::DeviceOom`] — the paper's O.O.M.
//!    cells.
//! 2. **Sweep loop** — for traversal programs, `nextPIDSet` seeds with the
//!    source's page and each level streams only marked pages; for sweep
//!    programs every iteration streams all pages, Small Pages first, then
//!    Large Pages (Sec. 3.4's phase separation). Pages are fetched
//!    SSD → MMBuf → SPBuf as needed (lines 15–27), assigned to GPUs by the
//!    strategy's `h(j)`, pipelined over `num_streams` asynchronous streams,
//!    and served from the GPU cache when possible.
//! 3. **Synchronisation** — per-sweep WA write-back for sweep programs
//!    (peer-to-peer merge under Strategy-P), a final WA write-back for
//!    traversal programs, plus the small per-level nextPIDSet/cachedPIDMap
//!    copies (lines 28–30).
//!
//! Functional results are exact (kernels really run); time is accounted on
//! the simulated clock (see `gts-gpu`).

use crate::job::{Engine, JobOptions};
use crate::programs::GtsProgram;
use crate::report::RunReport;
use crate::strategy::Strategy;
use gts_ckpt::CkptError;
use gts_faults::FaultConfig;
use gts_gpu::memory::GpuOom;
use gts_gpu::warp::MicroTechnique;
use gts_gpu::{GpuConfig, PcieConfig};
use gts_storage::builder::GraphStore;
use gts_storage::cache::{FifoCache, LruCache, PageCache, RandomCache};
use gts_storage::{MutateError, StorageError, WalError};
use gts_telemetry::Telemetry;
use std::fmt;
use std::path::PathBuf;

/// Where the topology pages live before streaming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageLocation {
    /// Whole graph resident in main memory (the paper's in-memory setting,
    /// used when |G| < MMBuf — loading time excluded, as in Sec. 7.2).
    InMemory,
    /// Striped over this many simulated PCI-E SSDs.
    Ssds(usize),
    /// Striped over this many simulated HDDs.
    Hdds(usize),
}

/// Which replacement policy the GPU-side page cache uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CachePolicyKind {
    /// Least recently used (the paper's default).
    Lru,
    /// First in, first out.
    Fifo,
    /// Random replacement (seeded).
    Random,
}

impl CachePolicyKind {
    /// Instantiate the policy with a capacity (in pages).
    pub fn build(self, capacity_pages: usize) -> PageCache {
        match self {
            CachePolicyKind::Lru => Box::new(LruCache::new(capacity_pages)),
            CachePolicyKind::Fifo => Box::new(FifoCache::new(capacity_pages)),
            CachePolicyKind::Random => Box::new(RandomCache::new(capacity_pages, 0x6715)),
        }
    }
}

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct GtsConfig {
    /// Number of GPUs.
    pub num_gpus: usize,
    /// Asynchronous streams per GPU (Fig. 10 sweeps 1..32).
    pub num_streams: usize,
    /// Multi-GPU strategy (Sec. 4).
    pub strategy: Strategy,
    /// Micro-level parallel technique (Sec. 6.2).
    pub technique: MicroTechnique,
    /// Per-GPU hardware model.
    pub gpu: GpuConfig,
    /// PCI-E link model.
    pub pcie: PcieConfig,
    /// Where topology pages come from.
    pub storage: StorageLocation,
    /// MMBuf size as a percentage of the graph's page count when streaming
    /// from secondary storage (Sec. 7.2 uses 20 %; 0 disables the MMBuf).
    pub mmbuf_percent: u32,
    /// Page-cache replacement policy.
    pub cache_policy: CachePolicyKind,
    /// Optional cap on cache size in bytes (Fig. 11's x-axis); `None`
    /// means "all leftover device memory".
    pub cache_limit_bytes: Option<u64>,
    /// Use peer-to-peer WA merging under Strategy-P (Sec. 4.1); `false`
    /// falls back to N direct GPU→host copies (the ablation baseline).
    pub p2p_sync: bool,
    /// Host threads executing kernel bodies (functional work only — the
    /// simulated clock is unaffected). Defaults to the machine's available
    /// parallelism; `1` reproduces the exact serial execution order, and
    /// every value produces byte-identical reports and traces because all
    /// parallel updates are atomically commutative.
    pub host_threads: usize,
    /// Record wall-clock nanoseconds spent in host phase A (functional
    /// kernels) and phase B (accounting) under the `host.phase_*_ns`
    /// telemetry keys. Wall-clock readings vary run to run, so these
    /// keys sit OUTSIDE the determinism contract (like `ckpt.*`) and
    /// the flag defaults to off; the bench harness turns it on to track
    /// the phase-B share of host time.
    pub measure_host_phases: bool,
    /// Deterministic fault-injection plan for the run: seeded schedules
    /// of transient device read errors, torn pages, and GPU copy/launch
    /// faults, all absorbed by bounded retry on the simulated clock.
    /// `None` disables injection entirely (no draws, no schedule drift).
    pub faults: Option<FaultConfig>,
    /// When a device-memory allocation fails, step the configuration down
    /// instead of aborting: Strategy-P → Strategy-S, then halved stream
    /// counts, then no page cache — each step recorded as a typed degrade
    /// event. `false` restores fail-fast O.O.M. reporting.
    pub degrade_on_oom: bool,
    /// Crash-consistent checkpointing: write a resumable snapshot every
    /// `every` sweeps to `dir`, and optionally start the run by resuming
    /// the directory's latest valid snapshot. `None` disables it.
    pub checkpoint: Option<CheckpointConfig>,
    /// Mutation write-ahead log for live runs: every scheduled batch is
    /// sealed into `<dir>/wal.log` *before* it applies, so a crash between
    /// checkpoints loses no applied mutation — resume replays the log
    /// suffix on top of the newest snapshot instead of refusing with a
    /// store-fingerprint mismatch. Ignored by static ([`Gts::run`]) jobs;
    /// `None` disables logging (and live resume keeps its old refusal).
    pub wal_dir: Option<PathBuf>,
    /// Background scrub cadence in sweeps (>= 1): at the boundary of
    /// every sweep whose index is a multiple of this, walk every store
    /// page in the serial accounting phase, verify its at-rest trailer
    /// checksum against the fault plan's bit-rot schedule, repair
    /// detections from the authoritative in-memory copy, and route them
    /// to drive quarantine/re-striping. Results land under the sim-side
    /// deterministic `scrub.*` counters. `None` disables scrubbing.
    pub scrub_every: Option<u32>,
    /// Watchdog deadline for any single sweep, in simulated nanoseconds.
    /// A sweep that exceeds it aborts the run with
    /// [`EngineError::DeadlineExceeded`] — after a final checkpoint is
    /// flushed (when checkpointing is configured). `None` disables it.
    pub sweep_deadline_ns: Option<u64>,
    /// Watchdog budget for the whole run, in simulated nanoseconds,
    /// checked at every sweep boundary; same abort semantics as
    /// [`GtsConfig::sweep_deadline_ns`]. `None` disables it.
    pub run_budget_ns: Option<u64>,
}

/// Where snapshots go, how often they are taken, and whether this run
/// starts from one (see [`GtsConfig::checkpoint`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointConfig {
    /// Directory holding the snapshot files and the manifest.
    pub dir: PathBuf,
    /// Snapshot cadence in sweeps (>= 1): a snapshot is written at the
    /// top of every sweep whose index is a multiple of `every`.
    pub every: u32,
    /// Resume from the directory's latest valid snapshot instead of
    /// starting at sweep 0. Fails with a typed error when the directory
    /// has no usable snapshot or it belongs to a different run setup.
    pub resume: bool,
}

impl CheckpointConfig {
    /// Checkpoint into `dir` every `every` sweeps, without resuming.
    pub fn new(dir: impl Into<PathBuf>, every: u32) -> CheckpointConfig {
        CheckpointConfig {
            dir: dir.into(),
            every,
            resume: false,
        }
    }

    /// The same configuration, but resuming from the latest snapshot.
    pub fn resuming(mut self) -> CheckpointConfig {
        self.resume = true;
        self
    }
}

impl Default for GtsConfig {
    fn default() -> Self {
        GtsConfig {
            num_gpus: 1,
            num_streams: 16,
            strategy: Strategy::Performance,
            technique: MicroTechnique::default_edge_centric(),
            gpu: GpuConfig::titan_x(),
            pcie: PcieConfig::gen3_x16(),
            storage: StorageLocation::InMemory,
            mmbuf_percent: 20,
            cache_policy: CachePolicyKind::Lru,
            cache_limit_bytes: None,
            p2p_sync: true,
            host_threads: gts_exec::default_host_threads(),
            measure_host_phases: false,
            faults: None,
            degrade_on_oom: true,
            checkpoint: None,
            wal_dir: None,
            scrub_every: None,
            sweep_deadline_ns: None,
            run_budget_ns: None,
        }
    }
}

impl GtsConfig {
    /// A validating builder, starting from [`GtsConfig::default`].
    pub fn builder() -> GtsConfigBuilder {
        GtsConfigBuilder {
            cfg: GtsConfig::default(),
        }
    }

    /// Check the configuration's invariants. Both construction paths route
    /// through this one checker: [`GtsConfigBuilder::build`] (and
    /// [`GtsBuilder::build`]) report violations as [`ConfigError`] values,
    /// [`Gts::new`] panics with the same error's message — so the two
    /// paths can never drift apart on what "valid" means.
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.num_gpus < 1 {
            return Err(ConfigError::ZeroGpus);
        }
        if self.num_streams < 1 {
            return Err(ConfigError::ZeroStreams);
        }
        if self.host_threads < 1 {
            return Err(ConfigError::ZeroHostThreads);
        }
        if self.mmbuf_percent > 100 {
            return Err(ConfigError::MmbufPercentOutOfRange(self.mmbuf_percent));
        }
        if let Some(limit) = self.cache_limit_bytes {
            if limit > self.gpu.device_memory {
                return Err(ConfigError::CacheLimitExceedsDeviceMemory {
                    limit,
                    device_memory: self.gpu.device_memory,
                });
            }
        }
        if let Some(c) = &self.checkpoint {
            if c.every < 1 {
                return Err(ConfigError::ZeroCheckpointEvery);
            }
        }
        if self.scrub_every == Some(0) {
            return Err(ConfigError::ZeroScrubEvery);
        }
        if self.sweep_deadline_ns == Some(0) {
            return Err(ConfigError::ZeroDeadline {
                what: "sweep_deadline_ns",
            });
        }
        if self.run_budget_ns == Some(0) {
            return Err(ConfigError::ZeroDeadline {
                what: "run_budget_ns",
            });
        }
        Ok(())
    }
}

/// A configuration rejected by [`GtsConfigBuilder::build`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `num_gpus` was zero — the engine needs at least one GPU.
    ZeroGpus,
    /// `num_streams` was zero — the pipeline needs at least one stream.
    ZeroStreams,
    /// `host_threads` was zero — kernel bodies need at least one host
    /// thread (`1` means exact serial execution).
    ZeroHostThreads,
    /// `mmbuf_percent` above 100 (it is a percentage of the graph's
    /// pages; Sec. 7.2 uses 20, and 0 disables the MMBuf entirely).
    MmbufPercentOutOfRange(u32),
    /// A cache cap larger than the device itself can never take effect.
    CacheLimitExceedsDeviceMemory {
        /// The requested cap in bytes.
        limit: u64,
        /// The configured GPU's device memory in bytes.
        device_memory: u64,
    },
    /// `checkpoint.every` was zero — the cadence is in sweeps and a
    /// snapshot every 0 sweeps is meaningless.
    ZeroCheckpointEvery,
    /// `scrub_every` was zero — the scrub cadence is in sweeps and a
    /// pass every 0 sweeps is meaningless.
    ZeroScrubEvery,
    /// A watchdog deadline was zero — every sweep takes simulated time,
    /// so a zero budget would abort unconditionally.
    ZeroDeadline {
        /// Which budget was zero (`"sweep_deadline_ns"` or
        /// `"run_budget_ns"`).
        what: &'static str,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroGpus => write!(f, "num_gpus must be >= 1"),
            ConfigError::ZeroStreams => write!(f, "num_streams must be >= 1"),
            ConfigError::ZeroHostThreads => write!(f, "host_threads must be >= 1"),
            ConfigError::MmbufPercentOutOfRange(p) => {
                write!(f, "mmbuf_percent must be in 0..=100, got {p}")
            }
            ConfigError::CacheLimitExceedsDeviceMemory {
                limit,
                device_memory,
            } => write!(
                f,
                "cache_limit_bytes ({limit}) exceeds device memory ({device_memory})"
            ),
            ConfigError::ZeroCheckpointEvery => {
                write!(f, "checkpoint.every must be >= 1 (it is a sweep cadence)")
            }
            ConfigError::ZeroScrubEvery => {
                write!(f, "scrub_every must be >= 1 (it is a sweep cadence)")
            }
            ConfigError::ZeroDeadline { what } => {
                write!(f, "{what} must be > 0 when set")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// Builder for [`GtsConfig`]; [`GtsConfigBuilder::build`] validates.
#[derive(Debug, Clone)]
pub struct GtsConfigBuilder {
    cfg: GtsConfig,
}

macro_rules! config_setters {
    ($($(#[$doc:meta])* $field:ident: $ty:ty),+ $(,)?) => {
        $(
            $(#[$doc])*
            pub fn $field(mut self, $field: $ty) -> Self {
                self.cfg_mut().$field = $field;
                self
            }
        )+
    };
}

impl GtsConfigBuilder {
    fn cfg_mut(&mut self) -> &mut GtsConfig {
        &mut self.cfg
    }

    config_setters! {
        /// Number of GPUs (>= 1).
        num_gpus: usize,
        /// Asynchronous streams per GPU (>= 1; Fig. 10 sweeps 1..32).
        num_streams: usize,
        /// Multi-GPU strategy (Sec. 4).
        strategy: Strategy,
        /// Micro-level parallel technique (Sec. 6.2).
        technique: MicroTechnique,
        /// Per-GPU hardware model.
        gpu: GpuConfig,
        /// PCI-E link model.
        pcie: PcieConfig,
        /// Where topology pages come from.
        storage: StorageLocation,
        /// MMBuf size as a percentage of the graph's pages (0..=100;
        /// 0 disables the MMBuf).
        mmbuf_percent: u32,
        /// Page-cache replacement policy.
        cache_policy: CachePolicyKind,
        /// Optional cap on cache size in bytes (must fit in device memory).
        cache_limit_bytes: Option<u64>,
        /// Peer-to-peer WA merging under Strategy-P.
        p2p_sync: bool,
        /// Host threads for kernel bodies (>= 1; `1` = exact serial order,
        /// any value = byte-identical results).
        host_threads: usize,
        /// Record wall-clock phase A/B host times (`host.phase_*_ns`
        /// keys, outside the determinism contract; default off).
        measure_host_phases: bool,
        /// Deterministic fault-injection plan (`None` disables injection).
        faults: Option<FaultConfig>,
        /// Step down (P→S, fewer streams, no cache) instead of aborting
        /// on device O.O.M.
        degrade_on_oom: bool,
        /// Crash-consistent checkpointing (`None` disables it).
        checkpoint: Option<CheckpointConfig>,
        /// Mutation write-ahead log directory for live runs (`None`
        /// disables logging).
        wal_dir: Option<PathBuf>,
        /// Background scrub cadence in sweeps (>= 1; `None` disables
        /// scrubbing).
        scrub_every: Option<u32>,
        /// Watchdog deadline per sweep, simulated ns (`None` disables it).
        sweep_deadline_ns: Option<u64>,
        /// Watchdog budget for the whole run, simulated ns (`None`
        /// disables it).
        run_budget_ns: Option<u64>,
    }

    /// Validate and produce the configuration.
    pub fn build(self) -> Result<GtsConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

/// Errors an engine run can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A device-memory allocation failed — the graph's WA (or the
    /// streaming buffers) exceed GPU capacity under the chosen strategy.
    DeviceOom(GpuOom),
    /// The store's RVT is corrupt: a Large Page's entry is missing its
    /// `LP_RANGE` (the tuple Fig. 12 stores as −1 only for Small Pages),
    /// so the planner cannot widen the vertex's chunk run.
    CorruptRvt {
        /// The Large Page whose RVT entry lacks an `LP_RANGE`.
        pid: u64,
    },
    /// A page fetch failed permanently: the retry budget was exhausted,
    /// the page's trailer checksum never verified, or every drive in the
    /// array is quarantined.
    Storage(StorageError),
    /// An injected GPU fault persisted past the retry budget.
    GpuFault {
        /// The GPU whose operation kept failing.
        gpu: u32,
        /// The failing operation (`"H2D copy"` or `"kernel launch"`).
        op: &'static str,
        /// Attempts made, the first one included.
        attempts: u32,
    },
    /// The fault plan's injected crash point fired (kill-and-resume chaos
    /// testing): the process "died" at a sweep boundary, after any
    /// checkpoint due there reached the directory.
    InjectedCrash {
        /// The sweep at whose boundary the crash fired.
        sweep: u32,
    },
    /// A watchdog deadline was exceeded on the simulated clock. When
    /// checkpointing is configured, a final snapshot was flushed before
    /// this error surfaced, so the run is resumable.
    DeadlineExceeded {
        /// Which budget tripped (`"sweep_deadline_ns"` or
        /// `"run_budget_ns"`).
        what: &'static str,
        /// The configured budget, simulated nanoseconds.
        limit_ns: u64,
        /// What was actually spent, simulated nanoseconds.
        elapsed_ns: u64,
    },
    /// A checkpoint operation failed: the directory is unusable, a write
    /// did not land, or a resume found no compatible snapshot.
    Checkpoint(CkptError),
    /// A scheduled mutation batch was rejected by the store (out-of-range
    /// endpoint, deleting a missing edge, page-ID exhaustion). The store
    /// is unchanged — [`gts_storage::GraphStore::apply_mutations`] stages
    /// before it installs — but the run aborts: silently skipping a batch
    /// would leave the caller believing it applied.
    Mutation(MutateError),
    /// A write-ahead-log operation failed: the log directory is unusable,
    /// an append did not land, the log belongs to a different store, or
    /// recovery found a chain the store cannot replay. (A batch the store
    /// *rejects* after logging is rolled back out of the log and surfaces
    /// as [`EngineError::Mutation`], not here.)
    Wal(WalError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::DeviceOom(e) => write!(f, "{e}"),
            EngineError::CorruptRvt { pid } => write!(
                f,
                "corrupt RVT: Large Page {pid} has no LP_RANGE in its entry"
            ),
            EngineError::Storage(e) => write!(f, "storage: {e}"),
            EngineError::GpuFault { gpu, op, attempts } => {
                write!(f, "gpu{gpu}: {op} failed after {attempts} attempts")
            }
            EngineError::InjectedCrash { sweep } => {
                write!(f, "injected crash at sweep {sweep} boundary")
            }
            EngineError::DeadlineExceeded {
                what,
                limit_ns,
                elapsed_ns,
            } => write!(
                f,
                "{what} exceeded: {elapsed_ns} ns spent against a {limit_ns} ns budget"
            ),
            EngineError::Checkpoint(e) => write!(f, "checkpoint: {e}"),
            EngineError::Mutation(e) => write!(f, "mutation: {e}"),
            EngineError::Wal(e) => write!(f, "wal: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<MutateError> for EngineError {
    fn from(e: MutateError) -> Self {
        EngineError::Mutation(e)
    }
}

impl From<GpuOom> for EngineError {
    fn from(e: GpuOom) -> Self {
        EngineError::DeviceOom(e)
    }
}

impl From<StorageError> for EngineError {
    fn from(e: StorageError) -> Self {
        EngineError::Storage(e)
    }
}

impl From<CkptError> for EngineError {
    fn from(e: CkptError) -> Self {
        EngineError::Checkpoint(e)
    }
}

impl From<WalError> for EngineError {
    /// A batch the store rejected *after* logging keeps its typed
    /// [`EngineError::Mutation`] identity — the WAL rolled the record
    /// back, so the failure is the store's, not the log's.
    fn from(e: WalError) -> Self {
        match e {
            WalError::Rejected(m) => EngineError::Mutation(m),
            other => EngineError::Wal(other),
        }
    }
}

pub use crate::sweep::live::MutationSchedule;

/// The GTS engine.
#[derive(Debug, Clone)]
pub struct Gts {
    cfg: GtsConfig,
    telemetry: Telemetry,
}

/// Builder for [`Gts`]: the validated configuration plus the telemetry
/// handle the engine records into.
#[derive(Debug, Clone)]
pub struct GtsBuilder {
    cfg: GtsConfigBuilder,
    telemetry: Telemetry,
}

impl GtsBuilder {
    fn cfg_mut(&mut self) -> &mut GtsConfig {
        &mut self.cfg.cfg
    }

    config_setters! {
        /// Number of GPUs (>= 1).
        num_gpus: usize,
        /// Asynchronous streams per GPU (>= 1; Fig. 10 sweeps 1..32).
        num_streams: usize,
        /// Multi-GPU strategy (Sec. 4).
        strategy: Strategy,
        /// Micro-level parallel technique (Sec. 6.2).
        technique: MicroTechnique,
        /// Per-GPU hardware model.
        gpu: GpuConfig,
        /// PCI-E link model.
        pcie: PcieConfig,
        /// Where topology pages come from.
        storage: StorageLocation,
        /// MMBuf size as a percentage of the graph's pages (0..=100;
        /// 0 disables the MMBuf).
        mmbuf_percent: u32,
        /// Page-cache replacement policy.
        cache_policy: CachePolicyKind,
        /// Optional cap on cache size in bytes (must fit in device memory).
        cache_limit_bytes: Option<u64>,
        /// Peer-to-peer WA merging under Strategy-P.
        p2p_sync: bool,
        /// Host threads for kernel bodies (>= 1; `1` = exact serial order,
        /// any value = byte-identical results).
        host_threads: usize,
        /// Record wall-clock phase A/B host times (`host.phase_*_ns`
        /// keys, outside the determinism contract; default off).
        measure_host_phases: bool,
        /// Deterministic fault-injection plan (`None` disables injection).
        faults: Option<FaultConfig>,
        /// Step down (P→S, fewer streams, no cache) instead of aborting
        /// on device O.O.M.
        degrade_on_oom: bool,
        /// Crash-consistent checkpointing (`None` disables it).
        checkpoint: Option<CheckpointConfig>,
        /// Mutation write-ahead log directory for live runs (`None`
        /// disables logging).
        wal_dir: Option<PathBuf>,
        /// Background scrub cadence in sweeps (>= 1; `None` disables
        /// scrubbing).
        scrub_every: Option<u32>,
        /// Watchdog deadline per sweep, simulated ns (`None` disables it).
        sweep_deadline_ns: Option<u64>,
        /// Watchdog budget for the whole run, simulated ns (`None`
        /// disables it).
        run_budget_ns: Option<u64>,
    }

    /// Replace the whole configuration (e.g. one made by
    /// [`GtsConfig::builder`] or a struct literal).
    pub fn config(mut self, cfg: GtsConfig) -> Self {
        self.cfg = GtsConfigBuilder { cfg };
        self
    }

    /// Record into `tel` instead of a fresh counters-only handle. Pass
    /// [`Telemetry::with_spans`] to capture Fig. 3/4-style timelines for
    /// [`Telemetry::to_chrome_trace`] / [`Telemetry::render_ascii`].
    pub fn telemetry(mut self, tel: Telemetry) -> Self {
        self.telemetry = tel;
        self
    }

    /// Validate the configuration and produce the engine.
    pub fn build(self) -> Result<Gts, ConfigError> {
        Ok(Gts {
            cfg: self.cfg.build()?,
            telemetry: self.telemetry,
        })
    }
}

impl Gts {
    /// Create an engine with the given configuration.
    ///
    /// # Panics
    /// Panics when [`GtsConfig::validate`] rejects the configuration —
    /// the exact same [`ConfigError`] set [`Gts::builder`] reports as
    /// values (zero GPUs/streams/host threads, `mmbuf_percent` above 100,
    /// a cache cap beyond device memory). Callers that want the error as
    /// a value use the builder; the CLI keeps one documented `expect` at
    /// its boundary.
    pub fn new(cfg: GtsConfig) -> Self {
        if let Err(e) = cfg.validate() {
            panic!("invalid GtsConfig: {e}");
        }
        Gts {
            cfg,
            telemetry: Telemetry::new(),
        }
    }

    /// A validating builder, starting from [`GtsConfig::default`] and a
    /// counters-only [`Telemetry`].
    pub fn builder() -> GtsBuilder {
        GtsBuilder {
            cfg: GtsConfigBuilder {
                cfg: GtsConfig::default(),
            },
            telemetry: Telemetry::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GtsConfig {
        &self.cfg
    }

    /// The engine's telemetry handle. After [`Gts::run`] it holds the
    /// run's counters (and spans, when enabled); [`Gts::run`]'s
    /// [`RunReport`] is derived from exactly these counters.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Execute `prog` over `store`. Returns the run report; the program
    /// itself holds the algorithm's output (levels, ranks, ...).
    ///
    /// With a fault plan configured ([`GtsConfig::faults`]), injected
    /// transient faults are absorbed by bounded retry on the simulated
    /// clock: results stay byte-identical to the fault-free run, only
    /// counters, spans, and simulated time differ. Unrecoverable faults
    /// surface as typed errors — and even then the counters and spans
    /// accumulated so far are flushed, so a partial trace survives.
    pub fn run(
        &self,
        store: &GraphStore,
        prog: &mut dyn GtsProgram,
    ) -> Result<RunReport, EngineError> {
        self.session().run_job(store, prog, &self.job_options())
    }

    /// Execute `prog` over a *live* `store`: each of `schedule`'s mutation
    /// batches applies atomically at its sweep's boundary, bumping the
    /// store's epoch, invalidating the rewritten pages in every GPU cache
    /// and the MMBuf, and pinning freshly-allocated delta pages onto
    /// surviving drives. The program is notified through
    /// [`GtsProgram::on_mutation`] and may continue incrementally; batches
    /// scheduled past the algorithm's convergence still apply — the run
    /// stays alive at the fixpoint, jumps to the next due boundary, and
    /// re-sweeps from the mutation's seeds.
    ///
    /// Results are byte-identical at any `host_threads`, exactly as for
    /// [`Gts::run`]: batches apply serially at boundaries, never during a
    /// sweep.
    pub fn run_live(
        &self,
        store: &mut GraphStore,
        prog: &mut dyn GtsProgram,
        schedule: MutationSchedule,
    ) -> Result<RunReport, EngineError> {
        self.session()
            .run_job_live(store, prog, schedule, &self.job_options())
    }

    /// The one-job session behind [`Gts::run`]/[`Gts::run_live`]: a
    /// long-lived [`Engine`] over this configuration. The configuration
    /// was validated at construction, so this cannot fail.
    fn session(&self) -> Engine {
        Engine::from_validated(self.cfg.clone())
    }

    /// Solo runs record into the engine's own telemetry handle with no
    /// tenant attribution.
    fn job_options(&self) -> JobOptions {
        JobOptions::with_telemetry(self.telemetry.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::programs::{Bfs, PageRank};
    use gts_graph::generate::rmat;
    use gts_graph::{reference, Csr};
    use gts_storage::{build_graph_store, MutationBatch, PageFormatConfig, PhysicalIdConfig};
    use gts_telemetry::{keys, SpanCat};

    fn small_store() -> GraphStore {
        build_graph_store(
            &rmat(9),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap()
    }

    #[test]
    fn bfs_matches_reference() {
        let g = rmat(9);
        let store =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let engine = Gts::new(GtsConfig::default());
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        engine.run(&store, &mut bfs).unwrap();
        let want = reference::bfs(&Csr::from_edge_list(&g), 0);
        assert_eq!(bfs.levels_u32(), want);
    }

    #[test]
    fn pagerank_matches_reference() {
        let g = rmat(8);
        let store =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let engine = Gts::new(GtsConfig::default());
        let mut pr = PageRank::new(store.num_vertices(), 5);
        engine.run(&store, &mut pr).unwrap();
        let want = reference::pagerank(&Csr::from_edge_list(&g), 0.85, 5);
        for (got, want) in pr.ranks().iter().zip(&want) {
            assert!(
                (*got as f64 - want).abs() < 1e-4,
                "rank mismatch {got} vs {want}"
            );
        }
    }

    #[test]
    fn multi_gpu_strategies_agree_functionally() {
        let g = rmat(9);
        let store =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let mut results = Vec::new();
        for strategy in [Strategy::Performance, Strategy::Scalability] {
            for gpus in [1usize, 2, 4] {
                let cfg = GtsConfig {
                    num_gpus: gpus,
                    strategy,
                    ..GtsConfig::default()
                };
                let mut bfs = Bfs::new(store.num_vertices(), 0);
                Gts::new(cfg).run(&store, &mut bfs).unwrap();
                results.push(bfs.levels().to_vec());
            }
        }
        for r in &results[1..] {
            assert_eq!(r, &results[0]);
        }
    }

    #[test]
    fn strategy_p_speeds_up_with_more_gpus() {
        let store = small_store();
        let elapsed = |gpus: usize| {
            let cfg = GtsConfig {
                num_gpus: gpus,
                ..GtsConfig::default()
            };
            let mut pr = PageRank::new(store.num_vertices(), 3);
            Gts::new(cfg).run(&store, &mut pr).unwrap().elapsed
        };
        let one = elapsed(1);
        let two = elapsed(2);
        assert!(two < one, "2 GPUs {two:?} must beat 1 GPU {one:?}");
    }

    #[test]
    fn oom_when_wa_exceeds_device_memory() {
        let store = small_store();
        let cfg = GtsConfig {
            gpu: GpuConfig::titan_x().with_device_memory(1024),
            ..GtsConfig::default()
        };
        let mut pr = PageRank::new(store.num_vertices(), 1);
        match Gts::new(cfg).run(&store, &mut pr) {
            Err(EngineError::DeviceOom(oom)) => assert_eq!(oom.label, "WABuf"),
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    /// An undersized 4-GPU PageRank setup: the exact buffer footprint
    /// plus *half* the WA, so Strategy-P (full WA replica) cannot fit
    /// but Strategy-S (WA/4) can.
    fn undersized_p_config(store: &GraphStore, strategy: Strategy) -> GtsConfig {
        let v = store.num_vertices();
        let wa = crate::attrs::AlgorithmKind::PageRank.wa_bytes(v);
        let page = store.cfg().page_size as u64;
        let streams = 16u64;
        let max_sp_vertices = page / 14; // VID(6) + OFF(4) + ADJLIST_SZ(4)
        let buffers =
            streams * page * 2 + streams * max_sp_vertices * 4 + store.rvt().memory_bytes();
        let capacity = buffers + wa / 2;
        GtsConfig {
            num_gpus: 4,
            strategy,
            gpu: GpuConfig::titan_x().with_device_memory(capacity),
            ..GtsConfig::default()
        }
    }

    #[test]
    fn strategy_s_fits_where_p_cannot() {
        // WA too big for one GPU but fine when split over four. With
        // degradation off, Strategy-P must report the O.O.M. it hits.
        let store = build_graph_store(
            &rmat(13),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let v = store.num_vertices();
        let mk = |strategy| GtsConfig {
            degrade_on_oom: false,
            ..undersized_p_config(&store, strategy)
        };
        let mut pr = PageRank::new(v, 1);
        assert!(matches!(
            Gts::new(mk(Strategy::Performance)).run(&store, &mut pr),
            Err(EngineError::DeviceOom(_))
        ));
        let mut pr = PageRank::new(v, 1);
        Gts::new(mk(Strategy::Scalability))
            .run(&store, &mut pr)
            .expect("Strategy-S must fit");
    }

    #[test]
    fn oom_steps_down_to_strategy_s_instead_of_aborting() {
        // Same undersized setup, but with the default degradation ladder:
        // the run completes via a recorded P->S step-down, and the ranks
        // are identical to a run configured as Strategy-S from the start.
        let store = build_graph_store(
            &rmat(13),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let v = store.num_vertices();
        let engine = Gts::new(undersized_p_config(&store, Strategy::Performance));
        let mut pr = PageRank::new(v, 1);
        engine
            .run(&store, &mut pr)
            .expect("degradation must rescue the O.O.M.");
        assert_eq!(engine.telemetry().counter(keys::DEGRADE_EVENTS), 1);
        let mut want = PageRank::new(v, 1);
        Gts::new(undersized_p_config(&store, Strategy::Scalability))
            .run(&store, &mut want)
            .unwrap();
        assert_eq!(pr.ranks(), want.ranks(), "degraded run computes S's result");
    }

    #[test]
    fn injected_faults_preserve_results_and_add_time() {
        let store = small_store();
        let run = |faults: Option<FaultConfig>| {
            let cfg = GtsConfig {
                storage: StorageLocation::Ssds(2),
                mmbuf_percent: 0,
                cache_limit_bytes: Some(0),
                faults,
                ..GtsConfig::default()
            };
            let engine = Gts::new(cfg);
            let mut pr = PageRank::new(store.num_vertices(), 3);
            let r = engine.run(&store, &mut pr).unwrap();
            let retries = engine.telemetry().counter(keys::IO_RETRIES);
            (pr.ranks().to_vec(), r.elapsed, retries)
        };
        let clean = run(None);
        assert_eq!(clean.2, 0, "no plan, no retries");
        let faulty = run(Some(FaultConfig::with_seed(0xFA)));
        assert_eq!(faulty.0, clean.0, "ranks must be byte-identical");
        assert!(faulty.2 > 0, "the default rates must fire on ~600 reads");
        assert!(
            faulty.1 > clean.1,
            "absorbed faults cost simulated time: {:?} vs {:?}",
            faulty.1,
            clean.1
        );
    }

    #[test]
    fn job_options_override_the_engine_fault_domain() {
        use crate::job::{Engine, JobOptions};
        let store = small_store();
        let cfg = GtsConfig {
            storage: StorageLocation::Ssds(2),
            mmbuf_percent: 0,
            cache_limit_bytes: Some(0),
            faults: None, // the engine itself is fault-free
            ..GtsConfig::default()
        };
        let engine = Engine::new(cfg).unwrap();
        // A job bringing its own domain sees that domain's faults...
        let faulty = JobOptions::default().faults(FaultConfig::with_seed(0xFA));
        let mut pr = PageRank::new(store.num_vertices(), 3);
        engine.run_job(&store, &mut pr, &faulty).unwrap();
        assert!(faulty.telemetry.counter(keys::IO_RETRIES) > 0);
        // ...while the next job on the same engine stays clean, and the
        // override reproduces the engine-wide config byte for byte.
        let clean = JobOptions::default();
        let mut pr = PageRank::new(store.num_vertices(), 3);
        engine.run_job(&store, &mut pr, &clean).unwrap();
        assert_eq!(clean.telemetry.counter(keys::IO_RETRIES), 0);
        let engine_wide = Engine::new(GtsConfig {
            faults: Some(FaultConfig::with_seed(0xFA)),
            ..engine.config().clone()
        })
        .unwrap();
        let wide = JobOptions::default();
        let mut pr = PageRank::new(store.num_vertices(), 3);
        engine_wide.run_job(&store, &mut pr, &wide).unwrap();
        assert_eq!(wide.telemetry.counters(), faulty.telemetry.counters());
    }

    #[test]
    fn failed_runs_still_flush_counters_and_spans() {
        // Corrupt RVT mid-run (the truncated-entry setup below) with
        // spans on: the run errs, but the partial trace and counters
        // must survive — including a closed run span.
        let n = 600u32;
        let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        edges.extend((1..n).map(|v| (v, 0)));
        let mut store = build_graph_store(
            &gts_graph::EdgeList::new(n, edges),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let lp = store.large_pids()[0];
        let mut entry = store.rvt().entry(lp);
        entry.lp_range = None;
        store.rvt_mut().set_entry(lp, entry);
        let engine = Gts::builder()
            .telemetry(Telemetry::with_spans())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let err = engine.run(&store, &mut bfs).unwrap_err();
        assert!(matches!(err, EngineError::CorruptRvt { .. }));
        let tel = engine.telemetry();
        assert!(tel.span_count() > 0, "partial spans survive the error");
        assert!(
            tel.spans().iter().any(|s| s.cat == SpanCat::Run),
            "the run span is closed even on error"
        );
        assert!(tel.counter(keys::RUN_GPUS) > 0, "counters are flushed");
        assert!(tel.to_chrome_trace().contains("\"ph\":\"X\""));
    }

    #[test]
    fn ssd_streaming_is_slower_than_in_memory() {
        let store = small_store();
        let run = |storage| {
            let cfg = GtsConfig {
                storage,
                // No cache: force every page over the full path.
                cache_limit_bytes: Some(0),
                mmbuf_percent: 0,
                ..GtsConfig::default()
            };
            let mut pr = PageRank::new(store.num_vertices(), 2);
            Gts::new(cfg).run(&store, &mut pr).unwrap().elapsed
        };
        let mem = run(StorageLocation::InMemory);
        let ssd = run(StorageLocation::Ssds(1));
        let hdd = run(StorageLocation::Hdds(1));
        assert!(ssd > mem, "SSD {ssd:?} slower than memory {mem:?}");
        assert!(hdd > ssd, "HDD {hdd:?} slower than SSD {ssd:?}");
    }

    #[test]
    fn cache_reduces_streamed_pages_for_bfs() {
        let store = small_store();
        let run = |cache_bytes| {
            let cfg = GtsConfig {
                cache_limit_bytes: Some(cache_bytes),
                ..GtsConfig::default()
            };
            let mut bfs = Bfs::new(store.num_vertices(), 0);
            Gts::new(cfg).run(&store, &mut bfs).unwrap()
        };
        let cold = run(0);
        let hot = run(GpuConfig::titan_x().device_memory);
        assert_eq!(cold.cache_hits, 0);
        assert!(hot.cache_hits > 0, "repeat page visits must hit the cache");
        assert!(hot.pages_streamed < cold.pages_streamed);
        assert!(hot.elapsed <= cold.elapsed);
    }

    #[test]
    fn more_streams_help_pagerank() {
        let store = small_store();
        let run = |streams| {
            let cfg = GtsConfig {
                num_streams: streams,
                cache_limit_bytes: Some(0),
                ..GtsConfig::default()
            };
            let mut pr = PageRank::new(store.num_vertices(), 3);
            Gts::new(cfg).run(&store, &mut pr).unwrap().elapsed
        };
        let one = run(1);
        let sixteen = run(16);
        assert!(sixteen < one, "16 streams {sixteen:?} vs 1 {one:?}");
    }

    #[test]
    fn spans_recorded_when_telemetry_enabled() {
        let store = small_store();
        let engine = Gts::builder()
            .telemetry(Telemetry::with_spans())
            .build()
            .unwrap();
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        engine.run(&store, &mut bfs).unwrap();
        let tel = engine.telemetry();
        assert!(tel.span_count() > 0, "spans requested");
        let spans = tel.spans();
        assert!(spans.iter().any(|s| s.cat == SpanCat::Copy));
        assert!(spans.iter().any(|s| s.cat == SpanCat::Kernel));
        assert!(spans.iter().any(|s| s.cat == SpanCat::Sweep));
        let run = spans
            .iter()
            .find(|s| s.cat == SpanCat::Run)
            .expect("run span");
        // Well-nested: the run span contains every other span.
        for s in &spans {
            assert!(s.start >= run.start && s.end <= run.end, "{s:?}");
        }
        assert!(tel.to_chrome_trace().contains("\"ph\":\"X\""));
    }

    #[test]
    fn spans_skipped_by_default() {
        let store = small_store();
        let engine = Gts::new(GtsConfig::default());
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        engine.run(&store, &mut bfs).unwrap();
        assert_eq!(engine.telemetry().span_count(), 0);
        assert!(engine.telemetry().counter(keys::PAGES_STREAMED) > 0);
    }

    #[test]
    fn builder_validates_configuration() {
        assert_eq!(
            GtsConfig::builder().num_gpus(0).build().unwrap_err(),
            ConfigError::ZeroGpus
        );
        assert_eq!(
            GtsConfig::builder().num_streams(0).build().unwrap_err(),
            ConfigError::ZeroStreams
        );
        assert_eq!(
            GtsConfig::builder().host_threads(0).build().unwrap_err(),
            ConfigError::ZeroHostThreads
        );
        assert_eq!(
            GtsConfig::builder()
                .host_threads(4)
                .build()
                .unwrap()
                .host_threads,
            4
        );
        // 0 is valid — it disables the MMBuf; only >100 is rejected.
        assert_eq!(
            GtsConfig::builder()
                .mmbuf_percent(0)
                .build()
                .unwrap()
                .mmbuf_percent,
            0
        );
        assert_eq!(
            GtsConfig::builder().mmbuf_percent(101).build().unwrap_err(),
            ConfigError::MmbufPercentOutOfRange(101)
        );
        assert!(matches!(
            GtsConfig::builder()
                .cache_limit_bytes(Some(u64::MAX))
                .build(),
            Err(ConfigError::CacheLimitExceedsDeviceMemory { .. })
        ));
        let cfg = GtsConfig::builder()
            .num_gpus(2)
            .num_streams(8)
            .strategy(Strategy::Scalability)
            .build()
            .unwrap();
        assert_eq!(cfg.num_gpus, 2);
        assert_eq!(cfg.num_streams, 8);
        assert_eq!(cfg.strategy, Strategy::Scalability);
        assert!(Gts::builder().num_gpus(0).build().is_err());
        assert_eq!(
            GtsConfig::builder()
                .checkpoint(Some(CheckpointConfig::new("ckpts", 0)))
                .build()
                .unwrap_err(),
            ConfigError::ZeroCheckpointEvery
        );
        assert_eq!(
            GtsConfig::builder()
                .scrub_every(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroScrubEvery
        );
        assert_eq!(
            GtsConfig::builder()
                .scrub_every(Some(4))
                .build()
                .unwrap()
                .scrub_every,
            Some(4)
        );
        assert_eq!(
            GtsConfig::builder()
                .sweep_deadline_ns(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroDeadline {
                what: "sweep_deadline_ns"
            }
        );
        assert_eq!(
            GtsConfig::builder()
                .run_budget_ns(Some(0))
                .build()
                .unwrap_err(),
            ConfigError::ZeroDeadline {
                what: "run_budget_ns"
            }
        );
    }

    /// Every [`EngineError`] variant renders its context fields as prose
    /// an operator can act on — no `{:?}` leakage of variant names.
    #[test]
    fn engine_error_display_renders_every_variant() {
        let cases = [
            (
                EngineError::DeviceOom(GpuOom {
                    requested: 100,
                    available: 25,
                    capacity: 50,
                    label: "WABuf",
                }),
                "GPU out of memory allocating WABuf (100 B requested, 25 B free of 50 B)",
            ),
            (
                EngineError::CorruptRvt { pid: 3 },
                "corrupt RVT: Large Page 3 has no LP_RANGE in its entry",
            ),
            (
                EngineError::Storage(StorageError::CorruptPage { pid: 42 }),
                "storage: page 42: persistent trailer checksum mismatch",
            ),
            (
                EngineError::GpuFault {
                    gpu: 2,
                    op: "H2D copy",
                    attempts: 4,
                },
                "gpu2: H2D copy failed after 4 attempts",
            ),
            (
                EngineError::InjectedCrash { sweep: 6 },
                "injected crash at sweep 6 boundary",
            ),
            (
                EngineError::DeadlineExceeded {
                    what: "run_budget_ns",
                    limit_ns: 1_000,
                    elapsed_ns: 2_500,
                },
                "run_budget_ns exceeded: 2500 ns spent against a 1000 ns budget",
            ),
            (
                EngineError::Checkpoint(CkptError::NoSnapshot {
                    dir: "ckpts".into(),
                }),
                "checkpoint: no checkpoint to resume from in ckpts",
            ),
            (
                EngineError::Wal(WalError::Corrupt {
                    reason: "header truncated".to_string(),
                }),
                "wal: corrupt wal: header truncated",
            ),
        ];
        for (e, want) in cases {
            assert_eq!(e.to_string(), want);
            assert_ne!(e.to_string(), format!("{e:?}"), "Display must not be Debug");
        }
    }

    #[test]
    fn report_is_a_view_of_the_counter_registry() {
        let store = small_store();
        let engine = Gts::builder().num_gpus(2).build().unwrap();
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let r = engine.run(&store, &mut bfs).unwrap();
        let tel = engine.telemetry();
        assert_eq!(r.elapsed.as_nanos(), tel.counter(keys::RUN_ELAPSED_NS));
        assert_eq!(r.sweeps as u64, tel.counter(keys::RUN_SWEEPS));
        assert_eq!(r.pages_streamed, tel.counter(keys::PAGES_STREAMED));
        assert_eq!(r.cache_hits, tel.counter(keys::CACHE_HITS));
        assert_eq!(r.edges_traversed, tel.counter(keys::EDGES_TRAVERSED));
        assert_eq!(r.per_gpu.len() as u64, tel.counter(keys::RUN_GPUS));
        for (i, g) in r.per_gpu.iter().enumerate() {
            let i = i as u32;
            assert_eq!(g.bytes_h2d, tel.counter(keys::gpu(i, keys::GPU_BYTES_H2D)));
            assert_eq!(g.kernels, tel.counter(keys::gpu(i, keys::GPU_KERNELS)));
        }
        // Cache probes balance: hits + misses == pages visited.
        let probes = tel.counter(keys::CACHE_HITS) + tel.counter(keys::CACHE_MISSES);
        let pages: u64 = r.per_sweep.iter().map(|s| s.pages).sum();
        assert_eq!(probes, pages);
        assert!(tel.counter(keys::KERNEL_LAUNCHES) > 0);
    }

    #[test]
    fn telemetry_resets_between_runs() {
        let store = small_store();
        let engine = Gts::new(GtsConfig::default());
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let first = engine.run(&store, &mut bfs).unwrap();
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let second = engine.run(&store, &mut bfs).unwrap();
        // Counters cover exactly one run, not the engine's lifetime.
        assert_eq!(first.pages_streamed, second.pages_streamed);
        assert_eq!(
            engine.telemetry().counter(keys::EDGES_TRAVERSED),
            second.edges_traversed
        );
    }

    #[test]
    fn stream_count_is_clamped_to_kernel_concurrency() {
        let store = small_store();
        let cfg = GtsConfig {
            num_streams: 1000, // far beyond the CUDA limit of 32
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(cfg)
            .run(&store, &mut bfs)
            .expect("clamped, not rejected");
    }

    #[test]
    fn empty_graph_pagerank_terminates() {
        let store = build_graph_store(
            &gts_graph::EdgeList::new(4, vec![]),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut pr = PageRank::new(store.num_vertices(), 3);
        let r = Gts::new(GtsConfig::default()).run(&store, &mut pr).unwrap();
        assert_eq!(r.sweeps, 3);
        assert_eq!(r.edges_traversed, 0);
        // Every vertex keeps exactly the teleport share.
        for &p in pr.ranks() {
            assert!((p - 0.15 / 4.0).abs() < 1e-6);
        }
    }

    #[test]
    fn cache_limit_beyond_free_memory_is_clamped() {
        // The whole device is a valid cap, but the streaming buffers eat
        // into it first: the cache gets the (smaller) leftover.
        let store = small_store();
        let cfg = GtsConfig {
            cache_limit_bytes: Some(GpuConfig::titan_x().device_memory),
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let r = Gts::new(cfg).run(&store, &mut bfs).unwrap();
        let pages = r.per_gpu[0].cache_capacity_pages as u64;
        assert!(pages * store.cfg().page_size as u64 <= GpuConfig::titan_x().device_memory);
    }

    #[test]
    fn more_gpus_than_pages_still_works() {
        let store = build_graph_store(
            &rmat(6),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 65536),
        )
        .unwrap();
        assert!(store.num_pages() <= 2);
        let cfg = GtsConfig {
            num_gpus: 8,
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        Gts::new(cfg).run(&store, &mut bfs).unwrap();
        let want = reference::bfs(&Csr::from_edge_list(&rmat(6)), 0);
        assert_eq!(bfs.levels_u32(), want);
    }

    #[test]
    fn pagerank_ra_subvectors_are_streamed() {
        // PageRank streams prevPR (4 B/vertex) with each page; BFS streams
        // nothing extra. The byte accounting must show the difference.
        let store = small_store();
        let cfg = GtsConfig {
            cache_limit_bytes: Some(0),
            ..GtsConfig::default()
        };
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let bfs_run = Gts::new(cfg.clone()).run(&store, &mut bfs).unwrap();
        let mut pr = PageRank::new(store.num_vertices(), 1);
        let pr_run = Gts::new(cfg).run(&store, &mut pr).unwrap();
        let page = store.cfg().page_size as u64;
        // One PR sweep moves topology + RA + 2x WA; pure topology would be
        // pages x page_size.
        let pr_topo = store.num_pages() * page;
        assert!(
            pr_run.total_bytes_h2d()
                >= pr_topo + 4 * store.num_vertices() + 4 * store.num_vertices(),
            "PR must move RA and WA on top of topology"
        );
        assert!(bfs_run.total_bytes_h2d() > 0);
    }

    #[test]
    fn per_sweep_stats_sum_to_totals() {
        let store = small_store();
        let engine = Gts::new(GtsConfig::default());
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        let r = engine.run(&store, &mut bfs).unwrap();
        assert_eq!(r.per_sweep.len(), r.sweeps as usize);
        let edges: u64 = r.per_sweep.iter().map(|s| s.active_edges).sum();
        assert_eq!(edges, r.edges_traversed);
        let hits: u64 = r.per_sweep.iter().map(|s| s.cache_hits).sum();
        assert_eq!(hits, r.cache_hits);
        let pages: u64 = r.per_sweep.iter().map(|s| s.pages).sum();
        assert_eq!(pages, r.pages_streamed + r.cache_hits);
        // Frontier: sweep 0 holds only the source (counted once per LP
        // chunk if it is a high-degree vertex).
        assert!(r.per_sweep[0].active_vertices >= 1);
        assert!(r.per_sweep[0].active_vertices <= store.num_pages());
    }

    #[test]
    fn report_statistics_are_consistent() {
        let store = small_store();
        let engine = Gts::new(GtsConfig::default());
        let mut pr = PageRank::new(store.num_vertices(), 2);
        let r = engine.run(&store, &mut pr).unwrap();
        assert_eq!(r.algorithm, "PageRank");
        assert_eq!(r.sweeps, 2);
        // Two sweeps over every edge.
        assert_eq!(r.edges_traversed, 2 * store.num_edges());
        assert!(r.total_bytes_h2d() > 0);
        assert!(r.transfer_to_kernel_ratio() > 0.0);
    }

    #[test]
    #[should_panic(expected = "mmbuf_percent must be in 0..=100, got 200")]
    fn gts_new_panics_with_the_builders_error_message() {
        // Gts::new routes through GtsConfig::validate: the panic carries
        // the exact ConfigError message the builder would return.
        let cfg = GtsConfig {
            mmbuf_percent: 200,
            ..GtsConfig::default()
        };
        let _ = Gts::new(cfg);
    }

    #[test]
    fn truncated_rvt_surfaces_as_corrupt_rvt_error() {
        // A star graph whose hub overflows one page: Large Pages exist.
        let n = 600u32;
        let mut edges: Vec<(u32, u32)> = (1..n).map(|v| (0, v)).collect();
        edges.extend((1..n).map(|v| (v, 0)));
        let mut store = build_graph_store(
            &gts_graph::EdgeList::new(n, edges),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let lp = store.large_pids()[0];
        // Truncate the RVT entry: drop the LP_RANGE the planner needs.
        let mut entry = store.rvt().entry(lp);
        entry.lp_range = None;
        store.rvt_mut().set_entry(lp, entry);
        // BFS from the hub must hit the corrupt entry when it widens the
        // chunk run — as a typed error, not a panic.
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        match Gts::new(GtsConfig::default()).run(&store, &mut bfs) {
            Err(EngineError::CorruptRvt { pid }) => assert_eq!(pid, lp),
            other => panic!("expected CorruptRvt, got {other:?}"),
        }
    }

    #[test]
    fn host_threads_do_not_change_results_or_simulated_time() {
        let store = small_store();
        let run = |threads: usize| {
            let cfg = GtsConfig {
                host_threads: threads,
                ..GtsConfig::default()
            };
            let mut pr = PageRank::new(store.num_vertices(), 4);
            let report = Gts::new(cfg).run(&store, &mut pr).unwrap();
            (pr.ranks().to_vec(), report.elapsed, report.edges_traversed)
        };
        let serial = run(1);
        for threads in [2, 4, 8] {
            let par = run(threads);
            // Bit-identical ranks (commutative fixed-point accumulation)
            // and identical simulated numbers.
            assert_eq!(par.0, serial.0, "ranks differ at {threads} threads");
            assert_eq!(par.1, serial.1, "elapsed differs at {threads} threads");
            assert_eq!(par.2, serial.2, "edges differ at {threads} threads");
        }
    }

    /// Up to `want` edges `(hub, v)` absent from `g` — insert-only batches
    /// built from these keep the live result comparable to a from-scratch
    /// run over the union graph.
    fn missing_edges(g: &gts_graph::EdgeList, hub: u32, want: usize) -> Vec<(u32, u32)> {
        let present: std::collections::HashSet<(u32, u32)> = g.edges.iter().copied().collect();
        (0..g.num_vertices)
            .filter(|&v| v != hub && !present.contains(&(hub, v)))
            .take(want)
            .map(|v| (hub, v))
            .collect()
    }

    #[test]
    fn live_bfs_matches_reference_on_the_mutated_graph() {
        // Insert a burst of edges out of vertex 1 mid-traversal (sweep 2):
        // the monotone relaxation plus `pending` re-activation must land on
        // exactly the BFS levels of the union graph.
        let g = rmat(9);
        let store0 =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let extra = missing_edges(&g, 1, 40);
        assert!(extra.len() >= 30, "rmat(9) vertex 1 is nowhere near full");
        let mut batch = MutationBatch::new();
        for &(s, d) in &extra {
            batch.insert(s as u64, d as u64);
        }
        let mut store = store0;
        let engine = Gts::new(GtsConfig::default());
        let mut bfs = Bfs::new(store.num_vertices(), 0);
        engine
            .run_live(&mut store, &mut bfs, MutationSchedule::new().at(2, batch))
            .unwrap();
        let mut g2 = g.clone();
        g2.edges.extend(extra);
        let want = reference::bfs(&Csr::from_edge_list(&g2), 0);
        assert_eq!(bfs.levels_u32(), want);
        assert_eq!(store.epoch(), 1, "one applied batch, one epoch bump");
        assert_eq!(engine.telemetry().counter(keys::MUT_EPOCH), 1);
        assert!(engine.telemetry().counter(keys::MUT_INSERTED) >= 30);
    }

    #[test]
    fn live_cc_post_done_batch_merges_components() {
        // Two disjoint directed paths; CC converges, then a scheduled
        // bridge edge revives the run (post-Done revival) and min-label
        // propagation must flood label 0 across the second path.
        let n = 64u32;
        let mut edges: Vec<(u32, u32)> = (0..31).map(|v| (v, v + 1)).collect();
        edges.extend((32..63).map(|v| (v, v + 1)));
        let mut store = build_graph_store(
            &gts_graph::EdgeList::new(n, edges),
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024),
        )
        .unwrap();
        let mut batch = MutationBatch::new();
        batch.insert(0, 32);
        let engine = Gts::new(GtsConfig::default());
        let mut cc = crate::programs::Cc::new(n as u64);
        let report = engine
            .run_live(&mut store, &mut cc, MutationSchedule::new().at(50, batch))
            .unwrap();
        assert!(
            cc.labels().iter().all(|&l| l == 0),
            "bridge must merge everything into component 0: {:?}",
            cc.labels()
        );
        assert!(report.sweeps > 50, "the run must revive past sweep 50");
        assert_eq!(engine.telemetry().counter(keys::MUT_BATCHES), 1);
        assert_eq!(engine.telemetry().counter(keys::MUT_EPOCH), 1);
    }

    #[test]
    fn live_pagerank_post_done_batch_gets_a_refresh_sweep() {
        // Sweep programs with the default (empty) `on_mutation` get a full
        // refresh sweep per post-Done batch: Fixed(3) converges at sweep 2,
        // the batch at sweep 10 revives the run for exactly one more sweep.
        let g = rmat(8);
        let mut store =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let extra = missing_edges(&g, 3, 20);
        let mut batch = MutationBatch::new();
        for &(s, d) in &extra {
            batch.insert(s as u64, d as u64);
        }
        let mut base = PageRank::new(store.num_vertices(), 3);
        Gts::new(GtsConfig::default())
            .run(&store, &mut base)
            .unwrap();
        let engine = Gts::new(GtsConfig::default());
        let mut pr = PageRank::new(store.num_vertices(), 3);
        let report = engine
            .run_live(&mut store, &mut pr, MutationSchedule::new().at(10, batch))
            .unwrap();
        assert_eq!(report.sweeps, 11, "3 iterations + the jump to sweep 10");
        assert_ne!(
            pr.ranks(),
            base.ranks(),
            "the refresh sweep must see the inserted edges"
        );
        assert_eq!(engine.telemetry().counter(keys::MUT_BATCHES), 1);
    }

    #[test]
    fn live_runs_identical_across_host_threads() {
        // The whole mutation path is host-serial and BTree-ordered, so a
        // mutate-while-sweep run must be byte-identical at any thread
        // count — levels, simulated clock, and every mut.* counter.
        let g = rmat(9);
        let extra = missing_edges(&g, 2, 24);
        let run = |threads: usize| {
            let mut store =
                build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024))
                    .unwrap();
            let mut ins = MutationBatch::new();
            for &(s, d) in &extra {
                ins.insert(s as u64, d as u64);
            }
            let mut del = MutationBatch::new();
            del.delete(g.edges[0].0 as u64, g.edges[0].1 as u64);
            let cfg = GtsConfig {
                host_threads: threads,
                ..GtsConfig::default()
            };
            let engine = Gts::new(cfg);
            let mut bfs = Bfs::new(store.num_vertices(), 0);
            let report = engine
                .run_live(
                    &mut store,
                    &mut bfs,
                    MutationSchedule::new().at(1, ins).at(2, del),
                )
                .unwrap();
            let tel = engine.telemetry();
            let muts: Vec<u64> = [
                keys::MUT_BATCHES,
                keys::MUT_INSERTED,
                keys::MUT_DELETED,
                keys::MUT_PAGES_REWRITTEN,
                keys::MUT_DELTA_PAGES,
                keys::MUT_CACHE_INVALIDATIONS,
                keys::MUT_EPOCH,
            ]
            .iter()
            .map(|k| tel.counter(k))
            .collect();
            (bfs.levels().to_vec(), report.elapsed, report.sweeps, muts)
        };
        let serial = run(1);
        assert_eq!(serial.3[0], 2, "both batches applied");
        for threads in [2, 4] {
            assert_eq!(
                run(threads),
                serial,
                "live run differs at {threads} threads"
            );
        }
    }

    #[test]
    fn mutated_store_refuses_a_stale_resume() {
        // A snapshot fingerprints the store *epoch*: a checkpoint taken
        // before a mutation batch must refuse to resume against the
        // mutated store — typed, not a wrong-answer resume.
        let dir = std::env::temp_dir().join(format!("gts-stale-resume-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let g = rmat(9);
        let mut store =
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap();
        let extra = missing_edges(&g, 1, 8);
        let mut batch = MutationBatch::new();
        for &(s, d) in &extra {
            batch.insert(s as u64, d as u64);
        }
        let mk = |resume: bool| {
            let ck = CheckpointConfig::new(&dir, 2);
            GtsConfig {
                checkpoint: Some(if resume { ck.resuming() } else { ck }),
                ..GtsConfig::default()
            }
        };
        // Snapshot lands at sweep 2 (epoch 0); the batch applies at the
        // sweep-3 boundary and bumps the epoch; Fixed(4) ends before the
        // sweep-4 boundary would re-snapshot the new epoch.
        let mut pr = PageRank::new(store.num_vertices(), 4);
        Gts::new(mk(false))
            .run_live(&mut store, &mut pr, MutationSchedule::new().at(3, batch))
            .unwrap();
        assert_eq!(store.epoch(), 1);
        let mut pr2 = PageRank::new(store.num_vertices(), 4);
        match Gts::new(mk(true)).run(&store, &mut pr2) {
            Err(EngineError::Checkpoint(CkptError::Mismatch { what, .. })) => {
                assert_eq!(what, "store fingerprint");
            }
            other => panic!("expected a stale-resume refusal, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Scratch dirs for one WAL test: (checkpoints, wal), both fresh.
    fn wal_dirs(tag: &str) -> (std::path::PathBuf, std::path::PathBuf) {
        let base = std::env::temp_dir().join(format!("gts-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&base).ok();
        (base.join("ckpts"), base.join("wal"))
    }

    /// One insert-only batch out of `hub`, absent from `g`.
    fn burst(g: &gts_graph::EdgeList, hub: u32, want: usize) -> MutationBatch {
        let mut batch = MutationBatch::new();
        for &(s, d) in &missing_edges(g, hub, want) {
            batch.insert(s as u64, d as u64);
        }
        batch
    }

    #[test]
    fn wal_replays_the_log_to_reach_a_post_mutation_snapshot() {
        // The batch applies at sweep 3, the snapshot lands at sweep 4
        // (post-mutation epoch), the crash kills sweep 5. Resuming over a
        // FRESH store — epoch 0, exactly what an operator rebuilds from
        // the original edge list — used to refuse with a fingerprint
        // mismatch; with the WAL it rolls the store forward to the
        // snapshot's epoch and completes byte-identically.
        let (ck_dir, wal_dir) = wal_dirs("wal-replay");
        let g = rmat(9);
        let build = || {
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap()
        };
        let mk = |resume: bool, crash: Option<gts_faults::CrashPoint>| {
            let ck = CheckpointConfig::new(&ck_dir, 4);
            GtsConfig {
                checkpoint: Some(if resume { ck.resuming() } else { ck }),
                wal_dir: Some(wal_dir.clone()),
                faults: Some(FaultConfig {
                    crash,
                    ..FaultConfig::quiet(7)
                }),
                ..GtsConfig::default()
            }
        };
        // Uncrashed baseline: the same configuration shape (checkpoints
        // perturb simulated time by rebuilding the caches cold, so the
        // baseline must checkpoint too) over its own scratch dirs.
        let (base_ck, base_wal) = wal_dirs("wal-replay-base");
        let mut base_store = build();
        let mut base_pr = PageRank::new(base_store.num_vertices(), 7);
        let base = Gts::new(GtsConfig {
            checkpoint: Some(CheckpointConfig::new(&base_ck, 4)),
            wal_dir: Some(base_wal),
            faults: Some(FaultConfig::quiet(7)),
            ..GtsConfig::default()
        })
        .run_live(
            &mut base_store,
            &mut base_pr,
            MutationSchedule::new().at(3, burst(&g, 1, 24)),
        )
        .unwrap();
        // Crashed run.
        let mut store = build();
        let mut pr = PageRank::new(store.num_vertices(), 7);
        let err = Gts::new(mk(false, Some(gts_faults::CrashPoint::AtSweep(5))))
            .run_live(
                &mut store,
                &mut pr,
                MutationSchedule::new().at(3, burst(&g, 1, 24)),
            )
            .unwrap_err();
        assert!(matches!(err, EngineError::InjectedCrash { sweep: 5 }));
        assert_eq!(store.epoch(), 1, "the batch applied before the crash");
        // Recover over a FRESH store: the WAL supplies the missing epoch.
        let mut fresh = build();
        let engine = Gts::new(mk(true, None));
        let mut pr2 = PageRank::new(fresh.num_vertices(), 7);
        let report = engine
            .run_live(
                &mut fresh,
                &mut pr2,
                MutationSchedule::new().at(3, burst(&g, 1, 24)),
            )
            .unwrap();
        assert_eq!(engine.telemetry().counter(keys::WAL_REPLAYED), 1);
        assert_eq!(pr2.ranks(), base_pr.ranks());
        assert_eq!(report.elapsed, base.elapsed);
        assert_eq!(report.sweeps, base.sweeps);
        assert_eq!(report.edges_traversed, base.edges_traversed);
        assert_eq!(
            crate::sweep::ckpt::store_fingerprint(&fresh),
            crate::sweep::ckpt::store_fingerprint(&base_store),
            "recovered store must be byte-equivalent to the uncrashed one"
        );
        std::fs::remove_dir_all(ck_dir.parent().unwrap()).ok();
        std::fs::remove_dir_all(base_ck.parent().unwrap()).ok();
    }

    #[test]
    fn wal_crash_points_recover_without_double_apply() {
        // Both WAL crash kinds at the sweep-3 boundary: MidWalAppend
        // persists a torn frame (repaired on reopen, then the batch is
        // re-logged for real), BetweenLogAndApply persists the full
        // record (the resumed boundary's re-log is an idempotent 0-byte
        // append). Either way the resumed run matches the uncrashed one.
        let g = rmat(9);
        let build = || {
            build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 1024)).unwrap()
        };
        let mut base_store = build();
        let mut base_pr = PageRank::new(base_store.num_vertices(), 6);
        Gts::new(GtsConfig::default())
            .run_live(
                &mut base_store,
                &mut base_pr,
                MutationSchedule::new().at(3, burst(&g, 2, 16)),
            )
            .unwrap();
        for (tag, crash, want_appends) in [
            ("torn", gts_faults::CrashPoint::MidWalAppend(3), 1),
            ("sealed", gts_faults::CrashPoint::BetweenLogAndApply(3), 0),
        ] {
            let (ck_dir, wal_dir) = wal_dirs(&format!("wal-crash-{tag}"));
            let mk = |resume: bool, crash: Option<gts_faults::CrashPoint>| {
                let ck = CheckpointConfig::new(&ck_dir, 2);
                GtsConfig {
                    checkpoint: Some(if resume { ck.resuming() } else { ck }),
                    wal_dir: Some(wal_dir.clone()),
                    faults: Some(FaultConfig {
                        crash,
                        ..FaultConfig::quiet(7)
                    }),
                    ..GtsConfig::default()
                }
            };
            let mut store = build();
            let mut pr = PageRank::new(store.num_vertices(), 6);
            let err = Gts::new(mk(false, Some(crash)))
                .run_live(
                    &mut store,
                    &mut pr,
                    MutationSchedule::new().at(3, burst(&g, 2, 16)),
                )
                .unwrap_err();
            assert!(
                matches!(err, EngineError::InjectedCrash { sweep: 3 }),
                "{tag}: {err:?}"
            );
            assert_eq!(store.epoch(), 0, "{tag}: died before the apply");
            let engine = Gts::new(mk(true, None));
            let mut pr2 = PageRank::new(store.num_vertices(), 6);
            engine
                .run_live(
                    &mut store,
                    &mut pr2,
                    MutationSchedule::new().at(3, burst(&g, 2, 16)),
                )
                .unwrap();
            assert_eq!(pr2.ranks(), base_pr.ranks(), "{tag}");
            assert_eq!(store.epoch(), 1, "{tag}: applied exactly once");
            assert_eq!(
                engine.telemetry().counter(keys::WAL_APPENDS),
                want_appends,
                "{tag}"
            );
            assert_eq!(
                crate::sweep::ckpt::store_fingerprint(&store),
                crate::sweep::ckpt::store_fingerprint(&base_store),
                "{tag}"
            );
            std::fs::remove_dir_all(ck_dir.parent().unwrap()).ok();
        }
    }

    #[test]
    fn scrub_detects_rot_without_disturbing_the_run() {
        // A scrub pass verifies the at-rest copies and repairs in place:
        // the simulated numbers and the program's answer are identical to
        // the same run without scrubbing, while the scrub.* counters show
        // the rot that was caught. Deterministic at any host_threads.
        let store = small_store();
        let mut quiet_pr = PageRank::new(store.num_vertices(), 6);
        let quiet = Gts::new(GtsConfig::default())
            .run(&store, &mut quiet_pr)
            .unwrap();
        let run = |threads: usize| {
            let cfg = GtsConfig {
                scrub_every: Some(2),
                host_threads: threads,
                faults: Some(FaultConfig {
                    bit_rot_ppm: 300_000,
                    ..FaultConfig::quiet(0xB17)
                }),
                ..GtsConfig::default()
            };
            let engine = Gts::new(cfg);
            let mut pr = PageRank::new(store.num_vertices(), 6);
            let report = engine.run(&store, &mut pr).unwrap();
            let tel = engine.telemetry();
            (
                pr.ranks().to_vec(),
                report.elapsed,
                tel.counter(keys::SCRUB_PAGES),
                tel.counter(keys::SCRUB_ERRORS),
                tel.counter(keys::SCRUB_REPAIRED),
            )
        };
        let serial = run(1);
        assert_eq!(serial.0, quiet_pr.ranks());
        assert_eq!(serial.1, quiet.elapsed);
        // 6 sweeps at cadence 2 → passes at sweeps 2 and 4 (sweep 0 and
        // the post-final boundary never scrub).
        assert_eq!(serial.2, 2 * store.num_pages());
        assert!(serial.3 > 0, "30% rot rate must be detected");
        assert_eq!(serial.3, serial.4);
        for threads in [2, 4] {
            assert_eq!(run(threads), serial, "scrub differs at {threads} threads");
        }
    }
}
