//! The long-lived engine and its per-job state.
//!
//! [`crate::Gts`] owns exactly one run; a *service* admits many. This
//! module splits the old monolithic run path along that line:
//!
//! * [`Engine`] — what outlives a job: the validated configuration and
//!   the lane/cache provisioning recipe built from it. An `Engine` holds
//!   no per-run state, so one instance can execute any number of jobs,
//!   sequentially or (over read-only stores) concurrently from many
//!   threads.
//! * [`JobContext`] — what one job owns: its counter registry (a
//!   dedicated [`Telemetry`] handle), fault/RNG domains, checkpoint glue,
//!   the per-GPU lanes with their page caches, and the page source.
//!   Opened by [`Engine::run_job`]/[`Engine::run_job_live`], dropped when
//!   the job's [`RunReport`] is produced.
//!
//! Solo [`crate::Gts::run`] is a thin one-job session over this API and
//! is pinned byte-for-byte by the golden fixtures: a job admitted through
//! a service produces the same report/counters as the same job run solo,
//! at any `host_threads`.

use crate::programs::{ExecMode, GtsProgram, KernelScratch, SweepControl};
use crate::report::RunReport;
use crate::strategy::Strategy;
use crate::sweep::account::{self, AccountCtx, SweepAccounting};
use crate::sweep::ckpt;
use crate::sweep::ingest::{self, PageSource};
use crate::sweep::kernels::{self, KernelEnv};
use crate::sweep::live::{self, BoundaryCtx, MutationSchedule, StoreHandle};
use crate::sweep::plan::SweepPlan;
use crate::sweep::schedule::{self, GpuLane};
use crate::sweep::scrub;
use crate::{ConfigError, EngineError, GtsConfig};
use gts_ckpt::{CkptStore, Snapshot};
use gts_exec::ThreadPool;
use gts_faults::{CrashPoint, FaultPlan};
use gts_sim::SimTime;
use gts_storage::builder::GraphStore;
use gts_storage::Wal;
use gts_telemetry::{keys, SpanCat, Telemetry, Track};

/// A long-lived engine: the validated configuration, with no per-run
/// state. One `Engine` executes any number of jobs over shared
/// [`GraphStore`]s; each job gets its own [`JobContext`] (lanes, caches,
/// fault domains, counter registry), which is what keeps per-job
/// reports byte-identical to solo runs.
#[derive(Debug, Clone)]
pub struct Engine {
    cfg: GtsConfig,
}

/// Per-job knobs that are not part of the engine configuration: where
/// the job's counters land and which tenant it is accounted to.
#[derive(Debug, Clone)]
pub struct JobOptions {
    /// The job's counter registry (and span sink). Each admitted job
    /// should bring its own handle — [`Telemetry::start_run`] clears it.
    pub telemetry: Telemetry,
    /// Tenant tag for per-tenant cache accounting: when set, every lane
    /// attributes its cache probes to `tenant.<tag>.cache.*` keys in the
    /// job's telemetry. `None` (the solo default) writes no tenant keys.
    pub tenant: Option<String>,
    /// Per-job fault domain: when set, this job opens its fault plan
    /// from *this* config instead of the engine-wide
    /// [`GtsConfig::faults`](crate::GtsConfig), so a service can give
    /// every admitted job its own seeded schedule. A fault that exhausts
    /// the job's retry budget surfaces as this job's typed
    /// [`EngineError`] — it never touches any other job's context.
    pub faults: Option<gts_faults::FaultConfig>,
}

impl Default for JobOptions {
    fn default() -> Self {
        JobOptions {
            telemetry: Telemetry::new(),
            tenant: None,
            faults: None,
        }
    }
}

impl JobOptions {
    /// Options recording into `tel`, with no tenant attribution.
    pub fn with_telemetry(tel: Telemetry) -> JobOptions {
        JobOptions {
            telemetry: tel,
            tenant: None,
            faults: None,
        }
    }

    /// Attribute this job's cache traffic to `tenant` (builder-style).
    pub fn tenant(mut self, tenant: impl Into<String>) -> JobOptions {
        self.tenant = Some(tenant.into());
        self
    }

    /// Give this job its own fault domain (builder-style), overriding
    /// the engine-wide fault config for this job only.
    pub fn faults(mut self, faults: gts_faults::FaultConfig) -> JobOptions {
        self.faults = Some(faults);
        self
    }
}

/// One job's run state, opened by the engine and consumed by its
/// execution: the job's telemetry handle, fault plan, checkpoint store
/// and resume snapshot, the per-GPU lanes (with their page caches) and
/// the page source, plus the progress the sweep loop has made so far.
pub struct JobContext {
    tel: Telemetry,
    tenant: Option<String>,
    faults: Option<FaultPlan>,
    ck: Option<CkptStore>,
    resume: Option<Snapshot>,
    /// Newer manifest entries the resume load skipped as torn or
    /// unreadable (surfaced under `ckpt.manifest.skipped`).
    manifest_skipped: u64,
    setup: LaneSetup,
    source: Box<dyn PageSource>,
    out: RunState,
}

impl JobContext {
    /// The job's telemetry handle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }
}

impl Engine {
    /// Validate `cfg` and produce an engine.
    pub fn new(cfg: GtsConfig) -> Result<Engine, ConfigError> {
        cfg.validate()?;
        Ok(Engine { cfg })
    }

    /// An engine over a configuration that is already known valid (both
    /// `Gts` construction paths validate).
    pub(crate) fn from_validated(cfg: GtsConfig) -> Engine {
        Engine { cfg }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &GtsConfig {
        &self.cfg
    }

    /// Execute `prog` over a shared read-only `store` as one job. The
    /// job's counters land in `opts.telemetry`; the returned report is
    /// derived from exactly those counters, byte-identical to
    /// [`crate::Gts::run`] of the same job at any `host_threads`.
    pub fn run_job(
        &self,
        store: &GraphStore,
        prog: &mut dyn GtsProgram,
        opts: &JobOptions,
    ) -> Result<RunReport, EngineError> {
        self.run_handle(&mut StoreHandle::Shared(store), prog, opts)
    }

    /// Execute `prog` over a *live* `store` as one job: `schedule`'s
    /// batches apply at sweep boundaries through the epoch pipeline,
    /// exactly as [`crate::Gts::run_live`].
    pub fn run_job_live(
        &self,
        store: &mut GraphStore,
        prog: &mut dyn GtsProgram,
        schedule: MutationSchedule,
        opts: &JobOptions,
    ) -> Result<RunReport, EngineError> {
        self.run_handle(
            &mut StoreHandle::Live {
                store,
                queue: schedule.into_queue(),
            },
            prog,
            opts,
        )
    }

    pub(crate) fn run_handle(
        &self,
        handle: &mut StoreHandle<'_>,
        prog: &mut dyn GtsProgram,
        opts: &JobOptions,
    ) -> Result<RunReport, EngineError> {
        // WAL recovery runs FIRST: a resuming run rolls the store forward
        // to the snapshot's fingerprint before `open_job` verifies it, so
        // a crash between a checkpoint and the next boundary no longer
        // refuses with a fingerprint mismatch.
        let (mut wal, wal_replayed) = self.open_wal(handle)?;
        let mut job = self.open_job(handle.store(), prog, opts)?;
        self.execute_job(&mut job, handle, prog, wal.as_mut(), wal_replayed)
    }

    /// Open the mutation WAL (live runs with [`GtsConfig::wal_dir`] only)
    /// and, when the job is a checkpoint resume, recover the store to the
    /// snapshot's fingerprint by replaying the WAL suffix. Returns the
    /// opened log and how many records the recovery replayed.
    ///
    /// Batches the recovery replayed are popped off the schedule queue so
    /// the resumed loop does not apply them twice; leading *empty* batches
    /// due strictly before the snapshot's sweep are also behind us (they
    /// never move the epoch, so the replay cannot see them).
    fn open_wal(&self, handle: &mut StoreHandle<'_>) -> Result<(Option<Wal>, u64), EngineError> {
        let Some(dir) = &self.cfg.wal_dir else {
            return Ok((None, 0));
        };
        let StoreHandle::Live { store, queue } = handle else {
            return Ok((None, 0));
        };
        let wal = Wal::open(dir, store)?;
        let mut replayed = 0u64;
        if let Some(c) = &self.cfg.checkpoint {
            if c.resume {
                let ck = CkptStore::open(&c.dir).map_err(EngineError::Checkpoint)?;
                let (_seq, snap) = ck.load_latest().map_err(EngineError::Checkpoint)?;
                let (target_fp, snap_sweep) =
                    ckpt::snapshot_progress(&snap).map_err(EngineError::Checkpoint)?;
                let base_epoch = store.epoch();
                replayed = ckpt::recover_store(store, &wal, target_fp)?;
                let mut to_skip = store.epoch() - base_epoch;
                while to_skip > 0 {
                    let Some((_, batch)) = queue.pop_front() else {
                        break;
                    };
                    if !batch.is_empty() {
                        to_skip -= 1;
                    }
                }
                while queue
                    .front()
                    .is_some_and(|(due, b)| b.is_empty() && *due < snap_sweep)
                {
                    queue.pop_front();
                }
            }
        }
        Ok((Some(wal), replayed))
    }

    /// First half of a run: clear the job's registry, open fault /
    /// checkpoint domains, provision lanes (degrading on O.O.M. when
    /// allowed), and build the page source.
    fn open_job(
        &self,
        store: &GraphStore,
        prog: &mut dyn GtsProgram,
        opts: &JobOptions,
    ) -> Result<JobContext, EngineError> {
        let tel = opts.telemetry.clone();
        tel.start_run();
        if tel.spans_enabled() {
            tel.name_process(keys::pid::ENGINE, "engine");
            tel.name_thread(Track::new(keys::pid::ENGINE, 0), "run");
            tel.name_thread(Track::new(keys::pid::ENGINE, 1), "cache");
        }
        let faults = opts
            .faults
            .clone()
            .or_else(|| self.cfg.faults.clone())
            .map(FaultPlan::new);
        let ck = match &self.cfg.checkpoint {
            Some(c) => Some(CkptStore::open(&c.dir).map_err(EngineError::Checkpoint)?),
            None => None,
        };
        let mut resume: Option<Snapshot> = None;
        let mut manifest_skipped = 0u64;
        if let (Some(ck), Some(c)) = (&ck, &self.cfg.checkpoint) {
            if c.resume {
                let (_seq, snap, skipped) = ck
                    .load_latest_with_skipped()
                    .map_err(EngineError::Checkpoint)?;
                manifest_skipped = skipped.len() as u64;
                ckpt::verify_meta(&snap, store, &self.cfg, prog.name())
                    .map_err(EngineError::Checkpoint)?;
                resume = Some(snap);
            }
        }
        // A resumed run re-enters at the rung the snapshot recorded —
        // including any degradations — instead of replaying the ladder.
        let rung = match &resume {
            Some(snap) => Some(ckpt::rung_of(snap).map_err(EngineError::Checkpoint)?),
            None => None,
        };
        let wa_total = prog.wa_bytes_per_vertex() * store.num_vertices();
        let exec = ExecCtx {
            cfg: &self.cfg,
            tel: &tel,
            tenant: opts.tenant.as_deref(),
        };
        let setup = exec.prepare_lanes(
            store,
            wa_total,
            prog.ra_bytes_per_vertex(),
            faults.as_ref(),
            rung,
        )?;
        let source = ingest::for_config(&self.cfg, store.num_pages(), &tel, faults.as_ref());
        Ok(JobContext {
            tel,
            tenant: opts.tenant.clone(),
            faults,
            ck,
            resume,
            manifest_skipped,
            setup,
            source,
            out: RunState {
                t: SimTime::ZERO,
                sweeps: 0,
                edges: 0,
            },
        })
    }

    /// Second half of a run: the sweep loop, then the unconditional
    /// counter flush — a failed run still lands its counters, closes its
    /// spans, and yields a partial trace.
    fn execute_job(
        &self,
        job: &mut JobContext,
        handle: &mut StoreHandle<'_>,
        prog: &mut dyn GtsProgram,
        wal: Option<&mut Wal>,
        wal_replayed: u64,
    ) -> Result<RunReport, EngineError> {
        let exec = ExecCtx {
            cfg: &self.cfg,
            tel: &job.tel,
            tenant: job.tenant.as_deref(),
        };
        let env = SweepEnv {
            faults: job.faults.as_ref(),
            ck: job.ck.as_ref(),
            resume: job.resume.take(),
            wal,
            wal_replayed,
            manifest_skipped: job.manifest_skipped,
        };
        let err = exec
            .sweep_loop(
                handle,
                prog,
                &mut job.setup,
                job.source.as_mut(),
                env,
                &mut job.out,
            )
            .err();
        exec.finalize(prog.name(), &job.setup, job.source.as_ref(), &job.out);
        match err {
            Some(e) => Err(e),
            None => Ok(RunReport::from_telemetry(&job.tel, prog.name(), "GTS")),
        }
    }
}

/// What one job's execution reads everywhere: the engine configuration,
/// the job's counter registry, and its tenant tag. This is the `self` of
/// the run machinery — an `Engine` has no telemetry of its own.
struct ExecCtx<'a> {
    cfg: &'a GtsConfig,
    tel: &'a Telemetry,
    tenant: Option<&'a str>,
}

impl ExecCtx<'_> {
    /// The checkpoint-write context for one boundary: this job's
    /// configuration and registry plus the run's store/checkpoint/fault
    /// handles.
    fn write_ctx<'b>(
        &'b self,
        store: &'b GraphStore,
        ck: &'b CkptStore,
        faults: Option<&'b FaultPlan>,
    ) -> ckpt::WriteCtx<'b> {
        ckpt::WriteCtx {
            cfg: self.cfg,
            tel: self.tel,
            store,
            ck,
            faults,
        }
    }

    /// Build the per-GPU lanes, degrading the configuration on O.O.M.
    /// when [`GtsConfig::degrade_on_oom`] allows it: Strategy-P drops to
    /// Strategy-S (splitting the WA), then the stream count halves until
    /// 1, then the page cache is turned off. Every step is counted under
    /// `degrade.events` and recorded as a [`SpanCat::Degrade`] span; if
    /// the ladder runs out, the *original* O.O.M. is returned.
    fn prepare_lanes(
        &self,
        store: &GraphStore,
        wa_total: u64,
        ra_bpv: u64,
        faults: Option<&FaultPlan>,
        rung: Option<ckpt::Rung>,
    ) -> Result<LaneSetup, EngineError> {
        let cfg = self.cfg;
        let tel = self.tel;
        let n = cfg.num_gpus;
        let mut eff = cfg.clone();
        // The effective stream count is capped by the CUDA concurrent-kernel
        // limit the paper cites (32).
        eff.num_streams = cfg.num_streams.min(cfg.gpu.max_concurrent_kernels);
        // A resume starts directly on the snapshot's (possibly degraded)
        // rung: the ladder already ran before the snapshot was taken, and
        // its degrade events live in the restored counters.
        let resumed = rung.is_some();
        if let Some(r) = rung {
            eff.strategy = r.strategy;
            eff.num_streams = r.num_streams;
            if r.cache_off {
                eff.cache_limit_bytes = Some(0);
            }
        }
        let mut first_err: Option<EngineError> = None;
        loop {
            let wa_per_gpu = eff.strategy.wa_bytes_per_gpu(wa_total, n);
            let mut lanes = Vec::with_capacity(n);
            let oom = (0..n).find_map(|i| {
                match GpuLane::for_engine(
                    &eff,
                    store,
                    eff.num_streams,
                    wa_per_gpu,
                    ra_bpv,
                    tel,
                    i as u32,
                ) {
                    Ok(mut lane) => {
                        if let Some(plan) = faults {
                            lane.attach_faults(plan.clone());
                        }
                        if let Some(tenant) = self.tenant {
                            lane.set_tenant(tenant);
                        }
                        lanes.push(lane);
                        None
                    }
                    Err(e) => Some(e),
                }
            });
            let Some(e) = oom else {
                return Ok(LaneSetup {
                    lanes,
                    strategy: eff.strategy,
                    wa_per_gpu,
                    num_streams: eff.num_streams,
                    cache_off: eff.cache_limit_bytes == Some(0),
                });
            };
            let first = first_err.get_or_insert(e).clone();
            if resumed || !cfg.degrade_on_oom {
                return Err(first);
            }
            // One rung down the ladder; out of rungs → the original error.
            let step = if matches!(eff.strategy, Strategy::Performance) && n > 1 {
                eff.strategy = Strategy::Scalability;
                "strategy P->S".to_string()
            } else if eff.num_streams > 1 {
                let to = eff.num_streams / 2;
                let label = format!("streams {}->{}", eff.num_streams, to);
                eff.num_streams = to;
                label
            } else if eff.cache_limit_bytes != Some(0) {
                eff.cache_limit_bytes = Some(0);
                "cache off".to_string()
            } else {
                return Err(first);
            };
            tel.add(keys::DEGRADE_EVENTS, 1);
            if tel.spans_enabled() {
                tel.record_span(
                    Track::new(keys::pid::ENGINE, 0),
                    SpanCat::Degrade,
                    step,
                    SimTime::ZERO,
                    SimTime::ZERO,
                );
            }
        }
    }

    /// How a run enters the sweep loop. Resuming re-enters mid-run:
    /// counters, program vectors, fault cursors, and quarantine state
    /// restore in place, and the initial WA broadcast is already inside
    /// the restored clock. A fresh run performs the initial WA chunk
    /// copy (Alg. 1 line 11 / Fig. 2 step 1; each GPU has its own PCI-E
    /// link, so the broadcast is parallel) and seeds nextPIDSet (Alg. 1
    /// lines 4-7).
    fn enter_run(
        &self,
        resume: Option<&Snapshot>,
        prog: &mut dyn GtsProgram,
        source: &mut dyn PageSource,
        faults: Option<&FaultPlan>,
        setup: &mut LaneSetup,
        store: &GraphStore,
    ) -> Result<RunEntry, EngineError> {
        if let Some(snap) = resume {
            let rs = ckpt::import_snapshot(snap, self.tel, prog, source, faults)
                .map_err(EngineError::Checkpoint)?;
            return Ok(RunEntry {
                t: rs.t,
                sweep: rs.sweep,
                resumed_at: Some(rs.sweep),
                edges: rs.edges,
                plan: rs.plan,
            });
        }
        let t = if prog.mode() == ExecMode::Sweep {
            SimTime::ZERO
        } else {
            schedule::broadcast_wa(&mut setup.lanes, setup.wa_per_gpu, SimTime::ZERO)
        };
        Ok(RunEntry {
            t,
            sweep: 0,
            resumed_at: None,
            edges: 0,
            plan: SweepPlan::seeded(store, prog.start_vertex())?,
        })
    }

    /// The upkeep pass at the top of sweep `sweep`, where the previous
    /// end_sweep left every accumulator in its between-sweeps shape.
    /// Order matters, and everything here runs BEFORE the mutation
    /// boundary:
    ///
    /// 1. Due checkpoint — written pre-mutation so the snapshot
    ///    fingerprints the pre-mutation epoch and a resume against the
    ///    mutated store is refused with a typed mismatch. The boundary
    ///    the run resumed at is skipped — its snapshot already exists.
    /// 2. Injected boundary kill ([`CrashPoint::AtSweep`]).
    /// 3. Due background scrub — AFTER the checkpoint write (so a
    ///    snapshot restores pre-scrub counters and fault cursors, and a
    ///    resumed run re-runs this boundary's scrub with identical
    ///    draws), verifying the epoch every in-flight sweep read.
    fn sweep_top_upkeep(
        &self,
        g: &UpkeepGate<'_>,
        store: &GraphStore,
        lanes: &mut [GpuLane],
        source: &mut dyn PageSource,
        prog: &dyn GtsProgram,
        plan: &SweepPlan,
    ) -> Result<(), EngineError> {
        let (t, sweep) = (g.t, g.sweep);
        if let (Some(c), Some(ck)) = (&self.cfg.checkpoint, g.ck) {
            if sweep > 0 && sweep.is_multiple_of(c.every) && g.resumed_at != Some(sweep) {
                let torn = g.crash == Some(CrashPoint::MidSnapshotWrite(sweep));
                let b = boundary(g.rung, t, sweep, g.edges);
                let w = self.write_ctx(store, ck, g.faults);
                ckpt::write_checkpoint(&w, lanes, source, prog, plan, &b, torn)?;
            }
        }
        if g.crash == Some(CrashPoint::AtSweep(sweep)) {
            return Err(EngineError::InjectedCrash { sweep });
        }
        if let Some(every) = self.cfg.scrub_every {
            if sweep > 0 && sweep.is_multiple_of(every) {
                scrub::scrub_pass(store, g.faults, source, self.tel, t, sweep);
            }
        }
        Ok(())
    }

    /// The repeat-until loop (Alg. 1 lines 13-31): per sweep, run the
    /// functional kernels (phase A, host-parallel safe), account their
    /// simulated cost (phase B: parallel merge + batched probes around a
    /// serial issue core), then barrier and synchronise. Progress lands
    /// in `out` as it is made, so a typed mid-run error leaves `out`
    /// describing the partial run.
    fn sweep_loop(
        &self,
        handle: &mut StoreHandle<'_>,
        prog: &mut dyn GtsProgram,
        setup: &mut LaneSetup,
        source: &mut dyn PageSource,
        env: SweepEnv<'_>,
        out: &mut RunState,
    ) -> Result<(), EngineError> {
        let cfg = self.cfg;
        let tel = self.tel;
        let spans = tel.spans_enabled();
        let rung = ckpt::Rung::of(setup);
        let SweepEnv {
            faults,
            ck,
            resume,
            mut wal,
            wal_replayed,
            manifest_skipped,
        } = env;
        let crash = faults.and_then(FaultPlan::crash);

        // Total degree of every Large-Page vertex (K_PR_LP needs it);
        // recomputed whenever a mutation boundary changes the topology.
        let mut lp_degrees = kernels::lp_total_degrees(handle.store());

        let sweep_mode = prog.mode() == ExecMode::Sweep;
        // Post-convergence revival (unapplied batches remain): the next
        // boundary's mutation may restrict the sweep to its seeds.
        let mut revived = false;
        // The current sweep-mode plan is seed-restricted; if it updates
        // anything, the following sweep falls back to the full plan.
        // (Assigned at every mutation boundary before it is read.)
        let mut restricted;
        let entry = self.enter_run(resume.as_ref(), prog, source, faults, setup, handle.store())?;
        let RunEntry {
            mut t,
            mut sweep,
            resumed_at,
            edges,
            mut plan,
        } = entry;
        out.edges = edges;
        out.sweeps = sweep;
        let lanes = &mut setup.lanes;
        // Set AFTER the snapshot import: the import restores the
        // snapshot's counters, which would clobber this run's replay
        // count (the snapshot predates the replay by construction).
        seed_recovery_counters(tel, wal.is_some(), wal_replayed, manifest_skipped);
        out.t = t;

        let mut scratch = KernelScratch::default();
        // Host threads execute kernel bodies (phase A) and phase B's
        // order-independent bookkeeping (exact integer merges, batched
        // cache probes); the serial issue core orders simulated time, so
        // results are independent of `host_threads`.
        let pool = ThreadPool::new(cfg.host_threads);
        loop {
            // --- Sweep-top upkeep: due checkpoint, injected boundary
            // kill, then due scrub — all BEFORE the mutation boundary
            // (ordering contract documented on `sweep_top_upkeep`).
            let gate = UpkeepGate {
                ck,
                faults,
                crash,
                rung,
                resumed_at,
                t,
                sweep,
                edges: out.edges,
            };
            self.sweep_top_upkeep(&gate, handle.store(), lanes, source, &*prog, &plan)?;
            // --- Mutation boundary: apply every batch due at this sweep
            // and invalidate/reseed around it. In-flight state only ever
            // sees the store before or after a whole batch — never mid-
            // rewrite (epoch visibility, DESIGN.md §12).
            restricted = live::mutation_boundary(
                handle,
                prog,
                BoundaryCtx {
                    tel,
                    lanes: lanes.as_mut_slice(),
                    source: &mut *source,
                    lp_degrees: &mut lp_degrees,
                    plan: &mut plan,
                    sweep,
                    sweep_mode,
                    revived,
                    wal: wal.as_deref_mut(),
                    crash,
                },
            )?;
            revived = false;
            let store = handle.store();
            let ctx = AccountCtx {
                store,
                strategy: setup.strategy,
                num_gpus: cfg.num_gpus,
                page_size: store.cfg().page_size as u64,
                ra_bytes_per_vertex: prog.ra_bytes_per_vertex(),
                class: prog.class(),
                tel,
                spans,
            };
            let sweep_wall = t;
            if sweep_mode {
                // Each iteration re-initialises WA on device (nextPR reset;
                // Eq. (1)'s first |WA|/c1 term).
                t = schedule::broadcast_wa(lanes, setup.wa_per_gpu, t);
            }
            let mut acc = SweepAccounting::new(t);

            // SPs first, then LPs (reduces kernel switching, Sec. 3.2).
            for phase in plan.phases() {
                let env = KernelEnv {
                    store,
                    lp_degrees: &lp_degrees,
                    technique: cfg.technique,
                    sweep,
                };
                let a0 = cfg.measure_host_phases.then(std::time::Instant::now);
                let outcomes = kernels::run_page_kernels(prog, &pool, &env, phase, &mut scratch);
                let b0 = cfg.measure_host_phases.then(std::time::Instant::now);
                acc.account_phase(&ctx, &pool, lanes, source, phase, &outcomes)?;
                record_host_phases(tel, a0, b0);
            }

            // Barrier: all GPUs finish the sweep (Alg. 1 line 27)...
            t = account::barrier(lanes, t);
            if !sweep_mode {
                // ...then copy nextPIDSet / cachedPIDMap back (lines
                // 29-30): one small bitmap pair per GPU.
                t = account::frontier_copy_back(lanes, store.num_pages(), t);
            } else {
                // ...or the per-sweep WA write-back for sweep programs
                // (Fig. 2 step 3; Eq. (1)'s second |WA|/c1 + tsync terms).
                t = account::sync_wa(lanes, setup.strategy, cfg.p2p_sync, setup.wa_per_gpu, t);
            }

            out.edges += acc.edges;
            let mut stats = acc.stats;
            stats.elapsed = t - sweep_wall;
            account::emit_sweep(tel, spans, sweep, &stats, sweep_wall, t);
            out.t = t;
            out.sweeps = sweep + 1;

            match prog.end_sweep(sweep, acc.next.is_empty(), acc.any_update) {
                SweepControl::Done => {
                    let Some(due) = handle.earliest_pending() else {
                        break;
                    };
                    // Converged, but mutation batches are still scheduled:
                    // keep the run alive and jump straight to the next due
                    // boundary. The state is a fixpoint of the current
                    // topology, so the boundary's seeds are sufficient to
                    // re-activate exactly what the batch disturbs.
                    revived = true;
                    if !sweep_mode {
                        plan = SweepPlan::from_parts(Vec::new(), Vec::new());
                    }
                    sweep = sweep.max(due.saturating_sub(1));
                }
                SweepControl::Continue => {
                    if !sweep_mode {
                        plan = SweepPlan::from_marked(store, acc.next)?;
                    } else if restricted {
                        // The seed-restricted sweep changed something, so
                        // the perturbation may have escaped the dirty
                        // pages: fall back to the invariant full plan
                        // until the program converges again.
                        plan = SweepPlan::full(store);
                    }
                    // Sweep programs otherwise keep the full-page plan.
                }
                SweepControl::ContinueWith(pids) => {
                    plan = SweepPlan::from_marked(store, pids.into_iter().collect())?;
                }
            }
            sweep += 1;

            // --- Watchdog: simulated-clock budgets, checked at the sweep
            // boundary so a final checkpoint (and the caller's trace
            // flush) leave the run resumable.
            let run_ns = (t - SimTime::ZERO).as_nanos();
            if let Some((what, limit_ns, elapsed_ns)) =
                tripped_budget(cfg, stats.elapsed.as_nanos(), run_ns)
            {
                if let (Some(_), Some(ck)) = (&cfg.checkpoint, ck) {
                    let b = boundary(rung, t, sweep, out.edges);
                    let w = self.write_ctx(store, ck, faults);
                    ckpt::write_checkpoint(&w, lanes, source, prog, &plan, &b, false)?;
                }
                return Err(EngineError::DeadlineExceeded {
                    what,
                    limit_ns,
                    elapsed_ns,
                });
            }
        }

        // Final WA write-back for traversal programs (the cost models note
        // this is negligible, but it is part of the data flow).
        if !sweep_mode {
            t = account::sync_wa(lanes, setup.strategy, cfg.p2p_sync, setup.wa_per_gpu, t);
            out.t = t;
        }
        Ok(())
    }

    /// Flush every component's counters into the registry and close the
    /// run span. Every page touch goes through the per-GPU caches, so
    /// misses ARE the streamed pages and hits the cache serves — no
    /// parallel hand-maintained counters to drift. Called on the error
    /// path too, so partial runs still report what they did.
    fn finalize(&self, name: &str, setup: &LaneSetup, source: &dyn PageSource, out: &RunState) {
        let tel = self.tel;
        let mut hits = 0u64;
        let mut misses = 0u64;
        for (i, lane) in setup.lanes.iter().enumerate() {
            // Bank-inclusive totals: checkpoint boundaries rebuild the
            // caches cold, banking their statistics first.
            hits += lane.cache_hits_total();
            misses += lane.cache_misses_total();
            lane.flush_to(tel, i as u32);
        }
        tel.add(keys::CACHE_HITS, hits);
        tel.add(keys::CACHE_MISSES, misses);
        tel.add(keys::PAGES_STREAMED, misses);
        tel.add(keys::EDGES_TRAVERSED, out.edges);
        source.flush_to(tel);
        tel.set(keys::RUN_SWEEPS, out.sweeps as u64);
        tel.set(keys::RUN_GPUS, self.cfg.num_gpus as u64);
        tel.set(keys::RUN_ELAPSED_NS, (out.t - SimTime::ZERO).as_nanos());
        // Degraded-mode end state: what the run actually executed with,
        // after any O.O.M. step-downs (or a resumed rung).
        tel.set(
            keys::RUN_FINAL_STRATEGY,
            u64::from(ckpt::strategy_code(setup.strategy)),
        );
        tel.set(keys::RUN_FINAL_STREAMS, setup.num_streams as u64);
        tel.set(keys::RUN_CACHE_ENABLED, u64::from(!setup.cache_off));
        if tel.spans_enabled() {
            tel.record_span(
                Track::new(keys::pid::ENGINE, 0),
                SpanCat::Run,
                format!("{name} run"),
                SimTime::ZERO,
                out.t,
            );
        }
    }
}

/// Shorthand for one sweep boundary's progress tuple.
fn boundary(rung: ckpt::Rung, t: SimTime, sweep: u32, edges: u64) -> ckpt::Boundary {
    ckpt::Boundary {
        rung,
        t,
        sweep,
        edges,
    }
}

/// Which simulated-clock budget tripped at this sweep boundary, if any:
/// `(key, limit_ns, elapsed_ns)` for the per-sweep deadline first, then
/// the whole-run budget.
fn tripped_budget(cfg: &GtsConfig, sweep_ns: u64, run_ns: u64) -> Option<(&'static str, u64, u64)> {
    match (cfg.sweep_deadline_ns, cfg.run_budget_ns) {
        (Some(limit), _) if sweep_ns > limit => Some(("sweep_deadline_ns", limit, sweep_ns)),
        (_, Some(limit)) if run_ns > limit => Some(("run_budget_ns", limit, run_ns)),
        _ => None,
    }
}

/// Seed the recovery counters a run starts with: how many WAL records
/// replay applied (any WAL-backed run) and how many manifest entries the
/// resume load skipped as torn or unreadable.
fn seed_recovery_counters(tel: &Telemetry, wal_backed: bool, replayed: u64, skipped: u64) {
    if wal_backed {
        tel.set(keys::WAL_REPLAYED, replayed);
    }
    if skipped > 0 {
        tel.set(keys::CKPT_MANIFEST_SKIPPED, skipped);
    }
}

/// Record one phase's A/B wall-clock split when `measure_host_phases`
/// captured the two instants. Wall-clock, not simulated: the `host.*`
/// keys sit OUTSIDE the determinism contract (like `ckpt.*`) and are
/// only written when explicitly asked for.
fn record_host_phases(
    tel: &Telemetry,
    a0: Option<std::time::Instant>,
    b0: Option<std::time::Instant>,
) {
    if let (Some(a0), Some(b0)) = (a0, b0) {
        tel.add(
            keys::HOST_PHASE_A_NS,
            (b0 - a0).as_nanos().min(u64::MAX as u128) as u64,
        );
        tel.add(
            keys::HOST_PHASE_B_NS,
            b0.elapsed().as_nanos().min(u64::MAX as u128) as u64,
        );
    }
}

/// The effective (possibly degraded) execution parameters plus the lanes
/// built under them.
pub(crate) struct LaneSetup {
    pub(crate) lanes: Vec<GpuLane>,
    pub(crate) strategy: Strategy,
    pub(crate) wa_per_gpu: u64,
    pub(crate) num_streams: usize,
    pub(crate) cache_off: bool,
}

/// Per-run context threaded into the sweep loop: the fault plan, the
/// checkpoint store, the snapshot a resuming run starts from, and the
/// mutation WAL (with how many records recovery already replayed).
struct SweepEnv<'a> {
    faults: Option<&'a FaultPlan>,
    ck: Option<&'a CkptStore>,
    resume: Option<Snapshot>,
    wal: Option<&'a mut Wal>,
    wal_replayed: u64,
    manifest_skipped: u64,
}

/// Where [`ExecCtx::enter_run`] left the run: the starting clock, sweep
/// number, resume marker, prior progress, and the first sweep's plan.
struct RunEntry {
    t: SimTime,
    sweep: u32,
    resumed_at: Option<u32>,
    edges: u64,
    plan: SweepPlan,
}

/// Loop-invariant gates plus this boundary's clock/progress, read by
/// [`ExecCtx::sweep_top_upkeep`].
struct UpkeepGate<'a> {
    ck: Option<&'a CkptStore>,
    faults: Option<&'a FaultPlan>,
    crash: Option<CrashPoint>,
    rung: ckpt::Rung,
    resumed_at: Option<u32>,
    t: SimTime,
    sweep: u32,
    edges: u64,
}

/// Progress of one run, updated as it is made so the error path can
/// still report the partial run.
struct RunState {
    t: SimTime,
    sweeps: u32,
    edges: u64,
}
