//! Run reports: everything the experiments need to print a paper row.

use gts_sim::{SimDuration, Timeline};
use serde::{Deserialize, Serialize};

/// Per-GPU statistics of one run.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GpuRunStats {
    /// Bytes copied host→device.
    pub bytes_h2d: u64,
    /// Bytes copied device→host.
    pub bytes_d2h: u64,
    /// Accumulated kernel service time.
    pub kernel_time: SimDuration,
    /// Accumulated transfer service time.
    pub transfer_time: SimDuration,
    /// Kernels launched.
    pub kernels: u64,
    /// Topology-cache hits.
    pub cache_hits: u64,
    /// Topology-cache misses.
    pub cache_misses: u64,
    /// Pages of topology cache capacity this GPU ended up with.
    pub cache_capacity_pages: usize,
}

/// Per-sweep (per-level / per-iteration) statistics — the raw series
/// behind Eq. (2)'s per-level sums and the frontier plots.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SweepStats {
    /// Pages visited this sweep (streamed + cache hits).
    pub pages: u64,
    /// Pages served from the GPU cache this sweep.
    pub cache_hits: u64,
    /// Vertices that did kernel work this sweep (the frontier size for
    /// traversal programs).
    pub active_vertices: u64,
    /// Edges traversed this sweep.
    pub active_edges: u64,
    /// Simulated time from sweep start to the barrier.
    pub elapsed: SimDuration,
}

/// The result of one engine run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Algorithm name.
    pub algorithm: String,
    /// Engine name ("GTS", "TOTEM", ... — baselines reuse this type).
    pub engine: String,
    /// Simulated end-to-end elapsed time (the paper's reported metric).
    pub elapsed: SimDuration,
    /// Sweeps executed (levels for traversal, iterations for sweeps).
    pub sweeps: u32,
    /// Pages streamed over PCI-E (excluding cache hits).
    pub pages_streamed: u64,
    /// Pages served from the GPU-side cache.
    pub cache_hits: u64,
    /// Overall topology-cache hit rate (Fig. 11b).
    pub cache_hit_rate: f64,
    /// Edges traversed by kernels (for MTEPS reporting, Sec. 7.4).
    pub edges_traversed: u64,
    /// Per-GPU breakdown.
    pub per_gpu: Vec<GpuRunStats>,
    /// Per-sweep breakdown (levels for traversal, iterations for sweeps).
    pub per_sweep: Vec<SweepStats>,
    /// Recorded stream timeline, when enabled (Figs. 3/4).
    #[serde(skip)]
    pub timeline: Option<Timeline>,
}

impl RunReport {
    /// Millions of traversed edges per second (the paper quotes GTS at up
    /// to 1,500 MTEPS on Twitter).
    pub fn mteps(&self) -> f64 {
        if self.elapsed.as_secs_f64() == 0.0 {
            return 0.0;
        }
        self.edges_traversed as f64 / 1e6 / self.elapsed.as_secs_f64()
    }

    /// Sum of bytes moved host→device across GPUs.
    pub fn total_bytes_h2d(&self) -> u64 {
        self.per_gpu.iter().map(|g| g.bytes_h2d).sum()
    }

    /// Ratio of transfer service time to kernel service time, aggregated
    /// across GPUs (Table 1's quantity).
    pub fn transfer_to_kernel_ratio(&self) -> f64 {
        let t: f64 = self
            .per_gpu
            .iter()
            .map(|g| g.transfer_time.as_secs_f64())
            .sum();
        let k: f64 = self
            .per_gpu
            .iter()
            .map(|g| g.kernel_time.as_secs_f64())
            .sum();
        if k == 0.0 {
            0.0
        } else {
            t / k
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mteps_computation() {
        let r = RunReport {
            algorithm: "BFS".into(),
            engine: "GTS".into(),
            elapsed: SimDuration::from_secs(2),
            sweeps: 5,
            pages_streamed: 10,
            cache_hits: 0,
            cache_hit_rate: 0.0,
            edges_traversed: 3_000_000,
            per_gpu: vec![],
            per_sweep: vec![],
            timeline: None,
        };
        assert!((r.mteps() - 1.5).abs() < 1e-9);
    }

    #[test]
    fn ratio_handles_zero_kernel_time() {
        let r = RunReport {
            algorithm: "BFS".into(),
            engine: "GTS".into(),
            elapsed: SimDuration::ZERO,
            sweeps: 0,
            pages_streamed: 0,
            cache_hits: 0,
            cache_hit_rate: 0.0,
            edges_traversed: 0,
            per_gpu: vec![GpuRunStats::default()],
            per_sweep: vec![],
            timeline: None,
        };
        assert_eq!(r.transfer_to_kernel_ratio(), 0.0);
        assert_eq!(r.mteps(), 0.0);
    }
}
