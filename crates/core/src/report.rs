//! Run reports — re-exports of the unified, telemetry-backed types.
//!
//! Earlier versions of this crate defined their own `RunReport` (and the
//! baselines another); both now live in `gts-telemetry` so every engine in
//! the workspace reports through one counter registry and one view type.
//! The re-exports keep `gts_core::report::RunReport` paths working.

pub use gts_telemetry::{GpuRunStats, RunReport, SweepStats};
