//! Multi-GPU strategies (paper Section 4).
//!
//! * **Strategy-P** (performance): replicate WA on every GPU, partition the
//!   topology stream across GPUs with the page hash `h(j) = j mod N`, and
//!   merge the updated WA replicas through peer-to-peer copies. Near-linear
//!   speedup, but WA must fit in a *single* GPU's memory.
//! * **Strategy-S** (scalability): partition WA across GPUs (each owns
//!   `1/N` of the attribute vector) and broadcast every topology page to
//!   all GPUs. Capacity scales linearly with N; throughput does not.

/// Which multi-GPU strategy the engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Strategy for performance (Sec. 4.1).
    Performance,
    /// Strategy for scalability (Sec. 4.2).
    Scalability,
}

impl Strategy {
    /// Short name used in experiment tables ("Strategy-P" / "Strategy-S").
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Performance => "Strategy-P",
            Strategy::Scalability => "Strategy-S",
        }
    }

    /// The GPUs that must receive page `pid` — the paper's `h(x)`: a single
    /// hash bucket under Strategy-P, the full set {1..N} under Strategy-S.
    pub fn targets(&self, pid: u64, num_gpus: usize) -> TargetIter {
        match self {
            Strategy::Performance => {
                let g = (pid % num_gpus as u64) as usize;
                TargetIter {
                    next: g,
                    end: g + 1,
                }
            }
            Strategy::Scalability => TargetIter {
                next: 0,
                end: num_gpus,
            },
        }
    }

    /// WA bytes each GPU must hold for a total WA of `wa_bytes`.
    pub fn wa_bytes_per_gpu(&self, wa_bytes: u64, num_gpus: usize) -> u64 {
        match self {
            Strategy::Performance => wa_bytes,
            Strategy::Scalability => wa_bytes.div_ceil(num_gpus as u64),
        }
    }
}

/// Iterator over target GPU indices (avoids allocating per page).
#[derive(Debug, Clone)]
pub struct TargetIter {
    next: usize,
    end: usize,
}

impl Iterator for TargetIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.next >= self.end {
            return None;
        }
        let v = self.next;
        self.next += 1;
        Some(v)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = self.end - self.next;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for TargetIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn performance_hashes_mod_n() {
        let s = Strategy::Performance;
        assert_eq!(s.targets(0, 4).collect::<Vec<_>>(), vec![0]);
        assert_eq!(s.targets(7, 4).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn scalability_broadcasts() {
        let s = Strategy::Scalability;
        assert_eq!(s.targets(7, 3).collect::<Vec<_>>(), vec![0, 1, 2]);
    }

    #[test]
    fn wa_split() {
        assert_eq!(Strategy::Performance.wa_bytes_per_gpu(100, 4), 100);
        assert_eq!(Strategy::Scalability.wa_bytes_per_gpu(100, 4), 25);
        assert_eq!(Strategy::Scalability.wa_bytes_per_gpu(101, 4), 26);
    }

    #[test]
    fn performance_balances_pages_evenly() {
        let mut counts = [0u32; 3];
        for pid in 0..300u64 {
            for g in Strategy::Performance.targets(pid, 3) {
                counts[g] += 1;
            }
        }
        assert_eq!(counts, [100, 100, 100]);
    }

    #[test]
    fn names() {
        assert_eq!(Strategy::Performance.name(), "Strategy-P");
        assert_eq!(Strategy::Scalability.name(), "Strategy-S");
    }
}
