//! Page-level random-access graph queries.
//!
//! Besides full algorithms, the paper's Sec. 3.3 lists query-style
//! traversals — "neighborhood, induced subgraph, egonet, … cross-edges" —
//! among the BFS-like workloads GTS supports. Unlike the sweep algorithms
//! they touch only a handful of pages, located through the vertex→record
//! placement and fetched on demand: exactly the *coarse-grained random
//! access* half of the paper's hybrid access story (Sec. 8), with the
//! GPU-side page cache absorbing repeated touches.
//!
//! [`QueryEngine`] wraps a [`GraphStore`] with a cache and a simulated
//! clock; every query reports real results and charges only the pages it
//! actually pulled across PCI-E.

use crate::engine::CachePolicyKind;
use gts_gpu::timer::{KernelClass, KernelCost};
use gts_gpu::{GpuConfig, GpuTimer, PcieConfig};
use gts_sim::{SimDuration, SimTime};
use gts_storage::builder::GraphStore;
use gts_storage::cache::PageCache;
use gts_storage::PageKind;
use std::collections::BTreeSet;

/// A stateful query session over one store.
pub struct QueryEngine<'s> {
    store: &'s GraphStore,
    timer: GpuTimer,
    cache: PageCache,
    clock: SimTime,
    pages_fetched: u64,
}

impl<'s> QueryEngine<'s> {
    /// Open a query session with a page cache of `cache_pages`.
    pub fn new(store: &'s GraphStore, cache_pages: usize) -> Self {
        QueryEngine {
            store,
            timer: GpuTimer::new(GpuConfig::titan_x(), PcieConfig::gen3_x16(), 4),
            cache: CachePolicyKind::Lru.build(cache_pages),
            clock: SimTime::ZERO,
            pages_fetched: 0,
        }
    }

    /// Simulated time consumed by the queries so far.
    pub fn elapsed(&self) -> SimDuration {
        self.clock - SimTime::ZERO
    }

    /// Pages pulled over PCI-E (cache misses).
    pub fn pages_fetched(&self) -> u64 {
        self.pages_fetched
    }

    /// Cache hit rate across all page touches.
    pub fn cache_hit_rate(&self) -> f64 {
        self.cache.hit_rate()
    }

    /// All pages holding vertex `v`'s adjacency (its SP, or its LP run).
    fn pages_of(&self, v: u64) -> Vec<u64> {
        let rid = self.store.rid_of_vertex(v);
        match self.store.view(rid.pid).kind() {
            PageKind::Small => vec![rid.pid],
            PageKind::Large => {
                let range = self
                    .store
                    .rvt()
                    .entry(rid.pid)
                    .lp_range
                    .expect("LP has range");
                (rid.pid..=rid.pid + range as u64).collect()
            }
        }
    }

    /// Touch a page: cache lookup, transfer on miss, and a small kernel.
    fn touch(&mut self, pid: u64, edges_scanned: u64) {
        let page_bytes = self.store.cfg().page_size as u64;
        let ready = if self.cache.access(pid) {
            self.clock
        } else {
            self.pages_fetched += 1;
            self.timer.stream_h2d(0, page_bytes, self.clock, "page").end
        };
        let cost = KernelCost {
            class: KernelClass::Traversal,
            lane_slots: edges_scanned.max(1),
            atomic_ops: 0,
        };
        self.clock = self.timer.stream_kernel(0, cost, ready, "Kq").end;
    }

    /// Out-neighbours of `v` (vertex IDs, multi-edges preserved).
    pub fn neighbors(&mut self, v: u64) -> Vec<u64> {
        let mut out = Vec::new();
        for pid in self.pages_of(v) {
            let view = self.store.view(pid);
            match view.kind() {
                PageKind::Small => {
                    let rid = self.store.rid_of_vertex(v);
                    let len = view.sp_adj_len(rid.slot);
                    for i in 0..len {
                        out.push(self.store.rvt().translate(view.sp_adj(rid.slot, i)));
                    }
                    self.touch(pid, len as u64);
                }
                PageKind::Large => {
                    for i in 0..view.count() {
                        out.push(self.store.rvt().translate(view.lp_adj(i)));
                    }
                    self.touch(pid, view.count() as u64);
                }
            }
        }
        out
    }

    /// The edges of the subgraph induced by `vertices` (edges with both
    /// endpoints in the set).
    pub fn induced_subgraph(&mut self, vertices: &BTreeSet<u64>) -> Vec<(u64, u64)> {
        self.filtered_edges(vertices, vertices)
    }

    /// The egonet of `v`: the subgraph induced by `v` and its
    /// out-neighbours.
    pub fn egonet(&mut self, v: u64) -> (BTreeSet<u64>, Vec<(u64, u64)>) {
        let mut members: BTreeSet<u64> = self.neighbors(v).into_iter().collect();
        members.insert(v);
        let edges = self.induced_subgraph(&members);
        (members, edges)
    }

    /// Edges leading from `a` into `b` (the paper's "cross-edges").
    pub fn cross_edges(&mut self, a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> Vec<(u64, u64)> {
        self.filtered_edges(a, b)
    }

    /// Shared scan: edges whose source is in `sources` and target in
    /// `targets`, touching (and charging) each relevant page once.
    fn filtered_edges(
        &mut self,
        sources: &BTreeSet<u64>,
        targets: &BTreeSet<u64>,
    ) -> Vec<(u64, u64)> {
        let mut edges = Vec::new();
        // Deduplicate page touches: several set members share pages.
        let mut pages: BTreeSet<u64> = BTreeSet::new();
        for &v in sources {
            pages.extend(self.pages_of(v));
        }
        for pid in pages {
            let view = self.store.view(pid);
            let mut scanned = 0u64;
            match view.kind() {
                PageKind::Small => {
                    for (vid, adj) in view.sp_vertices() {
                        if !sources.contains(&vid) {
                            continue;
                        }
                        for rid in adj {
                            scanned += 1;
                            let w = self.store.rvt().translate(rid);
                            if targets.contains(&w) {
                                edges.push((vid, w));
                            }
                        }
                    }
                }
                PageKind::Large => {
                    let vid = view.lp_vid();
                    if sources.contains(&vid) {
                        for i in 0..view.count() {
                            scanned += 1;
                            let w = self.store.rvt().translate(view.lp_adj(i));
                            if targets.contains(&w) {
                                edges.push((vid, w));
                            }
                        }
                    }
                }
            }
            self.touch(pid, scanned);
        }
        edges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gts_graph::generate::rmat;
    use gts_graph::{Csr, EdgeList};
    use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};

    fn setup() -> (EdgeList, GraphStore, Csr) {
        let graph = rmat(9);
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512),
        )
        .unwrap();
        let csr = Csr::from_edge_list(&graph);
        (graph, store, csr)
    }

    #[test]
    fn neighbors_match_csr() {
        let (_, store, csr) = setup();
        let mut q = QueryEngine::new(&store, 64);
        for v in (0..csr.num_vertices()).step_by(17) {
            let mut got = q.neighbors(v as u64);
            got.sort_unstable();
            let want: Vec<u64> = csr.neighbors(v).iter().map(|&w| w as u64).collect();
            assert_eq!(got, want, "vertex {v}");
        }
        assert!(q.elapsed() > SimDuration::ZERO);
    }

    #[test]
    fn neighbors_of_lp_vertex_span_chunks() {
        let edges: Vec<(u32, u32)> = (0..400).map(|i| (0, 1 + i % 500)).collect();
        let graph = EdgeList::new(501, edges.clone());
        let store = build_graph_store(
            &graph,
            PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 256),
        )
        .unwrap();
        assert!(store.large_pids().len() > 1);
        let mut q = QueryEngine::new(&store, 64);
        let mut got = q.neighbors(0);
        got.sort_unstable();
        let mut want: Vec<u64> = edges.iter().map(|&(_, d)| d as u64).collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn induced_subgraph_matches_filter() {
        let (graph, store, _) = setup();
        let set: BTreeSet<u64> = (0..40).collect();
        let mut q = QueryEngine::new(&store, 64);
        let mut got = q.induced_subgraph(&set);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = graph
            .edges
            .iter()
            .filter(|&&(s, d)| set.contains(&(s as u64)) && set.contains(&(d as u64)))
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn egonet_contains_center_and_its_edges() {
        let (graph, store, csr) = setup();
        let v = 0u64;
        let mut q = QueryEngine::new(&store, 64);
        let (members, edges) = q.egonet(v);
        assert!(members.contains(&v));
        for &w in csr.neighbors(v as u32) {
            assert!(members.contains(&(w as u64)));
        }
        // Every returned edge stays inside the egonet, and every graph
        // edge within the member set is returned.
        for &(s, d) in &edges {
            assert!(members.contains(&s) && members.contains(&d));
        }
        let want = graph
            .edges
            .iter()
            .filter(|&&(s, d)| members.contains(&(s as u64)) && members.contains(&(d as u64)))
            .count();
        assert_eq!(edges.len(), want);
    }

    #[test]
    fn cross_edges_match_filter() {
        let (graph, store, _) = setup();
        let a: BTreeSet<u64> = (0..60).collect();
        let b: BTreeSet<u64> = (60..200).collect();
        let mut q = QueryEngine::new(&store, 64);
        let mut got = q.cross_edges(&a, &b);
        got.sort_unstable();
        let mut want: Vec<(u64, u64)> = graph
            .edges
            .iter()
            .filter(|&&(s, d)| a.contains(&(s as u64)) && b.contains(&(d as u64)))
            .map(|&(s, d)| (s as u64, d as u64))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn cache_absorbs_repeated_queries() {
        let (_, store, _) = setup();
        let mut q = QueryEngine::new(&store, 64);
        q.neighbors(5);
        let fetched_once = q.pages_fetched();
        q.neighbors(5);
        assert_eq!(
            q.pages_fetched(),
            fetched_once,
            "repeat touches must hit the cache"
        );
        assert!(q.cache_hit_rate() > 0.0);
    }

    #[test]
    fn zero_cache_fetches_every_time() {
        let (_, store, _) = setup();
        let mut q = QueryEngine::new(&store, 0);
        q.neighbors(5);
        q.neighbors(5);
        assert_eq!(q.pages_fetched(), 2);
    }
}
