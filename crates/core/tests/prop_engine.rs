//! Property tests of the GTS engine: for any graph, any format, and any
//! engine configuration, results equal the sequential references and the
//! run report stays internally consistent.

use gts_core::engine::{Gts, GtsConfig, StorageLocation};
use gts_core::programs::{Bfs, Cc, PageRank, Sssp};
use gts_core::Strategy as MultiGpuStrategy;
use gts_gpu::MicroTechnique;
use gts_graph::{reference, Csr, EdgeList};
use gts_storage::{build_graph_store, PageFormatConfig, PhysicalIdConfig};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..120).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..400)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

fn arb_config() -> impl Strategy<Value = GtsConfig> {
    (
        1usize..4,
        1usize..33,
        prop_oneof![
            Just(MultiGpuStrategy::Performance),
            Just(MultiGpuStrategy::Scalability)
        ],
        prop_oneof![
            Just(MicroTechnique::EdgeCentric { virtual_warp: 32 }),
            Just(MicroTechnique::EdgeCentric { virtual_warp: 4 }),
            Just(MicroTechnique::VertexCentric),
            Just(MicroTechnique::Hybrid { virtual_warp: 8 }),
        ],
        prop_oneof![
            Just(StorageLocation::InMemory),
            Just(StorageLocation::Ssds(1)),
            Just(StorageLocation::Ssds(3)),
            Just(StorageLocation::Hdds(2)),
        ],
        0u64..4096,
        0u32..100,
    )
        .prop_map(
            |(gpus, streams, strategy, technique, storage, cache, mmbuf)| GtsConfig {
                num_gpus: gpus,
                num_streams: streams,
                strategy,
                technique,
                storage,
                cache_limit_bytes: Some(cache * 64),
                mmbuf_percent: mmbuf,
                ..GtsConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bfs_correct_under_any_configuration(g in arb_graph(), cfg in arb_config(), source in 0u32..120) {
        let source = (source % g.num_vertices) as u64;
        let store = build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512)).unwrap();
        let csr = Csr::from_edge_list(&g);
        let mut bfs = Bfs::new(store.num_vertices(), source);
        let report = Gts::new(cfg).run(&store, &mut bfs).unwrap();
        prop_assert_eq!(bfs.levels_u32(), reference::bfs(&csr, source as u32));
        // Report consistency.
        prop_assert!(report.cache_hit_rate >= 0.0 && report.cache_hit_rate <= 1.0);
        prop_assert!(report.sweeps >= 1);
    }

    #[test]
    fn sssp_and_cc_correct_under_any_configuration(g in arb_graph(), cfg in arb_config()) {
        let store = build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512)).unwrap();
        let csr = Csr::from_edge_list(&g);
        let mut sssp = Sssp::new(store.num_vertices(), 0);
        Gts::new(cfg.clone()).run(&store, &mut sssp).unwrap();
        prop_assert_eq!(sssp.distances(), &reference::sssp(&csr, 0)[..]);
        let mut cc = Cc::new(store.num_vertices());
        Gts::new(cfg).run(&store, &mut cc).unwrap();
        prop_assert_eq!(cc.labels_u32(), reference::connected_components(&csr));
    }

    #[test]
    fn pagerank_close_under_any_configuration(g in arb_graph(), cfg in arb_config(), iters in 1u32..6) {
        let store = build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512)).unwrap();
        let csr = Csr::from_edge_list(&g);
        let mut pr = PageRank::new(store.num_vertices(), iters);
        let report = Gts::new(cfg).run(&store, &mut pr).unwrap();
        let want = reference::pagerank(&csr, 0.85, iters);
        for (got, want) in pr.ranks().iter().zip(&want) {
            prop_assert!((*got as f64 - want).abs() < 1e-4);
        }
        prop_assert_eq!(report.sweeps, iters);
        prop_assert_eq!(report.edges_traversed, iters as u64 * g.num_edges() as u64);
    }

    #[test]
    fn elapsed_time_is_deterministic(g in arb_graph(), cfg in arb_config()) {
        let store = build_graph_store(&g, PageFormatConfig::new(PhysicalIdConfig::ORIGINAL, 512)).unwrap();
        let run = || {
            let mut bfs = Bfs::new(store.num_vertices(), 0);
            Gts::new(cfg.clone()).run(&store, &mut bfs).unwrap().elapsed
        };
        prop_assert_eq!(run(), run());
    }
}
