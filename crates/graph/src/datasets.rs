//! Dataset presets mirroring the paper's Table 3, at reproduction scale.
//!
//! The paper evaluates on RMAT27–RMAT32 (2G–64G edges) and three real graphs
//! (Twitter, UK2007, YahooWeb). Neither the hardware nor the downloads are
//! available here, so each dataset is replaced by a *scaled look-alike* with
//! the same shape characteristics that the experiments exercise:
//!
//! The workspace-wide scale factor is **1/1024** (paper RMAT*k* ↔ our
//! RMAT*(k−10)*; all memory capacities divide by 1024 — see
//! `gts-bench`'s `scale` module and DESIGN.md §1), which gives:
//!
//! | Paper dataset | Shape that matters | Look-alike (÷1024) |
//! |---|---|---|
//! | RMAT27..32 (2G..64G e) | power-law, density 16 | RMAT17..22 |
//! | Twitter (42M v, 1.47G e, density ~35) | dense social network | RMAT15, edge factor 35 |
//! | UK2007 (106M v, 3.74G e, web) | medium web crawl | RMAT17, edge factor 28 |
//! | YahooWeb (1.4G v, 6.6G e, density ~4.7, high diameter) | sparse, deep BFS | [`web_like`] chain (~1.4M v) |

use crate::generate::{web_like, Rmat};
use crate::types::EdgeList;

/// A named dataset preset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// RMAT at the given scale (2^scale vertices, 16 edges/vertex).
    Rmat(u32),
    /// Scaled Twitter look-alike: dense power-law social graph.
    TwitterLike,
    /// Scaled UK2007 look-alike: medium-density web crawl.
    Uk2007Like,
    /// Scaled YahooWeb look-alike: sparse, high-diameter web graph.
    YahooWebLike,
}

impl Dataset {
    /// Human-readable name used in experiment tables.
    pub fn name(&self) -> String {
        match self {
            Dataset::Rmat(s) => format!("RMAT{s}"),
            Dataset::TwitterLike => "twitter-like".into(),
            Dataset::Uk2007Like => "uk2007-like".into(),
            Dataset::YahooWebLike => "yahooweb-like".into(),
        }
    }

    /// Generate the dataset's edge list (deterministic).
    pub fn generate(&self) -> EdgeList {
        match self {
            Dataset::Rmat(s) => Rmat::new(*s).generate(),
            // Twitter: very dense (paper density ≈ 35), strongly skewed.
            Dataset::TwitterLike => Rmat::new(15).with_edge_factor(35).with_seed(42).generate(),
            // UK2007: larger vertex set, moderate density (its
            // transfer:kernel ratio lands between the other two, Table 1).
            Dataset::Uk2007Like => Rmat::new(17).with_edge_factor(28).with_seed(43).generate(),
            // YahooWeb: sparse (density ≈ 4.7) and high-diameter (a BFS
            // from vertex 0 runs ~260 levels deep — hundreds of supersteps
            // for level-synchronous engines).
            Dataset::YahooWebLike => web_like(256, 5400, 4, 44),
        }
    }

    /// The full sweep used by the comparison figures (Figs. 6–8): the
    /// three real-graph look-alikes plus RMAT18..22 (the paper's
    /// RMAT28..32 at 1/1024 scale).
    pub fn comparison_sweep() -> Vec<Dataset> {
        vec![
            Dataset::TwitterLike,
            Dataset::Uk2007Like,
            Dataset::YahooWebLike,
            Dataset::Rmat(18),
            Dataset::Rmat(19),
            Dataset::Rmat(20),
            Dataset::Rmat(21),
            Dataset::Rmat(22),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::stats::degree_stats;

    #[test]
    fn names_are_stable() {
        assert_eq!(Dataset::Rmat(20).name(), "RMAT20");
        assert_eq!(Dataset::TwitterLike.name(), "twitter-like");
    }

    #[test]
    fn twitter_like_is_denser_than_yahoo_like() {
        let tw = Dataset::TwitterLike.generate();
        let yh = Dataset::YahooWebLike.generate();
        assert!(tw.density() > 3.0 * yh.density());
    }

    #[test]
    fn yahoo_like_is_sparse_like_the_paper() {
        let yh = Dataset::YahooWebLike.generate();
        // Paper YahooWeb density = 6636/1414 ≈ 4.7.
        assert!(yh.density() > 3.0 && yh.density() < 7.0, "{}", yh.density());
    }

    #[test]
    fn twitter_like_is_skewed() {
        let st = degree_stats(&Csr::from_edge_list(&Dataset::TwitterLike.generate()));
        assert!(st.max_out_degree as f64 > 20.0 * st.mean_out_degree);
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(
            Dataset::Uk2007Like.generate(),
            Dataset::Uk2007Like.generate()
        );
    }
}
