//! Core graph types: vertex identifiers and edge lists.

/// Logical vertex identifier.
///
/// The paper's *generalised* slotted page format addresses up to
/// trillion-scale graphs with 6-byte physical IDs (Sec. 6.1); the reduced
/// scale of this reproduction (see `DESIGN.md`) never exceeds `u32::MAX`
/// vertices in memory, so attribute vectors use `u32` indices while the
/// storage format itself supports wider IDs.
pub type VertexId = u32;

/// Sentinel for "no vertex" / unreachable.
pub const INVALID_VERTEX: VertexId = VertexId::MAX;

/// A directed multigraph as a list of `(src, dst)` pairs.
///
/// Self-loops and duplicate edges are allowed (RMAT produces both); builders
/// that need deduplication do it explicitly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeList {
    /// Number of vertices; all edge endpoints are `< num_vertices`.
    pub num_vertices: VertexId,
    /// Directed edges.
    pub edges: Vec<(VertexId, VertexId)>,
}

impl EdgeList {
    /// Create an edge list, validating that all endpoints are in range.
    ///
    /// # Panics
    /// Panics if any endpoint is `>= num_vertices`; malformed graphs are a
    /// programming error in this workspace, not an input condition.
    pub fn new(num_vertices: VertexId, edges: Vec<(VertexId, VertexId)>) -> Self {
        for &(s, d) in &edges {
            assert!(
                s < num_vertices && d < num_vertices,
                "edge ({s},{d}) out of range for {num_vertices} vertices"
            );
        }
        EdgeList {
            num_vertices,
            edges,
        }
    }

    /// Number of directed edges (counting duplicates).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Edges-per-vertex density, the x-axis of the paper's Fig. 14.
    pub fn density(&self) -> f64 {
        if self.num_vertices == 0 {
            0.0
        } else {
            self.edges.len() as f64 / self.num_vertices as f64
        }
    }

    /// A deterministic positive weight for each edge, used by SSSP.
    ///
    /// The paper's datasets are unweighted; its SSSP experiments (Appendix D)
    /// therefore need synthetic weights. Deriving them by hashing the edge
    /// endpoints makes every representation of the same graph agree on the
    /// weight of each edge without storing a weight array.
    pub fn edge_weight(src: VertexId, dst: VertexId) -> u32 {
        // SplitMix64 finalizer over the packed endpoints: cheap, well mixed.
        let mut z = ((src as u64) << 32 | dst as u64).wrapping_add(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        // Weights in [1, 64]: small enough that path sums stay far from
        // overflow, varied enough that shortest paths differ from hop counts.
        (z % 64) as u32 + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_accepts_valid_edges() {
        let g = EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0), (1, 1)]);
        assert_eq!(g.num_edges(), 4);
        assert!((g.density() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn new_rejects_out_of_range() {
        let _ = EdgeList::new(2, vec![(0, 2)]);
    }

    #[test]
    fn empty_graph_density_is_zero() {
        let g = EdgeList::new(0, vec![]);
        assert_eq!(g.density(), 0.0);
    }

    #[test]
    fn weights_are_deterministic_and_positive() {
        for s in 0..50u32 {
            for d in 0..50u32 {
                let w = EdgeList::edge_weight(s, d);
                assert!((1..=64).contains(&w));
                assert_eq!(w, EdgeList::edge_weight(s, d));
            }
        }
        // Direction matters.
        assert_ne!(
            (0..100)
                .map(|i| EdgeList::edge_weight(i, i + 1))
                .sum::<u32>(),
            (0..100)
                .map(|i| EdgeList::edge_weight(i + 1, i))
                .sum::<u32>()
        );
    }
}
