//! Sequential golden reference algorithms.
//!
//! Every engine in this workspace — GTS itself and all baselines — is
//! validated against these implementations. They are written for obvious
//! correctness, not speed, and they pin down the exact semantics the engines
//! must match:
//!
//! * **BFS** — directed traversal over out-edges; level of the source is 0;
//!   unreachable vertices keep [`UNREACHED`].
//! * **PageRank** — the paper's Appendix B kernel: in one iteration,
//!   `next[v] = (1-df)/N + df * Σ_{u→v} prev[u] / outdeg(u)`, *without*
//!   dangling-mass redistribution (faithful to the kernel, which only
//!   scatters along existing out-edges). Multi-edges contribute once per
//!   occurrence, exactly as the kernel walks ADJLIST.
//! * **SSSP** — directed shortest paths with the deterministic per-edge
//!   weights from [`EdgeList::edge_weight`]; unreachable = [`INF_DIST`].
//! * **CC** — *weakly* connected components (direction ignored), labelled by
//!   the minimum vertex id in each component, which is the fixpoint the
//!   min-label-propagation kernels converge to.
//! * **BC** — Brandes' betweenness centrality on the unweighted directed
//!   graph from a set of source vertices.

use crate::csr::Csr;
use crate::types::{EdgeList, VertexId};
use std::collections::VecDeque;

/// Level value for vertices BFS never reaches.
pub const UNREACHED: u32 = u32::MAX;

/// Distance value for vertices SSSP never reaches.
pub const INF_DIST: u32 = u32::MAX;

/// Breadth-first search from `source`; returns per-vertex levels.
pub fn bfs(g: &Csr, source: VertexId) -> Vec<u32> {
    let mut level = vec![UNREACHED; g.num_vertices() as usize];
    level[source as usize] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let next = level[v as usize] + 1;
        for &w in g.neighbors(v) {
            if level[w as usize] == UNREACHED {
                level[w as usize] = next;
                queue.push_back(w);
            }
        }
    }
    level
}

/// One PageRank iteration with damping `df`, matching the paper's kernel.
pub fn pagerank_step(g: &Csr, prev: &[f64], df: f64) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    assert_eq!(prev.len(), n);
    let mut next = vec![(1.0 - df) / n as f64; n];
    for v in 0..g.num_vertices() {
        let deg = g.out_degree(v);
        if deg == 0 {
            continue; // dangling: kernel scatters nothing (mass leaks).
        }
        let share = df * prev[v as usize] / deg as f64;
        for &w in g.neighbors(v) {
            next[w as usize] += share;
        }
    }
    next
}

/// `iterations` PageRank iterations from the uniform vector.
pub fn pagerank(g: &Csr, df: f64, iterations: u32) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut pr = vec![1.0 / n as f64; n];
    for _ in 0..iterations {
        pr = pagerank_step(g, &pr, df);
    }
    pr
}

/// Single-source shortest paths (Bellman-Ford; weights from
/// [`EdgeList::edge_weight`]). Quadratic worst case, fine for golden tests.
pub fn sssp(g: &Csr, source: VertexId) -> Vec<u32> {
    let n = g.num_vertices() as usize;
    let mut dist = vec![INF_DIST; n];
    dist[source as usize] = 0;
    let mut changed = true;
    while changed {
        changed = false;
        for v in 0..g.num_vertices() {
            let dv = dist[v as usize];
            if dv == INF_DIST {
                continue;
            }
            for &w in g.neighbors(v) {
                let nd = dv.saturating_add(EdgeList::edge_weight(v, w));
                if nd < dist[w as usize] {
                    dist[w as usize] = nd;
                    changed = true;
                }
            }
        }
    }
    dist
}

/// Weakly connected components via union-find; labels are the minimum
/// vertex id in each component.
pub fn connected_components(g: &Csr) -> Vec<VertexId> {
    let n = g.num_vertices() as usize;
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for (s, d) in g.edges() {
        let (rs, rd) = (find(&mut parent, s), find(&mut parent, d));
        if rs != rd {
            // Union by min keeps labels canonical without a second pass.
            let (lo, hi) = (rs.min(rd), rs.max(rd));
            parent[hi as usize] = lo;
        }
    }
    (0..n as u32).map(|v| find(&mut parent, v)).collect()
}

/// Brandes' betweenness centrality (unweighted, directed) accumulated over
/// the given `sources`. The paper's Appendix D runs BC in "single node
/// mode"; passing a single source reproduces that.
pub fn betweenness(g: &Csr, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices() as usize;
    let mut bc = vec![0.0f64; n];
    for &s in sources {
        // Forward BFS computing shortest-path counts sigma and predecessors.
        let mut sigma = vec![0.0f64; n];
        let mut dist = vec![-1i64; n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut order: Vec<u32> = Vec::new();
        sigma[s as usize] = 1.0;
        dist[s as usize] = 0;
        let mut queue = VecDeque::from([s]);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in g.neighbors(v) {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        // Backward accumulation.
        let mut delta = vec![0.0f64; n];
        for &w in order.iter().rev() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    bc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::rmat;

    fn line() -> Csr {
        // 0 -> 1 -> 2 -> 3
        Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3)]))
    }

    fn diamond() -> Csr {
        // 0 -> {1,2} -> 3
        Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (1, 3), (2, 3)]))
    }

    #[test]
    fn bfs_levels_on_line() {
        assert_eq!(bfs(&line(), 0), vec![0, 1, 2, 3]);
        assert_eq!(bfs(&line(), 2), vec![UNREACHED, UNREACHED, 0, 1]);
    }

    #[test]
    fn bfs_prefers_shortest() {
        let g = diamond();
        assert_eq!(bfs(&g, 0), vec![0, 1, 1, 2]);
    }

    #[test]
    fn pagerank_uniform_on_cycle() {
        // On a directed cycle every vertex keeps 1/n at fixpoint.
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (1, 2), (2, 3), (3, 0)]));
        let pr = pagerank(&g, 0.85, 50);
        for p in pr {
            assert!((p - 0.25).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_mass_conserved_without_dangling() {
        let g = Csr::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 2), (2, 0), (0, 2)]));
        let pr = pagerank(&g, 0.85, 10);
        let total: f64 = pr.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "total {total}");
    }

    #[test]
    fn pagerank_leaks_mass_with_dangling() {
        let g = Csr::from_edge_list(&EdgeList::new(2, vec![(0, 1)]));
        let pr = pagerank(&g, 0.85, 5);
        let total: f64 = pr.iter().sum();
        assert!(total < 1.0, "dangling vertex must leak mass, got {total}");
    }

    #[test]
    fn sssp_picks_cheapest_path() {
        let g = diamond();
        let d = sssp(&g, 0);
        assert_eq!(d[0], 0);
        let w01 = EdgeList::edge_weight(0, 1);
        let w02 = EdgeList::edge_weight(0, 2);
        let w13 = EdgeList::edge_weight(1, 3);
        let w23 = EdgeList::edge_weight(2, 3);
        assert_eq!(d[1], w01);
        assert_eq!(d[2], w02);
        assert_eq!(d[3], (w01 + w13).min(w02 + w23));
    }

    #[test]
    fn sssp_unreachable_is_inf() {
        let d = sssp(&line(), 3);
        assert_eq!(d, vec![INF_DIST, INF_DIST, INF_DIST, 0]);
    }

    #[test]
    fn cc_ignores_direction() {
        // 0 <- 1, 2 -> 3: two components {0,1} and {2,3}.
        let g = Csr::from_edge_list(&EdgeList::new(5, vec![(1, 0), (2, 3)]));
        assert_eq!(connected_components(&g), vec![0, 0, 2, 2, 4]);
    }

    #[test]
    fn cc_labels_are_component_minimum() {
        let g = Csr::from_edge_list(&EdgeList::new(6, vec![(5, 4), (4, 3), (3, 5), (1, 2)]));
        let cc = connected_components(&g);
        assert_eq!(cc[3], 3);
        assert_eq!(cc[4], 3);
        assert_eq!(cc[5], 3);
        assert_eq!(cc[1], 1);
        assert_eq!(cc[2], 1);
        assert_eq!(cc[0], 0);
    }

    #[test]
    fn bc_on_line_counts_interior_vertices() {
        // On 0->1->2->3, vertex 1 lies on paths 0-2, 0-3 and vertex 2 on
        // 0-3, 1-3 when sourcing from every vertex.
        let g = line();
        let bc = betweenness(&g, &[0, 1, 2, 3]);
        assert_eq!(bc, vec![0.0, 2.0, 2.0, 0.0]);
    }

    #[test]
    fn bc_splits_over_equal_paths() {
        let g = diamond();
        let bc = betweenness(&g, &[0]);
        // Two shortest 0->3 paths; each middle vertex carries 0.5.
        assert_eq!(bc[1], 0.5);
        assert_eq!(bc[2], 0.5);
        assert_eq!(bc[3], 0.0);
    }

    #[test]
    fn references_agree_on_rmat_sanity() {
        let g = Csr::from_edge_list(&rmat(8));
        let lv = bfs(&g, 0);
        let d = sssp(&g, 0);
        for v in 0..g.num_vertices() as usize {
            // SSSP reachability equals BFS reachability.
            assert_eq!(lv[v] == UNREACHED, d[v] == INF_DIST);
            // Hop count lower-bounds weighted distance (weights >= 1).
            if lv[v] != UNREACHED {
                assert!(d[v] as u64 >= lv[v] as u64);
            }
        }
    }
}
