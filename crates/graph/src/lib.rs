#![warn(missing_docs)]

//! # gts-graph — graph toolkit for the GTS reproduction
//!
//! In-memory graph representations ([`EdgeList`], [`Csr`]), deterministic
//! workload generators (RMAT as used by the paper's synthetic datasets, plus
//! fitted look-alikes of the paper's real datasets), degree statistics, and
//! sequential *golden* reference implementations of every algorithm the
//! paper evaluates (BFS, PageRank, SSSP, CC, BC).
//!
//! The reference algorithms are intentionally simple and obviously correct;
//! every parallel/streaming engine in this workspace (GTS itself and all the
//! baselines) is validated against them in the test suites.

pub mod csr;
pub mod datasets;
pub mod generate;
pub mod reference;
pub mod rng;
pub mod stats;
pub mod types;

pub use csr::Csr;
pub use datasets::Dataset;
pub use generate::{rmat, Rmat};
pub use types::{EdgeList, VertexId, INVALID_VERTEX};
