//! Self-contained deterministic PRNG for the graph generators.
//!
//! The generators only need a seedable stream of uniform `f64`s and
//! bounded integers, so instead of pulling the `rand` crate (which the
//! build cannot fetch offline) we carry a small xoshiro256** generator
//! seeded through splitmix64 — the same construction `rand`'s small RNGs
//! use. Streams are fully determined by the seed, so datasets remain
//! reproducible across runs and platforms.

/// xoshiro256** pseudo-random generator (Blackman & Vigna).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Seed the generator; any seed (including 0) gives a good stream
    /// because the state is expanded through splitmix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Rng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)` from the top 53 bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `u64` in `[0, n)` (Lemire's multiply-shift with rejection).
    ///
    /// # Panics
    /// Panics if `n == 0`.
    pub fn below_u64(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below_u64 bound must be non-zero");
        // Rejection-free fast path for powers of two.
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        let threshold = n.wrapping_neg() % n;
        loop {
            let x = self.next_u64();
            let (hi, lo) = {
                let wide = (x as u128) * (n as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `u32` in `[0, n)`.
    pub fn below_u32(&mut self, n: u32) -> u32 {
        self.below_u64(n as u64) as u32
    }

    /// Uniform `usize` in `[0, n)`.
    pub fn below_usize(&mut self, n: usize) -> usize {
        self.below_u64(n as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = Rng::seed_from_u64(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.f64()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn below_respects_bound_and_hits_all_residues() {
        let mut r = Rng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            let x = r.below_u64(7);
            assert!(x < 7);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_bound_panics() {
        let mut r = Rng::seed_from_u64(0);
        let _ = r.below_u64(0);
    }
}
