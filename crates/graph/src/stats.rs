//! Degree statistics and dataset summaries (Table 3 of the paper reports
//! #vertices, #edges and page counts per dataset; the page counts come from
//! `gts-storage`, the rest from here).

use crate::csr::Csr;

/// Summary statistics of a directed graph's out-degree distribution.
#[derive(Debug, Clone, PartialEq)]
pub struct DegreeStats {
    /// Number of vertices.
    pub num_vertices: u64,
    /// Number of directed edges.
    pub num_edges: u64,
    /// Mean out-degree (the paper's "density", #edges / #vertices).
    pub mean_out_degree: f64,
    /// Largest out-degree (drives Large Page counts).
    pub max_out_degree: u64,
    /// Number of vertices with zero out-degree (PageRank dangling mass).
    pub zero_out_degree: u64,
}

/// Compute [`DegreeStats`] for a CSR graph, using available host
/// parallelism. `max` and `+` are commutative, and per-worker partials are
/// merged in worker-index order, so the result is thread-count independent.
pub fn degree_stats(g: &Csr) -> DegreeStats {
    let n = g.num_vertices() as u64;
    let pool = gts_exec::ThreadPool::with_default_threads();
    let partials = pool.par_ranges(
        g.num_vertices() as usize,
        4096,
        || (0u64, 0u64),
        |(max_d, zeros), r| {
            for v in r {
                let d = g.out_degree(v as crate::types::VertexId);
                *max_d = (*max_d).max(d);
                if d == 0 {
                    *zeros += 1;
                }
            }
        },
    );
    let mut max_d = 0u64;
    let mut zeros = 0u64;
    for (m, z) in partials {
        max_d = max_d.max(m);
        zeros += z;
    }
    DegreeStats {
        num_vertices: n,
        num_edges: g.num_edges() as u64,
        mean_out_degree: if n == 0 {
            0.0
        } else {
            g.num_edges() as f64 / n as f64
        },
        max_out_degree: max_d,
        zero_out_degree: zeros,
    }
}

/// Out-degree histogram in power-of-two buckets: `hist[i]` counts vertices
/// with out-degree in `[2^i, 2^(i+1))`; bucket 0 holds degree 0 and 1.
/// Per-worker histograms are merged by elementwise addition (commutative),
/// so the result is thread-count independent.
pub fn degree_histogram(g: &Csr) -> Vec<u64> {
    let pool = gts_exec::ThreadPool::with_default_threads();
    let partials = pool.par_ranges(
        g.num_vertices() as usize,
        4096,
        || vec![0u64; 33],
        |hist, r| {
            for v in r {
                let d = g.out_degree(v as crate::types::VertexId);
                let bucket = if d <= 1 {
                    0
                } else {
                    63 - (d.leading_zeros() as usize)
                };
                hist[bucket.min(32)] += 1;
            }
        },
    );
    let mut hist = vec![0u64; 33];
    for p in partials {
        for (slot, x) in hist.iter_mut().zip(p) {
            *slot += x;
        }
    }
    while hist.len() > 1 && *hist.last().unwrap() == 0 {
        hist.pop();
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::EdgeList;

    #[test]
    fn stats_on_small_graph() {
        // 0 -> {1,2,3}, 1 -> {2}, 2,3 have no out-edges.
        let g = Csr::from_edge_list(&EdgeList::new(4, vec![(0, 1), (0, 2), (0, 3), (1, 2)]));
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 4);
        assert_eq!(s.num_edges, 4);
        assert_eq!(s.max_out_degree, 3);
        assert_eq!(s.zero_out_degree, 2);
        assert!((s.mean_out_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_buckets() {
        let edges = (0..8).map(|i| (0u32, i as u32 % 4)).collect::<Vec<_>>();
        let g = Csr::from_edge_list(&EdgeList::new(4, edges));
        let h = degree_histogram(&g);
        // Vertex 0 has degree 8 → bucket 3 ([8,16)); others degree 0 → bucket 0.
        assert_eq!(h[0], 3);
        assert_eq!(h[3], 1);
    }

    #[test]
    fn empty_graph() {
        let g = Csr::from_edge_list(&EdgeList::new(0, vec![]));
        let s = degree_stats(&g);
        assert_eq!(s.num_vertices, 0);
        assert_eq!(s.mean_out_degree, 0.0);
    }
}
