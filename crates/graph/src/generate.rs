//! Deterministic graph generators.
//!
//! The paper's synthetic datasets are RMAT graphs (Sec. 7.1, "we generate
//! scale-free graphs following a power law degree distribution by using
//! RMAT", edge factor 16). [`Rmat`] reproduces that recursive-matrix process
//! with the Graph500 partition probabilities; [`erdos_renyi`] gives uniform
//! random graphs for cache-hit-rate baselines (the paper's Sec. 3.3 naive
//! cache model assumes random graphs); [`web_like`] builds high-diameter
//! web-shaped graphs used by the YahooWeb look-alike.

use crate::rng::Rng;
use crate::types::{EdgeList, VertexId};

/// RMAT (Recursive MATrix) generator configuration.
///
/// `scale` gives `2^scale` vertices; `edge_factor` edges are drawn per
/// vertex. Defaults follow Graph500 / the paper: (a,b,c,d) =
/// (0.57, 0.19, 0.19, 0.05) and edge factor 16.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rmat {
    /// log2 of the number of vertices.
    pub scale: u32,
    /// Edges generated per vertex (the paper fixes 16; Fig. 14 sweeps 4..32).
    pub edge_factor: u32,
    /// Probability of recursing into the top-left quadrant.
    pub a: f64,
    /// Probability of the top-right quadrant.
    pub b: f64,
    /// Probability of the bottom-left quadrant.
    pub c: f64,
    /// RNG seed; same seed, same graph.
    pub seed: u64,
}

impl Rmat {
    /// Paper-default parameters at the given scale.
    pub fn new(scale: u32) -> Self {
        Rmat {
            scale,
            edge_factor: 16,
            a: 0.57,
            b: 0.19,
            c: 0.19,
            seed: 0x6715_2016,
        }
    }

    /// Override the edge factor (density sweep of Fig. 14).
    pub fn with_edge_factor(mut self, f: u32) -> Self {
        self.edge_factor = f;
        self
    }

    /// Override the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Generate the edge list.
    pub fn generate(&self) -> EdgeList {
        assert!(self.scale < 32, "in-memory reproduction caps at scale 31");
        let n: u64 = 1u64 << self.scale;
        let m = n * self.edge_factor as u64;
        let mut rng = Rng::seed_from_u64(self.seed);
        let (a, b, c) = (self.a, self.b, self.c);
        let ab = a + b;
        let abc = a + b + c;
        let mut edges = Vec::with_capacity(m as usize);
        for _ in 0..m {
            let (mut src, mut dst) = (0u64, 0u64);
            for bit in (0..self.scale).rev() {
                let r: f64 = rng.f64();
                // Pick quadrant: a | b over c | d.
                let (si, di) = if r < a {
                    (0, 0)
                } else if r < ab {
                    (0, 1)
                } else if r < abc {
                    (1, 0)
                } else {
                    (1, 1)
                };
                src |= si << bit;
                dst |= di << bit;
            }
            edges.push((src as VertexId, dst as VertexId));
        }
        EdgeList::new(n as VertexId, edges)
    }
}

/// Convenience: RMAT at `scale` with paper defaults.
pub fn rmat(scale: u32) -> EdgeList {
    Rmat::new(scale).generate()
}

/// Uniform random directed graph with `n` vertices and `m` edges
/// (Erdős–Rényi G(n, m) with replacement).
pub fn erdos_renyi(n: VertexId, m: usize, seed: u64) -> EdgeList {
    assert!(n > 0, "Erdős–Rényi needs at least one vertex");
    let mut rng = Rng::seed_from_u64(seed);
    let edges = (0..m)
        .map(|_| (rng.below_u32(n), rng.below_u32(n)))
        .collect();
    EdgeList::new(n, edges)
}

/// A high-diameter "web-like" graph: a chain of `communities` dense
/// clusters, each of `community_size` vertices, with sparse forward links
/// between consecutive communities.
///
/// Web crawls such as YahooWeb have a far higher diameter than social
/// networks (the paper's Sec. 8 notes X-Stream struggles exactly because
/// YahooWeb has "a high diameter"); this generator reproduces that shape so
/// BFS-like experiments show many shallow levels.
pub fn web_like(communities: u32, community_size: u32, intra_degree: u32, seed: u64) -> EdgeList {
    assert!(communities > 0 && community_size > 1);
    let n = communities * community_size;
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges = Vec::new();
    for c in 0..communities {
        let base = c * community_size;
        // Dense-ish intra-community random links.
        for v in 0..community_size {
            for _ in 0..intra_degree {
                edges.push((base + v, base + rng.below_u32(community_size)));
            }
        }
        // A handful of bridges to the next community keeps diameter ~O(chain).
        if c + 1 < communities {
            let next = base + community_size;
            for _ in 0..2 {
                edges.push((
                    base + rng.below_u32(community_size),
                    next + rng.below_u32(community_size),
                ));
            }
        }
    }
    EdgeList::new(n, edges)
}

/// Barabási–Albert preferential attachment: each new vertex attaches `m`
/// edges to existing vertices with probability proportional to their
/// current degree. Produces power-law graphs with a different tail shape
/// than RMAT (useful for generator-sensitivity checks).
pub fn preferential_attachment(n: VertexId, m: u32, seed: u64) -> EdgeList {
    assert!(n >= 2 && m >= 1, "need n >= 2 and m >= 1");
    let mut rng = Rng::seed_from_u64(seed);
    let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(n as usize * m as usize);
    // Repeated-endpoint sampling implements degree-proportional choice.
    let mut endpoints: Vec<VertexId> = vec![0, 1];
    edges.push((1, 0));
    for v in 2..n {
        for _ in 0..m {
            let target = endpoints[rng.below_usize(endpoints.len())];
            edges.push((v, target));
            endpoints.push(v);
            endpoints.push(target);
        }
    }
    EdgeList::new(n, edges)
}

/// A 2-D grid with bidirectional edges — the road-network shape: uniform
/// low degree (≤ 4) and very high diameter, the opposite extreme from
/// RMAT's power law. A classic SSSP stress workload.
pub fn grid(width: u32, height: u32) -> EdgeList {
    assert!(width >= 1 && height >= 1);
    let n = width
        .checked_mul(height)
        .expect("grid dimensions overflow u32");
    let mut edges = Vec::with_capacity(4 * n as usize);
    for y in 0..height {
        for x in 0..width {
            let v = y * width + x;
            if x + 1 < width {
                edges.push((v, v + 1));
                edges.push((v + 1, v));
            }
            if y + 1 < height {
                edges.push((v, v + width));
                edges.push((v + width, v));
            }
        }
    }
    EdgeList::new(n, edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::Csr;
    use crate::stats::degree_stats;

    #[test]
    fn rmat_is_deterministic() {
        let a = Rmat::new(8).generate();
        let b = Rmat::new(8).generate();
        assert_eq!(a, b);
        let c = Rmat::new(8).with_seed(1).generate();
        assert_ne!(a, c);
    }

    #[test]
    fn rmat_sizes_follow_scale_and_factor() {
        let g = Rmat::new(10).with_edge_factor(8).generate();
        assert_eq!(g.num_vertices, 1 << 10);
        assert_eq!(g.num_edges(), (1 << 10) * 8);
    }

    #[test]
    fn rmat_degree_distribution_is_skewed() {
        let g = Rmat::new(12).generate();
        let csr = Csr::from_edge_list(&g);
        let st = degree_stats(&csr);
        // Power-law: the max degree dwarfs the mean (16).
        assert!(
            st.max_out_degree > 10 * st.mean_out_degree as u64,
            "max {} vs mean {}",
            st.max_out_degree,
            st.mean_out_degree
        );
    }

    #[test]
    fn erdos_renyi_shape() {
        let g = erdos_renyi(100, 500, 7);
        assert_eq!(g.num_vertices, 100);
        assert_eq!(g.num_edges(), 500);
        // Uniform graphs are not skewed: max degree stays near the mean.
        let st = degree_stats(&Csr::from_edge_list(&g));
        assert!(st.max_out_degree < 6 * st.mean_out_degree.ceil() as u64);
    }

    #[test]
    fn web_like_has_long_bfs_frontier_chain() {
        let g = web_like(32, 16, 4, 3);
        let csr = Csr::from_edge_list(&g);
        let levels = crate::reference::bfs(&csr, 0);
        let depth = levels
            .iter()
            .filter(|&&l| l != u32::MAX)
            .max()
            .copied()
            .unwrap();
        assert!(depth >= 30, "chain of communities ⇒ deep BFS, got {depth}");
    }

    #[test]
    #[should_panic(expected = "at least one vertex")]
    fn erdos_renyi_rejects_empty() {
        let _ = erdos_renyi(0, 1, 0);
    }

    #[test]
    fn preferential_attachment_is_skewed_and_connected() {
        let g = preferential_attachment(2000, 3, 9);
        assert_eq!(g.num_vertices, 2000);
        // Every vertex after the seed pair contributes m edges.
        assert_eq!(g.num_edges(), 1 + 1998 * 3);
        let csr = Csr::from_edge_list(&g).symmetrize();
        let st = degree_stats(&csr);
        assert!(st.max_out_degree as f64 > 10.0 * st.mean_out_degree);
        // Attachment always targets existing vertices: one weak component.
        let cc = crate::reference::connected_components(&csr);
        assert!(cc.iter().all(|&l| l == 0));
    }

    #[test]
    fn grid_shape_and_diameter() {
        let g = grid(30, 10);
        assert_eq!(g.num_vertices, 300);
        // 2 directed edges per interior adjacency.
        assert_eq!(g.num_edges(), 2 * (29 * 10 + 30 * 9));
        let csr = Csr::from_edge_list(&g);
        let lv = crate::reference::bfs(&csr, 0);
        let depth = *lv.iter().max().unwrap();
        assert_eq!(depth, 29 + 9, "Manhattan diameter from the corner");
        let st = degree_stats(&csr);
        assert!(st.max_out_degree <= 4, "road networks have bounded degree");
    }

    #[test]
    fn degenerate_grids() {
        assert_eq!(grid(1, 1).num_edges(), 0);
        assert_eq!(grid(5, 1).num_edges(), 8); // a path, both directions
    }
}
