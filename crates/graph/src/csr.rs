//! Compressed Sparse Row adjacency, the in-memory format used by the CPU
//! and hybrid baseline engines (the paper's Sec. 2 lists CSR among the
//! in-memory formats whose "very long contiguous edge array" limits scale —
//! which is exactly the limitation the TOTEM/CPU baselines exhibit here).

use crate::types::{EdgeList, VertexId};
use gts_exec::ThreadPool;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Below this edge count the parallel build is not worth its setup cost.
/// Both paths produce identical output, so the threshold is purely a
/// performance knob.
const PAR_EDGE_THRESHOLD: usize = 1 << 16;

/// Compressed Sparse Row representation of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`'s
    /// out-neighbours; length `num_vertices + 1`.
    offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build a CSR from an edge list via counting sort (O(V + E)), using
    /// the machine's available parallelism for large inputs. Adjacency
    /// lists preserve a stable, sorted-by-target order so that different
    /// construction paths — including every thread count — compare equal.
    pub fn from_edge_list(g: &EdgeList) -> Self {
        Self::from_edge_list_threads(g, gts_exec::default_host_threads())
    }

    /// [`Csr::from_edge_list`] with an explicit host-thread count. The
    /// output is identical for every value: degree counting and the scatter
    /// use commutative atomic adds, and the per-list canonicalising sort
    /// erases whatever arrival order the scatter produced.
    pub fn from_edge_list_threads(g: &EdgeList, threads: usize) -> Self {
        let pool = ThreadPool::new(threads);
        if pool.threads() == 1 || g.edges.len() < PAR_EDGE_THRESHOLD {
            return Self::from_edge_list_serial(g);
        }
        let n = g.num_vertices as usize;
        // Count degrees: commutative fetch_add per source vertex.
        let counts: Vec<AtomicU64> = (0..n + 1).map(|_| AtomicU64::new(0)).collect();
        pool.par_ranges(
            g.edges.len(),
            4096,
            || (),
            |(), r| {
                for &(s, _) in &g.edges[r] {
                    counts[s as usize + 1].fetch_add(1, Ordering::Relaxed);
                }
            },
        );
        // Serial prefix sum (O(V), inherently sequential, cheap).
        let mut offsets: Vec<u64> = counts.into_iter().map(AtomicU64::into_inner).collect();
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        // Scatter through per-vertex atomic cursors. Slot assignment within
        // an adjacency list is schedule-dependent, but the sort below
        // canonicalises it away.
        let cursor: Vec<AtomicU64> = offsets.iter().map(|&o| AtomicU64::new(o)).collect();
        let targets: Vec<AtomicU32> = (0..g.edges.len()).map(|_| AtomicU32::new(0)).collect();
        pool.par_ranges(
            g.edges.len(),
            4096,
            || (),
            |(), r| {
                for &(s, d) in &g.edges[r] {
                    let at = cursor[s as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    targets[at].store(d, Ordering::Relaxed);
                }
            },
        );
        let mut targets: Vec<VertexId> = targets.into_iter().map(AtomicU32::into_inner).collect();
        // Sort each adjacency list for canonical form, distributing
        // contiguous vertex ranges over the pool via split_at_mut.
        let vchunk = n.div_ceil(pool.threads() * 4).max(1);
        let mut slices: Vec<&mut [VertexId]> = Vec::new();
        let mut bounds: Vec<(usize, usize)> = Vec::new();
        {
            let mut rest: &mut [VertexId] = &mut targets;
            let mut consumed = 0u64;
            let mut v = 0;
            while v < n {
                let vend = (v + vchunk).min(n);
                let (head, tail) = rest.split_at_mut((offsets[vend] - consumed) as usize);
                slices.push(head);
                bounds.push((v, vend));
                consumed = offsets[vend];
                rest = tail;
                v = vend;
            }
        }
        pool.par_slices_mut(slices, |i, slice| {
            let (v0, v1) = bounds[i];
            let base = offsets[v0];
            for v in v0..v1 {
                let (a, b) = (
                    (offsets[v] - base) as usize,
                    (offsets[v + 1] - base) as usize,
                );
                slice[a..b].sort_unstable();
            }
        });
        Csr { offsets, targets }
    }

    /// The single-threaded reference build.
    fn from_edge_list_serial(g: &EdgeList) -> Self {
        let n = g.num_vertices as usize;
        let mut counts = vec![0u64; n + 1];
        for &(s, _) in &g.edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; g.edges.len()];
        for &(s, d) in &g.edges {
            let at = cursor[s as usize];
            targets[at as usize] = d;
            cursor[s as usize] += 1;
        }
        // Sort each adjacency list for canonical form.
        for v in 0..n {
            let (a, b) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[a..b].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v` (sorted, may contain duplicates for multigraphs).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        &self.targets[a..b]
    }

    /// Iterate `(src, dst)` over all edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }

    /// The transposed graph (in-edges become out-edges). Needed by engines
    /// that pull along reverse edges (GAS gather, BC accumulation).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let edges: Vec<(VertexId, VertexId)> = self.edges().map(|(s, d)| (d, s)).collect();
        Csr::from_edge_list(&EdgeList::new(n, edges))
    }

    /// An undirected (symmetrised) version: every edge present both ways,
    /// deduplicated. Used by connected-components references.
    pub fn symmetrize(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for (s, d) in self.edges() {
            edges.push((s, d));
            edges.push((d, s));
        }
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edge_list(&EdgeList::new(n, edges))
    }

    /// Raw offsets array (length `V + 1`), for engines that stride directly.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw concatenated targets array, for engines that stride directly.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Approximate in-memory footprint in bytes. The baselines that must
    /// hold CSR in host or device memory use this for OOM accounting.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated
        Csr::from_edge_list(&EdgeList::new(4, vec![(2, 0), (0, 2), (0, 1), (1, 2)]))
    }

    #[test]
    fn builds_sorted_adjacency() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = small();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn transpose_inverts() {
        let g = small();
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[2]);
        // Transposing twice is the identity (on canonical CSR).
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn symmetrize_makes_undirected() {
        let g = Csr::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2)]));
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
    }

    #[test]
    fn duplicate_edges_survive_build() {
        let g = Csr::from_edge_list(&EdgeList::new(2, vec![(0, 1), (0, 1)]));
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(small().memory_bytes() > 0);
    }

    #[test]
    fn parallel_build_equals_serial_for_every_thread_count() {
        // Big enough to clear PAR_EDGE_THRESHOLD, skewed enough to contain
        // hubs, plus duplicate edges (multigraph) that must survive intact.
        let g = crate::generate::rmat(13);
        let serial = Csr::from_edge_list_threads(&g, 1);
        assert!(g.edges.len() >= super::PAR_EDGE_THRESHOLD);
        for threads in [2, 4, 8] {
            let par = Csr::from_edge_list_threads(&g, threads);
            assert_eq!(par, serial, "threads={threads}");
        }
    }
}
