//! Compressed Sparse Row adjacency, the in-memory format used by the CPU
//! and hybrid baseline engines (the paper's Sec. 2 lists CSR among the
//! in-memory formats whose "very long contiguous edge array" limits scale —
//! which is exactly the limitation the TOTEM/CPU baselines exhibit here).

use crate::types::{EdgeList, VertexId};

/// Compressed Sparse Row representation of a directed graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[v]..offsets[v+1]` indexes `targets` for vertex `v`'s
    /// out-neighbours; length `num_vertices + 1`.
    offsets: Vec<u64>,
    /// Concatenated adjacency lists.
    targets: Vec<VertexId>,
}

impl Csr {
    /// Build a CSR from an edge list via counting sort (O(V + E)).
    /// Adjacency lists preserve a stable, sorted-by-target order so that
    /// different construction paths compare equal.
    pub fn from_edge_list(g: &EdgeList) -> Self {
        let n = g.num_vertices as usize;
        let mut counts = vec![0u64; n + 1];
        for &(s, _) in &g.edges {
            counts[s as usize + 1] += 1;
        }
        for i in 0..n {
            counts[i + 1] += counts[i];
        }
        let offsets = counts;
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; g.edges.len()];
        for &(s, d) in &g.edges {
            let at = cursor[s as usize];
            targets[at as usize] = d;
            cursor[s as usize] += 1;
        }
        // Sort each adjacency list for canonical form.
        for v in 0..n {
            let (a, b) = (offsets[v] as usize, offsets[v + 1] as usize);
            targets[a..b].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> VertexId {
        (self.offsets.len() - 1) as VertexId
    }

    /// Number of directed edges.
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: VertexId) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Out-neighbours of `v` (sorted, may contain duplicates for multigraphs).
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let (a, b) = (
            self.offsets[v as usize] as usize,
            self.offsets[v as usize + 1] as usize,
        );
        &self.targets[a..b]
    }

    /// Iterate `(src, dst)` over all edges in CSR order.
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        (0..self.num_vertices()).flat_map(move |v| self.neighbors(v).iter().map(move |&d| (v, d)))
    }

    /// The transposed graph (in-edges become out-edges). Needed by engines
    /// that pull along reverse edges (GAS gather, BC accumulation).
    pub fn transpose(&self) -> Csr {
        let n = self.num_vertices();
        let edges: Vec<(VertexId, VertexId)> = self.edges().map(|(s, d)| (d, s)).collect();
        Csr::from_edge_list(&EdgeList::new(n, edges))
    }

    /// An undirected (symmetrised) version: every edge present both ways,
    /// deduplicated. Used by connected-components references.
    pub fn symmetrize(&self) -> Csr {
        let n = self.num_vertices();
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(self.num_edges() * 2);
        for (s, d) in self.edges() {
            edges.push((s, d));
            edges.push((d, s));
        }
        edges.sort_unstable();
        edges.dedup();
        Csr::from_edge_list(&EdgeList::new(n, edges))
    }

    /// Raw offsets array (length `V + 1`), for engines that stride directly.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// Raw concatenated targets array, for engines that stride directly.
    pub fn targets(&self) -> &[VertexId] {
        &self.targets
    }

    /// Approximate in-memory footprint in bytes. The baselines that must
    /// hold CSR in host or device memory use this for OOM accounting.
    pub fn memory_bytes(&self) -> u64 {
        (self.offsets.len() * std::mem::size_of::<u64>()
            + self.targets.len() * std::mem::size_of::<VertexId>()) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Csr {
        // 0 -> 1,2 ; 1 -> 2 ; 2 -> 0 ; 3 isolated
        Csr::from_edge_list(&EdgeList::new(4, vec![(2, 0), (0, 2), (0, 1), (1, 2)]))
    }

    #[test]
    fn builds_sorted_adjacency() {
        let g = small();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[2]);
        assert_eq!(g.neighbors(2), &[0]);
        assert_eq!(g.neighbors(3), &[] as &[VertexId]);
        assert_eq!(g.out_degree(0), 2);
    }

    #[test]
    fn edges_iterator_covers_all() {
        let g = small();
        let edges: Vec<_> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 2), (2, 0)]);
    }

    #[test]
    fn transpose_inverts() {
        let g = small();
        let t = g.transpose();
        assert_eq!(t.neighbors(2), &[0, 1]);
        assert_eq!(t.neighbors(0), &[2]);
        // Transposing twice is the identity (on canonical CSR).
        assert_eq!(t.transpose(), g);
    }

    #[test]
    fn symmetrize_makes_undirected() {
        let g = Csr::from_edge_list(&EdgeList::new(3, vec![(0, 1), (1, 0), (1, 2)]));
        let s = g.symmetrize();
        assert_eq!(s.neighbors(0), &[1]);
        assert_eq!(s.neighbors(1), &[0, 2]);
        assert_eq!(s.neighbors(2), &[1]);
    }

    #[test]
    fn duplicate_edges_survive_build() {
        let g = Csr::from_edge_list(&EdgeList::new(2, vec![(0, 1), (0, 1)]));
        assert_eq!(g.neighbors(0), &[1, 1]);
    }

    #[test]
    fn memory_accounting_positive() {
        assert!(small().memory_bytes() > 0);
    }
}
