//! Property tests of the golden reference algorithms — the invariants any
//! correct implementation must satisfy, independent of the engines.

use gts_graph::generate::{erdos_renyi, Rmat};
use gts_graph::reference::{self, INF_DIST, UNREACHED};
use gts_graph::{Csr, EdgeList};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = EdgeList> {
    (2u32..150).prop_flat_map(|n| {
        proptest::collection::vec((0..n, 0..n), 0..500)
            .prop_map(move |edges| EdgeList::new(n, edges))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bfs_levels_satisfy_edge_triangle_inequality(g in arb_graph(), source in 0u32..150) {
        let csr = Csr::from_edge_list(&g);
        let source = source % g.num_vertices;
        let lv = reference::bfs(&csr, source);
        prop_assert_eq!(lv[source as usize], 0);
        for (v, w) in csr.edges() {
            if lv[v as usize] != UNREACHED {
                // A reached vertex's neighbour is at most one level deeper.
                prop_assert!(lv[w as usize] != UNREACHED);
                prop_assert!(lv[w as usize] <= lv[v as usize] + 1);
            }
        }
        // Levels are dense: every level below the max is inhabited.
        let max = lv.iter().filter(|&&l| l != UNREACHED).max().copied().unwrap();
        for l in 0..=max {
            prop_assert!(lv.contains(&l), "level {} uninhabited", l);
        }
    }

    #[test]
    fn sssp_is_consistent_with_bfs_and_relaxed(g in arb_graph(), source in 0u32..150) {
        let csr = Csr::from_edge_list(&g);
        let source = source % g.num_vertices;
        let lv = reference::bfs(&csr, source);
        let dist = reference::sssp(&csr, source);
        for v in 0..g.num_vertices as usize {
            // Same reachability; hop count lower-bounds weighted distance
            // (weights >= 1) and 64*hops upper-bounds it (weights <= 64).
            prop_assert_eq!(lv[v] == UNREACHED, dist[v] == INF_DIST);
            if lv[v] != UNREACHED {
                prop_assert!(dist[v] >= lv[v]);
                // A shortest path of lv[v] hops costs at most 64 per hop.
                prop_assert!(dist[v] as u64 <= 64 * lv[v] as u64);
            }
        }
        // No relaxable edge remains (the defining SSSP fixpoint).
        for (v, w) in csr.edges() {
            if dist[v as usize] != INF_DIST {
                let cand = dist[v as usize] + EdgeList::edge_weight(v, w);
                prop_assert!(dist[w as usize] <= cand);
            }
        }
    }

    #[test]
    fn cc_is_an_equivalence_consistent_with_edges(g in arb_graph()) {
        let csr = Csr::from_edge_list(&g);
        let cc = reference::connected_components(&csr);
        // Endpoint labels agree (direction ignored).
        for (v, w) in csr.edges() {
            prop_assert_eq!(cc[v as usize], cc[w as usize]);
        }
        // Labels are canonical: the label is the minimum member, and the
        // label vertex belongs to its own component.
        for (v, &label) in cc.iter().enumerate() {
            prop_assert!(label as usize <= v);
            prop_assert_eq!(cc[label as usize], label);
        }
    }

    #[test]
    fn pagerank_mass_is_bounded_and_conserved_without_dangling(g in arb_graph()) {
        let csr = Csr::from_edge_list(&g);
        let pr = reference::pagerank(&csr, 0.85, 8);
        let total: f64 = pr.iter().sum();
        prop_assert!(total <= 1.0 + 1e-9, "mass can only leak, total {}", total);
        prop_assert!(pr.iter().all(|&p| p >= 0.0));
        // Everyone keeps at least the teleport share.
        let floor = 0.15 / g.num_vertices as f64;
        prop_assert!(pr.iter().all(|&p| p >= floor - 1e-12));
        let dangling = (0..csr.num_vertices()).any(|v| csr.out_degree(v) == 0);
        if !dangling {
            prop_assert!((total - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn betweenness_is_nonnegative_and_zero_on_sinks(g in arb_graph(), source in 0u32..150) {
        let csr = Csr::from_edge_list(&g);
        let source = source % g.num_vertices;
        let bc = reference::betweenness(&csr, &[source]);
        for (v, &b) in bc.iter().enumerate() {
            prop_assert!(b >= -1e-9);
            // A vertex with no out-edges mediates nothing.
            if csr.out_degree(v as u32) == 0 {
                prop_assert!(b.abs() < 1e-9);
            }
        }
        prop_assert!(bc[source as usize].abs() < 1e-9, "source never counted");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn rmat_is_shape_stable(scale in 6u32..10, factor in 1u32..20, seed in 0u64..1000) {
        let g = Rmat { scale, edge_factor: factor, a: 0.57, b: 0.19, c: 0.19, seed }.generate();
        prop_assert_eq!(g.num_vertices, 1 << scale);
        prop_assert_eq!(g.num_edges(), (1usize << scale) * factor as usize);
        // Determinism.
        let g2 = Rmat { scale, edge_factor: factor, a: 0.57, b: 0.19, c: 0.19, seed }.generate();
        prop_assert_eq!(g, g2);
    }

    #[test]
    fn erdos_renyi_is_in_range(n in 1u32..500, m in 0usize..2000, seed in 0u64..100) {
        let g = erdos_renyi(n, m, seed);
        prop_assert_eq!(g.num_edges(), m);
        prop_assert!(g.edges.iter().all(|&(s, d)| s < n && d < n));
    }
}
